(* Regression gates over the bench harness's JSON outputs.  The files
   are hand-formatted (one row object per line), so a line scanner is
   enough; no JSON library needed.

   - BENCH_warmstart.json rows: warm-started probes must never need
     more augmenting paths than reset probes — if they do, the
     feasibility repair is leaving the residual network in a worse
     state than a cold start, which defeats the whole optimisation.
   - BENCH_serve.json rows: a repeated identical request must be
     answered at least 5x faster from the result LRU than the cold
     solve — the serving layer's reason to exist.
   - BENCH_incremental.json rows: patching the live session through a
     delta batch must cost at most half a from-scratch recompute
     (and the two answers must never have disagreed) — otherwise the
     arc surgery and core repair are slower than rebuilding.
   - BENCH_topk.json rows: the pruned extraction must return regions
     bit-identical to the unpruned one (mismatches = 0) and must not
     be slower than it — core-based candidate restriction is only
     sound pruning if it never changes the answer, and only pruning
     if it never costs time.
   - BENCH_hierarchy.json rows: the prepared/warm hierarchy must agree
     bit-for-bit with the fresh-build escape hatch (and B_1 with the
     canonical CDS; mismatches = 0) and must not be slower than it —
     retargeting one prepared network per level is the optimisation,
     so paying more than per-probe rebuilds would mean it failed.
   - BENCH_parallel.json rows: at 4 domains the pooled phases must run
     at least 2x faster than 1 domain (the striped CoreExact probes,
     which scale with component count, merely must not be slower).
     The gate is skipped — counted ok, not failed — when the row was
     measured on a box with fewer than 4 cores: cores_detected travels
     with every row precisely so small machines don't fail for being
     small.

   Usage: compare [FILE]   (default BENCH_warmstart.json)
   Exits 0 when every row satisfies its gate, 1 otherwise (or when the
   file is missing/contains no gateable rows). *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* Extract the integer following ["key": ] on [line], if present. *)
let int_field line key =
  let needle = Printf.sprintf "\"%s\": " key in
  let nlen = String.length needle and llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < llen
      && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr stop
    done;
    if !stop = start then None
    else int_of_string_opt (String.sub line start (!stop - start))

let float_field line key =
  let needle = Printf.sprintf "\"%s\": " key in
  let nlen = String.length needle and llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < llen
      && (match line.[!stop] with
          | '0' .. '9' | '-' | '.' | 'e' | '+' -> true
          | _ -> false)
    do
      incr stop
    done;
    if !stop = start then None
    else float_of_string_opt (String.sub line start (!stop - start))

let str_field line key =
  let needle = Printf.sprintf "\"%s\": \"" key in
  let nlen = String.length needle and llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    (match String.index_from_opt line start '"' with
     | Some stop -> Some (String.sub line start (stop - start))
     | None -> None)

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_warmstart.json"
  in
  if not (Sys.file_exists path) then begin
    Printf.eprintf "compare: %s not found\n" path;
    exit 1
  end;
  let rows = ref 0 and bad = ref 0 in
  let min_cached_speedup = 5.0 in
  List.iter
    (fun line ->
      match
        ( int_field line "reset_augmenting_paths",
          int_field line "warm_augmenting_paths" )
      with
      | Some reset, Some warm ->
        incr rows;
        let label =
          Printf.sprintf "%s/%s"
            (Option.value (str_field line "dataset") ~default:"?")
            (Option.value (str_field line "algorithm") ~default:"?")
        in
        if warm > reset then begin
          incr bad;
          Printf.printf "FAIL %-24s warm %d > reset %d\n" label warm reset
        end
        else
          Printf.printf "ok   %-24s warm %6d <= reset %6d  (%.1fx)\n" label
            warm reset
            (if warm > 0 then float_of_int reset /. float_of_int warm else 0.)
      | _ -> (
        match
          (float_field line "pruned_s", float_field line "unpruned_s")
        with
        | Some pruned, Some unpruned ->
          incr rows;
          let label =
            Printf.sprintf "%s/%s/k=%d"
              (Option.value (str_field line "graph") ~default:"?")
              (Option.value (str_field line "pattern") ~default:"?")
              (Option.value (int_field line "k") ~default:0)
          in
          let mismatches =
            Option.value (int_field line "mismatches") ~default:0
          in
          if mismatches > 0 then begin
            incr bad;
            Printf.printf "FAIL %-24s %d pruned/unpruned region mismatches\n"
              label mismatches
          end
          else if pruned > unpruned then begin
            incr bad;
            Printf.printf "FAIL %-24s pruned %.3fs > unpruned %.3fs\n" label
              pruned unpruned
          end
          else
            Printf.printf "ok   %-24s pruned %8.3fs <= unpruned %8.3fs  (%.1fx)\n"
              label pruned unpruned
              (if pruned > 0. then unpruned /. pruned else 0.)
        | _ -> (
        match
          (float_field line "prepared_s", float_field line "fresh_s")
        with
        | Some prepared, Some fresh ->
          incr rows;
          let label =
            Printf.sprintf "%s/%s/hierarchy"
              (Option.value (str_field line "graph") ~default:"?")
              (Option.value (str_field line "pattern") ~default:"?")
          in
          let mismatches =
            Option.value (int_field line "mismatches") ~default:0
          in
          if mismatches > 0 then begin
            incr bad;
            Printf.printf "FAIL %-24s %d prepared/fresh/CDS mismatches\n"
              label mismatches
          end
          else if prepared > fresh then begin
            incr bad;
            Printf.printf "FAIL %-24s prepared %.3fs > fresh %.3fs\n" label
              prepared fresh
          end
          else
            Printf.printf
              "ok   %-24s prepared %8.3fs <= fresh %8.3fs  (%.1fx)\n" label
              prepared fresh
              (if prepared > 0. then fresh /. prepared else 0.)
        | _ -> (
        match
          ( float_field line "recompute_s",
            float_field line "incremental_s" )
        with
        | Some recompute, Some incr_s ->
          incr rows;
          let label =
            Printf.sprintf "%s/%s"
              (Option.value (str_field line "graph") ~default:"?")
              (Option.value (str_field line "pattern") ~default:"?")
          in
          let mismatches =
            Option.value (int_field line "mismatches") ~default:0
          in
          if mismatches > 0 then begin
            incr bad;
            Printf.printf "FAIL %-24s %d incremental/rebuild mismatches\n"
              label mismatches
          end
          else if incr_s > 0.5 *. recompute then begin
            incr bad;
            Printf.printf
              "FAIL %-24s incremental %.3fs > 0.5 * recompute %.3fs\n" label
              incr_s recompute
          end
          else
            Printf.printf "ok   %-24s incremental %8.3fs <= 0.5 * %8.3fs  (%.1fx)\n"
              label incr_s recompute
              (if incr_s > 0. then recompute /. incr_s else 0.)
        | _ -> (
        match (int_field line "domains", str_field line "phase") with
        | Some domains, Some phase ->
          incr rows;
          let label =
            Printf.sprintf "%s/%s/%dd"
              (Option.value (str_field line "graph") ~default:"?")
              phase domains
          in
          (* The speedup gate only makes sense where the hardware can
             physically provide one: rows measured on a < 4-core box
             (cores_detected travels with each row) pass as skipped
             rather than failing a machine for being small. *)
          let cores =
            Option.value (int_field line "cores_detected") ~default:0
          in
          let min_speedup =
            (* Striped probes scale with the component count, not the
               domain count, so they only gate against slowdown. *)
            if phase = "core_exact_striped_triangle" then 1.0 else 2.0
          in
          if domains < 4 then
            Printf.printf "ok   %-36s (no gate below 4 domains)\n" label
          else if cores < 4 then
            Printf.printf
              "ok   %-36s speedup gate skipped (cores_detected=%d < 4)\n"
              label cores
          else (
            match float_field line "speedup" with
            | None ->
              Printf.printf "ok   %-36s no speedup measured (skipped)\n" label
            | Some s ->
              if s < min_speedup then begin
                incr bad;
                Printf.printf
                  "FAIL %-36s speedup %.2fx < %.1fx at %d domains\n" label s
                  min_speedup domains
              end
              else Printf.printf "ok   %-36s speedup %8.2fx\n" label s)
        | _ -> (
        match float_field line "cached_speedup" with
        | Some speedup ->
          incr rows;
          let label =
            Printf.sprintf "%s/%s"
              (Option.value (str_field line "dataset") ~default:"?")
              (Option.value (str_field line "endpoint") ~default:"?")
          in
          if speedup < min_cached_speedup then begin
            incr bad;
            Printf.printf "FAIL %-32s cached only %.1fx faster (< %.0fx)\n"
              label speedup min_cached_speedup
          end
          else
            Printf.printf "ok   %-32s cached %8.1fx faster\n" label speedup
        | None -> ()))))))
    (read_lines path);
  if !rows = 0 then begin
    Printf.eprintf "compare: no gateable rows in %s\n" path;
    exit 1
  end;
  if !bad > 0 then begin
    Printf.printf "%d/%d rows regressed\n" !bad !rows;
    exit 1
  end;
  Printf.printf "all %d rows pass their gate\n" !rows
