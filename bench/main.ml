(* Benchmark harness entry point.

   dune exec bench/main.exe                  # every experiment
   dune exec bench/main.exe -- --list
   dune exec bench/main.exe -- --only fig9,tab5
   dune exec bench/main.exe -- --timeout 30  # per-cell budget (s) *)

let () =
  let only = ref [] in
  let list_only = ref false in
  let spec =
    [
      ("--only",
       Arg.String
         (fun s -> only := String.split_on_char ',' s),
       "IDS  comma-separated experiment ids to run");
      ("--timeout",
       Arg.Float (fun t -> Harness.default_timeout := t),
       "SECS  per-cell wall-clock budget (default 10)");
      ("--list", Arg.Set list_only, " list experiment ids and exit");
      ("--smoke", Arg.Set Harness.smoke,
       " shrink inputs for a fast CI pass over the same code paths");
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "bench/main.exe [--list] [--only ids] [--timeout secs] [--smoke]";
  if !list_only then
    List.iter
      (fun (id, doc, _) -> Printf.printf "%-12s %s\n" id doc)
      Experiments.all
  else begin
    let selected =
      if !only = [] then Experiments.all
      else
        List.map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) Experiments.all with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment id %s (try --list)\n" id;
              exit 2)
          !only
    in
    Printf.printf
      "DSD benchmark harness — per-cell timeout %.0fs (TIMEOUT rows = the paper's \
       'cannot finish' bars)\n"
      !Harness.default_timeout;
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, _, run) -> run ()) selected;
    Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
  end
