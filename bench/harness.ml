(* Benchmark plumbing: per-cell subprocess isolation with wall-clock
   timeouts (mirroring the paper's 2-/5-day cutoffs at container
   scale), and fixed-width table printing. *)

type cell =
  | Ok of string          (* child's one-line result payload *)
  | Timeout of float
  | Crashed of string

let default_timeout = ref 10.0

(* Smoke mode (--smoke): shrink inputs so CI can exercise every code
   path — notably the multi-domain ones — in seconds.  Experiments
   that honour it say so in their section banner. *)
let smoke = ref false

(* Run [f] in a forked child; read its result line from a pipe.  The
   child is killed (SIGKILL) when the timeout elapses — algorithms need
   no cooperative cancellation points this way.  Payloads must stay
   under the pipe buffer (64 KiB): the parent only drains after exit,
   so a larger write would block the child until the timeout.  All
   experiments emit one short line. *)
let run_cell ?timeout (f : unit -> string) : cell =
  let timeout = Option.value timeout ~default:!default_timeout in
  (* Anything buffered before the fork would otherwise be flushed a
     second time by the child. *)
  flush stdout;
  flush stderr;
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let result = (try f () with e -> "CRASH " ^ Printexc.to_string e) in
    let oc = Unix.out_channel_of_descr w in
    output_string oc result;
    flush oc;
    Unix.close w;
    (* _exit skips at_exit, so inherited channel buffers are not
       replayed. *)
    Unix._exit 0
  | pid ->
    Unix.close w;
    let start = Unix.gettimeofday () in
    let status = ref None in
    while !status = None do
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if Unix.gettimeofday () -. start > timeout then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          status := Some `Timeout
        end
        else Unix.sleepf 0.02
      | _, Unix.WEXITED 0 -> status := Some `Done
      | _, _ -> status := Some `Crashed
    done;
    let payload =
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      (try
         let rec drain () =
           let k = Unix.read r chunk 0 4096 in
           if k > 0 then begin
             Buffer.add_subbytes buf chunk 0 k;
             drain ()
           end
         in
         drain ()
       with Unix.Unix_error _ -> ());
      Unix.close r;
      Buffer.contents buf
    in
    (match !status with
     | Some `Timeout -> Timeout timeout
     | Some `Crashed -> Crashed payload
     | Some `Done | None ->
       if String.length payload >= 5 && String.sub payload 0 5 = "CRASH" then
         Crashed payload
       else Ok payload)

(* Format a cell that carries a single time-in-seconds payload. *)
let show_time = function
  | Ok s -> (try Printf.sprintf "%8.3fs" (float_of_string (String.trim s)) with _ -> s)
  | Timeout t -> Printf.sprintf ">%.0fs(TO)" t
  | Crashed msg ->
    let msg = String.trim msg in
    if String.length msg > 12 then String.sub msg 0 12 else msg

let show_payload = function
  | Ok s -> String.trim s
  | Timeout t -> Printf.sprintf "TIMEOUT(%.0fs)" t
  | Crashed msg -> "CRASH:" ^ String.trim msg

(* Timing helper used inside cells. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* ---- observability ----

   Cells run in forked children, so the global Dsd_obs state is
   private to each cell: enable, run, and report without interfering
   with sibling cells or the parent. *)

(* [with_obs_fields f] runs [f] with recording on and returns its
   result together with the one-line per-phase/counter `k=v` fields
   (Dsd_obs.Report.kv_fields) — append these to BENCH payloads so
   future BENCH_*.json rows carry a comparable phase breakdown. *)
let with_obs_fields f =
  let x = Dsd_obs.Control.with_recording f in
  (x, Dsd_obs.Report.kv_fields ())

(* [timed_obs f] = wall-clock seconds plus the per-phase fields, as
   one payload line: "<secs> <k=v> <k=v> ...". *)
let timed_obs f =
  let (_, dt), fields = with_obs_fields (fun () -> timed f) in
  Printf.sprintf "%f %s" dt fields

(* ---- table printing ---- *)

let rule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let row widths cells =
  print_string "|";
  List.iter2
    (fun w c -> Printf.printf " %-*s |" w c)
    widths cells;
  print_newline ()

let table ~header ~rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      header
  in
  rule widths;
  row widths header;
  rule widths;
  List.iter (row widths) rows;
  rule widths

let section title =
  Printf.printf "\n=== %s ===\n" title
