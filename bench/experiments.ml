(* One runner per table/figure of the paper's evaluation (Section 8 +
   appendix).  Each prints rows in the paper's shape; EXPERIMENTS.md
   records paper-vs-measured.  Cells run in forked children under a
   wall-clock timeout (Harness.run_cell): a TIMEOUT entry corresponds
   to the paper's bars touching the top of the chart. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density
module H = Harness

let hs = [ 2; 3; 4; 5; 6 ]

let clique_name h =
  match h with
  | 2 -> "edge"
  | 3 -> "triangle"
  | h -> string_of_int h ^ "-clique"

let dataset g_name = Dsd_data.Datasets.graph g_name

let time_of f = Printf.sprintf "%f" (snd (H.timed f))

(* Reference optima used by ratio experiments, computed in a child so a
   pathological dataset yields a skipped section instead of a hung
   harness. *)
let guarded_float ?timeout f =
  match H.run_cell ?timeout (fun () -> Printf.sprintf "%f" (f ())) with
  | H.Ok s -> (try Some (float_of_string (String.trim s)) with _ -> None)
  | _ -> None

(* ---- Table 2 / Figure 18: dataset characteristics ---- *)

let tab2 () =
  H.section "Table 2 / Fig. 18 — dataset characteristics (triangle cores)";
  let names =
    Dsd_data.Datasets.(
      names_of_group Small @ names_of_group Large @ names_of_group Random
      @ names_of_group Extra @ names_of_group Case_study)
  in
  let rows =
    List.map
      (fun name ->
        let g = dataset name in
        let basic =
          Printf.sprintf "%d %d" (G.n g) (G.m g)
        in
        let cell =
          H.run_cell ~timeout:(2. *. !H.default_timeout) (fun () ->
              let _, cc = Dsd_graph.Traversal.components g in
              let dia = Dsd_graph.Traversal.pseudo_diameter g in
              let alpha = Dsd_util.Stats.power_law_alpha (G.degrees g) in
              let d =
                Dsd_core.Clique_core.decompose ~track_density:false g P.triangle
              in
              let core = Dsd_core.Clique_core.kmax_core d in
              Printf.sprintf "%d %d %.3f %d %d" cc dia alpha
                d.Dsd_core.Clique_core.kmax (Array.length core))
        in
        let stats =
          match cell with
          | H.Ok s -> String.split_on_char ' ' (String.trim s)
          | other -> [ H.show_payload other; "-"; "-"; "-"; "-" ]
        in
        name :: (String.split_on_char ' ' basic @ stats))
      names
  in
  H.table
    ~header:[ "dataset"; "n"; "m"; "#CC"; "diam~"; "alpha"; "kmax"; "core size" ]
    ~rows

(* ---- Figure 8(a)-(e): exact CDS algorithms on small datasets ---- *)

let exact_cell g psi = H.run_cell (fun () -> time_of (fun () -> ignore (Dsd_core.Exact.run g psi)))
let core_exact_cell g psi =
  H.run_cell (fun () -> time_of (fun () -> ignore (Dsd_core.Core_exact.run g psi)))

let fig8_exact () =
  H.section "Figure 8(a)-(e) — exact algorithms (Exact vs CoreExact), h-cliques";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  n=%d m=%d\n" name (G.n g) (G.m g);
      let rows =
        List.map
          (fun h ->
            let psi = P.clique h in
            [ clique_name h;
              H.show_time (exact_cell g psi);
              H.show_time (core_exact_cell g psi) ])
          hs
      in
      H.table ~header:[ "h-clique"; "Exact"; "CoreExact" ] ~rows)
    (Dsd_data.Datasets.names_of_group Dsd_data.Datasets.Small)

(* ---- Figure 8(f)-(j): approximation algorithms on large datasets ---- *)

let approx_cells g psi =
  [ H.run_cell (fun () -> time_of (fun () -> ignore (Dsd_core.Nucleus.run g psi)));
    H.run_cell (fun () -> time_of (fun () -> ignore (Dsd_core.Peel_app.run g psi)));
    H.run_cell (fun () -> time_of (fun () -> ignore (Dsd_core.Inc_app.run g psi)));
    H.run_cell (fun () -> time_of (fun () -> ignore (Dsd_core.Core_app.run g psi))) ]

let fig8_approx_on group =
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  n=%d m=%d\n" name (G.n g) (G.m g);
      let rows =
        List.map
          (fun h ->
            clique_name h :: List.map H.show_time (approx_cells g (P.clique h)))
          hs
      in
      H.table ~header:[ "h-clique"; "Nucleus"; "PeelApp"; "IncApp"; "CoreApp" ] ~rows)
    (Dsd_data.Datasets.names_of_group group)

let fig8_approx () =
  H.section "Figure 8(f)-(j) — approximation algorithms, h-cliques";
  fig8_approx_on Dsd_data.Datasets.Large

(* ---- Figure 9: flow-network sizes across CoreExact iterations ---- *)

let fig9 () =
  H.section "Figure 9 — flow network size per CoreExact iteration";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  (iteration -1 = Exact's whole-graph network)\n" name;
      let rows =
        List.filter_map
          (fun h ->
            let psi = P.clique h in
            let cell =
              H.run_cell ~timeout:(3. *. !H.default_timeout) (fun () ->
                  (* Whole-graph network size: n + |Lambda| + 2 as in
                     Algorithm 1 (for h = 2 it is n + 2). *)
                  let whole =
                    if h = 2 then G.n g + 2
                    else G.n g + Dsd_clique.Kclist.count g ~h:(h - 1) + 2
                  in
                  let r = Dsd_core.Core_exact.run g psi in
                  let sizes = r.Dsd_core.Core_exact.stats.network_nodes in
                  String.concat " "
                    (List.map string_of_int (whole :: sizes)))
            in
            match cell with
            | H.Ok s ->
              let sizes = String.split_on_char ' ' (String.trim s) in
              let take7 = List.filteri (fun i _ -> i < 8) sizes in
              Some (clique_name h :: take7
                    @ List.init (max 0 (8 - List.length take7)) (fun _ -> "-"))
            | other -> Some [ clique_name h; H.show_payload other ]
          )
          hs
      in
      let pad r = r @ List.init (max 0 (9 - List.length r)) (fun _ -> "-") in
      H.table
        ~header:[ "h-clique"; "it=-1"; "0"; "1"; "2"; "3"; "4"; "5"; "6" ]
        ~rows:(List.map pad rows))
    [ "ca_hepth"; "as_caida" ]

(* ---- Figure 10: pruning-criterion ablation ---- *)

let fig10 () =
  H.section "Figure 10 — effect of pruning criteria in CoreExact";
  let variants =
    Dsd_core.Core_exact.
      [ ("P1", { p1 = true; p2 = false; p3 = false });
        ("P2", { p1 = false; p2 = true; p3 = false });
        ("P3", { p1 = false; p2 = false; p3 = true });
        ("none", no_prunings);
        ("all", all_prunings) ]
  in
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]\n" name;
      let rows =
        List.map
          (fun h ->
            let psi = P.clique h in
            clique_name h
            :: List.map
                 (fun (_, prunings) ->
                   H.show_time
                     (H.run_cell (fun () ->
                          time_of (fun () ->
                              ignore (Dsd_core.Core_exact.run ~prunings g psi)))))
                 variants)
          hs
      in
      H.table ~header:("h-clique" :: List.map fst variants) ~rows)
    [ "as733"; "ca_hepth" ]

(* ---- Table 3: % of CoreExact time in core decomposition ---- *)

let tab3 () =
  H.section "Table 3 — %% of CoreExact time spent in core decomposition";
  let rows =
    List.concat_map
      (fun name ->
        let g = dataset name in
        [ name
          :: List.map
               (fun h ->
                 let cell =
                   H.run_cell (fun () ->
                       let r = Dsd_core.Core_exact.run g (P.clique h) in
                       let s = r.Dsd_core.Core_exact.stats in
                       Printf.sprintf "%.2f%%"
                         (100. *. s.Dsd_core.Core_exact.decompose_s
                          /. max 1e-9 s.Dsd_core.Core_exact.elapsed_s))
                 in
                 H.show_payload cell)
               hs ])
      [ "as733"; "ca_hepth" ]
  in
  H.table
    ~header:("dataset" :: List.map clique_name hs)
    ~rows

(* ---- Table 4: EMcore vs CoreApp (edge, kmax-core) ---- *)

let tab4 () =
  H.section "Table 4 — EMcore vs CoreApp for the classical kmax-core (seconds)";
  let names = Dsd_data.Datasets.names_of_group Dsd_data.Datasets.Large in
  let rows =
    List.map
      (fun algo_name ->
        algo_name
        :: List.map
             (fun name ->
               let g = dataset name in
               let cell =
                 H.run_cell (fun () ->
                     time_of (fun () ->
                         match algo_name with
                         | "EMcore" -> ignore (Dsd_core.Emcore.run g)
                         | _ -> ignore (Dsd_core.Core_app.run g P.edge)))
               in
               H.show_time cell)
             names)
      [ "EMcore"; "CoreApp" ]
  in
  H.table ~header:("algo." :: names) ~rows

(* ---- Figure 11: approximation ratios ---- *)

let fig11 () =
  H.section "Figure 11 — theoretical (1/h) vs actual approximation ratios";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]\n" name;
      let rows =
        List.map
          (fun h ->
            let psi = P.clique h in
            let cell =
              H.run_cell ~timeout:(6. *. !H.default_timeout) (fun () ->
                  let opt =
                    (Dsd_core.Core_exact.run g psi).Dsd_core.Core_exact.subgraph
                  in
                  let peel = (Dsd_core.Peel_app.run g psi).Dsd_core.Peel_app.subgraph in
                  let capp = (Dsd_core.Core_app.run g psi).Dsd_core.Core_app.subgraph in
                  if opt.D.density <= 0. then "n/a n/a"
                  else
                    Printf.sprintf "%.4f %.4f"
                      (peel.D.density /. opt.D.density)
                      (capp.D.density /. opt.D.density))
            in
            let actuals =
              match cell with
              | H.Ok s -> String.split_on_char ' ' (String.trim s)
              | other -> [ H.show_payload other; "-" ]
            in
            [ clique_name h; Printf.sprintf "%.3f" (1. /. float_of_int h) ]
            @ actuals)
          hs
      in
      H.table ~header:[ "h-clique"; "T=1/h"; "R(PeelApp)"; "R(CoreApp)" ] ~rows)
    [ "netscience"; "as_caida" ]

(* ---- Figure 12: CoreExact vs CoreApp ---- *)

let fig12 () =
  H.section "Figure 12 — exact (CoreExact) vs approximation (CoreApp)";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]\n" name;
      let rows =
        List.map
          (fun h ->
            let psi = P.clique h in
            [ clique_name h;
              H.show_time (core_exact_cell g psi);
              H.show_time
                (H.run_cell (fun () ->
                     time_of (fun () -> ignore (Dsd_core.Core_app.run g psi)))) ])
          hs
      in
      H.table ~header:[ "h-clique"; "CoreExact"; "CoreApp" ] ~rows)
    [ "ca_hepth"; "as_caida" ]

(* ---- Figures 13/14: random graphs ---- *)

let fig13 () =
  H.section "Figure 13 — exact algorithms on random graphs (SSCA/ER/R-MAT)";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  n=%d m=%d\n" name (G.n g) (G.m g);
      let rows =
        List.map
          (fun h ->
            let psi = P.clique h in
            [ clique_name h;
              H.show_time (exact_cell g psi);
              H.show_time (core_exact_cell g psi) ])
          hs
      in
      H.table ~header:[ "h-clique"; "Exact"; "CoreExact" ] ~rows)
    (Dsd_data.Datasets.names_of_group Dsd_data.Datasets.Random)

let fig14 () =
  H.section "Figure 14 — approximation algorithms on random graphs";
  fig8_approx_on Dsd_data.Datasets.Random

(* ---- Table 5: densities of CDS's and PDS's vs the EDS ---- *)

let tab5 () =
  H.section "Table 5 — rho_opt per pattern vs the pattern-density of the EDS";
  let patterns =
    [ P.edge; P.triangle; P.clique 4; P.clique 5; P.clique 6; P.star 2; P.diamond ]
  in
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]\n" name;
      (* The EDS once; then per pattern: rho_opt and rho(EDS, psi). *)
      let eds = (Dsd_core.Core_exact.run g P.edge).Dsd_core.Core_exact.subgraph in
      let rows =
        List.map
          (fun psi ->
            let cell =
              H.run_cell ~timeout:(3. *. !H.default_timeout) (fun () ->
                  let opt =
                    if psi.P.kind = P.Clique then
                      (Dsd_core.Core_exact.run g psi).Dsd_core.Core_exact.subgraph
                    else
                      (Dsd_core.Core_pexact.run g psi).Dsd_core.Core_exact.subgraph
                  in
                  let on_eds =
                    (Dsd_core.Density.of_vertices g psi eds.D.vertices).D.density
                  in
                  Printf.sprintf "%.3f %.3f" opt.D.density on_eds)
            in
            match cell with
            | H.Ok s ->
              (match String.split_on_char ' ' (String.trim s) with
               | [ a; b ] -> [ psi.P.name; a; b ]
               | _ -> [ psi.P.name; String.trim s; "-" ])
            | other -> [ psi.P.name; H.show_payload other; "-" ])
          patterns
      in
      H.table ~header:[ "pattern"; "rho_opt"; "rho(EDS,Psi)" ] ~rows)
    [ "sdblp"; "yeast"; "netscience"; "as733" ]

(* ---- Figure 15: exact PDS algorithms ---- *)

let fig15 () =
  H.section "Figure 15 — exact PDS algorithms (PExact vs CorePExact), Fig. 7 patterns";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]\n" name;
      let rows =
        List.map
          (fun psi ->
            [ psi.P.name;
              H.show_time
                (H.run_cell (fun () ->
                     time_of (fun () -> ignore (Dsd_core.Pexact.run g psi))));
              H.show_time
                (H.run_cell (fun () ->
                     time_of (fun () -> ignore (Dsd_core.Core_pexact.run g psi)))) ])
          P.figure7
      in
      H.table ~header:[ "pattern"; "PExact"; "CorePExact" ] ~rows)
    [ "as733"; "ca_hepth" ]

(* ---- Figure 16: approximation PDS algorithms ---- *)

let fig16 () =
  H.section "Figure 16 — approximation PDS algorithms, Fig. 7 patterns";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  n=%d m=%d\n" name (G.n g) (G.m g);
      let rows =
        List.map
          (fun psi ->
            [ psi.P.name;
              H.show_time
                (H.run_cell (fun () ->
                     time_of (fun () -> ignore (Dsd_core.Peel_app.run g psi))));
              H.show_time
                (H.run_cell (fun () ->
                     time_of (fun () -> ignore (Dsd_core.Inc_app.run g psi))));
              H.show_time
                (H.run_cell (fun () ->
                     time_of (fun () -> ignore (Dsd_core.Core_app.run g psi)))) ])
          P.figure7
      in
      H.table ~header:[ "pattern"; "PeelApp"; "IncApp"; "CoreApp" ] ~rows)
    [ "ca_hepth"; "as_caida" ]

(* ---- Figure 17: DBLP case study ---- *)

let fig17 () =
  H.section "Figure 17 — case study: S-DBLP PDS for triangle vs 2-star";
  let g = dataset "sdblp" in
  let describe label psi =
    let sg =
      if psi.P.kind = P.Clique then
        (Dsd_core.Core_exact.run g psi).Dsd_core.Core_exact.subgraph
      else (Dsd_core.Core_pexact.run g psi).Dsd_core.Core_exact.subgraph
    in
    let sub, _ = G.induced g sg.D.vertices in
    Printf.printf
      "%-8s PDS: density %.2f, %d authors, %d internal edges (%.0f%% of all pairs), max degree %d\n"
      label sg.D.density (Array.length sg.D.vertices) (G.m sub)
      (100. *. float_of_int (G.m sub)
       /. float_of_int (max 1 (G.n sub * (G.n sub - 1) / 2)))
      (G.max_degree sub)
  in
  describe "triangle" P.triangle;
  describe "2-star" (P.star 2)

(* ---- Figure 20 (appendix): extra datasets ---- *)

let fig20 () =
  H.section "Figure 20 — approximation CDS algorithms on extra datasets";
  fig8_approx_on Dsd_data.Datasets.Extra

(* ---- Figure 21 (appendix): yeast PDS per motif ---- *)

let fig21 () =
  H.section "Figure 21 — yeast PDS per motif (functional classes)";
  let g = dataset "yeast" in
  let rows =
    List.map
      (fun (label, psi) ->
        let cell =
          H.run_cell ~timeout:(3. *. !H.default_timeout) (fun () ->
              let sg =
                if psi.P.kind = P.Clique then
                  (Dsd_core.Core_exact.run g psi).Dsd_core.Core_exact.subgraph
                else (Dsd_core.Core_pexact.run g psi).Dsd_core.Core_exact.subgraph
              in
              Printf.sprintf "%.3f %d" sg.D.density (Array.length sg.D.vertices))
        in
        match cell with
        | H.Ok s ->
          (match String.split_on_char ' ' (String.trim s) with
           | [ d; size ] -> [ label; d; size ]
           | _ -> [ label; String.trim s; "-" ])
        | other -> [ label; H.show_payload other; "-" ])
      [ ("edge", P.edge); ("c3-star", P.c3_star);
        ("2-triangle", P.two_triangle); ("4-clique", P.clique 4) ]
  in
  H.table ~header:[ "motif"; "PDS density"; "PDS size" ] ~rows

(* ---- Section 6.3: query-vertex CDS variant ---- *)

let sec63 () =
  H.section "Section 6.3 — query-vertex CDS: core-located vs naive binary search";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  (query = one random vertex of the kmax-core)\n" name;
      let rows =
        List.map
          (fun h ->
            let psi = P.clique h in
            let cell which =
              H.run_cell (fun () ->
                  let decomp =
                    Dsd_core.Clique_core.decompose ~track_density:false g psi
                  in
                  let core = Dsd_core.Clique_core.kmax_core decomp in
                  if Array.length core = 0 then "n/a"
                  else begin
                    let query = [| core.(0) |] in
                    time_of (fun () ->
                        ignore
                          (match which with
                           | `Core -> Dsd_core.Query_dsd.run g psi ~query
                           | `Naive -> Dsd_core.Query_dsd.run_naive g psi ~query))
                  end)
            in
            [ clique_name h; H.show_time (cell `Naive); H.show_time (cell `Core) ])
          [ 2; 3; 4 ]
      in
      H.table ~header:[ "h-clique"; "naive [65]"; "core-located" ] ~rows)
    [ "as733"; "ca_hepth" ]

(* ---- ablation: construct+ grouping in CorePExact ---- *)

let abl_grouping () =
  H.section "Ablation — construct+ instance grouping in the exact PDS networks";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  (time and largest network built)\n" name;
      let rows =
        List.map
          (fun psi ->
            let cell grouped =
              H.run_cell (fun () ->
                  let r, t =
                    H.timed (fun () -> Dsd_core.Core_exact.run ~grouped
                                ~family:(if grouped then Dsd_core.Flow_build.Pds_grouped
                                         else Dsd_core.Flow_build.Pds)
                                g psi)
                  in
                  let nodes =
                    List.fold_left max 0 r.Dsd_core.Core_exact.stats.network_nodes
                  in
                  Printf.sprintf "%.3fs/%d nodes" t nodes)
            in
            [ psi.P.name; H.show_payload (cell false); H.show_payload (cell true) ])
          [ P.star 2; P.c3_star; P.diamond; P.two_triangle ]
      in
      H.table ~header:[ "pattern"; "ungrouped (PExact net)"; "grouped (construct+)" ] ~rows)
    [ "as733" ]

(* ---- ablation: CoreApp initial window ---- *)

let abl_window () =
  H.section "Ablation — CoreApp initial window size";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]\n" name;
      let rows =
        List.map
          (fun w ->
            let cell =
              H.run_cell (fun () ->
                  let r, t =
                    H.timed (fun () ->
                        Dsd_core.Core_app.run ~initial_window:w g P.triangle)
                  in
                  Printf.sprintf "%.3fs (%d rounds, final |W|=%d)" t
                    r.Dsd_core.Core_app.rounds r.Dsd_core.Core_app.final_window)
            in
            [ string_of_int w; H.show_payload cell ])
          [ 4; 16; 64; 256; 4096 ]
      in
      H.table ~header:[ "initial |W|"; "triangle CoreApp" ] ~rows)
    [ "as_caida"; "dblp_s" ]

(* ---- extensions: Greedy++, streaming, parallel counting, truss ---- *)

let ext_greedy () =
  H.section "Extension — Greedy++ rounds vs density (PeelApp = 1 round)";
  List.iter
    (fun (name, psi) ->
      let g = dataset name in
      Printf.printf "\n[%s, %s]  exact rho_opt from CoreExact\n" name psi.P.name;
      match
        guarded_float (fun () ->
            (Dsd_core.Core_exact.run g psi).Dsd_core.Core_exact.subgraph.D.density)
      with
      | None -> print_endline "  (exact reference timed out; section skipped)"
      | Some opt ->
      let rows =
        List.map
          (fun rounds ->
            let cell =
              H.run_cell (fun () ->
                  let r, t =
                    H.timed (fun () -> Dsd_core.Greedy_pp.run ~rounds g psi)
                  in
                  Printf.sprintf "%.4f %.3f"
                    (r.Dsd_core.Greedy_pp.subgraph.D.density /. max 1e-9 opt)
                    t)
            in
            match cell with
            | H.Ok s ->
              (match String.split_on_char ' ' (String.trim s) with
               | [ ratio; t ] -> [ string_of_int rounds; ratio; t ^ "s" ]
               | _ -> [ string_of_int rounds; String.trim s; "-" ])
            | other -> [ string_of_int rounds; H.show_payload other; "-" ])
          [ 1; 2; 4; 8; 16 ]
      in
      H.table ~header:[ "rounds"; "density/rho_opt"; "time" ] ~rows)
    [ ("ca_hepth", P.edge); ("as_caida", P.triangle) ]

let ext_streaming () =
  H.section "Extension — Bahmani streaming approximation: eps sweep";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  (edge density; exact rho_opt from CoreExact)\n" name;
      match
        guarded_float (fun () ->
            (Dsd_core.Core_exact.run g P.edge).Dsd_core.Core_exact.subgraph.D.density)
      with
      | None -> print_endline "  (exact reference timed out; section skipped)"
      | Some opt ->
      let rows =
        List.map
          (fun eps ->
            let cell =
              H.run_cell (fun () ->
                  let r, t =
                    H.timed (fun () -> Dsd_core.Streaming.run ~eps g P.edge)
                  in
                  Printf.sprintf "%.4f %d %.3f"
                    (r.Dsd_core.Streaming.subgraph.D.density /. max 1e-9 opt)
                    r.Dsd_core.Streaming.passes t)
            in
            match cell with
            | H.Ok s ->
              (match String.split_on_char ' ' (String.trim s) with
               | [ ratio; passes; t ] ->
                 [ Printf.sprintf "%.2f" eps; ratio; passes; t ^ "s" ]
               | _ -> [ Printf.sprintf "%.2f" eps; String.trim s; "-"; "-" ])
            | other -> [ Printf.sprintf "%.2f" eps; H.show_payload other; "-"; "-" ])
          [ 0.01; 0.1; 0.5; 1.0 ]
      in
      H.table ~header:[ "eps"; "density/rho_opt"; "passes"; "time" ] ~rows)
    [ "ca_hepth"; "as_caida" ]

let ext_parallel () =
  H.section "Extension — multicore clique counting (Section 6.3 parallelisability)";
  let g = dataset "dblp_s" in
  Printf.printf "\n[dblp_s]  4-clique counting, %d cores recommended\n"
    (Dsd_clique.Parallel.recommended_domains ());
  let rows =
    List.map
      (fun domains ->
        let cell =
          H.run_cell ~timeout:(3. *. !H.default_timeout) (fun () ->
              time_of (fun () ->
                  ignore (Dsd_clique.Parallel.count g ~h:4 ~domains)))
        in
        [ string_of_int domains; H.show_time cell ])
      [ 1; 2; 4; 8 ]
  in
  H.table ~header:[ "domains"; "time" ] ~rows

let ext_truss () =
  H.section "Extension — k-truss vs densest subgraph (related-work models)";
  let rows =
    List.map
      (fun name ->
        let g = dataset name in
        let cell =
          H.run_cell ~timeout:(3. *. !H.default_timeout) (fun () ->
              let t = Dsd_core.Truss.decompose g in
              let truss_sg = Dsd_core.Truss.max_truss_subgraph g t in
              let eds =
                (Dsd_core.Core_exact.run g P.edge).Dsd_core.Core_exact.subgraph
              in
              Printf.sprintf "%d %d %.3f %d %.3f"
                (Dsd_core.Truss.kmax t)
                (Array.length truss_sg.D.vertices)
                truss_sg.D.density
                (Array.length eds.D.vertices)
                eds.D.density)
        in
        match cell with
        | H.Ok s -> name :: String.split_on_char ' ' (String.trim s)
        | other -> [ name; H.show_payload other; "-"; "-"; "-"; "-" ])
      [ "yeast"; "netscience"; "as733"; "ca_hepth" ]
  in
  H.table
    ~header:[ "dataset"; "truss kmax"; "|truss|"; "truss density"; "|EDS|"; "rho_opt" ]
    ~rows

(* ---- future work: sampled approximation, size constraints ---- *)

let ext_sampled () =
  H.section
    "Future work — [49]-style sampling with core restriction (triangle density)";
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  exact rho_opt from CoreExact\n" name;
      match
        guarded_float (fun () ->
            (Dsd_core.Core_exact.run g P.triangle).Dsd_core.Core_exact.subgraph.D.density)
      with
      | None -> print_endline "  (exact reference timed out; section skipped)"
      | Some opt ->
      let rows =
        List.concat_map
          (fun p ->
            List.map
              (fun core_first ->
                let cell =
                  H.run_cell (fun () ->
                      let r, t =
                        H.timed (fun () ->
                            Dsd_core.Sampled_app.run ~core_first ~seed:42 ~p g
                              P.triangle)
                      in
                      Printf.sprintf "%.4f %d/%d %.3f"
                        (r.Dsd_core.Sampled_app.subgraph.D.density /. max 1e-9 opt)
                        r.Dsd_core.Sampled_app.sampled_instances
                        r.Dsd_core.Sampled_app.total_instances t)
                in
                let tail =
                  match cell with
                  | H.Ok s ->
                    (match String.split_on_char ' ' (String.trim s) with
                     | [ ratio; insts; t ] -> [ ratio; insts; t ^ "s" ]
                     | _ -> [ String.trim s; "-"; "-" ])
                  | other -> [ H.show_payload other; "-"; "-" ]
                in
                [ Printf.sprintf "%.2f" p;
                  (if core_first then "core" else "full") ]
                @ tail)
              [ false; true ])
          [ 1.0; 0.3; 0.1 ]
      in
      H.table
        ~header:[ "p"; "region"; "density/rho_opt"; "sampled/total"; "time" ]
        ~rows)
    [ "ca_hepth" ]

let ext_atleastk () =
  H.section "Future work — densest-at-least-k (size-constrained DSD)";
  let g = dataset "netscience" in
  Printf.printf "\n[netscience]  (edge density; unconstrained rho_opt first)\n";
  let rows =
    List.map
      (fun k ->
        let cell =
          H.run_cell (fun () ->
              let r = Dsd_core.At_least_k.run g P.edge ~k in
              Printf.sprintf "%.4f %d"
                r.Dsd_core.At_least_k.subgraph.D.density
                (Array.length r.Dsd_core.At_least_k.subgraph.D.vertices))
        in
        match cell with
        | H.Ok s ->
          (match String.split_on_char ' ' (String.trim s) with
           | [ d; size ] -> [ string_of_int k; d; size ]
           | _ -> [ string_of_int k; String.trim s; "-" ])
        | other -> [ string_of_int k; H.show_payload other; "-" ])
      [ 1; 50; 200; 500; 1000 ]
  in
  H.table ~header:[ "k (min size)"; "density"; "|subgraph|" ] ~rows

(* ---- extension: directed densest subgraph ---- *)

let ext_directed () =
  H.section "Extension — directed densest subgraph (Kannan-Vinay density)";
  Printf.printf
    "\n(directed ER graphs; exact is O(n^2) flows so only the small one)\n";
  let rows =
    List.map
      (fun (n, p, with_exact) ->
        let g = Dsd_data.Gen.er_directed ~seed:77 ~n ~p in
        let approx_cell =
          H.run_cell (fun () ->
              let r, t = H.timed (fun () -> Dsd_core.Directed.approx ~eps:0.2 g) in
              Printf.sprintf "%.4f %.3f" r.Dsd_core.Directed.density t)
        in
        let exact_cell =
          if with_exact then
            H.run_cell ~timeout:(6. *. !H.default_timeout) (fun () ->
                let r, t = H.timed (fun () -> Dsd_core.Directed.exact g) in
                Printf.sprintf "%.4f %.3f" r.Dsd_core.Directed.density t)
          else H.Ok "- -"
        in
        let split c =
          match c with
          | H.Ok s ->
            (match String.split_on_char ' ' (String.trim s) with
             | [ d; t ] -> [ d; t ]
             | _ -> [ String.trim s; "-" ])
          | other -> [ H.show_payload other; "-" ]
        in
        [ Printf.sprintf "n=%d p=%.3f (m=%d)" n p (Dsd_graph.Digraph.m g) ]
        @ split exact_cell @ split approx_cell)
      [ (40, 0.08, true); (400, 0.02, false); (2000, 0.005, false) ]
  in
  H.table
    ~header:[ "digraph"; "exact rho"; "exact s"; "approx rho"; "approx s" ]
    ~rows

(* ---- bechamel micro-benchmarks of the primitives ---- *)

let micro () =
  H.section "Micro — bechamel benchmarks of core primitives";
  let open Bechamel in
  let g = dataset "as733" in
  let gc = dataset "ca_hepth" in
  let tests =
    Test.make_grouped ~name:"primitives" ~fmt:"%s %s"
      [
        Test.make ~name:"kcore-decomp(as733)"
          (Staged.stage (fun () -> ignore (Dsd_core.Kcore.decompose g)));
        Test.make ~name:"triangle-list(as733)"
          (Staged.stage (fun () -> ignore (Dsd_clique.Kclist.count g ~h:3)));
        Test.make ~name:"tri-core-decomp(as733)"
          (Staged.stage (fun () ->
               ignore
                 (Dsd_core.Clique_core.decompose ~track_density:false g P.triangle)));
        Test.make ~name:"eds-mincut(ca_hepth)"
          (Staged.stage (fun () ->
               let net = Dsd_core.Flow_build.eds_network gc ~alpha:2.0 in
               ignore (Dsd_core.Flow_build.solve net)));
      ]
  in
  let benchmark () =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg [ instance ] tests in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
    |> List.iter (fun (name, v) ->
           match Analyze.OLS.estimates v with
           | Some [ est ] ->
             Printf.printf "  %-28s %12.1f ns/run\n" name est
           | _ -> Printf.printf "  %-28s (no estimate)\n" name)
  in
  benchmark ()

(* ---- per-phase observability breakdown ---- *)

(* Not a paper figure: the Dsd_obs span/counter fields future
   BENCH_*.json entries carry.  One row per dataset x algorithm, the
   payload being "<secs> decompose_s=... flow_s=... <counters>". *)
let phases () =
  H.section
    "Per-phase breakdown — Dsd_obs spans/counters (decompose/enumerate/\
     build/flow)";
  let algos =
    [ ("CoreExact", fun g h -> ignore (Dsd_core.Core_exact.run g (P.clique h)));
      ("Exact", fun g h -> ignore (Dsd_core.Exact.run g (P.clique h)));
      ("PeelApp", fun g h -> ignore (Dsd_core.Peel_app.run g (P.clique h))) ]
  in
  List.iter
    (fun h ->
      Printf.printf "\n[%s]\n" (clique_name h);
      let rows =
        List.concat_map
          (fun name ->
            let g = dataset name in
            List.map
              (fun (algo, run) ->
                let cell = H.run_cell (fun () -> H.timed_obs (fun () -> run g h)) in
                [ name; algo; H.show_payload cell ])
              algos)
          [ "as733"; "ca_hepth" ]
      in
      H.table ~header:[ "dataset"; "algorithm"; "time + per-phase fields" ] ~rows)
    [ 2; 3 ]

(* ---- parallel: domain-pool speedup vs domains (BENCH_parallel.json) ---- *)

(* Speedup of the pooled parallel phases — clique-core decomposition
   (both the frontier mode and the density-tracked peel that PeelApp
   and Pruning1 ride), clique counting, the striped per-component
   CoreExact probes, and flow-network construction — as the pool
   grows, on generated graphs.  Every row carries [cores_detected]
   (the hardware recommendation at measurement time) so the compare
   gate can tell "no speedup because the code regressed" from "no
   speedup because the box cannot physically provide one".  Results are bit-identical across pool sizes (the
   differential test suite pins that); this measures only time.  The
   measured rows also land in BENCH_parallel.json for tracking, along
   with the pool's sequential-fallback threshold: jobs smaller than
   [Pool.default_sequential_below] run inline on the calling domain,
   so undersized workloads no longer pay the fork/join tax and report
   ~1.0x instead of a slowdown.  Each cell reports the median of
   eleven interleaved repetitions to keep scheduler noise out of the
   speedup column.  In
   --smoke mode the graphs shrink so CI exercises the multi-domain
   code paths in seconds. *)
let parallel () =
  let smoke = !H.smoke in
  H.section
    (Printf.sprintf
       "Parallel — domain-pool speedup vs domains%s (hardware recommends %d)"
       (if smoke then " [smoke]" else "")
       (Dsd_clique.Parallel.recommended_domains ()));
  let domains_list = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let graphs =
    if smoke then
      [ ("er_1k", Dsd_data.Gen.er_gnp ~seed:7 ~n:1_000 ~p:0.01) ]
    else
      [ ("ba_20k", Dsd_data.Gen.barabasi_albert ~seed:7 ~n:20_000 ~attach:6);
        ("er_20k", Dsd_data.Gen.er_gnp ~seed:11 ~n:20_000 ~p:0.0008) ]
  in
  let phases g =
    [ ("decompose_triangle",
       fun pool ->
         ignore
           (Dsd_core.Clique_core.decompose ~pool ~track_density:false g
              P.triangle));
      ("decompose_tracked_triangle",
       fun pool ->
         ignore
           (Dsd_core.Clique_core.decompose ~pool ~track_density:true g
              P.triangle));
      ("count_4clique",
       fun pool -> ignore (Dsd_clique.Parallel.count_in pool g ~h:4));
      ("core_exact_striped_triangle",
       fun pool -> ignore (Dsd_core.Core_exact.run ~pool g P.triangle));
      ("build_network_triangle",
       fun pool ->
         let instances = Dsd_core.Enumerate.instances ~pool g P.triangle in
         ignore
           (Dsd_core.Flow_build.build ~pool Dsd_core.Flow_build.Clique_flow g
              P.triangle ~instances ~alpha:1.0)) ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (gname, g) ->
      Printf.printf "\n[%s]  n=%d m=%d\n" gname (G.n g) (G.m g);
      let rows =
        List.map
          (fun (phase, run) ->
            let reps = if smoke then 1 else 11 in
            (* All domain counts timed in one forked child: the speedup
               column is a ratio of times from the same process, so
               fork-to-fork variance (CPU frequency, page cache) cannot
               masquerade as a slowdown. *)
            let cell =
              H.run_cell
                ~timeout:
                  (2. *. float_of_int reps
                  *. float_of_int (List.length domains_list)
                  *. !H.default_timeout)
                (fun () ->
                  (* Repetitions interleaved across domain counts, so
                     in-process drift (heap growth, thermal throttle)
                     hits every column equally instead of penalising
                     whichever ran last; the median per column keeps
                     one lucky-fast or unlucky-slow repetition from
                     skewing the speedup ratio the way min/max would. *)
                  let ncols = List.length domains_list in
                  let samples = Array.make_matrix ncols reps infinity in
                  for r = 0 to reps - 1 do
                    List.iteri
                      (fun i domains ->
                        (* Level the heap before each sample so major
                           collections triggered by earlier columns'
                           garbage don't land in later columns' time. *)
                        Gc.full_major ();
                        samples.(i).(r) <-
                          snd
                            (H.timed (fun () ->
                                 Dsd_util.Pool.with_pool domains (fun pool ->
                                     run pool))))
                      domains_list
                  done;
                  String.concat " "
                    (List.map
                       (fun col ->
                         Array.sort compare samples.(col);
                         Printf.sprintf "%f" samples.(col).(reps / 2))
                       (List.init ncols (fun i -> i))))
            in
            let times =
              match cell with
              | H.Ok s ->
                let parts = String.split_on_char ' ' (String.trim s) in
                if List.length parts = List.length domains_list then
                  List.map (fun x -> float_of_string_opt x) parts
                else List.map (fun _ -> None) domains_list
              | _ -> List.map (fun _ -> None) domains_list
            in
            let base = match times with Some b :: _ -> Some b | _ -> None in
            let cells =
              List.map2
                (fun domains time_s ->
                  let speedup =
                    match (base, time_s) with
                    | Some b, Some t when t > 0. -> Some (b /. t)
                    | _ -> None
                  in
                  json_rows :=
                    Printf.sprintf
                      "    {\"graph\": \"%s\", \"n\": %d, \"m\": %d, \
                       \"phase\": \"%s\", \"domains\": %d, \
                       \"cores_detected\": %d, \"time_s\": %s, \
                       \"speedup\": %s}"
                      gname (G.n g) (G.m g) phase domains
                      (Domain.recommended_domain_count ())
                      (match time_s with
                       | Some t -> Printf.sprintf "%.6f" t
                       | None -> "null")
                      (match speedup with
                       | Some s -> Printf.sprintf "%.3f" s
                       | None -> "null")
                    :: !json_rows;
                  (time_s, speedup))
                domains_list times
            in
            phase
            :: List.concat_map
                 (fun (time_s, speedup) ->
                   [ (match time_s with
                      | Some t -> Printf.sprintf "%8.3fs" t
                      | None -> H.show_payload cell);
                     (match speedup with
                      | Some s -> Printf.sprintf "%.2fx" s
                      | None -> "-") ])
                 cells)
          (phases g)
      in
      let header =
        "phase"
        :: List.concat_map
             (fun d ->
               [ Printf.sprintf "%dd time" d; Printf.sprintf "%dd spd" d ])
             domains_list
      in
      H.table ~header ~rows)
    graphs;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"parallel\",\n  \"smoke\": %b,\n  \
     \"recommended_domains\": %d,\n  \"sequential_below\": %d,\n  \
     \"rows\": [\n%s\n  ]\n}\n"
    smoke
    (Dsd_clique.Parallel.recommended_domains ())
    Dsd_util.Pool.default_sequential_below
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "\nwrote BENCH_parallel.json"

(* ---- retarget: network builds vs O(V) re-alphas (BENCH_retarget.json) ---- *)

(* How much of the binary search the prepared/retarget path saves: per
   dataset x pattern, the iteration count against how many networks
   were actually constructed (flow_networks_built) vs merely
   re-capacitated (flow_retargets), plus the span totals of the two
   phases.  builds < iterations is the point of the tentpole: Exact
   always builds once, CoreExact once per component arena plus
   Pruning-3 rebuilds. *)
let retarget () =
  let smoke = !H.smoke in
  H.section
    (Printf.sprintf "Retarget — flow-network builds vs O(V) re-alphas%s"
       (if smoke then " [smoke]" else ""));
  let datasets =
    if smoke then [ "yeast" ] else [ "yeast"; "netscience"; "as733"; "ca_hepth" ]
  in
  let cases =
    [ ("Exact", "triangle",
       fun g -> (Dsd_core.Exact.run g P.triangle).Dsd_core.Exact.stats.Dsd_core.Exact.iterations);
      ("CoreExact", "triangle",
       fun g -> (Dsd_core.Core_exact.run g P.triangle).Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations);
      ("CorePExact", "diamond",
       fun g -> (Dsd_core.Core_pexact.run g P.diamond).Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations) ]
  in
  let json_rows = ref [] in
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  n=%d m=%d\n" name (G.n g) (G.m g);
      let rows =
        List.map
          (fun (algo, pname, run) ->
            let cell =
              H.run_cell ~timeout:(3. *. !H.default_timeout) (fun () ->
                  let iters, elapsed =
                    H.timed (fun () ->
                        Dsd_obs.Control.with_recording (fun () -> run g))
                  in
                  Printf.sprintf "%d %d %d %.6f %.6f %.6f" iters
                    (Dsd_obs.Counter.get Dsd_obs.Counter.Flow_networks_built)
                    (Dsd_obs.Counter.get Dsd_obs.Counter.Flow_retargets)
                    elapsed
                    (Dsd_obs.Span.total_s Dsd_obs.Phase.build_network)
                    (Dsd_obs.Span.total_s Dsd_obs.Phase.retarget))
            in
            match cell with
            | H.Ok s ->
              (match String.split_on_char ' ' (String.trim s) with
               | [ it; b; rt; el; bs; rs ] ->
                 json_rows :=
                   Printf.sprintf
                     "    {\"dataset\": \"%s\", \"algorithm\": \"%s\", \
                      \"pattern\": \"%s\", \"iterations\": %s, \
                      \"flow_networks_built\": %s, \"flow_retargets\": %s, \
                      \"elapsed_s\": %s, \"build_s\": %s, \"retarget_s\": %s}"
                     name algo pname it b rt el bs rs
                   :: !json_rows;
                 [ algo; pname; it; b; rt; el ^ "s"; bs ^ "s"; rs ^ "s" ]
               | _ -> [ algo; pname; String.trim s; "-"; "-"; "-"; "-"; "-" ])
            | other ->
              [ algo; pname; H.show_payload other; "-"; "-"; "-"; "-"; "-" ])
          cases
      in
      H.table
        ~header:
          [ "algorithm"; "pattern"; "iters"; "builds"; "retargets"; "total";
            "build_s"; "retarget_s" ]
        ~rows)
    datasets;
  let oc = open_out "BENCH_retarget.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"retarget\",\n  \"smoke\": %b,\n  \"rows\": [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "\nwrote BENCH_retarget.json"

(* ---- warmstart: warm vs reset flow across probes (BENCH_warmstart.json) ---- *)

(* What warm-starting the parametric max-flow buys on top of retarget:
   the same datasets and algorithms run twice, once zeroing the flow at
   every binary-search probe (--no-warm-flow semantics) and once keeping
   the previous probe's flow and repairing feasibility.  Both searches
   visit identical alphas and return bit-identical densities, so the
   comparison isolates the solver work: total augmenting paths and
   elapsed time per mode, plus the warm-only counters (warm starts and
   drained excess).  Elapsed is the best of three repetitions; the
   counters are deterministic so any repetition reports the same
   values.  bench/compare.ml gates on the resulting JSON: warm must
   never need more augmenting paths than reset. *)
let warmstart () =
  let smoke = !H.smoke in
  H.section
    (Printf.sprintf "Warmstart — warm vs reset flow across probes%s"
       (if smoke then " [smoke]" else ""));
  let datasets =
    if smoke then [ "yeast" ] else [ "yeast"; "netscience"; "as733"; "ca_hepth" ]
  in
  let cases =
    [ ("Exact", "triangle",
       fun ~warm g ->
         (Dsd_core.Exact.run ~warm g P.triangle).Dsd_core.Exact.stats
           .Dsd_core.Exact.iterations);
      ("CoreExact", "triangle",
       fun ~warm g ->
         (Dsd_core.Core_exact.run ~warm g P.triangle).Dsd_core.Core_exact.stats
           .Dsd_core.Core_exact.iterations);
      ("CorePExact", "diamond",
       fun ~warm g ->
         (Dsd_core.Core_pexact.run ~warm g P.diamond).Dsd_core.Core_exact.stats
           .Dsd_core.Core_exact.iterations) ]
  in
  let reps = if smoke then 1 else 3 in
  (* One forked cell per mode: payload is
     "iters augmentations warm_starts drained elapsed". *)
  let run_mode run ~warm g =
    H.run_cell ~timeout:(3. *. float_of_int reps *. !H.default_timeout)
      (fun () ->
        let best = ref infinity in
        let counters = ref "" in
        for _ = 1 to reps do
          let iters, elapsed =
            H.timed (fun () ->
                Dsd_obs.Control.with_recording (fun () -> run ~warm g))
          in
          if elapsed < !best then best := elapsed;
          counters :=
            Printf.sprintf "%d %d %d %d" iters
              (Dsd_obs.Counter.get Dsd_obs.Counter.Flow_augmentations)
              (Dsd_obs.Counter.get Dsd_obs.Counter.Flow_warm_starts)
              (Dsd_obs.Counter.get Dsd_obs.Counter.Flow_excess_drained)
        done;
        Printf.sprintf "%s %.6f" !counters !best)
  in
  let parse cell =
    match cell with
    | H.Ok s ->
      (match String.split_on_char ' ' (String.trim s) with
       | [ it; aug; ws; dr; el ] -> Some (it, aug, ws, dr, el)
       | _ -> None)
    | _ -> None
  in
  let json_rows = ref [] in
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  n=%d m=%d\n" name (G.n g) (G.m g);
      let rows =
        List.map
          (fun (algo, pname, run) ->
            let reset = run_mode run ~warm:false g in
            let warm = run_mode run ~warm:true g in
            match (parse reset, parse warm) with
            | Some (it, raug, _, _, rel), Some (_, waug, ws, dr, wel) ->
              json_rows :=
                Printf.sprintf
                  "    {\"dataset\": \"%s\", \"algorithm\": \"%s\", \
                   \"pattern\": \"%s\", \"iterations\": %s, \
                   \"reset_augmenting_paths\": %s, \"reset_elapsed_s\": %s, \
                   \"warm_augmenting_paths\": %s, \"warm_elapsed_s\": %s, \
                   \"flow_warm_starts\": %s, \"flow_excess_drained\": %s}"
                  name algo pname it raug rel waug wel ws dr
                :: !json_rows;
              [ algo; pname; it; raug; waug; ws; dr; rel ^ "s"; wel ^ "s" ]
            | _ ->
              [ algo; pname; H.show_payload reset; H.show_payload warm; "-";
                "-"; "-"; "-"; "-" ])
          cases
      in
      H.table
        ~header:
          [ "algorithm"; "pattern"; "iters"; "reset aug"; "warm aug";
            "warm starts"; "drained"; "reset_s"; "warm_s" ]
        ~rows)
    datasets;
  let oc = open_out "BENCH_warmstart.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"warmstart\",\n  \"smoke\": %b,\n  \"rows\": \
     [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "\nwrote BENCH_warmstart.json"

(* ---- serve: hot-result cache latency over a real socket (BENCH_serve.json) ---- *)

(* What the serving layer's caches buy for a repeated request.  An
   in-process `dsd serve` daemon is started on a Unix-domain socket;
   each endpoint is asked the same question three times over the wire:

   - cold: nothing prepared — pays enumeration / decomposition /
     network construction plus the solve;
   - prepared: the result LRU is cleared but the per-(graph, psi)
     prepared state (instances, decomposition, Exact's flow arena)
     survives — what a *similar* request pays;
   - cached: the identical request again — answered from the result
     LRU without touching a solver.

   All three answers are bit-identical (the differential suite and the
   serve-equals-api relation pin that); this measures only latency.
   bench/compare.ml gates cached_speedup >= 5 on the JSON. *)
let serve () =
  let smoke = !H.smoke in
  H.section
    (Printf.sprintf
       "Serve — cold vs prepared vs cached request latency%s"
       (if smoke then " [smoke]" else ""));
  let datasets =
    if smoke then [ "yeast" ] else [ "yeast"; "netscience"; "as733"; "ca_hepth" ]
  in
  let endpoints name =
    [ ("density/coreexact",
       Dsd_serve.Protocol.Density
         { graph = name; psi = "triangle"; algorithm = "coreexact" });
      ("cds/exact",
       Dsd_serve.Protocol.Cds
         { graph = name; psi = "triangle"; algorithm = "exact" });
      ("decompose",
       Dsd_serve.Protocol.Decompose { graph = name; psi = "triangle" }) ]
  in
  let json_rows = ref [] in
  List.iter
    (fun name ->
      let g = dataset name in
      Printf.printf "\n[%s]  n=%d m=%d\n" name (G.n g) (G.m g);
      let socket =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dsd-bench-%d.sock" (Unix.getpid ()))
      in
      let addr = Dsd_serve.Server.Unix_domain socket in
      let rows =
        List.map
          (fun (endpoint, req) ->
            (* A fresh daemon per endpoint so "cold" really is cold:
               no prepared state left over from the previous row. *)
            let state = Dsd_serve.State.create ~max_cached:64 [ (name, g) ] in
            let server = Dsd_serve.Server.start ~state addr in
            let client = Dsd_serve.Client.connect addr in
            let ask () =
              snd (H.timed (fun () ->
                  ignore (Dsd_serve.Client.call client req)))
            in
            let cold = ask () in
            (* second identical request: straight from the result LRU *)
            let cached = ask () in
            (* median of repeats for a stable cached figure *)
            let reps = if smoke then 3 else 9 in
            let samples = Array.init reps (fun _ -> ask ()) in
            Array.sort compare samples;
            let cached = min cached samples.(reps / 2) in
            (* same question to a cleared LRU: prepared state only *)
            Dsd_serve.State.clear_results state;
            let prepared = ask () in
            Dsd_serve.Client.close client;
            ignore (Dsd_serve.Client.once addr Dsd_serve.Protocol.Shutdown);
            Dsd_serve.Server.join server;
            let speedup a b = if b > 0. then a /. b else infinity in
            json_rows :=
              Printf.sprintf
                "    {\"dataset\": \"%s\", \"endpoint\": \"%s\", \
                 \"cold_s\": %.6f, \"prepared_s\": %.6f, \"cached_s\": %.6f, \
                 \"prepared_speedup\": %.3f, \"cached_speedup\": %.3f}"
                name endpoint cold prepared cached
                (speedup cold prepared) (speedup cold cached)
              :: !json_rows;
            [ endpoint;
              Printf.sprintf "%.4fs" cold;
              Printf.sprintf "%.4fs" prepared;
              Printf.sprintf "%.6fs" cached;
              Printf.sprintf "%.1fx" (speedup cold prepared);
              Printf.sprintf "%.1fx" (speedup cold cached) ])
          (endpoints name)
      in
      H.table
        ~header:
          [ "endpoint"; "cold"; "prepared"; "cached"; "prep spd"; "cache spd" ]
        ~rows)
    datasets;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"serve\",\n  \"smoke\": %b,\n  \"rows\": [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "\nwrote BENCH_serve.json"

(* ---- incremental: patch vs recompute on a sliding window (BENCH_incremental.json) ---- *)

(* What the incremental subsystem buys on an edge stream.  A sliding
   window of W edges advances by B edges per batch (B inserts of the
   next stream edges plus B deletes of the oldest, interleaved the way
   `dsd watch` applies them); after every batch the exact CDS is
   re-answered twice — by patching the live session ({!Inc_dsd.apply}
   + warm {!query}) and by a from-scratch rebuild ({!Inc_dsd.create}
   on the current snapshot + query).  Answers are asserted
   bit-identical per batch (the differential battery and the
   delta-equals-rebuild relation pin the same property); the JSON row
   records the summed times per mode.  bench/compare.ml gates
   incremental_s <= 0.5 * recompute_s and mismatches = 0. *)
let incremental () =
  let smoke = !H.smoke in
  H.section
    (Printf.sprintf "Incremental — patch vs recompute on a sliding window%s"
       (if smoke then " [smoke]" else ""));
  let cases =
    if smoke then
      [ ("ba_500",
         Dsd_data.Gen.barabasi_albert ~seed:9 ~n:500 ~attach:6,
         "triangle", P.triangle, 4, 5) ]
    else
      [ ("ba_2k",
         Dsd_data.Gen.barabasi_albert ~seed:7 ~n:2_000 ~attach:6,
         "triangle", P.triangle, 8, 12);
        ("ba_2k",
         Dsd_data.Gen.barabasi_albert ~seed:7 ~n:2_000 ~attach:6,
         "5-clique", P.clique 5, 8, 12);
        ("ba_5k",
         Dsd_data.Gen.barabasi_albert ~seed:5 ~n:5_000 ~attach:4,
         "4-clique", P.clique 4, 8, 12) ]
  in
  let json_rows = ref [] in
  let rows =
    List.map
      (fun (gname, g, pname, psi, batch_ops, batches) ->
        let n = G.n g in
        (* Both modes timed in one forked child so the speedup column
           is a ratio of same-process times. *)
        let cell =
          H.run_cell
            ~timeout:(4. *. float_of_int batches *. !H.default_timeout)
            (fun () ->
              let stream = G.edges g in
              let total = Array.length stream in
              let window = total * 3 / 5 in
              let session =
                Dsd_core.Inc_dsd.create
                  (G.of_edges ~n (Array.sub stream 0 window)) psi
              in
              (* Answer the initial window before the stream starts —
                 what `dsd watch` does — so the per-batch incremental
                 column measures warm queries only. *)
              ignore (Dsd_core.Inc_dsd.density session);
              let inc_t = ref 0. and rec_t = ref 0. in
              let mismatches = ref 0 in
              let head = ref window and tail = ref 0 in
              for _ = 1 to batches do
                let b = min batch_ops (total - !head) in
                let ops =
                  Array.init (2 * b) (fun i ->
                      if i mod 2 = 0 then
                        let u, v = stream.(!tail + (i / 2)) in
                        Dsd_graph.Dynamic.Remove (u, v)
                      else
                        let u, v = stream.(!head + (i / 2)) in
                        Dsd_graph.Dynamic.Add (u, v))
                in
                head := !head + b;
                tail := !tail + b;
                let d_inc, dt =
                  H.timed (fun () ->
                      ignore (Dsd_core.Inc_dsd.apply session ops);
                      Dsd_core.Inc_dsd.density session)
                in
                inc_t := !inc_t +. dt;
                let d_rec, dt =
                  H.timed (fun () ->
                      Dsd_core.Inc_dsd.density
                        (Dsd_core.Inc_dsd.create
                           (Dsd_core.Inc_dsd.graph session) psi))
                in
                rec_t := !rec_t +. dt;
                if d_inc <> d_rec then incr mismatches
              done;
              Printf.sprintf "%d %.6f %.6f %d" window !inc_t !rec_t
                !mismatches)
        in
        match cell with
        | H.Ok s ->
          (match String.split_on_char ' ' (String.trim s) with
           | [ w; inc_s; rec_s; mis ] ->
             let speedup =
               match (float_of_string_opt rec_s, float_of_string_opt inc_s) with
               | Some r, Some i when i > 0. -> Printf.sprintf "%.2f" (r /. i)
               | _ -> "null"
             in
             json_rows :=
               Printf.sprintf
                 "    {\"graph\": \"%s\", \"pattern\": \"%s\", \"n\": %d, \
                  \"window_m\": %s, \"batch_ops\": %d, \"batches\": %d, \
                  \"recompute_s\": %s, \"incremental_s\": %s, \
                  \"speedup\": %s, \"mismatches\": %s}"
                 gname pname n w batch_ops batches rec_s inc_s speedup mis
               :: !json_rows;
             [ gname; pname; w; string_of_int batches; inc_s ^ "s";
               rec_s ^ "s"; speedup ^ "x"; mis ]
           | _ -> [ gname; pname; String.trim s; "-"; "-"; "-"; "-"; "-" ])
        | other ->
          [ gname; pname; H.show_payload other; "-"; "-"; "-"; "-"; "-" ])
      cases
  in
  H.table
    ~header:
      [ "graph"; "pattern"; "window"; "batches"; "incremental"; "recompute";
        "speedup"; "mismatch" ]
    ~rows;
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"incremental\",\n  \"smoke\": %b,\n  \"rows\": \
     [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "\nwrote BENCH_incremental.json"

(* Top-k locally densest extraction: core-pruned per-component rounds
   vs whole-graph binary searches.  Planted community graphs are the
   favourable shape — each round's candidate core is one dense block,
   so the pruned searches run on tiny components while the unpruned
   mode pays full-graph min cuts every probe.  Both modes run in the
   same forked child and their regions are compared bitwise; the JSON
   is gated by bench/compare.ml (zero mismatches, pruned no slower
   than unpruned). *)
let topk () =
  let smoke = !H.smoke in
  H.section
    (Printf.sprintf "Top-k LDS — pruned vs unpruned extraction%s"
       (if smoke then " [smoke]" else ""));
  let cases =
    if smoke then
      [ ("planted_2k",
         Dsd_data.Gen.planted_clique ~seed:5 ~n:2_000 ~p:0.005 ~clique:25,
         "triangle", P.triangle, 2) ]
    else
      [ ("planted_3k",
         Dsd_data.Gen.planted_clique ~seed:5 ~n:3_000 ~p:0.004 ~clique:30,
         "triangle", P.triangle, 3);
        ("planted_3k",
         Dsd_data.Gen.planted_clique ~seed:5 ~n:3_000 ~p:0.004 ~clique:30,
         "edge", P.edge, 3);
        ("planted_pair",
         Dsd_data.Gen.disjoint_union
           (Dsd_data.Gen.planted_clique ~seed:5 ~n:1_500 ~p:0.005 ~clique:30)
           (Dsd_data.Gen.planted_clique ~seed:9 ~n:1_500 ~p:0.005 ~clique:20),
         "triangle", P.triangle, 2) ]
  in
  let json_rows = ref [] in
  let rows =
    List.map
      (fun (gname, g, pname, psi, k) ->
        let n = G.n g in
        let cell =
          H.run_cell ~timeout:(8. *. !H.default_timeout) (fun () ->
              let rp, tp =
                H.timed (fun () -> Dsd_core.Topk_lds.run ~k g psi)
              in
              let ru, tu =
                H.timed (fun () -> Dsd_core.Topk_lds.run ~prune:false ~k g psi)
              in
              let mismatches =
                if
                  List.length rp.Dsd_core.Topk_lds.regions
                  = List.length ru.Dsd_core.Topk_lds.regions
                  && List.for_all2
                       (fun (a : D.subgraph) (b : D.subgraph) ->
                         Int64.bits_of_float a.density
                         = Int64.bits_of_float b.density
                         && a.vertices = b.vertices)
                       rp.Dsd_core.Topk_lds.regions
                       ru.Dsd_core.Topk_lds.regions
                then 0
                else 1
              in
              Printf.sprintf "%d %.6f %.6f %d %d %d"
                (List.length rp.Dsd_core.Topk_lds.regions)
                tp tu rp.Dsd_core.Topk_lds.stats.iterations
                ru.Dsd_core.Topk_lds.stats.iterations mismatches)
        in
        match cell with
        | H.Ok s ->
          (match String.split_on_char ' ' (String.trim s) with
           | [ regions; pruned_s; unpruned_s; pi; ui; mis ] ->
             let speedup =
               match
                 (float_of_string_opt unpruned_s, float_of_string_opt pruned_s)
               with
               | Some u, Some p when p > 0. -> Printf.sprintf "%.2f" (u /. p)
               | _ -> "null"
             in
             json_rows :=
               Printf.sprintf
                 "    {\"graph\": \"%s\", \"pattern\": \"%s\", \"k\": %d, \
                  \"n\": %d, \"regions\": %s, \"pruned_s\": %s, \
                  \"unpruned_s\": %s, \"pruned_iterations\": %s, \
                  \"unpruned_iterations\": %s, \"speedup\": %s, \
                  \"mismatches\": %s}"
                 gname pname k n regions pruned_s unpruned_s pi ui speedup mis
               :: !json_rows;
             [ gname; pname; string_of_int k; regions; pruned_s ^ "s";
               unpruned_s ^ "s"; speedup ^ "x"; mis ]
           | _ -> [ gname; pname; string_of_int k; String.trim s; "-"; "-";
                    "-"; "-" ])
        | other ->
          [ gname; pname; string_of_int k; H.show_payload other; "-"; "-";
            "-"; "-" ])
      cases
  in
  H.table
    ~header:
      [ "graph"; "pattern"; "k"; "regions"; "pruned"; "unpruned"; "speedup";
        "mismatch" ]
    ~rows;
  let oc = open_out "BENCH_topk.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"topk\",\n  \"smoke\": %b,\n  \"rows\": \
     [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "\nwrote BENCH_topk.json"

(* Density-friendly hierarchy: prepared/warm probe loop vs the
   fresh-build escape hatch, with iterated top-k extraction (one
   canonical CDS per round — a coarser object than the hierarchy) as
   the cost yardstick.  Both hierarchy modes run in the same forked
   child and their chains are compared bit-for-bit; B_1 must equal the
   canonical CDS region.  The JSON is gated by bench/compare.ml (zero
   mismatches, prepared never slower than fresh). *)
let hierarchy () =
  let smoke = !H.smoke in
  H.section
    (Printf.sprintf "Density-friendly hierarchy — prepared vs fresh-build%s"
       (if smoke then " [smoke]" else ""));
  let cases =
    if smoke then
      [ ("planted_2k",
         Dsd_data.Gen.planted_clique ~seed:5 ~n:2_000 ~p:0.005 ~clique:25,
         "triangle", P.triangle) ]
    else
      [ ("planted_3k",
         Dsd_data.Gen.planted_clique ~seed:5 ~n:3_000 ~p:0.004 ~clique:30,
         "triangle", P.triangle);
        ("planted_3k",
         Dsd_data.Gen.planted_clique ~seed:5 ~n:3_000 ~p:0.004 ~clique:30,
         "edge", P.edge);
        ("planted_pair",
         Dsd_data.Gen.disjoint_union
           (Dsd_data.Gen.planted_clique ~seed:5 ~n:1_500 ~p:0.005 ~clique:30)
           (Dsd_data.Gen.planted_clique ~seed:9 ~n:1_500 ~p:0.005 ~clique:20),
         "triangle", P.triangle) ]
  in
  let json_rows = ref [] in
  let rows =
    List.map
      (fun (gname, g, pname, psi) ->
        let n = G.n g in
        let cell =
          H.run_cell ~timeout:(8. *. !H.default_timeout) (fun () ->
              let module LD = Dsd_core.Ld_decomposition in
              let dp, tp = H.timed (fun () -> LD.decompose g psi) in
              let df, tf =
                H.timed (fun () -> LD.decompose ~prepared:false g psi)
              in
              let t = List.length dp.LD.levels in
              let tk, tc =
                H.timed (fun () -> Dsd_core.Topk_lds.run ~k:t g psi)
              in
              let same_chain =
                List.length dp.LD.levels = List.length df.LD.levels
                && List.for_all2
                     (fun (a : LD.level) (b : LD.level) ->
                       Int64.bits_of_float a.marginal_density
                       = Int64.bits_of_float b.marginal_density
                       && a.vertices = b.vertices)
                     dp.LD.levels df.LD.levels
              in
              let b1_is_cds =
                match (dp.LD.levels, tk.Dsd_core.Topk_lds.regions) with
                | b1 :: _, (r : D.subgraph) :: _ ->
                  Int64.bits_of_float b1.LD.marginal_density
                  = Int64.bits_of_float r.density
                  && b1.LD.vertices = r.vertices
                | _ -> false
              in
              let mismatches =
                (if same_chain then 0 else 1)
                + (if b1_is_cds then 0 else 1)
                + if dp.LD.iterations = df.LD.iterations then 0 else 1
              in
              Printf.sprintf "%d %.6f %.6f %.6f %d %d %d" t tp tf tc
                dp.LD.iterations df.LD.iterations mismatches)
        in
        match cell with
        | H.Ok s ->
          (match String.split_on_char ' ' (String.trim s) with
           | [ lv; prepared_s; fresh_s; cds_s; pp; fp; mis ] ->
             let ratio a b =
               match (float_of_string_opt a, float_of_string_opt b) with
               | Some a, Some b when b > 0. -> Printf.sprintf "%.2f" (a /. b)
               | _ -> "null"
             in
             let speedup = ratio fresh_s prepared_s in
             let vs_cds = ratio prepared_s cds_s in
             json_rows :=
               Printf.sprintf
                 "    {\"graph\": \"%s\", \"pattern\": \"%s\", \"n\": %d, \
                  \"levels\": %s, \"prepared_s\": %s, \"fresh_s\": %s, \
                  \"topk_s\": %s, \"prepared_probes\": %s, \
                  \"fresh_probes\": %s, \"speedup\": %s, \"vs_topk\": %s, \
                  \"mismatches\": %s}"
                 gname pname n lv prepared_s fresh_s cds_s pp fp speedup
                 vs_cds mis
               :: !json_rows;
             [ gname; pname; lv; prepared_s ^ "s"; fresh_s ^ "s";
               cds_s ^ "s"; speedup ^ "x"; mis ]
           | _ -> [ gname; pname; String.trim s; "-"; "-"; "-"; "-"; "-" ])
        | other ->
          [ gname; pname; H.show_payload other; "-"; "-"; "-"; "-"; "-" ])
      cases
  in
  H.table
    ~header:
      [ "graph"; "pattern"; "levels"; "prepared"; "fresh"; "topk";
        "speedup"; "mismatch" ]
    ~rows;
  let oc = open_out "BENCH_hierarchy.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"hierarchy\",\n  \"smoke\": %b,\n  \"rows\": \
     [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "\nwrote BENCH_hierarchy.json"

(* ---- registry ---- *)

let all : (string * string * (unit -> unit)) list =
  [
    ("tab2", "Table 2/Fig 18: dataset characteristics", tab2);
    ("fig8_exact", "Fig 8(a-e): exact CDS algorithms", fig8_exact);
    ("fig8_approx", "Fig 8(f-j): approximation CDS algorithms", fig8_approx);
    ("fig9", "Fig 9: flow network sizes in CoreExact", fig9);
    ("fig10", "Fig 10: pruning ablation", fig10);
    ("tab3", "Table 3: core decomposition share of CoreExact", tab3);
    ("phases", "Dsd_obs per-phase span/counter breakdown", phases);
    ("tab4", "Table 4: EMcore vs CoreApp", tab4);
    ("fig11", "Fig 11: approximation ratios", fig11);
    ("fig12", "Fig 12: CoreExact vs CoreApp", fig12);
    ("fig13", "Fig 13: exact algorithms on random graphs", fig13);
    ("fig14", "Fig 14: approximation algorithms on random graphs", fig14);
    ("tab5", "Table 5: densities of CDS/PDS vs EDS", tab5);
    ("fig15", "Fig 15: exact PDS algorithms", fig15);
    ("fig16", "Fig 16: approximation PDS algorithms", fig16);
    ("fig17", "Fig 17: S-DBLP case study", fig17);
    ("fig20", "Fig 20: approximation on extra datasets", fig20);
    ("fig21", "Fig 21: yeast motif case study", fig21);
    ("sec63", "Sec 6.3: query-vertex CDS variant", sec63);
    ("ext_greedy", "extension: Greedy++ convergence", ext_greedy);
    ("ext_streaming", "extension: streaming eps sweep", ext_streaming);
    ("ext_parallel", "extension: multicore clique counting", ext_parallel);
    ("parallel", "domain-pool speedup vs domains (BENCH_parallel.json)", parallel);
    ("retarget", "flow-network builds vs re-alphas (BENCH_retarget.json)", retarget);
    ("warmstart", "warm vs reset flow retargeting (BENCH_warmstart.json)", warmstart);
    ("serve", "cold vs prepared vs cached request latency (BENCH_serve.json)", serve);
    ("incremental", "patch vs recompute on a sliding window (BENCH_incremental.json)", incremental);
    ("topk", "pruned vs unpruned top-k LDS extraction (BENCH_topk.json)", topk);
    ("hierarchy", "prepared vs fresh density-friendly hierarchy (BENCH_hierarchy.json)", hierarchy);
    ("ext_truss", "extension: truss vs CDS", ext_truss);
    ("ext_sampled", "future work: sampled approximation", ext_sampled);
    ("ext_atleastk", "future work: densest-at-least-k", ext_atleastk);
    ("ext_directed", "extension: directed densest subgraph", ext_directed);
    ("abl_grouping", "ablation: construct+ grouping", abl_grouping);
    ("abl_window", "ablation: CoreApp initial window", abl_window);
    ("micro", "bechamel micro-benchmarks", micro);
  ]
