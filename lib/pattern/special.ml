module Sub = Dsd_graph.Subgraph
module Binom = Dsd_util.Binom

let star_degree live ~x v =
  let dv = Sub.live_degree live v in
  let acc = ref (Binom.choose dv x) in
  Sub.iter_live_neighbors live v ~f:(fun u ->
      acc := !acc + Binom.choose (Sub.live_degree live u - 1) (x - 1));
  !acc

let star_degrees live ~x =
  let n = Dsd_graph.Graph.n (Sub.base live) in
  Array.init n (fun v -> if Sub.alive live v then star_degree live ~x v else 0)

let star_on_delete live ~x ~v ~apply =
  let dv = Sub.live_degree live v in
  Sub.iter_live_neighbors live v ~f:(fun u ->
      let du = Sub.live_degree live u in
      (* v-centred stars containing tail u, plus u-centred stars
         containing tail v. *)
      let delta = Binom.choose (dv - 1) (x - 1) + Binom.choose (du - 1) (x - 1) in
      if delta > 0 then apply u delta;
      (* u-centred stars containing both tails v and w die too. *)
      let co = Binom.choose (du - 2) (x - 2) in
      if co > 0 then
        Sub.iter_live_neighbors live u ~f:(fun w -> if w <> v then apply w co))

(* Common-alive-neighbour counts from v: returns the list of
   (w, codeg(v, w)) for every w <> v reachable by a live length-2 walk.
   Uses a scratch table keyed by w. *)
let codegrees live v =
  let tbl = Hashtbl.create 64 in
  Sub.iter_live_neighbors live v ~f:(fun u ->
      Sub.iter_live_neighbors live u ~f:(fun w ->
          if w <> v then begin
            let c = try Hashtbl.find tbl w with Not_found -> 0 in
            Hashtbl.replace tbl w (c + 1)
          end));
  tbl

let c4_degree live v =
  let acc = ref 0 in
  Hashtbl.iter
    (fun _w c -> acc := !acc + Binom.choose c 2)
    (codegrees live v);
  !acc

let c4_degrees live =
  let n = Dsd_graph.Graph.n (Sub.base live) in
  Array.init n (fun v -> if Sub.alive live v then c4_degree live v else 0)

let c4_on_delete live ~v ~apply =
  let tbl = codegrees live v in
  Hashtbl.iter
    (fun w c ->
      if c >= 2 then begin
        (* All C(c,2) cycles with diagonal (v, w) die: w loses every
           one of them ... *)
        apply w (Binom.choose c 2);
        (* ... and each common neighbour x is paired with the other
           c - 1 midpoints. *)
        Sub.iter_live_neighbors live v ~f:(fun x ->
            if x <> w && Sub.alive live x
               && Dsd_graph.Graph.mem_edge (Sub.base live) x w
            then apply x (c - 1))
      end)
    tbl
