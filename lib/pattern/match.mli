(** Pattern-instance enumeration (Definitions 7-9): subgraph — not
    induced — matching with instances identified by edge set, so
    automorphic re-discoveries of the same instance are merged, exactly
    as the paper counts them.

    Backtracking over a connectivity-aware static order with adjacency
    and degree pruning; exhaustive and exact for the ≤ 6-vertex
    patterns of the evaluation. *)

(** [iter g p ~f] calls [f] once per distinct pattern instance with its
    member vertices sorted ascending (fresh array). *)
val iter : Dsd_graph.Graph.t -> Pattern.t -> f:(int array -> unit) -> unit

(** [instances g p] materialises all distinct instances. *)
val instances : Dsd_graph.Graph.t -> Pattern.t -> int array array

(** [count g p] is mu(G, Psi). *)
val count : Dsd_graph.Graph.t -> Pattern.t -> int

(** [degrees g p] is deg_G(v, Psi) for every vertex. *)
val degrees : Dsd_graph.Graph.t -> Pattern.t -> int array

(** [embeddings_count g p] counts injective edge-preserving mappings
    before deduplication; equals [count g p * automorphisms p] (test
    invariant). *)
val embeddings_count : Dsd_graph.Graph.t -> Pattern.t -> int
