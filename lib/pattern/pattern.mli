(** Pattern graphs Psi (Section 7): small connected simple graphs whose
    instances in a data graph define pattern-density.

    An h-clique is a pattern; the named patterns below are the Figure 7
    evaluation set, with the concrete edge lists documented in
    DESIGN.md §3 (the paper only draws them).  All algorithms are
    generic in the pattern; [kind] additionally classifies the shapes
    that admit the Appendix-D fast decomposition paths. *)

type kind =
  | Clique              (** complete graph on [size] vertices *)
  | Star of int         (** centre plus [x] tails (the x-star) *)
  | Cycle4              (** the 4-cycle; the paper's "diamond" *)
  | Generic

type t = private {
  name : string;
  size : int;                  (** |V_Psi| *)
  edges : (int * int) array;   (** canonical, u < v, sorted *)
  adj : bool array array;
  kind : kind;
}

(** [make ~name ~size edges] builds a pattern.
    @raise Invalid_argument if the edge set is empty, has out-of-range
    endpoints, self loops, or does not connect all [size] vertices. *)
val make : name:string -> size:int -> (int * int) list -> t

(** {1 The evaluation patterns} *)

(** The h-clique pattern, h ≥ 2.  [clique 2] is the single edge,
    [clique 3] the triangle. *)
val clique : int -> t

val edge : t
val triangle : t

(** Star with [x] ≥ 2 tails; [star 2] is the 2-star (path P3),
    [star 3] the 3-star (K1,3). *)
val star : int -> t

(** Triangle with one pendant edge (the paw); Figure 7's c3-star. *)
val c3_star : t

(** The 4-cycle; the paper's "diamond" (see DESIGN.md §3). *)
val diamond : t

(** K4 minus one edge — two triangles sharing an edge; Figure 7's
    2-triangle. *)
val two_triangle : t

(** Fan F_3: apex joined to a 4-path — three triangles sharing
    consecutive edges; Figure 7's 3-triangle. *)
val three_triangle : t

(** The house graph (5-cycle plus a chord closing a triangle);
    Figure 7's basket. *)
val basket : t

(** The seven Figure 7 patterns in paper order. *)
val figure7 : t list

(** [of_string s] resolves the CLI/protocol spelling of a built-in
    pattern (case-insensitive; aliases like ["paw"], ["house"],
    ["c4"], ["2-clique"] included).  [None] for unknown names. *)
val of_string : string -> t option

(** {1 Queries} *)

val degree : t -> int -> int
val mem_edge : t -> int -> int -> bool
val edge_count : t -> int

(** [to_graph p] views the pattern itself as a data graph. *)
val to_graph : t -> Dsd_graph.Graph.t

(** [automorphisms p] is |Aut(Psi)| (edge-preserving self-bijections);
    used to cross-check instance deduplication in tests. *)
val automorphisms : t -> int

val pp : Format.formatter -> t -> unit
