module G = Dsd_graph.Graph

(* Static matching order: BFS from a maximum-degree pattern vertex so
   every position after the first has at least one earlier
   pattern-neighbour to anchor its candidate list on. *)
let matching_order (p : Pattern.t) =
  let k = p.size in
  let start = ref 0 in
  for v = 1 to k - 1 do
    if Pattern.degree p v > Pattern.degree p !start then start := v
  done;
  let order = Array.make k (-1) in
  let placed = Array.make k false in
  order.(0) <- !start;
  placed.(!start) <- true;
  for i = 1 to k - 1 do
    (* Next: an unplaced vertex adjacent to a placed one, max degree
       first (fail-fast). *)
    let best = ref (-1) in
    for v = 0 to k - 1 do
      if not placed.(v) then begin
        let anchored = ref false in
        for u = 0 to k - 1 do
          if placed.(u) && p.adj.(u).(v) then anchored := true
        done;
        if !anchored
           && (!best < 0 || Pattern.degree p v > Pattern.degree p !best)
        then best := v
      end
    done;
    order.(i) <- !best;
    placed.(!best) <- true
  done;
  (* earlier_nbrs.(i) = positions j < i with order.(j) ~ order.(i). *)
  let earlier_nbrs =
    Array.init k (fun i ->
        let acc = ref [] in
        for j = i - 1 downto 0 do
          if p.adj.(order.(j)).(order.(i)) then acc := j :: !acc
        done;
        Array.of_list !acc)
  in
  (order, earlier_nbrs)

(* Enumerate injective edge-preserving embeddings; [f] receives the
   mapping indexed by pattern vertex. *)
let iter_embeddings g (p : Pattern.t) ~f =
  let k = p.size in
  let order, earlier_nbrs = matching_order p in
  let image = Array.make k (-1) in       (* pattern vertex -> data vertex *)
  let used = Hashtbl.create 16 in
  let rec extend i =
    if i = k then f image
    else begin
      let pv = order.(i) in
      let pdeg = Pattern.degree p pv in
      let try_candidate v =
        if (not (Hashtbl.mem used v)) && G.degree g v >= pdeg then begin
          let ok = ref true in
          Array.iter
            (fun j ->
              if !ok && not (G.mem_edge g image.(order.(j)) v) then ok := false)
            earlier_nbrs.(i);
          if !ok then begin
            image.(pv) <- v;
            Hashtbl.add used v ();
            extend (i + 1);
            Hashtbl.remove used v;
            image.(pv) <- -1
          end
        end
      in
      if Array.length earlier_nbrs.(i) = 0 then
        for v = 0 to G.n g - 1 do
          try_candidate v
        done
      else begin
        (* Anchor on the earlier neighbour with the fewest data
           neighbours. *)
        let anchor = ref earlier_nbrs.(i).(0) in
        Array.iter
          (fun j ->
            if G.degree g image.(order.(j)) < G.degree g image.(order.(!anchor))
            then anchor := j)
          earlier_nbrs.(i);
        G.iter_neighbors g image.(order.(!anchor)) ~f:try_candidate
      end
    end
  in
  extend 0

let embeddings_count g p =
  let c = ref 0 in
  iter_embeddings g p ~f:(fun _ -> incr c);
  !c

let iter g (p : Pattern.t) ~f =
  let n = G.n g in
  let seen : (int array, unit) Hashtbl.t = Hashtbl.create 1024 in
  iter_embeddings g p ~f:(fun image ->
      (* Identity of an instance is its image edge set (Definition 8 +
         the automorphism remark). *)
      let key =
        Array.map
          (fun (a, b) ->
            let u = image.(a) and v = image.(b) in
            (min u v * n) + max u v)
          p.edges
      in
      Array.sort compare key;
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let members = Array.copy image in
        Array.sort compare members;
        f members
      end)

let instances g p =
  let acc = ref [] in
  iter g p ~f:(fun members -> acc := members :: !acc);
  Array.of_list (List.rev !acc)

let count g p =
  let c = ref 0 in
  iter g p ~f:(fun _ -> incr c);
  !c

let degrees g p =
  let deg = Array.make (G.n g) 0 in
  iter g p ~f:(fun members ->
      Array.iter (fun v -> deg.(v) <- deg.(v) + 1) members);
  deg
