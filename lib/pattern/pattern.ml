type kind =
  | Clique
  | Star of int
  | Cycle4
  | Generic

type t = {
  name : string;
  size : int;
  edges : (int * int) array;
  adj : bool array array;
  kind : kind;
}

let degree t v = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.adj.(v)
let mem_edge t u v = t.adj.(u).(v)
let edge_count t = Array.length t.edges

let connected size adj =
  if size = 0 then false
  else begin
    let seen = Array.make size false in
    let rec dfs v =
      seen.(v) <- true;
      for w = 0 to size - 1 do
        if adj.(v).(w) && not seen.(w) then dfs w
      done
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let recognize size edges adj =
  let m = Array.length edges in
  let degs = Array.init size (fun v ->
      Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 adj.(v))
  in
  if m = size * (size - 1) / 2 then Clique
  else if size >= 3 && m = size - 1
          && Array.exists (fun d -> d = size - 1) degs
          && Array.for_all (fun d -> d = 1 || d = size - 1) degs
  then Star (size - 1)
  else if size = 4 && m = 4 && Array.for_all (fun d -> d = 2) degs then Cycle4
  else Generic

let make ~name ~size edges =
  if size < 2 then invalid_arg "Pattern.make: need at least two vertices";
  let canonical =
    List.map
      (fun (u, v) ->
        if u < 0 || u >= size || v < 0 || v >= size then
          invalid_arg "Pattern.make: endpoint out of range";
        if u = v then invalid_arg "Pattern.make: self loop";
        (min u v, max u v))
      edges
    |> List.sort_uniq compare
    |> Array.of_list
  in
  if Array.length canonical = 0 then invalid_arg "Pattern.make: empty edge set";
  let adj = Array.make_matrix size size false in
  Array.iter
    (fun (u, v) ->
      adj.(u).(v) <- true;
      adj.(v).(u) <- true)
    canonical;
  if not (connected size adj) then
    invalid_arg "Pattern.make: pattern must be connected";
  { name; size; edges = canonical; adj; kind = recognize size canonical adj }

let clique h =
  if h < 2 then invalid_arg "Pattern.clique: h must be >= 2";
  let edges = ref [] in
  for u = 0 to h - 1 do
    for v = u + 1 to h - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let name = match h with
    | 2 -> "edge"
    | 3 -> "triangle"
    | _ -> string_of_int h ^ "-clique"
  in
  make ~name ~size:h !edges

let edge = clique 2
let triangle = clique 3

let star x =
  if x < 2 then invalid_arg "Pattern.star: need at least two tails";
  make ~name:(string_of_int x ^ "-star") ~size:(x + 1)
    (List.init x (fun i -> (0, i + 1)))

let c3_star =
  make ~name:"c3-star" ~size:4 [ (0, 1); (0, 2); (1, 2); (2, 3) ]

let diamond =
  make ~name:"diamond" ~size:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let two_triangle =
  make ~name:"2-triangle" ~size:4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]

let three_triangle =
  (* Apex 0 over the path 1-2-3-4. *)
  make ~name:"3-triangle" ~size:5
    [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2); (2, 3); (3, 4) ]

let basket =
  (* House: square 0-1-2-3 with roof vertex 4 over edge (2,3). *)
  make ~name:"basket" ~size:5
    [ (0, 1); (1, 2); (2, 3); (3, 0); (2, 4); (3, 4) ]

let figure7 =
  [ star 2; star 3; c3_star; diamond; two_triangle; three_triangle; basket ]

(* The CLI/protocol spelling of every built-in pattern, including the
   historical aliases.  Kept next to the definitions so a new pattern
   cannot be added without deciding its wire name. *)
let of_string s =
  match String.lowercase_ascii s with
  | "edge" | "2-clique" -> Some edge
  | "triangle" | "3-clique" -> Some triangle
  | "4-clique" -> Some (clique 4)
  | "5-clique" -> Some (clique 5)
  | "6-clique" -> Some (clique 6)
  | "2-star" -> Some (star 2)
  | "3-star" -> Some (star 3)
  | "c3-star" | "paw" -> Some c3_star
  | "diamond" | "c4" -> Some diamond
  | "2-triangle" -> Some two_triangle
  | "3-triangle" -> Some three_triangle
  | "basket" | "house" -> Some basket
  | _ -> None

let to_graph t = Dsd_graph.Graph.of_edges ~n:t.size t.edges

let automorphisms t =
  (* Brute-force over permutations preserving the edge set; patterns
     have <= 6 vertices so this is at most 720 checks. *)
  let k = t.size in
  let perm = Array.make k (-1) in
  let used = Array.make k false in
  let count = ref 0 in
  let edge_ok u v = t.adj.(u).(v) in
  let rec go i =
    if i = k then begin
      let ok = ref true in
      Array.iter
        (fun (u, v) -> if not (edge_ok perm.(u) perm.(v)) then ok := false)
        t.edges;
      (* An edge-preserving bijection between graphs with equal edge
         counts is automatically edge-reflecting. *)
      if !ok then incr count
    end
    else
      for v = 0 to k - 1 do
        if not used.(v) then begin
          used.(v) <- true;
          perm.(i) <- v;
          go (i + 1);
          used.(v) <- false
        end
      done
  in
  go 0;
  !count

let pp fmt t =
  Format.fprintf fmt "@[%s (|V|=%d, |E|=%d)@]" t.name t.size (edge_count t)
