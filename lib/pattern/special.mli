(** Appendix-D fast paths for star and diamond (4-cycle) patterns.

    Generic pattern peeling materialises every instance, which for
    x-stars explodes combinatorially (a degree-d hub carries C(d, x)
    instances).  Stars and 4-cycles admit closed-form pattern-degrees
    from local degree/co-degree information, and O(d^2) decrement rules
    on vertex deletion, reducing (k, Psi)-core decomposition from
    O(n * d^x) to O(n * d^2).

    All functions operate on a live {!Dsd_graph.Subgraph.t} view so the
    peeling loop in [Dsd_core.Clique_core] can drive them directly.
    The [*_on_delete] callbacks must be invoked *before* the vertex is
    deleted from the view. *)

(** [star_degree live ~x v] is the number of live x-star instances
    containing the alive vertex [v]: C(d_v, x) as centre plus
    sum over alive neighbours u of C(d_u - 1, x - 1) as a tail. *)
val star_degree : Dsd_graph.Subgraph.t -> x:int -> int -> int

(** [star_degrees live ~x] evaluates {!star_degree} on every alive
    vertex (dead vertices get 0). *)
val star_degrees : Dsd_graph.Subgraph.t -> x:int -> int array

(** [star_on_delete live ~x ~v ~apply] reports, for every alive vertex
    [u <> v] whose x-star degree drops when [v] is deleted, the
    decrement via [apply u delta].  A vertex may be reported more than
    once; deltas accumulate. *)
val star_on_delete :
  Dsd_graph.Subgraph.t -> x:int -> v:int -> apply:(int -> int -> unit) -> unit

(** [c4_degree live v] is the number of live 4-cycles through [v]:
    sum over w of C(codeg(v, w), 2), where codeg counts common alive
    neighbours. *)
val c4_degree : Dsd_graph.Subgraph.t -> int -> int

val c4_degrees : Dsd_graph.Subgraph.t -> int array

(** [c4_on_delete live ~v ~apply] is the 4-cycle analogue of
    {!star_on_delete}: the diagonal partner w of each dying cycle loses
    C(codeg, 2) in aggregate and each common neighbour loses
    codeg - 1. *)
val c4_on_delete :
  Dsd_graph.Subgraph.t -> v:int -> apply:(int -> int -> unit) -> unit
