(** Hand-built example graphs: the exactly-specified Figure 2 graph
    plus known-answer constructions used across tests, examples and
    documentation (ground truths re-derived by brute force in the test
    suite). *)

(** Figure 2(a) of the paper: A-B, B-C, B-D, C-D; one triangle. *)
val figure2 : Dsd_graph.Graph.t

(** K4 + attached triangle + separate edge; nested cores as in the
    paper's Figure 3 discussion. *)
val figure3_like : Dsd_graph.Graph.t

(** K3,4 disjoint from K4: the EDS (K3,4) and the triangle-CDS (K4)
    differ, as in Figure 1. *)
val eds_vs_cds : Dsd_graph.Graph.t

(** [two_cliques ~a ~b ~bridge]: K_a ⊔ K_b, optionally bridged. *)
val two_cliques : a:int -> b:int -> bridge:bool -> Dsd_graph.Graph.t

val path : int -> Dsd_graph.Graph.t
val cycle : int -> Dsd_graph.Graph.t

(** [theorem1_chain x]: K_{2,x} (x >= 2) — classical kmax stays 2
    while the kmax-core density 2x/(x+2) converges to Theorem 1's upper
    bound as [x] grows (the Figure 4(b) phenomenon). *)
val theorem1_chain : int -> Dsd_graph.Graph.t
