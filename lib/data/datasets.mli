(** Named synthetic stand-ins for the paper's datasets (Table 2 and
    Table 6), deterministic in their fixed seeds.

    Real SNAP/LAW/DIP files are unavailable offline; these generators
    reproduce the *shape* each experiment depends on (heavy-tailed
    degrees, small dense cores, clique-block communities) at a scale a
    laptop-class container sweeps in seconds.  The mapping and the
    rationale live in DESIGN.md §4. *)

type group =
  | Small      (** Fig. 8(a)-(e): exact algorithms are feasible *)
  | Large      (** Fig. 8(f)-(j): approximation algorithms only *)
  | Random     (** Fig. 13/14: SSCA / ER / R-MAT *)
  | Extra      (** Fig. 20 appendix datasets *)
  | Case_study (** S-DBLP / Yeast case-study graphs *)

type spec = {
  name : string;           (** paper dataset it stands in for *)
  group : group;
  build : unit -> Dsd_graph.Graph.t;
}

val all : spec list

(** [names_of_group g] in paper order. *)
val names_of_group : group -> string list

(** [graph name] builds (and memoises) the named dataset.
    @raise Not_found on an unknown name. *)
val graph : string -> Dsd_graph.Graph.t

val mem : string -> bool
