(** Seeded random-graph generators.

    These stand in for the paper's datasets (Table 2) and for the
    GTgraph generators of the random-graph experiments (Figures 13/14):
    [er_gnm] ~ uniform (ER), [rmat] ~ power-law (R-MAT), [ssca] ~
    random-sized clique blocks (SSCA).  Everything is deterministic in
    the seed. *)

(** [er_gnp ~seed ~n ~p] — Erdős-Rényi G(n, p) by geometric edge
    skipping, O(m). *)
val er_gnp : seed:int -> n:int -> p:float -> Dsd_graph.Graph.t

(** [er_gnm ~seed ~n ~m] — uniform graph with exactly [m] distinct
    edges (requires m ≤ C(n,2)). *)
val er_gnm : seed:int -> n:int -> m:int -> Dsd_graph.Graph.t

(** [rmat ~seed ~scale ~edge_factor ?a ?b ?c] — recursive-matrix
    power-law generator on n = 2^scale vertices and ~[edge_factor * n]
    edge samples (duplicates collapse, like GTgraph).  Defaults
    (a, b, c) = (0.57, 0.19, 0.19). *)
val rmat :
  seed:int -> scale:int -> edge_factor:int ->
  ?a:float -> ?b:float -> ?c:float -> unit -> Dsd_graph.Graph.t

(** [ssca ~seed ~n ~max_clique] — SSCA#2-style: partition vertices into
    random-sized blocks (≤ max_clique), make each block a clique, then
    sprinkle inter-block edges. *)
val ssca : seed:int -> n:int -> max_clique:int -> Dsd_graph.Graph.t

(** [barabasi_albert ~seed ~n ~attach] — preferential attachment, each
    new vertex linking to [attach] existing ones; heavy-tailed degrees
    like collaboration/AS graphs. *)
val barabasi_albert : seed:int -> n:int -> attach:int -> Dsd_graph.Graph.t

(** [power_law_chung_lu ~seed ~n ~alpha ~avg_deg] — Chung-Lu model with
    expected degrees w_i proportional to i^(-1/(alpha-1)). *)
val power_law_chung_lu :
  seed:int -> n:int -> alpha:float -> avg_deg:float -> Dsd_graph.Graph.t

(** [planted_clique ~seed ~n ~p ~clique] — sparse ER background with a
    planted clique of the given size; the clique is on vertices
    [0 .. clique-1] and (for suitable parameters) is the unique densest
    subgraph — the tests' ground truth. *)
val planted_clique : seed:int -> n:int -> p:float -> clique:int -> Dsd_graph.Graph.t

(** [communities ~seed ~n ~communities ~p_in ~p_out] — planted
    partition model: dense blocks, sparse cross edges (DBLP-like
    collaboration shape). *)
val communities :
  seed:int -> n:int -> communities:int -> p_in:float -> p_out:float ->
  Dsd_graph.Graph.t

(** [er_directed ~seed ~n ~p] — directed Erdős-Rényi: each ordered
    pair (u, v), u ≠ v, is an arc independently with probability p. *)
val er_directed : seed:int -> n:int -> p:float -> Dsd_graph.Digraph.t

(** [planted_clique_subset ~seed ~n ~p ~block] — sparse ER background
    with a clique planted on a uniformly random [block]-subset of the
    vertices (unlike {!planted_clique}, which always uses the id
    prefix, so tests cannot accidentally pass by special-casing low
    ids).  Returns the graph and the sorted planted vertex set: a
    *certificate* — for psi = h-clique with h ≤ block, the planted set
    has Psi-density ≥ C(block, h) / block, which lower-bounds
    rho_opt. *)
val planted_clique_subset :
  seed:int -> n:int -> p:float -> block:int ->
  Dsd_graph.Graph.t * int array

(** [disjoint_union g1 g2] — the disjoint union, with [g2]'s vertex
    ids shifted up by [n g1].  rho_opt and kmax of the union are the
    max over the components (the fuzz engine's union relation). *)
val disjoint_union :
  Dsd_graph.Graph.t -> Dsd_graph.Graph.t -> Dsd_graph.Graph.t

(** [random_graph_for_tests prng ~max_n ~max_m] — a small arbitrary
    graph for property tests. *)
val random_graph_for_tests : Dsd_util.Prng.t -> max_n:int -> max_m:int -> Dsd_graph.Graph.t

(** [random_digraph_for_tests prng ~max_n ~max_m] — small arbitrary
    directed graph for property tests. *)
val random_digraph_for_tests :
  Dsd_util.Prng.t -> max_n:int -> max_m:int -> Dsd_graph.Digraph.t
