(* Hand-built example graphs for tests, examples and documentation.
   [figure2] is reproduced exactly from the paper; the rest are
   known-answer constructions whose ground truth the test suite
   re-derives by brute force. *)

module G = Dsd_graph.Graph

(* Figure 2(a): vertices A=0, B=1, C=2, D=3; edges AB, BC, BD, CD.
   Exactly one triangle (B, C, D). *)
let figure2 = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (1, 3); (2, 3) ]

(* Figure 3 style: K4 {0,1,2,3} plus a triangle {3,4,5} hanging off it,
   plus a second component {6,7}.  Classical cores: 3-core = K4,
   2-core = {0..5}, 1-core = everything.  Triangle-cores: (3,tri)-core
   = K4, (1,tri)-core = {0..5}. *)
let figure3_like =
  G.of_edge_list ~n:8
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3);
      (3, 4); (3, 5); (4, 5);
      (6, 7) ]

(* Figure 1 in spirit: the edge-densest and the triangle-densest
   subgraphs differ.  K3,4 (parts {0,1,2} and {3,4,5,6}) has edge
   density 12/7 and no triangle at all; the disjoint K4 {7,8,9,10} has
   edge density 1.5 but triangle density 1. *)
let eds_vs_cds =
  let edges = ref [] in
  for u = 0 to 2 do
    for v = 3 to 6 do
      edges := (u, v) :: !edges
    done
  done;
  for u = 7 to 10 do
    for v = u + 1 to 10 do
      edges := (u, v) :: !edges
    done
  done;
  G.of_edge_list ~n:11 !edges

(* Two cliques K_a and K_b on disjoint vertices, optionally joined by a
   single bridge edge.  With a > b the K_a side is the densest subgraph
   for every h-clique density. *)
let two_cliques ~a ~b ~bridge =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = u + 1 to a - 1 do
      edges := (u, v) :: !edges
    done
  done;
  for u = a to a + b - 1 do
    for v = u + 1 to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  if bridge && a > 0 && b > 0 then edges := (0, a) :: !edges;
  G.of_edge_list ~n:(a + b) !edges

(* A path P_n: sparse, tree-like; densest subgraph is any edge for
   h = 2 and empty for h >= 3. *)
let path n =
  G.of_edge_list ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

(* A cycle C_n. *)
let cycle n =
  if n < 3 then invalid_arg "Paper_graphs.cycle: need n >= 3";
  G.of_edge_list ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

(* Figure 4(b) in spirit: a family with classical kmax = 2 whose
   kmax-core density approaches Theorem 1's upper bound 2 as x grows.
   K_{2,x} does exactly that: all core numbers are 2 (x >= 2) and the
   density is 2x / (x + 2) -> 2. *)
let theorem1_chain x =
  if x < 2 then invalid_arg "Paper_graphs.theorem1_chain: x >= 2";
  let edges = ref [] in
  for i = 2 to x + 1 do
    edges := (0, i) :: (1, i) :: !edges
  done;
  G.of_edge_list ~n:(x + 2) !edges
