module G = Dsd_graph.Graph
module Prng = Dsd_util.Prng
module Vec = Dsd_util.Vec

(* Pack an ordered pair into one int for dedup sets.  Safe while
   n < 2^31, far beyond anything we generate. *)
let encode n u v = (min u v * n) + max u v

let er_gnp ~seed ~n ~p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Gen.er_gnp: p out of range";
  let rng = Prng.create seed in
  let edges = ref [] in
  if p > 0. then begin
    (* Skip-ahead sampling: iterate over the C(n,2) pair indices,
       jumping a geometric gap between successive present edges. *)
    let total = n * (n - 1) / 2 in
    let idx = ref (Prng.geometric rng p) in
    while !idx < total do
      (* Decode pair index to (u, v): u is the largest with
         u*(2n-u-1)/2 <= idx. *)
      let rec find_u u acc =
        let row = n - 1 - u in
        if acc + row > !idx then (u, !idx - acc) else find_u (u + 1) (acc + row)
      in
      let u, off = find_u 0 0 in
      edges := (u, u + 1 + off) :: !edges;
      idx := !idx + 1 + Prng.geometric rng p
    done
  end;
  G.of_edge_list ~n !edges

let er_gnm ~seed ~n ~m =
  let total = n * (n - 1) / 2 in
  if m > total then invalid_arg "Gen.er_gnm: too many edges";
  let rng = Prng.create seed in
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  while Hashtbl.length seen < m do
    let u, v = Prng.pair_distinct rng n in
    let key = encode n u v in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v) :: !edges
    end
  done;
  G.of_edge_list ~n !edges

let rmat ~seed ~scale ~edge_factor ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) () =
  if a +. b +. c >= 1. then invalid_arg "Gen.rmat: a+b+c must be < 1";
  let n = 1 lsl scale in
  let rng = Prng.create seed in
  let samples = edge_factor * n in
  let edges = ref [] in
  for _ = 1 to samples do
    let u = ref 0 and v = ref 0 in
    for bit = scale - 1 downto 0 do
      let r = Prng.float rng 1.0 in
      if r < a then ()
      else if r < a +. b then v := !v lor (1 lsl bit)
      else if r < a +. b +. c then u := !u lor (1 lsl bit)
      else begin
        u := !u lor (1 lsl bit);
        v := !v lor (1 lsl bit)
      end
    done;
    if !u <> !v then edges := (!u, !v) :: !edges
  done;
  G.of_edge_list ~n !edges

let ssca ~seed ~n ~max_clique =
  if max_clique < 2 then invalid_arg "Gen.ssca: max_clique must be >= 2";
  let rng = Prng.create seed in
  let edges = ref [] in
  (* Consecutive blocks of random size in [1, max_clique], each a
     clique. *)
  let start = ref 0 in
  while !start < n do
    let size = min (1 + Prng.int rng max_clique) (n - !start) in
    for i = !start to !start + size - 1 do
      for j = i + 1 to !start + size - 1 do
        edges := (i, j) :: !edges
      done
    done;
    start := !start + size
  done;
  (* Sparse inter-block noise, ~ one extra edge per 4 vertices. *)
  for _ = 1 to n / 4 do
    let u, v = Prng.pair_distinct rng n in
    edges := (u, v) :: !edges
  done;
  G.of_edge_list ~n !edges

let barabasi_albert ~seed ~n ~attach =
  if attach < 1 then invalid_arg "Gen.barabasi_albert: attach must be >= 1";
  let rng = Prng.create seed in
  let m0 = max (attach + 1) 2 in
  if n < m0 then invalid_arg "Gen.barabasi_albert: n too small";
  let edges = ref [] in
  (* Endpoint multiset for preferential sampling. *)
  let endpoints = Vec.Int.create ~capacity:(4 * n) () in
  for v = 1 to m0 - 1 do
    edges := (v - 1, v) :: !edges;
    Vec.Int.push endpoints (v - 1);
    Vec.Int.push endpoints v
  done;
  for v = m0 to n - 1 do
    let chosen = Hashtbl.create attach in
    let tries = ref 0 in
    while Hashtbl.length chosen < attach && !tries < 50 * attach do
      incr tries;
      let u = Vec.Int.get endpoints (Prng.int rng (Vec.Int.length endpoints)) in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        edges := (u, v) :: !edges;
        Vec.Int.push endpoints u;
        Vec.Int.push endpoints v)
      chosen
  done;
  G.of_edge_list ~n !edges

let power_law_chung_lu ~seed ~n ~alpha ~avg_deg =
  if alpha <= 2. then invalid_arg "Gen.power_law_chung_lu: alpha must be > 2";
  let rng = Prng.create seed in
  let w = Array.init n (fun i ->
      (* w_i ~ i^(-1/(alpha-1)), rescaled to the target average. *)
      Float.pow (float_of_int (i + 1)) (-1. /. (alpha -. 1.)))
  in
  let sum = Array.fold_left ( +. ) 0. w in
  let scale = avg_deg *. float_of_int n /. sum in
  Array.iteri (fun i x -> w.(i) <- x *. scale) w;
  let s = Array.fold_left ( +. ) 0. w in
  (* Efficient Chung-Lu via the Miller-Hagberg style: sample ~s/2 edges
     with probability proportional to w_u * w_v using weighted
     endpoint draws, dropping duplicates. *)
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      acc := !acc +. x;
      cumulative.(i) <- !acc)
    w;
  let draw () =
    let r = Prng.float rng !acc in
    (* Binary search for the first cumulative >= r. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) < r then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let target = int_of_float (s /. 2.) in
  let seen = Hashtbl.create (2 * target) in
  let edges = ref [] in
  for _ = 1 to target do
    let u = draw () and v = draw () in
    if u <> v then begin
      let key = encode n u v in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := (u, v) :: !edges
      end
    end
  done;
  G.of_edge_list ~n !edges

let planted_clique ~seed ~n ~p ~clique =
  if clique > n then invalid_arg "Gen.planted_clique: clique larger than n";
  let background = er_gnp ~seed ~n ~p in
  let edges = ref (Array.to_list (G.edges background)) in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edges := (u, v) :: !edges
    done
  done;
  G.of_edge_list ~n !edges

let planted_clique_subset ~seed ~n ~p ~block =
  if block > n then invalid_arg "Gen.planted_clique_subset: block larger than n";
  let background = er_gnp ~seed ~n ~p in
  let rng = Prng.create (seed lxor 0x9e3779b9) in
  let ids = Array.init n Fun.id in
  Prng.shuffle rng ids;
  let members = Array.sub ids 0 block in
  Array.sort compare members;
  let edges = ref (Array.to_list (G.edges background)) in
  for i = 0 to block - 1 do
    for j = i + 1 to block - 1 do
      edges := (members.(i), members.(j)) :: !edges
    done
  done;
  (G.of_edge_list ~n !edges, members)

let disjoint_union g1 g2 =
  let n1 = G.n g1 in
  let edges = ref [] in
  G.iter_edges g1 ~f:(fun u v -> edges := (u, v) :: !edges);
  G.iter_edges g2 ~f:(fun u v -> edges := (u + n1, v + n1) :: !edges);
  G.of_edge_list ~n:(n1 + G.n g2) !edges

let communities ~seed ~n ~communities ~p_in ~p_out =
  if communities < 1 then invalid_arg "Gen.communities: need at least one";
  let rng = Prng.create seed in
  let members = Array.init n (fun v -> v mod communities) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = if members.(u) = members.(v) then p_in else p_out in
      if Prng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  G.of_edge_list ~n !edges

let er_directed ~seed ~n ~p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Gen.er_directed: p out of range";
  let rng = Prng.create seed in
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Prng.float rng 1.0 < p then arcs := (u, v) :: !arcs
    done
  done;
  Dsd_graph.Digraph.of_edge_list ~n !arcs

let random_graph_for_tests rng ~max_n ~max_m =
  let n = 1 + Prng.int rng max_n in
  let m = if n < 2 then 0 else Prng.int rng (max_m + 1) in
  let edges = ref [] in
  for _ = 1 to m do
    if n >= 2 then begin
      let u, v = Prng.pair_distinct rng n in
      edges := (u, v) :: !edges
    end
  done;
  G.of_edge_list ~n !edges

let random_digraph_for_tests rng ~max_n ~max_m =
  let n = 1 + Prng.int rng max_n in
  let m = if n < 2 then 0 else Prng.int rng (max_m + 1) in
  let arcs = ref [] in
  for _ = 1 to m do
    if n >= 2 then begin
      let u, v = Prng.pair_distinct rng n in
      arcs := (u, v) :: !arcs
    end
  done;
  Dsd_graph.Digraph.of_edge_list ~n !arcs
