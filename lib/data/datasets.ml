module G = Dsd_graph.Graph

type group =
  | Small
  | Large
  | Random
  | Extra
  | Case_study

type spec = {
  name : string;
  group : group;
  build : unit -> G.t;
}

(* S-DBLP-like case-study graph: a sparse collaboration background, a
   planted near-clique "research group" (dense pairwise co-authorship)
   and two planted advisor stars whose spokes barely know each other.
   Triangle-PDS should find the near-clique; 2-star-PDS the larger
   hub (Figure 17's contrast). *)
let sdblp () =
  let n = 478 in
  let rng = Dsd_util.Prng.create 20190711 in
  let edges = ref [] in
  (* Background: small co-author cliques of size 2-4. *)
  let v = ref 200 in
  while !v < n - 4 do
    let size = 2 + Dsd_util.Prng.int rng 3 in
    for i = !v to !v + size - 1 do
      for j = i + 1 to !v + size - 1 do
        edges := (i, j) :: !edges
      done
    done;
    (* Occasional cross-group tie. *)
    if Dsd_util.Prng.bool rng then
      edges := (!v, Dsd_util.Prng.int rng !v) :: !edges;
    v := !v + size
  done;
  (* Near-clique group: K12 minus three edges on vertices 0-11.  Wins
     on triangle density (~15.8) but not on 2-star density (~50). *)
  for i = 0 to 11 do
    for j = i + 1 to 11 do
      if not (List.mem (i, j) [ (0, 11); (1, 10); (2, 9) ]) then
        edges := (i, j) :: !edges
    done
  done;
  (* Advisor stars: hub 20 with 120 former students/postdocs, hub 21
     with 40 (14 shared with hub 20); spokes mostly do not know each
     other, so the group is 2-star-dense (C(120,2)/121 ~ 59) but has
     almost no triangles. *)
  for s = 22 to 141 do
    edges := (20, s) :: !edges
  done;
  for s = 142 to 181 do
    edges := (21, s) :: !edges
  done;
  for s = 22 to 35 do
    edges := (21, s) :: !edges
  done;
  (* A handful of spoke-spoke papers. *)
  edges := (22, 23) :: (24, 25) :: (142, 143) :: !edges;
  (* Tie the groups into one community. *)
  edges := (0, 20) :: (1, 21) :: !edges;
  G.of_edge_list ~n !edges

let specs : spec list =
  [
    (* ---- small: exact algorithms feasible (Fig. 8(a)-(e)) ---- *)
    { name = "yeast"; group = Small;
      build = (fun () ->
          (* Power-law PPI backbone plus a few planted protein
             complexes (small dense clusters), which give the graph the
             motif-dense spots real PPI networks have (the paper's
             Yeast reaches triangle-density ~2 in a tiny cluster). *)
          let backbone =
            Gen.power_law_chung_lu ~seed:101 ~n:1116 ~alpha:2.9 ~avg_deg:3.4
          in
          let rng = Dsd_util.Prng.create 1011 in
          let edges = ref (Array.to_list (G.edges backbone)) in
          for _ = 1 to 12 do
            let size = 4 + Dsd_util.Prng.int rng 4 in
            let base = Dsd_util.Prng.int rng (1116 - size) in
            for i = base to base + size - 1 do
              for j = i + 1 to base + size - 1 do
                (* Complexes are dense but not perfect cliques. *)
                if Dsd_util.Prng.float rng 1.0 < 0.85 then
                  edges := (i, j) :: !edges
              done
            done
          done;
          G.of_edge_list ~n:1116 !edges) };
    { name = "netscience"; group = Small;
      build = (fun () -> Gen.ssca ~seed:102 ~n:1589 ~max_clique:9) };
    { name = "as733"; group = Small;
      build = (fun () ->
          (* AS topologies are preferential-attachment-like but carry a
             dense peering core among the top providers (the real
             As-733 has triangle-kmax 39); plant one over the hubs. *)
          let backbone = Gen.barabasi_albert ~seed:103 ~n:1486 ~attach:2 in
          let edges = ref (Array.to_list (G.edges backbone)) in
          for u = 0 to 11 do
            for v = u + 1 to 11 do
              edges := (u, v) :: !edges
            done
          done;
          G.of_edge_list ~n:1486 !edges) };
    { name = "ca_hepth"; group = Small;
      build = (fun () -> Gen.ssca ~seed:104 ~n:4000 ~max_clique:8) };
    { name = "as_caida"; group = Small;
      build = (fun () ->
          (* Same shape as as733, larger: BA backbone + a denser
             provider core (the real As-Caida has triangle-kmax 154 in
             a 68-vertex core). *)
          let backbone = Gen.barabasi_albert ~seed:105 ~n:8000 ~attach:6 in
          let rng = Dsd_util.Prng.create 1055 in
          let edges = ref (Array.to_list (G.edges backbone)) in
          for u = 0 to 23 do
            for v = u + 1 to 23 do
              if Dsd_util.Prng.float rng 1.0 < 0.8 then
                edges := (u, v) :: !edges
            done
          done;
          G.of_edge_list ~n:8000 !edges) };
    (* ---- large: approximation algorithms (Fig. 8(f)-(j)) ---- *)
    { name = "dblp_s"; group = Large;
      build = (fun () -> Gen.ssca ~seed:201 ~n:50_000 ~max_clique:10) };
    { name = "cit_s"; group = Large;
      build = (fun () ->
          Gen.power_law_chung_lu ~seed:202 ~n:100_000 ~alpha:2.3 ~avg_deg:8.) };
    { name = "friend_s"; group = Large;
      build = (fun () -> Gen.barabasi_albert ~seed:203 ~n:200_000 ~attach:5) };
    { name = "wiki_s"; group = Large;
      build = (fun () -> Gen.rmat ~seed:204 ~scale:15 ~edge_factor:6 ()) };
    { name = "uk_s"; group = Large;
      build = (fun () -> Gen.ssca ~seed:205 ~n:80_000 ~max_clique:12) };
    (* ---- random graphs (Fig. 13/14) ---- *)
    { name = "ssca"; group = Random;
      build = (fun () -> Gen.ssca ~seed:301 ~n:10_000 ~max_clique:12) };
    { name = "er"; group = Random;
      build = (fun () -> Gen.er_gnp ~seed:302 ~n:10_000 ~p:0.001) };
    { name = "rmat"; group = Random;
      build = (fun () -> Gen.rmat ~seed:303 ~scale:13 ~edge_factor:10 ()) };
    (* ---- appendix extra datasets (Fig. 20) ---- *)
    { name = "flickr_s"; group = Extra;
      build = (fun () -> Gen.barabasi_albert ~seed:401 ~n:30_000 ~attach:8) };
    { name = "google_s"; group = Extra;
      build = (fun () ->
          Gen.power_law_chung_lu ~seed:402 ~n:50_000 ~alpha:2.5 ~avg_deg:8.) };
    { name = "foursq_s"; group = Extra;
      build = (fun () -> Gen.rmat ~seed:403 ~scale:14 ~edge_factor:6 ()) };
    (* ---- case studies ---- *)
    { name = "sdblp"; group = Case_study; build = sdblp };
  ]

let all = specs

let names_of_group g =
  List.filter_map (fun s -> if s.group = g then Some s.name else None) specs

let cache : (string, G.t) Hashtbl.t = Hashtbl.create 8

let graph name =
  match Hashtbl.find_opt cache name with
  | Some g -> g
  | None ->
    let spec = List.find (fun s -> s.name = name) specs in
    let g = spec.build () in
    Hashtbl.replace cache name g;
    g

let mem name = List.exists (fun s -> s.name = name) specs
