module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Prng = Dsd_util.Prng

type verdict =
  | Pass
  | Skip of string
  | Fail of string

type t = {
  name : string;
  check : Subject.t -> rng:Prng.t -> Generator.case -> verdict;
}

(* Inequality slack.  Densities are ratios of exact ints ≤ 2^53, so
   genuinely equal rationals divide to bit-identical floats; the slack
   only absorbs the binary-search stopping width of the exact
   solvers. *)
let eps = 1e-9

(* Equality tolerance for two computations of the same rational. *)
let tight = 1e-12

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

let rho subject g psi = (subject.Subject.core_exact g psi).Dsd_core.Density.density

(* ---- Theorem 1: kmax / |V_Psi| <= rho_opt <= kmax ---- *)

let theorem1_bounds =
  { name = "theorem1-bounds";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        let kmax = Subject.kmax subject c.graph c.psi in
        let r = rho subject c.graph c.psi in
        let size = float_of_int c.psi.P.size in
        let lower = float_of_int kmax /. size in
        if r < lower -. eps then
          failf "Theorem 1 lower bound violated: kmax=%d |Vpsi|=%d so \
                 rho_opt >= %.12g, but rho=%.12g"
            kmax c.psi.P.size lower r
        else if r > float_of_int kmax +. eps then
          failf "Theorem 1 upper bound violated: kmax=%d but rho=%.12g"
            kmax r
        else Pass) }

(* ---- Theorems 2-4: the approximations are 1/|V_Psi| and <= opt ---- *)

let approx_ratio =
  { name = "approx-ratio";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        let opt = rho subject c.graph c.psi in
        let size = float_of_int c.psi.P.size in
        let algos =
          [ ("PeelApp(Thm 2)", (subject.Subject.peel c.graph c.psi).density);
            ("IncApp(Thm 3)", (subject.Subject.inc_app c.graph c.psi).density);
            ("CoreApp(Thm 4)", (subject.Subject.core_app c.graph c.psi).density);
          ]
        in
        let bad =
          List.filter_map
            (fun (name, d) ->
              if d < (opt /. size) -. eps then
                Some
                  (Printf.sprintf
                     "%s below the 1/|Vpsi| ratio: %.12g < %.12g/%g" name d
                     opt size)
              else if d > opt +. eps then
                Some
                  (Printf.sprintf "%s beats the optimum: %.12g > rho=%.12g"
                     name d opt)
              else None)
            algos
        in
        match bad with
        | [] -> Pass
        | msgs -> Fail (String.concat "; " msgs)) }

(* ---- vertex relabelling ---- *)

let permute_graph rng g =
  let n = G.n g in
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  let edges =
    Array.map (fun (u, v) -> (perm.(u), perm.(v))) (G.edges g)
  in
  (G.of_edges ~n edges, perm)

let permutation_invariance =
  { name = "permutation-invariance";
    check =
      (fun subject ~rng (c : Generator.case) ->
        let permuted, perm = permute_graph rng c.graph in
        let core = subject.Subject.core_numbers c.graph c.psi in
        let core_p = subject.Subject.core_numbers permuted c.psi in
        let mismatch = ref None in
        Array.iteri
          (fun v cv ->
            if !mismatch = None && core_p.(perm.(v)) <> cv then
              mismatch := Some (v, cv, core_p.(perm.(v))))
          core;
        match !mismatch with
        | Some (v, cv, cp) ->
          failf
            "core numbers not permutation-equivariant: core(%d)=%d but \
             core(pi(%d))=%d"
            v cv v cp
        | None ->
          let r = rho subject c.graph c.psi in
          let rp = rho subject permuted c.psi in
          if Float.abs (r -. rp) > tight then
            failf "rho_opt changed under relabelling: %.17g vs %.17g" r rp
          else Pass) }

(* ---- disjoint union = max over components ---- *)

let disjoint_union =
  { name = "disjoint-union";
    check =
      (fun subject ~rng (c : Generator.case) ->
        let n2 = 3 + Prng.int rng 7 in
        let p = 0.2 +. Prng.float rng 0.4 in
        let seed = Int64.to_int (Prng.bits64 rng) land max_int in
        let other = Dsd_data.Gen.er_gnp ~seed ~n:n2 ~p in
        let union = Dsd_data.Gen.disjoint_union c.graph other in
        let r1 = rho subject c.graph c.psi in
        let r2 = rho subject other c.psi in
        let ru = rho subject union c.psi in
        if Float.abs (ru -. Float.max r1 r2) > tight then
          failf
            "rho_opt(union) should be max of the components: \
             max(%.12g, %.12g) but got %.12g"
            r1 r2 ru
        else begin
          let k1 = Subject.kmax subject c.graph c.psi in
          let k2 = Subject.kmax subject other c.psi in
          let ku = Subject.kmax subject union c.psi in
          if ku <> max k1 k2 then
            failf "kmax(union) should be max(%d, %d) but got %d" k1 k2 ku
          else Pass
        end) }

(* ---- adding an edge is monotone (instances are subgraph matches,
   Definition 7, so no instance is ever destroyed) ---- *)

let edge_monotonicity =
  { name = "edge-monotonicity";
    check =
      (fun subject ~rng (c : Generator.case) ->
        let g = c.graph in
        let n = G.n g in
        let non_edges = ref [] in
        for u = n - 1 downto 0 do
          for v = n - 1 downto u + 1 do
            if not (G.mem_edge g u v) then non_edges := (u, v) :: !non_edges
          done
        done;
        let non_edges = Array.of_list !non_edges in
        if Array.length non_edges = 0 then Skip "graph is complete"
        else begin
          let u, v = non_edges.(Prng.int rng (Array.length non_edges)) in
          let bigger =
            G.of_edges ~n (Array.append (G.edges g) [| (u, v) |])
          in
          let r = rho subject g c.psi in
          let r' = rho subject bigger c.psi in
          if r' < r -. eps then
            failf "adding edge (%d,%d) decreased rho_opt: %.12g -> %.12g" u
              v r r'
          else begin
            let k = Subject.kmax subject g c.psi in
            let k' = Subject.kmax subject bigger c.psi in
            if k' < k then
              failf "adding edge (%d,%d) decreased kmax: %d -> %d" u v k k'
            else Pass
          end
        end) }

(* ---- warm-started flow must be bit-identical to reset-per-probe ---- *)

let warm_vs_cold =
  { name = "warm-vs-cold";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        let check_one name run =
          let warm : Dsd_core.Density.subgraph = run ~warm:true in
          let cold : Dsd_core.Density.subgraph = run ~warm:false in
          if warm.density <> cold.density then
            Some
              (Printf.sprintf "%s: warm density %.17g <> cold %.17g" name
                 warm.density cold.density)
          else if warm.vertices <> cold.vertices then
            Some
              (Printf.sprintf "%s: warm vertex set differs from cold (%d vs %d vertices)"
                 name
                 (Array.length warm.vertices)
                 (Array.length cold.vertices))
          else None
        in
        let bad =
          List.filter_map Fun.id
            [ check_one "Exact" (fun ~warm ->
                  subject.Subject.exact ~warm c.graph c.psi);
              check_one "CoreExact" (fun ~warm ->
                  subject.Subject.core_exact ~warm c.graph c.psi);
            ]
        in
        match bad with
        | [] -> Pass
        | msgs -> Fail (String.concat "; " msgs)) }

(* ---- pool width 1 vs N bit-equality ---- *)

let pool_width =
  { name = "pool-width";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        Dsd_util.Pool.with_pool 2 (fun pool ->
            let check_one name (seq : Dsd_core.Density.subgraph)
                (par : Dsd_core.Density.subgraph) =
              if seq.density <> par.density || seq.vertices <> par.vertices
              then
                Some
                  (Printf.sprintf
                     "%s: pooled result differs (density %.17g vs %.17g)"
                     name seq.density par.density)
              else None
            in
            let bad =
              List.filter_map Fun.id
                [ check_one "CoreExact"
                    (subject.Subject.core_exact c.graph c.psi)
                    (subject.Subject.core_exact ~pool c.graph c.psi);
                  check_one "IncApp"
                    (subject.Subject.inc_app c.graph c.psi)
                    (subject.Subject.inc_app ~pool c.graph c.psi);
                ]
            in
            let cores = subject.Subject.core_numbers c.graph c.psi in
            let cores_p = subject.Subject.core_numbers ~pool c.graph c.psi in
            let bad =
              if cores <> cores_p then
                "core numbers differ across pool widths" :: bad
              else bad
            in
            match bad with
            | [] -> Pass
            | msgs -> Fail (String.concat "; " msgs))) }

(* ---- Exact = CoreExact = brute force on small graphs ---- *)

let exact_vs_brute =
  { name = "exact-vs-brute";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        let d_exact = (subject.Subject.exact c.graph c.psi).density in
        let d_core = rho subject c.graph c.psi in
        if Float.abs (d_exact -. d_core) > tight then
          failf "Exact and CoreExact disagree: %.17g vs %.17g" d_exact d_core
        else if G.n c.graph > 10 then
          Skip "n > 10: brute force too slow, Exact-vs-CoreExact only"
        else begin
          let d_brute, _ = Oracle.brute_force_densest c.graph c.psi in
          if Float.abs (d_exact -. d_brute) > eps then
            failf "exact solvers disagree with brute force: %.12g vs %.12g"
              d_exact d_brute
          else Pass
        end) }

(* ---- planted certificate: any subset's density lower-bounds
   rho_opt; the generator plants one dense enough to bite ---- *)

let planted_certificate =
  { name = "planted-certificate";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        match c.cert with
        | None -> Skip "no certificate on this case"
        | Some vs when Array.length vs = 0 -> Skip "certificate shrunk away"
        | Some vs ->
          let witness = Oracle.density_of_subset c.graph c.psi vs in
          let r = rho subject c.graph c.psi in
          if r < witness -. eps then
            failf
              "rho_opt=%.12g below the certificate subset's density %.12g \
               (|cert|=%d)"
              r witness (Array.length vs)
          else Pass) }

(* ---- the serving layer answers exactly what the API answers ----

   Every case's graph is registered in a fresh server State; each
   endpoint request is round-tripped through the wire codec
   (encode_request / decode_request, encode_response / decode_response
   — floats travel as IEEE-754 bits) and dispatched via State.handle,
   then compared bit-identically against a direct library call.  Each
   request is issued twice so the second answer comes from the result
   LRU: the cache must be invisible. *)

let serve_equals_api =
  let module Sv = Dsd_serve.State in
  let module Pr = Dsd_serve.Protocol in
  let roundtrip state req =
    let tag, body = Pr.encode_request req in
    let req = Pr.decode_request tag body in
    let resp = Sv.handle state req in
    let rtag, rbody = Pr.encode_response resp in
    Pr.decode_response rtag rbody
  in
  let same_subgraph name (resp : Pr.response) (sg : Dsd_core.Density.subgraph) =
    match resp with
    | Density_r d when d = sg.density -> None
    | Cds_r { density; vertices } | Query_r { density; vertices } ->
      if density <> sg.density then
        Some
          (Printf.sprintf "%s: served density %.17g <> api %.17g" name density
             sg.density)
      else if vertices <> sg.vertices then
        Some (Printf.sprintf "%s: served vertex set differs from api" name)
      else None
    | Density_r d ->
      Some
        (Printf.sprintf "%s: served density %.17g <> api %.17g" name d
           sg.density)
    | Error_r msg -> Some (Printf.sprintf "%s: served error: %s" name msg)
    | _ -> Some (Printf.sprintf "%s: unexpected response kind" name)
  in
  { name = "serve-equals-api";
    check =
      (fun subject ~rng (c : Generator.case) ->
        let state = Sv.create ~max_cached:8 [ ("g", c.graph) ] in
        let psi = c.psi.P.name in
        let twice name req expect =
          (* cold solve, then the LRU hit: both must match the API *)
          match same_subgraph name (roundtrip state req) expect with
          | Some _ as bad -> bad
          | None ->
            Option.map
              (fun msg -> "cached " ^ msg)
              (same_subgraph name (roundtrip state req) expect)
        in
        let density_reqs =
          [ ("exact", fun () -> subject.Subject.exact c.graph c.psi);
            ("coreexact", fun () -> subject.Subject.core_exact c.graph c.psi);
            ("peel", fun () -> subject.Subject.peel c.graph c.psi);
            ("incapp", fun () -> subject.Subject.inc_app c.graph c.psi);
            ("coreapp", fun () -> subject.Subject.core_app c.graph c.psi);
          ]
        in
        let bad =
          List.filter_map
            (fun (algorithm, api) ->
              let expect = api () in
              match
                twice ("density/" ^ algorithm)
                  (Pr.Density { graph = "g"; psi; algorithm })
                  expect
              with
              | Some _ as bad -> bad
              | None ->
                twice ("cds/" ^ algorithm)
                  (Pr.Cds { graph = "g"; psi; algorithm })
                  expect)
            density_reqs
        in
        let bad =
          match
            roundtrip state (Pr.Decompose { graph = "g"; psi })
          with
          | Pr.Decompose_r { kmax; core } ->
            let api_core = subject.Subject.core_numbers c.graph c.psi in
            let api_kmax = Subject.kmax subject c.graph c.psi in
            if core <> api_core then
              "decompose: served core numbers differ from api" :: bad
            else if kmax <> api_kmax then
              Printf.sprintf "decompose: served kmax %d <> api %d" kmax
                api_kmax
              :: bad
            else bad
          | Pr.Error_r msg -> ("decompose: served error: " ^ msg) :: bad
          | _ -> "decompose: unexpected response kind" :: bad
        in
        let bad =
          if G.n c.graph = 0 then bad
          else begin
            let q = [| Prng.int rng (G.n c.graph) |] in
            let api =
              (Dsd_core.Query_dsd.run c.graph c.psi ~query:q)
                .Dsd_core.Query_dsd.subgraph
            in
            match
              twice "query"
                (Pr.Query { graph = "g"; psi; vertices = q })
                api
            with
            | Some msg -> msg :: bad
            | None -> bad
          end
        in
        match bad with
        | [] -> Pass
        | msgs -> Fail (String.concat "; " msgs)) }

(* ---- deleting an edge is monotone downward (dual of
   edge-monotonicity: removing an edge can only destroy instances) ---- *)

let edge_deletion_monotonicity =
  { name = "edge-deletion-monotonicity";
    check =
      (fun subject ~rng (c : Generator.case) ->
        let g = c.graph in
        let edges = G.edges g in
        if Array.length edges = 0 then Skip "graph has no edges"
        else begin
          let u, v = edges.(Prng.int rng (Array.length edges)) in
          let smaller =
            G.of_edges ~n:(G.n g)
              (Array.of_seq
                 (Seq.filter
                    (fun (a, b) ->
                      not ((a = u && b = v) || (a = v && b = u)))
                    (Array.to_seq edges)))
          in
          let r = rho subject g c.psi in
          let r' = rho subject smaller c.psi in
          if r' > r +. eps then
            failf "deleting edge (%d,%d) increased rho_opt: %.12g -> %.12g" u
              v r r'
          else begin
            let k = Subject.kmax subject g c.psi in
            let k' = Subject.kmax subject smaller c.psi in
            if k' > k then
              failf "deleting edge (%d,%d) increased kmax: %d -> %d" u v k k'
            else Pass
          end
        end) }

(* ---- incremental sessions equal a from-scratch rebuild ----

   A random delta script (Delta.generate) is streamed into a fresh
   server State through the wire codec, one Apply_delta frame per op
   so interleaved add/remove order survives the "inserts before
   deletes" endpoint convention.  After every batch the served
   "incremental" density/cds answers (patched Inc_dsd arena, LRU in
   front) must be bit-identical to a fresh Inc_dsd session on the
   rebuilt graph, the density must equal CoreExact on the rebuild, and
   Decompose must return the rebuild's core numbers.  Issuing the same
   cacheable requests across batches also proves the per-graph cache
   invalidation: a stale LRU entry would surface as a mismatch on the
   next batch.  On failure the script is shrunk (the whole run is a
   deterministic function of the script) and printed for replay. *)

let delta_equals_rebuild =
  let module Sv = Dsd_serve.State in
  let module Pr = Dsd_serve.Protocol in
  let roundtrip state req =
    let tag, body = Pr.encode_request req in
    let req = Pr.decode_request tag body in
    let resp = Sv.handle state req in
    let rtag, rbody = Pr.encode_response resp in
    Pr.decode_response rtag rbody
  in
  { name = "delta-equals-rebuild";
    check =
      (fun subject ~rng (c : Generator.case) ->
        if c.psi.P.kind <> P.Clique then
          Skip "incremental sessions are clique-only"
        else begin
          let script = Delta.generate rng c.graph in
          if Array.length script = 0 then
            Skip "graph too small for a delta script"
          else begin
            let n = G.n c.graph in
            let base_edges = G.edges c.graph in
            let psi = c.psi.P.name in
            (* The whole run is a pure function of the script — exactly
               what the shrinker needs. *)
            let run (script : Delta.script) =
              let state = Sv.create ~max_cached:8 [ ("g", c.graph) ] in
              let bad = ref [] in
              let push fmt =
                Printf.ksprintf (fun s -> bad := s :: !bad) fmt
              in
              Array.iteri
                (fun bi batch ->
                  Array.iter
                    (fun op ->
                      let adds, removes =
                        match op with
                        | Dsd_graph.Dynamic.Add (u, v) -> ([| (u, v) |], [||])
                        | Dsd_graph.Dynamic.Remove (u, v) ->
                          ([||], [| (u, v) |])
                      in
                      match
                        roundtrip state
                          (Pr.Apply_delta { graph = "g"; adds; removes })
                      with
                      | Pr.Apply_delta_r _ -> ()
                      | Pr.Error_r msg ->
                        push "batch %d: apply-delta error: %s" bi msg
                      | _ ->
                        push "batch %d: unexpected apply-delta response" bi)
                    batch;
                  let rebuilt =
                    G.of_edges ~n
                      (Delta.final_edges ~n base_edges
                         (Array.sub script 0 (bi + 1)))
                  in
                  let fresh =
                    Dsd_core.Inc_dsd.query
                      (Dsd_core.Inc_dsd.create rebuilt c.psi)
                  in
                  (match
                     roundtrip state
                       (Pr.Cds { graph = "g"; psi; algorithm = "incremental" })
                   with
                  | Pr.Cds_r { density; vertices } ->
                    if density <> fresh.density then
                      push "batch %d: served density %.17g <> rebuild %.17g"
                        bi density fresh.density
                    else if vertices <> fresh.vertices then
                      push "batch %d: served CDS vertex set differs from rebuild"
                        bi
                  | Pr.Error_r msg -> push "batch %d: cds error: %s" bi msg
                  | _ -> push "batch %d: unexpected cds response" bi);
                  (match
                     roundtrip state
                       (Pr.Density
                          { graph = "g"; psi; algorithm = "incremental" })
                   with
                  | Pr.Density_r d ->
                    if d <> fresh.density then
                      push "batch %d: served density %.17g <> rebuild %.17g"
                        bi d fresh.density
                  | Pr.Error_r msg ->
                    push "batch %d: density error: %s" bi msg
                  | _ -> push "batch %d: unexpected density response" bi);
                  let d_core =
                    (subject.Subject.core_exact rebuilt c.psi).density
                  in
                  if fresh.density <> d_core then
                    push "batch %d: incremental density %.17g <> CoreExact %.17g"
                      bi fresh.density d_core;
                  (match
                     roundtrip state (Pr.Decompose { graph = "g"; psi })
                   with
                  | Pr.Decompose_r { kmax; core } ->
                    let api_core =
                      subject.Subject.core_numbers rebuilt c.psi
                    in
                    if core <> api_core then
                      push "batch %d: served core numbers differ from rebuild"
                        bi
                    else if kmax <> Subject.kmax subject rebuilt c.psi then
                      push "batch %d: served kmax %d differs from rebuild" bi
                        kmax
                  | Pr.Error_r msg ->
                    push "batch %d: decompose error: %s" bi msg
                  | _ -> push "batch %d: unexpected decompose response" bi))
                script;
              List.rev !bad
            in
            match run script with
            | [] -> Pass
            | _ ->
              let minimal =
                Delta.shrink script ~still_fails:(fun s -> run s <> [])
              in
              failf "%s [delta script: %s]"
                (String.concat "; " (run minimal))
                (Delta.to_string minimal)
          end
        end) }

(* ---- top-k locally densest extraction ---- *)

(* Structural contract of Topk_lds.run: regions are pairwise disjoint,
   non-empty, of positive density, densities non-increasing, and every
   reported density is the true Psi-density of the reported vertex set
   (re-derived by the naive oracle — exact rationals, so equality is
   bitwise). *)
let topk_disjointness =
  { name = "topk-disjointness";
    check =
      (fun _subject ~rng (c : Generator.case) ->
        let k = 1 + Prng.int rng 3 in
        let r = Dsd_core.Topk_lds.run ~k c.graph c.psi in
        let seen = Hashtbl.create 16 in
        let last = ref infinity in
        let bad = ref [] in
        let push fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
        List.iteri
          (fun i (sg : Dsd_core.Density.subgraph) ->
            if Array.length sg.vertices = 0 then push "region %d is empty" i;
            if sg.density <= 0. then
              push "region %d has density %.17g <= 0" i sg.density;
            if sg.density > !last then
              push "region %d density %.17g exceeds previous %.17g" i
                sg.density !last;
            last := sg.density;
            let oracle = Oracle.density_of_subset c.graph c.psi sg.vertices in
            if sg.density <> oracle then
              push "region %d density %.17g but oracle says %.17g" i
                sg.density oracle;
            Array.iter
              (fun v ->
                if Hashtbl.mem seen v then
                  push "vertex %d appears in regions %d and %d" v
                    (Hashtbl.find seen v) i
                else Hashtbl.add seen v i)
              sg.vertices)
          r.Dsd_core.Topk_lds.regions;
        if List.length r.Dsd_core.Topk_lds.regions > k then
          push "asked for k=%d but got %d regions" k
            (List.length r.Dsd_core.Topk_lds.regions);
        match !bad with
        | [] -> Pass
        | msgs -> failf "k=%d: %s" k (String.concat "; " (List.rev msgs))) }

(* Extraction is greedy and canonical, so the run at k - 1 must be
   exactly the first k - 1 regions of the run at k — no tie-breaking
   drift between invocations. *)
let topk_prefix_stability =
  { name = "topk-prefix-stability";
    check =
      (fun _subject ~rng (c : Generator.case) ->
        let k = 2 + Prng.int rng 2 in
        let full = (Dsd_core.Topk_lds.run ~k c.graph c.psi).regions in
        let prefix =
          (Dsd_core.Topk_lds.run ~k:(k - 1) c.graph c.psi).regions
        in
        let rec compare_ i = function
          | _, [] -> Pass
          | [], _ :: _ ->
            failf "k=%d: run at k-1 has more regions than run at k" k
          | ( (a : Dsd_core.Density.subgraph) :: rest_a,
              (b : Dsd_core.Density.subgraph) :: rest_b ) ->
            if Int64.bits_of_float a.density <> Int64.bits_of_float b.density
            then
              failf "k=%d region %d: densities drift (%.17g vs %.17g)" k i
                a.density b.density
            else if a.vertices <> b.vertices then
              failf "k=%d region %d: vertex sets drift" k i
            else compare_ (i + 1) (rest_a, rest_b)
        in
        compare_ 0 (full, prefix)) }

(* The first extracted region is the canonical maximal CDS, so its
   density must be bit-identical to Algorithm 1's rho_opt; an empty
   extraction is only legal when rho_opt itself is 0. *)
let top1_equals_cds =
  { name = "top1-equals-cds";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        let exact = subject.Subject.exact c.graph c.psi in
        match (Dsd_core.Topk_lds.run ~k:1 c.graph c.psi).regions with
        | [] ->
          if exact.density = 0. then Pass
          else
            failf "no region extracted but Exact finds rho=%.17g"
              exact.density
        | [ sg ] ->
          if Int64.bits_of_float sg.density
             = Int64.bits_of_float exact.density
          then Pass
          else
            failf "top-1 density %.17g <> Exact rho %.17g" sg.density
              exact.density
        | regions -> failf "k=1 returned %d regions" (List.length regions)) }

(* ---- round-synchronous parallel peel ≡ sequential peel ---- *)

(* The bucket-free peel engine must reproduce the whole transcript —
   not just the answer — at every pool width: core numbers, peel
   order, kmax, the residual-density trace with its best suffix, and
   PeelApp's subgraph (the consumer of the tracked order).
   [sequential_below:0] forces even these small cases off the inline
   path and through the worker fan-out. *)
let parallel_peel_equivalence =
  let module CC = Dsd_core.Clique_core in
  { name = "parallel-peel-equivalence";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        let seq = CC.decompose ~track_density:true c.graph c.psi in
        let peel_seq = subject.Subject.peel c.graph c.psi in
        let check_width width =
          Dsd_util.Pool.with_pool ~sequential_below:0 width (fun pool ->
              let par =
                CC.decompose ~pool ~track_density:true c.graph c.psi
              in
              if par.CC.core <> seq.CC.core then
                Some (Printf.sprintf "width %d: core numbers differ" width)
              else if par.CC.order <> seq.CC.order then
                Some (Printf.sprintf "width %d: peel order differs" width)
              else if par.CC.kmax <> seq.CC.kmax then
                Some
                  (Printf.sprintf "width %d: kmax %d <> %d" width par.CC.kmax
                     seq.CC.kmax)
              else if par.CC.residual_densities <> seq.CC.residual_densities
              then
                Some
                  (Printf.sprintf "width %d: residual-density trace differs"
                     width)
              else if
                Int64.bits_of_float par.CC.best_residual_density
                <> Int64.bits_of_float seq.CC.best_residual_density
                || par.CC.best_residual_start <> seq.CC.best_residual_start
              then
                Some
                  (Printf.sprintf "width %d: best residual suffix drifts \
                                   (%.17g@%d vs %.17g@%d)"
                     width par.CC.best_residual_density
                     par.CC.best_residual_start seq.CC.best_residual_density
                     seq.CC.best_residual_start)
              else begin
                let p = subject.Subject.peel ~pool c.graph c.psi in
                if
                  Int64.bits_of_float p.density
                  <> Int64.bits_of_float peel_seq.density
                  || p.vertices <> peel_seq.vertices
                then
                  Some
                    (Printf.sprintf
                       "width %d: PeelApp result differs (%.17g vs %.17g)"
                       width p.density peel_seq.density)
                else None
              end)
        in
        match List.filter_map check_width [ 2; 4 ] with
        | [] -> Pass
        | msgs -> Fail (String.concat "; " msgs)) }

(* ---- density-friendly hierarchy ---- *)

(* Structural laws of the decomposition chain (the former ad-hoc
   test_ld checks, promoted so every generator exercises them): levels
   partition V, each level block is sorted and duplicate-free, prefix
   sizes accumulate exactly, marginal densities strictly decrease, and
   every reported marginal is the slow-counted
   (mu(B_i) - mu(B_{i-1})) / |X_i| of its own prefix — bit-identical,
   since equal rationals divide to equal floats. *)
let hierarchy_nesting =
  let module LD = Dsd_core.Ld_decomposition in
  { name = "hierarchy-nesting";
    check =
      (fun _subject ~rng:_ (c : Generator.case) ->
        let d = LD.decompose c.graph c.psi in
        let n = Dsd_graph.Graph.n c.graph in
        let seen = Array.make (max 1 n) false in
        let bad = ref [] in
        let push fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
        let size = ref 0 in
        let last_marginal = ref infinity in
        let prev_mu = ref 0 in
        List.iteri
          (fun i (lvl : LD.level) ->
            if Array.length lvl.vertices = 0 then push "level %d is empty" i;
            Array.iter
              (fun v ->
                if v < 0 || v >= n then push "level %d: vertex %d out of range" i v
                else if seen.(v) then push "vertex %d appears twice" v
                else seen.(v) <- true)
              lvl.vertices;
            let sorted = Array.copy lvl.vertices in
            Array.sort compare sorted;
            if sorted <> lvl.vertices then push "level %d vertices unsorted" i;
            size := !size + Array.length lvl.vertices;
            if lvl.prefix_size <> !size then
              push "level %d prefix_size %d, expected %d" i lvl.prefix_size
                !size;
            if lvl.marginal_density >= !last_marginal then
              push "level %d marginal %.17g not below %.17g" i
                lvl.marginal_density !last_marginal;
            last_marginal := lvl.marginal_density;
            let prefix = LD.prefix d (i + 1) in
            let sub, _ = Dsd_graph.Graph.induced c.graph prefix in
            let mu = Oracle.slow_count sub c.psi in
            let expect =
              float_of_int (mu - !prev_mu)
              /. float_of_int (Array.length lvl.vertices)
            in
            prev_mu := mu;
            if
              Int64.bits_of_float lvl.marginal_density
              <> Int64.bits_of_float expect
            then
              push "level %d marginal %.17g but slow count says %.17g" i
                lvl.marginal_density expect)
          d.LD.levels;
        if !size <> n then push "levels cover %d of %d vertices" !size n;
        match !bad with
        | [] -> Pass
        | msgs -> Fail (String.concat "; " (List.rev msgs))) }

(* B_1 is the canonical maximal densest subgraph: its marginal is
   bit-identical to Algorithm 1's rho_opt, and (when positive) its
   vertex set is exactly the canonical region top-1 extraction
   returns.  A zero first marginal is only legal when rho_opt is 0. *)
let hierarchy_level1_equals_cds =
  let module LD = Dsd_core.Ld_decomposition in
  { name = "hierarchy-level1-equals-cds";
    check =
      (fun subject ~rng:_ (c : Generator.case) ->
        let exact = subject.Subject.exact c.graph c.psi in
        match (LD.decompose c.graph c.psi).LD.levels with
        | [] ->
          if Dsd_graph.Graph.n c.graph = 0 then Pass
          else failf "no levels on a non-empty graph"
        | (lvl : LD.level) :: _ ->
          if
            Int64.bits_of_float lvl.marginal_density
            <> Int64.bits_of_float exact.density
          then
            failf "B_1 marginal %.17g <> Exact rho %.17g" lvl.marginal_density
              exact.density
          else if lvl.marginal_density = 0. then Pass
          else (
            match (Dsd_core.Topk_lds.run ~k:1 c.graph c.psi).regions with
            | [ sg ] ->
              if sg.vertices <> lvl.vertices then
                failf "B_1 vertex set differs from the canonical CDS region"
              else Pass
            | regions ->
              failf "top-1 extraction returned %d regions with rho > 0"
                (List.length regions))) }

(* The prepared/warm fast path must reproduce the fresh-build escape
   hatch exactly — levels, marginals, prefixes, even the probe count,
   since both paths pose the same alpha sequence and only differ in
   build-vs-retarget. *)
let hierarchy_prepared_equals_fresh =
  let module LD = Dsd_core.Ld_decomposition in
  { name = "hierarchy-prepared-equals-fresh";
    check =
      (fun _subject ~rng:_ (c : Generator.case) ->
        let base = LD.decompose c.graph c.psi in
        let same label (other : LD.t) =
          if List.length other.LD.levels <> List.length base.LD.levels then
            Some
              (Printf.sprintf "%s: %d levels vs %d" label
                 (List.length other.LD.levels)
                 (List.length base.LD.levels))
          else if other.LD.iterations <> base.LD.iterations then
            Some
              (Printf.sprintf "%s: %d probes vs %d" label other.LD.iterations
                 base.LD.iterations)
          else
            List.find_map
              (fun ((a : LD.level), (b : LD.level)) ->
                if
                  Int64.bits_of_float a.marginal_density
                  <> Int64.bits_of_float b.marginal_density
                then
                  Some
                    (Printf.sprintf "%s: marginal %.17g vs %.17g" label
                       a.marginal_density b.marginal_density)
                else if a.vertices <> b.vertices then
                  Some (Printf.sprintf "%s: vertex sets differ" label)
                else if a.prefix_size <> b.prefix_size then
                  Some
                    (Printf.sprintf "%s: prefix %d vs %d" label a.prefix_size
                       b.prefix_size)
                else None)
              (List.combine other.LD.levels base.LD.levels)
        in
        let results =
          List.filter_map
            (fun (label, d) -> same label d)
            [ ("fresh-build", LD.decompose ~prepared:false c.graph c.psi);
              ("cold-flow", LD.decompose ~warm:false c.graph c.psi) ]
        in
        match results with
        | [] -> Pass
        | msgs -> Fail (String.concat "; " msgs)) }

let all =
  [ theorem1_bounds;
    approx_ratio;
    permutation_invariance;
    disjoint_union;
    edge_monotonicity;
    warm_vs_cold;
    pool_width;
    exact_vs_brute;
    planted_certificate;
    serve_equals_api;
    edge_deletion_monotonicity;
    delta_equals_rebuild;
    topk_disjointness;
    topk_prefix_stability;
    top1_equals_cds;
    parallel_peel_equivalence;
    hierarchy_nesting;
    hierarchy_level1_equals_cds;
    hierarchy_prepared_equals_fresh;
  ]

let find name = List.find_opt (fun r -> r.name = name) all
let names = List.map (fun r -> r.name) all
