(** Composable random test-case generators for the fuzz engine.

    Every generator is a pure function of a {!Dsd_util.Prng.t}: equal
    states sample equal cases, which is what makes a failing case
    replayable from its seed alone.  Graphs are kept small (n ≤ ~20)
    so that every metamorphic relation — including the brute-force and
    exact-flow ones — stays cheap enough to run hundreds of cases per
    second.

    Planted generators additionally carry a {e certificate}: a vertex
    subset whose (recomputed) Psi-density is a sound lower bound on
    rho_opt.  The certificate survives shrinking because the relation
    re-evaluates the subset's density on the current graph rather than
    trusting a stored number. *)

type case = {
  graph : Dsd_graph.Graph.t;
  psi : Dsd_pattern.Pattern.t;
  cert : int array option;
      (** sorted vertex subset whose density lower-bounds rho_opt *)
  label : string;  (** generator name + parameters, for reports *)
}

type t = {
  name : string;
  sample : Dsd_util.Prng.t -> case;
}

(** Erdős-Rényi G(n, p) over a random psi. *)
val gnp : t

(** Chung-Lu power-law degrees over a random psi. *)
val chung_lu : t

(** Disjoint union of two independent G(n, p) halves — exercises the
    component relations with genuinely disconnected inputs. *)
val union_of_gnp : t

(** Sparse ER background with an h-clique-complete block planted on a
    random vertex subset; psi is the h-clique and the block is the
    certificate (density ≥ C(block, h) / block). *)
val planted_block : t

(** Very sparse near-tree graphs — exercises the empty/zero-instance
    corners (kmax = 0, rho = 0). *)
val sparse : t

(** The registry, in fixed order. *)
val all : t list

(** [sample rng] picks a generator uniformly and samples one case. *)
val sample : Dsd_util.Prng.t -> case

(** [pp_case] for qcheck/alcotest diagnostics. *)
val pp_case : Format.formatter -> case -> unit

(** [malformed_frame rng] is [(label, bytes)] where [bytes] is a
    deliberately broken serve-protocol frame — truncated header or
    body, oversized or undersized length prefix, wrong version,
    unknown tag, or garbage body.  Built by hand, independently of
    {!Dsd_serve.Protocol}, so the fault-injection tests cannot be
    fooled by a codec that "agrees" with its own corruption. *)
val malformed_frame : Dsd_util.Prng.t -> string * string
