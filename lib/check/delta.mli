(** Delta scripts: randomized edge insert/delete streams for the
    incremental subsystem, with a pure application model, a printer
    for failure messages, and a greedy shrinker so a failing stream
    minimizes and replays.

    Used by the [delta-equals-rebuild] relation and the
    [test_incremental] battery. *)

(** Batches of ops, applied in order. *)
type script = Dsd_graph.Dynamic.op array array

(** [generate rng g] derives a small script (1-3 batches of 1-6 ops)
    for the case graph: inserts of random pairs, deletes biased
    towards edges that actually exist, and a sprinkle of deliberate
    no-ops (self-loops, duplicate inserts, absent deletes).  Empty on
    graphs with fewer than two vertices. *)
val generate : Dsd_util.Prng.t -> Dsd_graph.Graph.t -> script

(** [final_edges ~n edges script] is the edge set after applying the
    script to [edges] in the pure model — what a from-scratch rebuild
    must see.  Mirrors {!Dsd_graph.Dynamic}'s no-op semantics. *)
val final_edges :
  n:int -> (int * int) array -> script -> (int * int) array

(** Compact one-line rendering (ops as [+u,v]/[-u,v], batches
    separated by [|]) for failure messages. *)
val to_string : script -> string

(** [shrink script ~still_fails] greedily drops batches and single ops
    while the (deterministic) failure predicate keeps holding, to a
    fixpoint. *)
val shrink : script -> still_fails:(script -> bool) -> script
