(** Independent ground-truth implementations.

    Everything here is deliberately naive: exhaustive or re-enumerating
    re-derivations of the quantities the optimised library computes,
    used as oracles by both the unit suites ([test/helpers.ml]) and the
    metamorphic fuzz engine ({!Engine}).  None of this code shares a
    line with the code under test. *)

(** [slow_count g psi] is mu(G, Psi) by the slow generic matcher
    (naive clique enumeration for clique patterns). *)
val slow_count : Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int

(** [density_of_subset g psi vs] is the Psi-density of the subgraph of
    [g] induced by [vs]; 0 on the empty set.  For any [vs] this is a
    sound lower bound on rho_opt — the certificate check of
    {!Relation.planted_certificate} rests on exactly this. *)
val density_of_subset :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array -> float

(** [brute_force_densest g psi] is the exact densest subgraph by
    enumeration of all 2^n - 1 non-empty vertex subsets.  Only for
    n <= 16 (asserted). *)
val brute_force_densest :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> float * int array

(** [survivors g psi k] marks the vertices of the (k, Psi)-core by
    threshold peeling with full re-enumeration after every deletion. *)
val survivors :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int -> bool array

(** [naive_core_numbers g psi] is the (k, Psi)-core number of every
    vertex, by running {!survivors} for k = 1, 2, ... until empty. *)
val naive_core_numbers :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array
