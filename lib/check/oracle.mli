(** Independent ground-truth implementations.

    Everything here is deliberately naive: exhaustive or re-enumerating
    re-derivations of the quantities the optimised library computes,
    used as oracles by both the unit suites ([test/helpers.ml]) and the
    metamorphic fuzz engine ({!Engine}).  None of this code shares a
    line with the code under test. *)

(** [slow_count g psi] is mu(G, Psi) by the slow generic matcher
    (naive clique enumeration for clique patterns). *)
val slow_count : Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int

(** [density_of_subset g psi vs] is the Psi-density of the subgraph of
    [g] induced by [vs]; 0 on the empty set.  For any [vs] this is a
    sound lower bound on rho_opt — the certificate check of
    {!Relation.planted_certificate} rests on exactly this. *)
val density_of_subset :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array -> float

(** [brute_force_densest g psi] is the exact densest subgraph by
    enumeration of all 2^n - 1 non-empty vertex subsets.  Only for
    n <= 16 (asserted). *)
val brute_force_densest :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> float * int array

(** [brute_force_maximal_densest g psi] is the union of {e all}
    maximum-density subsets — the canonical maximal densest subgraph
    {!Dsd_core.Topk_lds} extracts each round — with its exact density,
    by subset enumeration.  [(0., [||])] when mu(G, Psi) = 0.  Exact
    float comparisons are sound at n <= 16 (asserted): densities are
    quotients of small ints, so equal floats mean equal rationals. *)
val brute_force_maximal_densest :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> float * int array

(** [brute_force_topk ~k g psi] iterates
    {!brute_force_maximal_densest} on the shrinking remaining graph:
    the ground-truth top-k locally densest regions, as
    [(density, vertices)] in extraction order (original vertex ids,
    each array sorted).  Stops early when the density reaches zero.
    Only for n <= 16 and k >= 1 (asserted). *)
val brute_force_topk :
  k:int -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t ->
  (float * int array) list

(** [brute_force_ld_decomposition g psi] is the ground-truth
    density-friendly decomposition: greedily peel maximal max-marginal
    augmentations, ranking marginals as exact int rationals and
    augmenting by the union of all argmax sets (max-marginal
    augmentations are closed under union, so the union is canonical).
    Returns [(marginal, new vertices)] outermost first, each vertex
    array sorted; the trailing level has marginal 0 and holds whatever
    joins no instance.  The floats are the same int divisions
    {!Dsd_core.Ld_decomposition} performs, so agreement is bit-exact.
    Only for n <= 12 (asserted; each level enumerates all subsets of
    the remaining vertices). *)
val brute_force_ld_decomposition :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> (float * int array) list

(** [survivors g psi k] marks the vertices of the (k, Psi)-core by
    threshold peeling with full re-enumeration after every deletion. *)
val survivors :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int -> bool array

(** [naive_core_numbers g psi] is the (k, Psi)-core number of every
    vertex, by running {!survivors} for k = 1, 2, ... until empty. *)
val naive_core_numbers :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array
