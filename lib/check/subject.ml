type subgraph = Dsd_core.Density.subgraph

type t = {
  name : string;
  exact :
    ?pool:Dsd_util.Pool.t -> ?warm:bool ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
  core_exact :
    ?pool:Dsd_util.Pool.t -> ?warm:bool ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
  peel :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
  inc_app :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
  core_app :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
  core_numbers :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array;
}

let default =
  {
    name = "library";
    exact =
      (fun ?pool ?warm g psi ->
        (Dsd_core.Exact.run ?pool ?warm g psi).Dsd_core.Exact.subgraph);
    core_exact =
      (fun ?pool ?warm g psi ->
        (Dsd_core.Core_exact.run ?pool ?warm g psi).Dsd_core.Core_exact.subgraph);
    peel =
      (fun ?pool g psi ->
        (Dsd_core.Peel_app.run ?pool g psi).Dsd_core.Peel_app.subgraph);
    inc_app =
      (fun ?pool g psi ->
        (Dsd_core.Inc_app.run ?pool g psi).Dsd_core.Inc_app.subgraph);
    core_app =
      (fun ?pool g psi ->
        (Dsd_core.Core_app.run ?pool g psi).Dsd_core.Core_app.subgraph);
    core_numbers =
      (fun ?pool g psi ->
        (Dsd_core.Clique_core.decompose ?pool ~track_density:false g psi)
          .Dsd_core.Clique_core.core);
  }

let kmax t g psi = Array.fold_left max 0 (t.core_numbers g psi)
