module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Prng = Dsd_util.Prng
module Gen = Dsd_data.Gen

type case = {
  graph : G.t;
  psi : P.t;
  cert : int array option;
  label : string;
}

type t = {
  name : string;
  sample : Prng.t -> case;
}

(* Seed-based Gen functions are re-seeded from the case stream so one
   Prng.t drives the whole sample. *)
let draw_seed rng = Int64.to_int (Prng.bits64 rng) land max_int

(* Weighted psi choice.  Cliques dominate (they exercise the paper's
   main path); stars and the 4-cycle take the Appendix-D closed-form
   decompositions; h = 4 keeps enumeration honest. *)
let pick_psi rng =
  match Prng.int rng 10 with
  | 0 | 1 | 2 | 3 -> P.edge
  | 4 | 5 | 6 -> P.triangle
  | 7 -> P.clique 4
  | 8 -> P.star 2
  | _ -> P.diamond

let gnp =
  { name = "gnp";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let n = 4 + Prng.int rng 12 in
        let p = 0.15 +. Prng.float rng 0.35 in
        let graph = Gen.er_gnp ~seed:(draw_seed rng) ~n ~p in
        { graph; psi; cert = None;
          label = Printf.sprintf "gnp(n=%d,p=%.2f)" n p }) }

let chung_lu =
  { name = "chung-lu";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let n = 8 + Prng.int rng 10 in
        let avg_deg = 2. +. Prng.float rng 3. in
        let graph =
          Gen.power_law_chung_lu ~seed:(draw_seed rng) ~n ~alpha:2.5 ~avg_deg
        in
        { graph; psi; cert = None;
          label = Printf.sprintf "chung-lu(n=%d,deg=%.1f)" n avg_deg }) }

let union_of_gnp =
  { name = "union";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let half rng =
          let n = 3 + Prng.int rng 7 in
          let p = 0.2 +. Prng.float rng 0.4 in
          Gen.er_gnp ~seed:(draw_seed rng) ~n ~p
        in
        let a = half rng and b = half rng in
        { graph = Gen.disjoint_union a b; psi; cert = None;
          label = Printf.sprintf "union(%d+%d)" (G.n a) (G.n b) }) }

let planted_block =
  { name = "planted";
    sample =
      (fun rng ->
        let h = 2 + Prng.int rng 2 in
        let psi = P.clique h in
        let n = 8 + Prng.int rng 10 in
        let block = h + 1 + Prng.int rng (min 3 (n - h - 1)) in
        let graph, members =
          Gen.planted_clique_subset ~seed:(draw_seed rng) ~n ~p:0.1 ~block
        in
        { graph; psi; cert = Some members;
          label = Printf.sprintf "planted(n=%d,block=%d,h=%d)" n block h }) }

let sparse =
  { name = "sparse";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let n = 1 + Prng.int rng 12 in
        let m = if n < 2 then 0 else Prng.int rng n in
        let graph =
          Gen.random_graph_for_tests (Prng.create (draw_seed rng))
            ~max_n:n ~max_m:m
        in
        { graph; psi; cert = None;
          label = Printf.sprintf "sparse(n<=%d,m<=%d)" n m }) }

let all = [ gnp; chung_lu; union_of_gnp; planted_block; sparse ]

(* ---- malformed wire frames for the serve fault-injection tests ----

   Each sample is (label, bytes) where the bytes are NOT a well-formed
   protocol frame: the server must answer with a structured error or
   close the connection, never crash or hang.  Built by hand rather
   than via Dsd_serve.Protocol so a codec bug cannot accidentally
   "agree" with its own corruption. *)

let frame_of ~len payload =
  let b = Buffer.create (4 + String.length payload) in
  Buffer.add_uint8 b ((len lsr 24) land 0xff);
  Buffer.add_uint8 b ((len lsr 16) land 0xff);
  Buffer.add_uint8 b ((len lsr 8) land 0xff);
  Buffer.add_uint8 b (len land 0xff);
  Buffer.add_string b payload;
  Buffer.contents b

let random_bytes rng n = String.init n (fun _ -> Char.chr (Prng.int rng 256))

let malformed_frame rng =
  match Prng.int rng 8 with
  | 0 ->
    (* header cut short: fewer than the 4 length bytes *)
    ("truncated-header", random_bytes rng (1 + Prng.int rng 3))
  | 1 ->
    (* announces more body than it sends *)
    let sent = Prng.int rng 8 in
    ("truncated-body", frame_of ~len:(sent + 2 + Prng.int rng 64)
                         (random_bytes rng sent))
  | 2 ->
    (* length prefix far beyond max_frame *)
    ("oversized-length",
     frame_of ~len:(0x4000_0000 lor Prng.int rng 0x3fff_ffff) "")
  | 3 ->
    (* too short to even hold version + tag *)
    ("undersized-length", frame_of ~len:(Prng.int rng 2)
                            (random_bytes rng (Prng.int rng 2)))
  | 4 ->
    (* well-formed frame, wrong protocol version *)
    let body = random_bytes rng (Prng.int rng 16) in
    let version = Char.chr (2 + Prng.int rng 250) in
    ("bad-version",
     frame_of ~len:(2 + String.length body)
       (Printf.sprintf "%c%c%s" version (Char.chr (Prng.int rng 256)) body))
  | 5 ->
    (* correct version, unknown request tag *)
    let body = random_bytes rng (Prng.int rng 16) in
    ("unknown-tag",
     frame_of ~len:(2 + String.length body)
       (Printf.sprintf "\x01%c%s" (Char.chr (0x60 + Prng.int rng 0x1f)) body))
  | 6 ->
    (* correct version + tag, garbage body — every body-carrying
       request tag, including apply-delta (0x08), topk (0x09) and
       hierarchy (0x0a) *)
    let tags = [| 0x03; 0x04; 0x05; 0x06; 0x08; 0x09; 0x0a |] in
    let body = random_bytes rng (1 + Prng.int rng 32) in
    ("garbage-body",
     frame_of ~len:(2 + String.length body)
       (Printf.sprintf "\x01%c%s"
          (Char.chr tags.(Prng.int rng (Array.length tags))) body))
  | _ ->
    (* a topk frame whose body parses as two strings but lies about k:
       a plausible-looking request the typed layer must still reject *)
    let b = Buffer.create 32 in
    let str s =
      let len = Bytes.create 8 in
      Bytes.set_int64_be len 0 (Int64.of_int (String.length s));
      Buffer.add_bytes b len;
      Buffer.add_string b s
    in
    str "g";
    str "edge";
    (* k arrives truncated: 1-7 of its 8 bytes *)
    Buffer.add_string b (random_bytes rng (1 + Prng.int rng 7));
    let body = Buffer.contents b in
    ("topk-garbage",
     frame_of ~len:(2 + String.length body)
       (Printf.sprintf "\x01\x09%s" body))

let sample rng =
  let gen = List.nth all (Prng.int rng (List.length all)) in
  gen.sample rng

let pp_case fmt c =
  Format.fprintf fmt "%s psi=%s n=%d m=%d%s@ %a" c.label c.psi.P.name
    (G.n c.graph) (G.m c.graph)
    (match c.cert with
    | None -> ""
    | Some vs -> Printf.sprintf " cert=%d" (Array.length vs))
    G.pp c.graph
