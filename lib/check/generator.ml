module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Prng = Dsd_util.Prng
module Gen = Dsd_data.Gen

type case = {
  graph : G.t;
  psi : P.t;
  cert : int array option;
  label : string;
}

type t = {
  name : string;
  sample : Prng.t -> case;
}

(* Seed-based Gen functions are re-seeded from the case stream so one
   Prng.t drives the whole sample. *)
let draw_seed rng = Int64.to_int (Prng.bits64 rng) land max_int

(* Weighted psi choice.  Cliques dominate (they exercise the paper's
   main path); stars and the 4-cycle take the Appendix-D closed-form
   decompositions; h = 4 keeps enumeration honest. *)
let pick_psi rng =
  match Prng.int rng 10 with
  | 0 | 1 | 2 | 3 -> P.edge
  | 4 | 5 | 6 -> P.triangle
  | 7 -> P.clique 4
  | 8 -> P.star 2
  | _ -> P.diamond

let gnp =
  { name = "gnp";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let n = 4 + Prng.int rng 12 in
        let p = 0.15 +. Prng.float rng 0.35 in
        let graph = Gen.er_gnp ~seed:(draw_seed rng) ~n ~p in
        { graph; psi; cert = None;
          label = Printf.sprintf "gnp(n=%d,p=%.2f)" n p }) }

let chung_lu =
  { name = "chung-lu";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let n = 8 + Prng.int rng 10 in
        let avg_deg = 2. +. Prng.float rng 3. in
        let graph =
          Gen.power_law_chung_lu ~seed:(draw_seed rng) ~n ~alpha:2.5 ~avg_deg
        in
        { graph; psi; cert = None;
          label = Printf.sprintf "chung-lu(n=%d,deg=%.1f)" n avg_deg }) }

let union_of_gnp =
  { name = "union";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let half rng =
          let n = 3 + Prng.int rng 7 in
          let p = 0.2 +. Prng.float rng 0.4 in
          Gen.er_gnp ~seed:(draw_seed rng) ~n ~p
        in
        let a = half rng and b = half rng in
        { graph = Gen.disjoint_union a b; psi; cert = None;
          label = Printf.sprintf "union(%d+%d)" (G.n a) (G.n b) }) }

let planted_block =
  { name = "planted";
    sample =
      (fun rng ->
        let h = 2 + Prng.int rng 2 in
        let psi = P.clique h in
        let n = 8 + Prng.int rng 10 in
        let block = h + 1 + Prng.int rng (min 3 (n - h - 1)) in
        let graph, members =
          Gen.planted_clique_subset ~seed:(draw_seed rng) ~n ~p:0.1 ~block
        in
        { graph; psi; cert = Some members;
          label = Printf.sprintf "planted(n=%d,block=%d,h=%d)" n block h }) }

let sparse =
  { name = "sparse";
    sample =
      (fun rng ->
        let psi = pick_psi rng in
        let n = 1 + Prng.int rng 12 in
        let m = if n < 2 then 0 else Prng.int rng n in
        let graph =
          Gen.random_graph_for_tests (Prng.create (draw_seed rng))
            ~max_n:n ~max_m:m
        in
        { graph; psi; cert = None;
          label = Printf.sprintf "sparse(n<=%d,m<=%d)" n m }) }

let all = [ gnp; chung_lu; union_of_gnp; planted_block; sparse ]

let sample rng =
  let gen = List.nth all (Prng.int rng (List.length all)) in
  gen.sample rng

let pp_case fmt c =
  Format.fprintf fmt "%s psi=%s n=%d m=%d%s@ %a" c.label c.psi.P.name
    (G.n c.graph) (G.m c.graph)
    (match c.cert with
    | None -> ""
    | Some vs -> Printf.sprintf " cert=%d" (Array.length vs))
    G.pp c.graph
