(** Greedy witness reduction.

    Given a failing case and a predicate that re-runs the violated
    relation (with its original auxiliary seed), repeatedly tries to
    delete a vertex — then an edge — while the failure persists, until
    no single deletion keeps it failing.  Certificates are remapped on
    vertex deletion, so the planted-certificate relation shrinks
    soundly (its witness density is recomputed on the shrunk graph).

    Deterministic: deletions are attempted highest-id first, so the
    same failing case always shrinks to the same witness. *)

(** [remove_vertex case v] deletes [v], renumbering ids above it down
    by one and remapping the certificate. *)
val remove_vertex : Generator.case -> int -> Generator.case

(** [remove_edge case (u, v)] deletes one edge, keeping n. *)
val remove_edge : Generator.case -> int * int -> Generator.case

(** [run ~still_fails case] greedily minimises [case].  Returns the
    shrunk case and the number of deletions adopted.  [still_fails]
    must be pure and deterministic. *)
val run :
  still_fails:(Generator.case -> bool) ->
  Generator.case -> Generator.case * int
