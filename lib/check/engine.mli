(** The fuzz driver: generate cases, check every relation, shrink the
    first failure to a minimal witness.

    Fully deterministic in [seed]: the i-th case's seed is drawn from
    one splitmix stream, and each relation's auxiliary randomness is
    seeded by [case_seed lxor stable_hash relation_name] — so a
    failure is replayable from the (seed, relation) pair alone, which
    is exactly what the reproducer file records. *)

type relation_stats = {
  relation : string;
  checked : int;
  skipped : int;
}

type failure = {
  case_index : int;    (** 1-based case counter *)
  case_seed : int;
  aux_seed : int;      (** the violated relation's auxiliary seed *)
  relation : string;
  message : string;    (** verdict message on the {e shrunk} witness *)
  original : Generator.case;
  shrunk : Generator.case;
  shrink_steps : int;
}

type summary = {
  cases_run : int;
  stats : relation_stats list;  (** registry order *)
  failure : failure option;
  out_of_time : bool;  (** stopped early on the time budget *)
}

(** [stable_hash s] — the version-independent string hash used to
    derive per-relation auxiliary seeds. *)
val stable_hash : string -> int

(** [run ~cases ~seed ()] fuzzes until a relation fails, the case
    budget is exhausted, or the optional wall-clock budget (seconds)
    runs out.  [relation] restricts checking to one registry entry
    ([Invalid_argument] if unknown); [subject] swaps the
    implementation under test. *)
val run :
  ?subject:Subject.t ->
  ?relation:string ->
  ?time_budget_s:float ->
  cases:int -> seed:int -> unit -> summary

(** [to_repro failure] packages the shrunk witness. *)
val to_repro : failure -> Repro.t

(** [replay ?subject repro] re-runs the recorded relation on the
    recorded graph with the recorded auxiliary seed.
    [Invalid_argument] if the relation or pattern is unknown. *)
val replay : ?subject:Subject.t -> Repro.t -> Relation.verdict

(** Deterministic one-block report (no timings): what [dsd fuzz]
    prints and the golden CLI test pins. *)
val summary_to_string : summary -> string
