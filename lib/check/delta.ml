module G = Dsd_graph.Graph
module Dyn = Dsd_graph.Dynamic
module Prng = Dsd_util.Prng

type script = Dyn.op array array

(* Scripts are generated against a model of the evolving edge set so
   deletes usually target a real edge; a sprinkle of duplicate inserts,
   self-loops and absent deletes is kept deliberately — the no-op
   paths are part of the contract under test. *)

module S = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let norm u v = if u <= v then (u, v) else (v, u)

let model_of_edges edges =
  Array.fold_left (fun s (u, v) -> S.add (norm u v) s) S.empty edges

let gen_op rng n model =
  let roll = Prng.int rng 10 in
  if roll = 0 then begin
    (* deliberate no-op material: self-loop or random (maybe absent) delete *)
    let v = Prng.int rng n in
    if Prng.bool rng then Dyn.Add (v, v)
    else
      let u, w = Prng.pair_distinct rng n in
      Dyn.Remove (u, w)
  end
  else if roll <= 5 || S.is_empty !model then begin
    let u, v = Prng.pair_distinct rng n in
    model := S.add (norm u v) !model;
    Dyn.Add (u, v)
  end
  else begin
    let edges = Array.of_seq (S.to_seq !model) in
    let u, v = edges.(Prng.int rng (Array.length edges)) in
    model := S.remove (norm u v) !model;
    Dyn.Remove (u, v)
  end

let generate rng g =
  let n = G.n g in
  if n < 2 then [||]
  else begin
    let model = ref (model_of_edges (G.edges g)) in
    let batches = 1 + Prng.int rng 3 in
    Array.init batches (fun _ ->
        let ops = 1 + Prng.int rng 5 in
        Array.init ops (fun _ -> gen_op rng n model))
  end

(* The pure model of applying a script: the edge set a from-scratch
   rebuild should see.  Mirrors Dynamic's no-op semantics. *)
let final_edges ~n edges script =
  let s = ref (model_of_edges edges) in
  Array.iter
    (Array.iter (fun op ->
         match op with
         | Dyn.Add (u, v) ->
           if u <> v && u >= 0 && u < n && v >= 0 && v < n then
             s := S.add (norm u v) !s
         | Dyn.Remove (u, v) -> s := S.remove (norm u v) !s))
    script;
  Array.of_seq (S.to_seq !s)

let op_to_string = function
  | Dyn.Add (u, v) -> Printf.sprintf "+%d,%d" u v
  | Dyn.Remove (u, v) -> Printf.sprintf "-%d,%d" u v

let to_string (script : script) =
  script
  |> Array.map (fun batch ->
         String.concat " " (Array.to_list (Array.map op_to_string batch)))
  |> Array.to_list
  |> String.concat " | "

(* Greedy shrinking: repeatedly try dropping a whole batch, then a
   single op, keeping any reduction under which the failure persists;
   stop at a fixpoint.  [still_fails] must be deterministic (the
   relations re-derive their randomness from the recorded seed), so
   the minimized script replays the same violation. *)
let shrink (script : script) ~still_fails =
  let drop_batch s i =
    Array.of_list
      (List.filteri (fun j _ -> j <> i) (Array.to_list s))
  in
  let drop_op s i j =
    Array.mapi
      (fun bi batch ->
        if bi <> i then batch
        else
          Array.of_list
            (List.filteri (fun oj _ -> oj <> j) (Array.to_list batch)))
      s
  in
  let current = ref script in
  let progress = ref true in
  while !progress do
    progress := false;
    (* whole batches first: biggest reductions early *)
    let bi = ref 0 in
    while !bi < Array.length !current do
      let candidate = drop_batch !current !bi in
      if still_fails candidate then begin
        current := candidate;
        progress := true
      end
      else incr bi
    done;
    let i = ref 0 in
    while !i < Array.length !current do
      let j = ref 0 in
      while !j < Array.length !current.(!i) do
        let candidate = drop_op !current !i !j in
        if still_fails candidate then begin
          current := candidate;
          progress := true
        end
        else incr j
      done;
      incr i
    done
  done;
  !current
