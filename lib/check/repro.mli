(** Replayable reproducer files.

    A reproducer is a plain edge-list file whose comment header pins
    everything needed to re-run the exact failing check: the violated
    relation, the pattern, the auxiliary seed the relation drew its
    randomness from, and the (possibly shrunk) certificate.  The edge
    list itself is the shrunk witness graph; [n] is recorded
    explicitly because isolated vertices are meaningful and a bare
    edge list cannot represent them.

    Format (order of header lines is fixed):
    {v
    # dsd-fuzz reproducer
    # relation <name>
    # psi <pattern-name>
    # seed <aux-seed>
    # generator <label>
    # n <vertex-count>
    # cert <v1> <v2> ...        (only when a certificate is present)
    <u> <v>                      (one edge per line)
    v} *)

type t = {
  relation : string;
  psi : string;          (** pattern name, parsed by {!pattern_of_name} *)
  seed : int;            (** the relation's auxiliary PRNG seed *)
  generator : string;    (** originating generator label, informational *)
  n : int;
  edges : (int * int) list;  (** u < v, ascending *)
  cert : int array option;
}

(** [of_case ~relation ~seed case] packages a case for writing. *)
val of_case : relation:string -> seed:int -> Generator.case -> t

(** [to_case t] rebuilds the case (raises [Invalid_argument] on an
    unknown pattern name). *)
val to_case : t -> Generator.case

(** [pattern_of_name s] resolves the built-in pattern names used by
    the fuzz engine ("edge", "triangle", "h-clique", "x-star",
    "diamond", "c3-star", "2-triangle", "3-triangle", "basket"). *)
val pattern_of_name : string -> Dsd_pattern.Pattern.t option

val write : string -> t -> unit

(** [read path] parses a reproducer.  @raise Failure on malformed
    files. *)
val read : string -> t
