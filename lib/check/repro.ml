module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type t = {
  relation : string;
  psi : string;
  seed : int;
  generator : string;
  n : int;
  edges : (int * int) list;
  cert : int array option;
}

let of_case ~relation ~seed (case : Generator.case) =
  {
    relation;
    psi = case.psi.P.name;
    seed;
    generator = case.label;
    n = G.n case.graph;
    edges = Array.to_list (G.edges case.graph);
    cert = case.cert;
  }

let known_patterns =
  [ P.edge; P.triangle; P.clique 4; P.clique 5; P.clique 6; P.star 2;
    P.star 3 ]
  @ P.figure7

let pattern_of_name name =
  List.find_opt (fun (p : P.t) -> p.P.name = name) known_patterns

let to_case t =
  let psi =
    match pattern_of_name t.psi with
    | Some p -> p
    | None -> invalid_arg ("Repro: unknown pattern " ^ t.psi)
  in
  {
    Generator.graph = G.of_edge_list ~n:t.n t.edges;
    psi;
    cert = t.cert;
    label = t.generator;
  }

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "# dsd-fuzz reproducer\n";
      Printf.fprintf oc "# relation %s\n" t.relation;
      Printf.fprintf oc "# psi %s\n" t.psi;
      Printf.fprintf oc "# seed %d\n" t.seed;
      Printf.fprintf oc "# generator %s\n" t.generator;
      Printf.fprintf oc "# n %d\n" t.n;
      Option.iter
        (fun vs ->
          output_string oc "# cert";
          Array.iter (Printf.fprintf oc " %d") vs;
          output_string oc "\n")
        t.cert;
      List.iter (fun (u, v) -> Printf.fprintf oc "%d %d\n" u v) t.edges)

let read path =
  let ic = open_in path in
  let relation = ref None
  and psi = ref None
  and seed = ref None
  and generator = ref ""
  and n = ref None
  and cert = ref None
  and edges = ref [] in
  let malformed line = failwith ("Repro: malformed line: " ^ line) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if String.length line = 0 then ()
          else if line.[0] = '#' then begin
            let words =
              String.split_on_char ' ' line
              |> List.filter (fun s -> s <> "" && s <> "#")
            in
            match words with
            | "dsd-fuzz" :: _ -> ()
            | [ "relation"; r ] -> relation := Some r
            | [ "psi"; p ] -> psi := Some p
            | [ "seed"; s ] -> seed := int_of_string_opt s
            | "generator" :: rest -> generator := String.concat " " rest
            | [ "n"; v ] -> n := int_of_string_opt v
            | "cert" :: vs ->
              cert := Some (Array.of_list (List.map int_of_string vs))
            | _ -> malformed line
          end
          else
            match String.split_on_char ' ' line
                  |> List.filter (fun s -> s <> "") with
            | [ u; v ] ->
              (match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v -> edges := (u, v) :: !edges
              | _ -> malformed line)
            | _ -> malformed line
        done
      with End_of_file -> ());
  match (!relation, !psi, !seed, !n) with
  | Some relation, Some psi, Some seed, Some n ->
    {
      relation;
      psi;
      seed;
      generator = !generator;
      n;
      edges = List.rev !edges;
      cert = !cert;
    }
  | _ -> failwith "Repro: missing relation/psi/seed/n header"
