module G = Dsd_graph.Graph

let remove_vertex (case : Generator.case) v =
  let n = G.n case.graph in
  let keep =
    Array.of_list (List.filter (fun u -> u <> v) (List.init n Fun.id))
  in
  let sub, _map = G.induced case.graph keep in
  let remap u = if u < v then Some u else if u = v then None else Some (u - 1) in
  let cert =
    Option.map
      (fun c -> Array.of_list (List.filter_map remap (Array.to_list c)))
      case.cert
  in
  { case with graph = sub; cert }

let remove_edge (case : Generator.case) (u, v) =
  let edges =
    Array.of_list
      (List.filter (fun e -> e <> (u, v)) (Array.to_list (G.edges case.graph)))
  in
  { case with graph = G.of_edges ~n:(G.n case.graph) edges }

(* One pass of a deletion family: adopt the first deletion that keeps
   the case failing and restart the scan on the shrunk case; stop when
   no deletion works.  Returns the fixpoint and adopted count. *)
let fixpoint candidates still_fails case =
  let steps = ref 0 in
  let rec go case =
    let rec try_list = function
      | [] -> case
      | cand :: rest ->
        let shrunk = cand case in
        if still_fails shrunk then begin
          incr steps;
          go shrunk
        end
        else try_list rest
    in
    try_list (candidates case)
  in
  let final = go case in
  (final, !steps)

let vertex_candidates (case : Generator.case) =
  let n = G.n case.graph in
  if n <= 1 then []
  else List.init n (fun i -> fun c -> remove_vertex c (n - 1 - i))

let edge_candidates (case : Generator.case) =
  Array.to_list
    (Array.map (fun e -> fun c -> remove_edge c e) (G.edges case.graph))

let run ~still_fails case =
  let total = ref 0 in
  let current = ref case in
  let progress = ref true in
  (* Alternate vertex and edge passes until neither can delete. *)
  while !progress do
    let v, sv = fixpoint vertex_candidates still_fails !current in
    let e, se = fixpoint edge_candidates still_fails v in
    current := e;
    total := !total + sv + se;
    progress := sv + se > 0 && !total < 10_000
  done;
  (!current, !total)
