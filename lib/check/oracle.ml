(* Naive re-derivations of ground truth; shared by the unit suites and
   the fuzz engine so there is exactly one oracle implementation. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

(* Instances of psi inside g, by the slow generic matcher. *)
let slow_count g psi =
  match psi.P.kind with
  | P.Clique -> Dsd_clique.Naive.count g ~h:psi.P.size
  | _ -> Dsd_pattern.Match.count g psi

let density_of_subset g psi vs =
  if Array.length vs = 0 then 0.
  else begin
    let sub, _ = G.induced g vs in
    float_of_int (slow_count sub psi) /. float_of_int (Array.length vs)
  end

(* Exhaustive densest subgraph over all non-empty vertex subsets.
   Only for n <= ~14. *)
let brute_force_densest g psi =
  let n = G.n g in
  assert (n <= 16);
  let best_density = ref 0. and best_set = ref [||] in
  for mask = 1 to (1 lsl n) - 1 do
    let vs = ref [] in
    for v = n - 1 downto 0 do
      if mask land (1 lsl v) <> 0 then vs := v :: !vs
    done;
    let vs = Array.of_list !vs in
    let d = density_of_subset g psi vs in
    if d > !best_density +. 1e-12 then begin
      best_density := d;
      best_set := vs
    end
  done;
  (!best_density, !best_set)

(* Union of ALL maximum-density subsets — the canonical maximal
   densest subgraph.  Exact float comparisons are sound here: every
   density is an int/int quotient with denominator <= 16, and distinct
   such rationals differ by far more than a ulp, so float equality is
   rational equality. *)
let brute_force_maximal_densest g psi =
  let n = G.n g in
  assert (n <= 16);
  let best_density = ref 0. in
  let union = Array.make (max 1 n) false in
  for mask = 1 to (1 lsl n) - 1 do
    let vs = ref [] in
    for v = n - 1 downto 0 do
      if mask land (1 lsl v) <> 0 then vs := v :: !vs
    done;
    let vs = Array.of_list !vs in
    let d = density_of_subset g psi vs in
    if d > !best_density then begin
      best_density := d;
      Array.fill union 0 n false;
      Array.iter (fun v -> union.(v) <- true) vs
    end
    else if d = !best_density && d > 0. then
      Array.iter (fun v -> union.(v) <- true) vs
  done;
  let members =
    Array.of_list (List.filter (fun v -> union.(v)) (List.init n Fun.id))
  in
  (!best_density, members)

(* Ground truth for Topk_lds: iterate the canonical maximal densest
   subgraph on the remaining induced subgraph, mapping back to original
   ids, until k regions are out or the density hits zero. *)
let brute_force_topk ~k g psi =
  let n = G.n g in
  assert (n <= 16 && k >= 1);
  let remaining = Array.make (max 1 n) true in
  let rec go acc j =
    if j = 0 then List.rev acc
    else begin
      let live =
        Array.of_list
          (List.filter (fun v -> remaining.(v)) (List.init n Fun.id))
      in
      if Array.length live = 0 then List.rev acc
      else begin
        let sub, map = G.induced g live in
        let d, members = brute_force_maximal_densest sub psi in
        if d = 0. then List.rev acc
        else begin
          let members = Array.map (fun v -> map.(v)) members in
          Array.iter (fun v -> remaining.(v) <- false) members;
          go ((d, members) :: acc) (j - 1)
        end
      end
    end
  in
  go [] k

(* Ground truth for Ld_decomposition: peel off maximal max-marginal
   augmentations greedily.  Each round enumerates every non-empty
   X ⊆ V \ B, ranks the marginal (mu(B ∪ X) - mu(B)) / |X| as an exact
   int pair (cross-multiplied, never through floats), and augments B by
   the union of all argmax X's — max-marginal augmentations are closed
   under union (instance counts are supermodular), so the union is
   itself an argmax and the canonical level set.  When the best
   marginal is 0 the remaining vertices form one final zero level.
   The reported floats are the same int divisions the library performs,
   so agreement is bit-exact, not approximate. *)
let brute_force_ld_decomposition g psi =
  let n = G.n g in
  assert (n <= 12);
  let inst_masks =
    let insts =
      match psi.P.kind with
      | P.Clique -> Dsd_clique.Naive.list g ~h:psi.P.size
      | _ -> Dsd_pattern.Match.instances g psi
    in
    Array.map
      (fun inst -> Array.fold_left (fun m v -> m lor (1 lsl v)) 0 inst)
      insts
  in
  let mu_of mask =
    Array.fold_left
      (fun acc im -> if im land mask = im then acc + 1 else acc)
      0 inst_masks
  in
  let members mask =
    Array.of_list (List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id))
  in
  let popcount mask =
    let c = ref 0 in
    for v = 0 to n - 1 do
      if mask land (1 lsl v) <> 0 then incr c
    done;
    !c
  in
  let full = (1 lsl n) - 1 in
  let b = ref 0 and mu_b = ref 0 in
  let levels = ref [] in
  let finished = ref (n = 0) in
  while not !finished do
    let comp = full land lnot !b in
    (* best marginal so far as the exact rational bn / bd *)
    let bn = ref 0 and bd = ref 1 in
    let union = ref 0 in
    let x = ref comp in
    while !x <> 0 do
      let dmu = mu_of (!b lor !x) - !mu_b in
      let dcard = popcount !x in
      let cmp = compare (dmu * !bd) (!bn * dcard) in
      if cmp > 0 then begin
        bn := dmu;
        bd := dcard;
        union := !x
      end
      else if cmp = 0 && dmu > 0 then union := !union lor !x;
      x := (!x - 1) land comp
    done;
    if !bn = 0 then begin
      (* no strictly positive marginal remains *)
      if comp <> 0 then levels := (0., members comp) :: !levels;
      finished := true
    end
    else begin
      let s = !b lor !union in
      let s_mu = mu_of s in
      levels :=
        ( float_of_int (s_mu - !mu_b) /. float_of_int (popcount !union),
          members !union )
        :: !levels;
      b := s;
      mu_b := s_mu;
      if s = full then finished := true
    end
  done;
  List.rev !levels

(* Naive (k, Psi)-core: threshold peeling with full re-enumeration
   after every deletion. *)
let survivors g psi k =
  let alive = Array.make (G.n g) true in
  let changed = ref true in
  while !changed do
    changed := false;
    let live =
      Array.of_list
        (List.filter (fun v -> alive.(v)) (List.init (G.n g) Fun.id))
    in
    let sub, map = G.induced g live in
    let insts =
      match psi.P.kind with
      | P.Clique -> Dsd_clique.Naive.list sub ~h:psi.P.size
      | _ -> Dsd_pattern.Match.instances sub psi
    in
    let deg = Array.make (G.n sub) 0 in
    Array.iter
      (fun inst -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) inst)
      insts;
    Array.iteri
      (fun i d ->
        if d < k && alive.(map.(i)) then begin
          alive.(map.(i)) <- false;
          changed := true
        end)
      deg
  done;
  alive

let naive_core_numbers g psi =
  let n = G.n g in
  let core = Array.make n 0 in
  let k = ref 1 in
  let continue_ = ref true in
  while !continue_ do
    let alive = survivors g psi !k in
    let any = ref false in
    Array.iteri
      (fun v a ->
        if a then begin
          core.(v) <- !k;
          any := true
        end)
      alive;
    if !any then incr k else continue_ := false
  done;
  core
