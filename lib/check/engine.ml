module Prng = Dsd_util.Prng
module G = Dsd_graph.Graph

type relation_stats = {
  relation : string;
  checked : int;
  skipped : int;
}

type failure = {
  case_index : int;
  case_seed : int;
  aux_seed : int;
  relation : string;
  message : string;
  original : Generator.case;
  shrunk : Generator.case;
  shrink_steps : int;
}

type summary = {
  cases_run : int;
  stats : relation_stats list;
  failure : failure option;
  out_of_time : bool;
}

(* Hashtbl.hash is not guaranteed stable across compiler releases;
   reproducer seeds must be, so roll a fixed polynomial hash. *)
let stable_hash s =
  String.fold_left (fun h c -> ((h * 131) + Char.code c) land 0x3FFFFFFF) 7 s

let relations_for = function
  | None -> Relation.all
  | Some name -> (
    match Relation.find name with
    | Some r -> [ r ]
    | None ->
      invalid_arg
        (Printf.sprintf "Engine: unknown relation %s (known: %s)" name
           (String.concat ", " Relation.names)))

let shrink_failure subject (rel : Relation.t) ~aux_seed case =
  let still_fails candidate =
    match rel.check subject ~rng:(Prng.create aux_seed) candidate with
    | Relation.Fail _ -> true
    | Relation.Pass | Relation.Skip _ -> false
  in
  let shrunk, steps = Shrink.run ~still_fails case in
  let message =
    match rel.check subject ~rng:(Prng.create aux_seed) shrunk with
    | Relation.Fail m -> m
    | Relation.Pass | Relation.Skip _ ->
      (* Unreachable: the shrinker only adopts failing candidates and
         the check is deterministic. *)
      assert false
  in
  (shrunk, steps, message)

let run ?(subject = Subject.default) ?relation ?time_budget_s ~cases ~seed ()
    =
  let rels = relations_for relation in
  let checked = Hashtbl.create 16 and skipped = Hashtbl.create 16 in
  let bump tbl name =
    Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
  in
  let started = Dsd_util.Timer.now_s () in
  let over_budget () =
    match time_budget_s with
    | None -> false
    | Some b -> Dsd_util.Timer.now_s () -. started >= b
  in
  let root = Prng.create seed in
  let failure = ref None in
  let cases_run = ref 0 in
  let out_of_time = ref false in
  let i = ref 0 in
  while !i < cases && !failure = None && not !out_of_time do
    incr i;
    (* Drawn unconditionally so the case stream does not depend on the
       relation filter or the time budget. *)
    let case_seed = Int64.to_int (Prng.bits64 root) land max_int in
    if over_budget () then out_of_time := true
    else begin
      incr cases_run;
      let case = Generator.sample (Prng.create case_seed) in
      List.iter
        (fun (rel : Relation.t) ->
          if !failure = None then begin
            let aux_seed = case_seed lxor stable_hash rel.name in
            match rel.check subject ~rng:(Prng.create aux_seed) case with
            | Relation.Pass -> bump checked rel.name
            | Relation.Skip _ -> bump skipped rel.name
            | Relation.Fail _ ->
              bump checked rel.name;
              let shrunk, shrink_steps, message =
                shrink_failure subject rel ~aux_seed case
              in
              failure :=
                Some
                  {
                    case_index = !i;
                    case_seed;
                    aux_seed;
                    relation = rel.name;
                    message;
                    original = case;
                    shrunk;
                    shrink_steps;
                  }
          end)
        rels
    end
  done;
  let stats =
    List.map
      (fun (rel : Relation.t) ->
        {
          relation = rel.name;
          checked = Option.value ~default:0 (Hashtbl.find_opt checked rel.name);
          skipped = Option.value ~default:0 (Hashtbl.find_opt skipped rel.name);
        })
      rels
  in
  { cases_run = !cases_run; stats; failure = !failure;
    out_of_time = !out_of_time }

let to_repro f =
  Repro.of_case ~relation:f.relation ~seed:f.aux_seed f.shrunk

let replay ?(subject = Subject.default) (r : Repro.t) =
  match Relation.find r.relation with
  | None -> invalid_arg ("Engine: unknown relation " ^ r.relation)
  | Some rel ->
    let case = Repro.to_case r in
    rel.check subject ~rng:(Prng.create r.seed) case

let summary_to_string s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-24s %7s %7s\n" "relation" "checks" "skips");
  List.iter
    (fun (st : relation_stats) ->
      Buffer.add_string b
        (Printf.sprintf "%-24s %7d %7d\n" st.relation st.checked st.skipped))
    s.stats;
  let total =
    List.fold_left (fun a (st : relation_stats) -> a + st.checked) 0 s.stats
  in
  Buffer.add_string b
    (Printf.sprintf "cases      %d%s\n" s.cases_run
       (if s.out_of_time then " (stopped: time budget)" else ""));
  Buffer.add_string b (Printf.sprintf "checks     %d\n" total);
  (match s.failure with
  | None -> Buffer.add_string b "verdict    PASS\n"
  | Some f ->
    Buffer.add_string b
      (Printf.sprintf "verdict    FAIL %s (case %d, seed %d)\n" f.relation
         f.case_index f.case_seed);
    Buffer.add_string b
      (Printf.sprintf "witness    %d vertices, %d edges (shrunk from %d/%d in %d steps)\n"
         (G.n f.shrunk.graph) (G.m f.shrunk.graph) (G.n f.original.graph)
         (G.m f.original.graph) f.shrink_steps);
    Buffer.add_string b (Printf.sprintf "violation  %s\n" f.message));
  Buffer.contents b
