(** Executable metamorphic relations derived from the paper.

    Each relation is an oracle that needs no precomputed expected
    output: it either transforms the input and compares algorithm
    results across the transformation, or checks a theorem's inequality
    on a single run.  All auxiliary randomness (permutations, extra
    components, which edge to add) is drawn from the [rng] argument, so
    a relation replays bit-identically from the same seed — the
    property the shrinker and the reproducer files rely on.

    The registry, with the paper result each encodes:
    - [theorem1-bounds]      kmax/|V_Psi| ≤ rho_opt ≤ kmax (Theorem 1)
    - [approx-ratio]         PeelApp/IncApp/CoreApp are 1/|V_Psi|
                             approximations and never beat the optimum
                             (Theorems 2-4)
    - [permutation-invariance]  relabelling vertices permutes core
                             numbers and preserves rho_opt exactly
    - [disjoint-union]       rho_opt and kmax of a disjoint union are
                             the max over the components
    - [edge-monotonicity]    adding an edge never decreases rho_opt or
                             kmax (instances are subgraph matches)
    - [warm-vs-cold]         warm-started parametric max-flow returns
                             bit-identical results to reset-per-probe
    - [pool-width]           a width-2 domain pool returns bit-identical
                             results to the sequential path
    - [exact-vs-brute]       Exact = CoreExact = exhaustive subset
                             enumeration on small graphs
    - [planted-certificate]  rho_opt ≥ the density of the certificate
                             subset (sound for any subset; sharp for
                             planted blocks)
    - [edge-deletion-monotonicity]  deleting an edge never increases
                             rho_opt or kmax (dual of edge-monotonicity)
    - [delta-equals-rebuild] streaming a random delta script through
                             the serve codec and the patched
                             incremental sessions answers bit-identically
                             to a from-scratch rebuild after every
                             batch; failing scripts shrink and print
    - [hierarchy-nesting]    the density-friendly chain partitions V
                             into sorted strictly-nested prefixes with
                             strictly decreasing marginal densities,
                             each marginal re-derived by slow counting
    - [hierarchy-level1-equals-cds]  B_1's marginal is bit-identical to
                             rho_opt and its vertex set is the
                             canonical maximal CDS region
    - [hierarchy-prepared-equals-fresh]  the prepared/warm hierarchy
                             fast path equals the fresh-build and
                             cold-flow escape hatches bit-for-bit *)

type verdict =
  | Pass
  | Skip of string  (** relation does not apply to this case *)
  | Fail of string  (** violated; the message is the full evidence *)

type t = {
  name : string;
  check :
    Subject.t -> rng:Dsd_util.Prng.t -> Generator.case -> verdict;
}

val all : t list

(** [find name] is the registry entry, if any. *)
val find : string -> t option

(** [names] in registry order. *)
val names : string list
