(** The system under test, as a record of entry points.

    Relations call the algorithms only through this table, so a test
    can swap in a deliberately broken implementation (the mutation
    self-test of [test/test_metamorphic.ml]) and verify that the fuzz
    engine actually detects it — the harness is itself harnessed. *)

type subgraph = Dsd_core.Density.subgraph

type t = {
  name : string;
  exact :
    ?pool:Dsd_util.Pool.t -> ?warm:bool ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
      (** Algorithm 1 / PExact *)
  core_exact :
    ?pool:Dsd_util.Pool.t -> ?warm:bool ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
      (** Algorithm 4 / CorePExact — the reference rho_opt *)
  peel :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
      (** Algorithm 2 *)
  inc_app :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
      (** Algorithm 5 *)
  core_app :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> subgraph;
      (** Algorithm 6 *)
  core_numbers :
    ?pool:Dsd_util.Pool.t ->
    Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array;
      (** Algorithm 3 *)
}

(** The real library. *)
val default : t

(** [kmax subject g psi] = max core number (0 on the empty graph). *)
val kmax : t -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int
