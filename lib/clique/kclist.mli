(** h-clique listing via degeneracy-ordered DAG recursion (the kClist
    algorithm of Danisch, Balalau and Sozio, WWW'18 — the paper's
    reference [17] for clique-degree computation).

    Each undirected edge is oriented from the vertex peeled earlier in
    the degeneracy order to the later one; out-degrees are then bounded
    by the degeneracy, and every h-clique is discovered exactly once as
    a chain in the DAG. *)

(** [iter g ~h ~f] calls [f] once per h-clique instance of [g] with the
    member vertices sorted ascending.  The array is reused between
    calls: copy it if you keep it.  [h] must be ≥ 1 ([h = 1] lists
    vertices, [h = 2] edges). *)
val iter : Dsd_graph.Graph.t -> h:int -> f:(int array -> unit) -> unit

(** [count g ~h] is the number of h-clique instances, mu(G, Psi). *)
val count : Dsd_graph.Graph.t -> h:int -> int

(** [list g ~h] materialises all instances (each a fresh sorted
    array). *)
val list : Dsd_graph.Graph.t -> h:int -> int array array

(** {1 Prepared form}

    The degeneracy DAG can be built once and shared — it is immutable —
    across repeated or parallel traversals ({!Parallel}). *)

type dag

val prepare : Dsd_graph.Graph.t -> dag

(** [iter_prepared dag ~h ~roots ~f] lists the h-cliques whose
    minimum-rank vertex is in [roots] (each clique has exactly one such
    root, so disjoint root sets partition the cliques). *)
val iter_prepared : dag -> h:int -> roots:int array -> f:(int array -> unit) -> unit
