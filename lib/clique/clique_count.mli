(** Clique-degree computation (Definition 3) built on {!Kclist}. *)

(** [degrees g ~h] returns deg_G(v, Psi) for every vertex, where Psi is
    the h-clique. *)
val degrees : Dsd_graph.Graph.t -> h:int -> int array

(** [mu g ~h] is the instance count mu(G, Psi); equals
    [sum degrees / h]. *)
val mu : Dsd_graph.Graph.t -> h:int -> int

(** [triangles_per_edge g] maps each edge (u, v), u < v, to its number
    of common neighbours (support); used by fast paths and tests. *)
val triangles_per_edge : Dsd_graph.Graph.t -> ((int * int) * int) array
