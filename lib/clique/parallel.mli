(** Multicore h-clique enumeration on a shared domain pool (Section
    6.3: "existing parallel k-core decomposition algorithms can be
    easily extended...").

    kClist's recursion trees are independent per root vertex, so roots
    are split into contiguous chunks claimed dynamically by the pool's
    domains.  Chunked results merge in chunk order, which makes even
    the order-sensitive product — the instance {e list} — bit-identical
    to the sequential {!Kclist} enumeration for every pool size.  This
    parallelises the dominant cost of every approximation algorithm
    (clique-degree computation) and feeds the parallel peeling and
    flow-network phases in [Dsd_core]. *)

(** [count_in pool g ~h] = [Kclist.count g ~h], computed across
    [pool]. *)
val count_in : Dsd_util.Pool.t -> Dsd_graph.Graph.t -> h:int -> int

(** [degrees_in pool g ~h] = [Clique_count.degrees g ~h] in
    parallel. *)
val degrees_in : Dsd_util.Pool.t -> Dsd_graph.Graph.t -> h:int -> int array

(** [list_in pool g ~h] = [Kclist.list g ~h]: the instances in exactly
    the sequential enumeration order, each a fresh sorted array. *)
val list_in : Dsd_util.Pool.t -> Dsd_graph.Graph.t -> h:int -> int array array

(** [count g ~h ~domains] spins up a transient pool of [domains]
    domains (≥ 1) for one counting job.  Prefer [count_in] with a
    long-lived pool; this survives for callers that parallelise a
    single call. *)
val count : Dsd_graph.Graph.t -> h:int -> domains:int -> int

(** [degrees g ~h ~domains] = [Clique_count.degrees g ~h] on a
    transient pool. *)
val degrees : Dsd_graph.Graph.t -> h:int -> domains:int -> int array

(** Domains to use by default: the [DSD_DOMAINS] environment variable
    when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()] (uncapped). *)
val recommended_domains : unit -> int

(** Like {!recommended_domains}, but the hardware fallback is capped at
    4 — the CLI's out-of-the-box default ([dsd] without [--domains] and
    with [DSD_DOMAINS] unset).  [--domains 1] remains the escape hatch
    that forces every phase onto the calling domain. *)
val default_domains : unit -> int
