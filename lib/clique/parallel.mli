(** Multicore h-clique counting (Section 6.3: "existing parallel k-core
    decomposition algorithms can be easily extended...").

    kClist's recursion trees are independent per root vertex, so roots
    are striped across OCaml 5 domains; counts and per-vertex degrees
    merge associatively.  This parallelises the dominant cost of every
    approximation algorithm (clique-degree computation). *)

(** [count g ~h ~domains] = [Kclist.count g ~h], computed on [domains]
    domains (≥ 1; 1 falls back to the sequential code). *)
val count : Dsd_graph.Graph.t -> h:int -> domains:int -> int

(** [degrees g ~h ~domains] = [Clique_count.degrees g ~h] in
    parallel. *)
val degrees : Dsd_graph.Graph.t -> h:int -> domains:int -> int array

(** Number of hardware domains recommended (capped at 8). *)
val recommended_domains : unit -> int
