(** Materialised store of instance hyperedges (h-cliques or pattern
    instances) with per-vertex postings and liveness bits.

    Algorithm 3's (k, Psi)-core decomposition deletes a vertex and must
    retire every instance containing it while decrementing the
    instance-degrees of the co-members.  Materialising the instance set
    once makes each deletion cost proportional to the retired
    instances — the same O(n * C(d-1, h-1)) total bound as the paper's
    re-enumeration formulation, without repeated neighbourhood
    enumeration.

    Members and postings are stored in flat contiguous arenas behind
    CSR-style offset tables, so the peel's chunked scans stream
    disjoint cache lines instead of chasing one heap block per
    vertex — read members through {!member}/{!iter_members} on hot
    paths ({!members} copies a slice). *)

type t

(** [create ~n instances] indexes instances over vertices [0..n-1].
    Member arrays must be duplicate-free and all of the same length
    (the pattern size); they are copied into the flat arena. *)
val create : n:int -> int array array -> t

(** Total number of instances (live and dead). *)
val total : t -> int

(** Number of currently live instances. *)
val live_total : t -> int

(** Members per instance (0 only in an empty store). *)
val arity : t -> int

(** [member t i j] is the [j]-th member of instance [i] (sorted
    ascending, as enumerated) — no allocation. *)
val member : t -> int -> int -> int

(** [iter_members t i ~f] visits instance [i]'s members in order. *)
val iter_members : t -> int -> f:(int -> unit) -> unit

(** [members t i] is a fresh copy of instance [i]'s member slice. *)
val members : t -> int -> int array

val is_live : t -> int -> bool

(** [degree t v] is the number of live instances containing [v] (the
    instance-degree deg(v, Psi) restricted to live instances). *)
val degree : t -> int -> int

(** [kill_vertex t v ~on_comember] retires every live instance
    containing [v].  For each retired instance, [on_comember] is called
    once per member other than [v] (after that member's degree has been
    decremented).  Returns the number of instances retired. *)
val kill_vertex : t -> int -> on_comember:(int -> unit) -> int

(** [kill_instance t i] retires a single live instance, decrementing
    all member degrees.  No-op on a dead instance. *)
val kill_instance : t -> int -> unit

(** [kill_instance_with t i ~on_comember] is {!kill_instance} with
    [on_comember] called once per member (after that member's degree
    decrement).  Frontier-synchronous peeling retires whole instance
    batches through this, collecting the members that drop below the
    level threshold. *)
val kill_instance_with : t -> int -> on_comember:(int -> unit) -> unit

(** [iter_live_of_vertex t v ~f] visits ids of live instances
    containing [v]. *)
val iter_live_of_vertex : t -> int -> f:(int -> unit) -> unit

(** [reset t] revives all instances and restores initial degrees. *)
val reset : t -> unit

(** Growable store for the incremental subsystem: instances are
    appended as edge inserts discover them and tombstoned as deletes
    destroy them.  Ids are append-ordered and never reused, so the
    incremental flow arena can key per-instance arcs by them; postings
    are append-only and may contain dead ids (iteration filters on
    liveness). *)
module Dyn : sig
  type store

  (** [create ~n instances] starts from the given live instances,
      appended in order (ids [0 .. length-1]). *)
  val create : n:int -> int array array -> store

  (** Total ids allocated so far (live and dead). *)
  val total : store -> int

  val live_total : store -> int

  (** Fresh copy of instance [i]'s member slice of the flat arena. *)
  val members : store -> int -> int array

  (** [iter_members t i ~f] visits instance [i]'s members without
      copying them out of the arena. *)
  val iter_members : store -> int -> f:(int -> unit) -> unit

  val is_live : store -> int -> bool

  (** Number of live instances containing [v]. *)
  val degree : store -> int -> int

  (** [append t members] registers a new live instance; returns its id. *)
  val append : store -> int array -> int

  (** [retire t i] tombstones instance [i], decrementing member
      degrees; returns [false] if it was already dead. *)
  val retire : store -> int -> bool

  (** [retire_edge t u v ~f] retires every live instance containing
      both [u] and [v] (the instances destroyed by deleting edge
      [(u,v)]), calling [f] with each retired id.  Returns the count. *)
  val retire_edge : store -> int -> int -> f:(int -> unit) -> int

  val iter_live_of_vertex : store -> int -> f:(int -> unit) -> unit

  (** Live instances' member arrays in id order — the input for
      rebuilding a compacted arena. *)
  val live_members : store -> int array array
end
