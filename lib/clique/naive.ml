module G = Dsd_graph.Graph

let iter g ~h ~f =
  if h < 1 then invalid_arg "Naive.iter: h must be >= 1";
  let buf = Array.make h 0 in
  (* Members are chosen in strictly increasing id order, so instances
     come out sorted and deduplicated for free. *)
  let rec extend depth lowest =
    if depth = h then f buf
    else
      for v = lowest to G.n g - 1 do
        let ok = ref true in
        for i = 0 to depth - 1 do
          if !ok && not (G.mem_edge g buf.(i) v) then ok := false
        done;
        if !ok then begin
          buf.(depth) <- v;
          extend (depth + 1) (v + 1)
        end
      done
  in
  extend 0 0

let count g ~h =
  let c = ref 0 in
  iter g ~h ~f:(fun _ -> incr c);
  !c

let list g ~h =
  let acc = ref [] in
  iter g ~h ~f:(fun inst -> acc := Array.copy inst :: !acc);
  Array.of_list (List.rev !acc)
