module G = Dsd_graph.Graph
module Pool = Dsd_util.Pool

let recommended_domains () =
  let hardware = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "DSD_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some d when d >= 1 -> d
     | Some _ | None -> hardware)
  | None -> hardware

(* Past ~4 domains the CLI's graphs rarely have enough independent
   work per phase to amortise the extra workers, and oversubscribing
   small boxes actively hurts — so the CLI default caps the hardware
   count at 4 unless the user (or DSD_DOMAINS) says otherwise. *)
let default_domains () =
  let hardware = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "DSD_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some d when d >= 1 -> d
     | Some _ | None -> min hardware 4)
  | None -> min hardware 4

(* Each domain's participation in an enumeration job runs under one
   clique_stripe span, so the obs table reads as aggregate stripe CPU
   time with one entry per domain — the same shape the old
   spawn-per-call code reported. *)
let stripe_wrap f = Dsd_obs.Span.with_ Dsd_obs.Phase.clique_stripe f

let roots lo hi = Array.init (hi - lo) (fun i -> lo + i)

(* Chunks coarse enough that per-chunk setup (roots array, one atomic
   counter flush inside Kclist) is noise, fine enough that work
   stealing evens out skewed recursion trees.  [parallel_width] keeps
   inline-fallback jobs from being split as if the workers were
   coming. *)
let chunk_for pool n = max 16 (n / (8 * Pool.parallel_width pool ~n))

let count_in pool g ~h =
  let dag = Kclist.prepare g in
  let n = G.n g in
  Pool.fold_chunks pool ~chunk:(chunk_for pool n) ~wrap:stripe_wrap ~n ~init:0
    ~merge:( + ) (fun lo hi ->
      let c = ref 0 in
      Kclist.iter_prepared dag ~h ~roots:(roots lo hi) ~f:(fun _ -> incr c);
      !c)

let degrees_in pool g ~h =
  let dag = Kclist.prepare g in
  let n = G.n g in
  if n = 0 then [||]
  else begin
    (* Coarser chunks here: every chunk allocates an n-slot
       accumulator, so bound the count by the effective pool width
       rather than the stealing granularity. *)
    let chunk = max 1024 (n / (2 * Pool.parallel_width pool ~n)) in
    let parts =
      Pool.map_chunks pool ~chunk ~wrap:stripe_wrap ~n (fun lo hi ->
          let deg = Array.make n 0 in
          Kclist.iter_prepared dag ~h ~roots:(roots lo hi) ~f:(fun inst ->
              Array.iter (fun v -> deg.(v) <- deg.(v) + 1) inst);
          deg)
    in
    let first = parts.(0) in
    for p = 1 to Array.length parts - 1 do
      let part = parts.(p) in
      for v = 0 to n - 1 do
        first.(v) <- first.(v) + part.(v)
      done
    done;
    first
  end

let list_in pool g ~h =
  let dag = Kclist.prepare g in
  let n = G.n g in
  let parts =
    Pool.map_chunks pool ~chunk:(chunk_for pool n) ~wrap:stripe_wrap ~n
      (fun lo hi ->
        let acc = ref [] in
        Kclist.iter_prepared dag ~h ~roots:(roots lo hi) ~f:(fun inst ->
            acc := Array.copy inst :: !acc);
        Array.of_list (List.rev !acc))
  in
  (* Chunks cover roots 0..n-1 in order and arrive in chunk order, so
     this concatenation is exactly the sequential Kclist.list order. *)
  Array.concat (Array.to_list parts)

let count g ~h ~domains =
  if domains < 1 then invalid_arg "Parallel: domains must be >= 1";
  Pool.with_pool domains (fun pool -> count_in pool g ~h)

let degrees g ~h ~domains =
  if domains < 1 then invalid_arg "Parallel: domains must be >= 1";
  Pool.with_pool domains (fun pool -> degrees_in pool g ~h)
