module G = Dsd_graph.Graph

let recommended_domains () =
  min 8 (max 1 (Domain.recommended_domain_count ()))

(* Stripe roots round-robin: high-degree roots (heavier recursion
   trees) spread evenly across domains. *)
let stripes n domains =
  Array.init domains (fun d ->
      let buf = Dsd_util.Vec.Int.create () in
      let v = ref d in
      while !v < n do
        Dsd_util.Vec.Int.push buf !v;
        v := !v + domains
      done;
      Dsd_util.Vec.Int.to_array buf)

(* Run [per_stripe roots] on each stripe in its own domain (the last
   stripe on the calling domain) and merge the results. *)
let map_stripes g ~domains ~(per_stripe : int array -> 'a) : 'a list =
  if domains < 1 then invalid_arg "Parallel: domains must be >= 1";
  (* Each stripe runs under its own clique_stripe span: the obs
     accumulator sums them across domains, so the span total reads as
     aggregate stripe CPU time, not wall clock. *)
  let per_stripe roots =
    Dsd_obs.Span.with_ Dsd_obs.Phase.clique_stripe (fun () -> per_stripe roots)
  in
  let parts = stripes (G.n g) domains in
  if domains = 1 then [ per_stripe parts.(0) ]
  else begin
    let spawned =
      Array.to_list
        (Array.map
           (fun roots -> Domain.spawn (fun () -> per_stripe roots))
           (Array.sub parts 0 (domains - 1)))
    in
    let own = per_stripe parts.(domains - 1) in
    own :: List.map Domain.join spawned
  end

let count g ~h ~domains =
  let dag = Kclist.prepare g in
  let partials =
    map_stripes g ~domains ~per_stripe:(fun roots ->
        let c = ref 0 in
        Kclist.iter_prepared dag ~h ~roots ~f:(fun _ -> incr c);
        !c)
  in
  List.fold_left ( + ) 0 partials

let degrees g ~h ~domains =
  let dag = Kclist.prepare g in
  let partials =
    map_stripes g ~domains ~per_stripe:(fun roots ->
        let deg = Array.make (G.n g) 0 in
        Kclist.iter_prepared dag ~h ~roots ~f:(fun inst ->
            Array.iter (fun v -> deg.(v) <- deg.(v) + 1) inst);
        deg)
  in
  match partials with
  | [] -> [||]
  | first :: rest ->
    List.iter (fun part -> Array.iteri (fun v c -> first.(v) <- first.(v) + c) part) rest;
    first
