(* Flat-arena layout: instance members and per-vertex postings both
   live in single contiguous int arrays addressed through CSR-style
   offset tables.  The peel's hot scans (ownership resolution, degree
   refresh, posting walks) then stream disjoint cache-friendly ranges
   instead of chasing one heap block per vertex/instance — which is
   what lets chunked pool workers scale instead of thrashing. *)

type t = {
  n : int;
  total : int;
  arity : int;                 (* uniform member count; 0 only when total = 0 *)
  inst_mem : int array;        (* members of instance i at [i*arity, (i+1)*arity) *)
  post_off : int array;        (* n + 1 offsets into [post] *)
  post : int array;            (* vertex -> ids of instances containing it *)
  live : Bytes.t;              (* instance -> 1 if live *)
  deg : int array;             (* vertex -> live instance count *)
  mutable live_count : int;
}

let create ~n insts =
  let total = Array.length insts in
  let arity = if total = 0 then 0 else Array.length insts.(0) in
  let counts = Array.make (n + 1) 0 in
  Array.iter
    (fun inst ->
      if Array.length inst <> arity then
        invalid_arg "Instance_store.create: ragged instance arity";
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Instance_store.create: vertex out of range";
          counts.(v) <- counts.(v) + 1)
        inst)
    insts;
  let post_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    post_off.(v + 1) <- post_off.(v) + counts.(v)
  done;
  let post = Array.make post_off.(n) 0 in
  let inst_mem = Array.make (total * arity) 0 in
  let fill = Array.sub post_off 0 (max 1 (n + 1)) in
  Array.iteri
    (fun i inst ->
      Array.iteri
        (fun j v ->
          inst_mem.((i * arity) + j) <- v;
          post.(fill.(v)) <- i;
          fill.(v) <- fill.(v) + 1)
        inst)
    insts;
  {
    n;
    total;
    arity;
    inst_mem;
    post_off;
    post;
    live = Bytes.make total '\001';
    deg = Array.sub counts 0 (max 1 n);
    live_count = total;
  }

let total t = t.total
let live_total t = t.live_count
let arity t = t.arity
let member t i j = t.inst_mem.((i * t.arity) + j)
let members t i = Array.sub t.inst_mem (i * t.arity) t.arity
let is_live t i = Bytes.get t.live i = '\001'
let degree t v = t.deg.(v)

let iter_members t i ~f =
  let base = i * t.arity in
  for j = 0 to t.arity - 1 do
    f t.inst_mem.(base + j)
  done

let kill_instance_internal t i ~skip ~on_comember =
  Bytes.set t.live i '\000';
  t.live_count <- t.live_count - 1;
  let base = i * t.arity in
  for j = 0 to t.arity - 1 do
    let u = t.inst_mem.(base + j) in
    if u <> skip then begin
      t.deg.(u) <- t.deg.(u) - 1;
      on_comember u
    end
  done

let kill_vertex t v ~on_comember =
  let killed = ref 0 in
  for p = t.post_off.(v) to t.post_off.(v + 1) - 1 do
    let i = t.post.(p) in
    if is_live t i then begin
      incr killed;
      kill_instance_internal t i ~skip:v ~on_comember
    end
  done;
  t.deg.(v) <- 0;
  !killed

let kill_instance t i =
  if is_live t i then
    kill_instance_internal t i ~skip:(-1) ~on_comember:(fun _ -> ())

let kill_instance_with t i ~on_comember =
  if is_live t i then kill_instance_internal t i ~skip:(-1) ~on_comember

let iter_live_of_vertex t v ~f =
  for p = t.post_off.(v) to t.post_off.(v + 1) - 1 do
    let i = t.post.(p) in
    if is_live t i then f i
  done

let reset t =
  Bytes.fill t.live 0 (Bytes.length t.live) '\001';
  t.live_count <- t.total;
  Array.fill t.deg 0 t.n 0;
  Array.iter (fun v -> t.deg.(v) <- t.deg.(v) + 1) t.inst_mem

(* Growable variant for the incremental subsystem: instances are
   appended as edge inserts discover them and retired (tombstoned) as
   deletes destroy them.  Members share one flat growable arena (the
   static layout above, minus the fixed capacity); postings are
   append-only vectors that may contain dead ids — consumers filter
   through [is_live] — and dead slots are never reused, so instance
   ids are stable for the lifetime of the store (the flow arena keys
   its per-instance arcs by them). *)
module Dyn = struct
  type store = {
    n : int;
    mutable count : int;
    off : Dsd_util.Vec.Int.t;            (* count + 1 offsets into [mem] *)
    mem : Dsd_util.Vec.Int.t;            (* flat member arena *)
    posting : Dsd_util.Vec.Int.t array;  (* vertex -> ids (may be dead) *)
    mutable live : Bytes.t;
    deg : int array;                     (* vertex -> live instance count *)
    mutable live_count : int;
  }

  let total t = t.count
  let live_total t = t.live_count
  let is_live t i = i >= 0 && i < t.count && Bytes.get t.live i = '\001'
  let degree t v = t.deg.(v)

  let members t i =
    let lo = Dsd_util.Vec.Int.get t.off i in
    let hi = Dsd_util.Vec.Int.get t.off (i + 1) in
    Array.init (hi - lo) (fun j -> Dsd_util.Vec.Int.get t.mem (lo + j))

  let iter_members t i ~f =
    let lo = Dsd_util.Vec.Int.get t.off i in
    let hi = Dsd_util.Vec.Int.get t.off (i + 1) in
    for p = lo to hi - 1 do
      f (Dsd_util.Vec.Int.get t.mem p)
    done

  let append t ms =
    Array.iter
      (fun v ->
        if v < 0 || v >= t.n then
          invalid_arg "Instance_store.Dyn.append: vertex out of range")
      ms;
    let id = t.count in
    if id >= Bytes.length t.live then begin
      let grown = Bytes.make (max 16 (2 * Bytes.length t.live)) '\000' in
      Bytes.blit t.live 0 grown 0 (Bytes.length t.live);
      t.live <- grown
    end;
    Array.iter (fun v -> Dsd_util.Vec.Int.push t.mem v) ms;
    Dsd_util.Vec.Int.push t.off (Dsd_util.Vec.Int.length t.mem);
    Bytes.set t.live id '\001';
    t.count <- t.count + 1;
    t.live_count <- t.live_count + 1;
    Array.iter
      (fun v ->
        Dsd_util.Vec.Int.push t.posting.(v) id;
        t.deg.(v) <- t.deg.(v) + 1)
      ms;
    id

  let retire t i =
    if not (is_live t i) then false
    else begin
      Bytes.set t.live i '\000';
      t.live_count <- t.live_count - 1;
      iter_members t i ~f:(fun v -> t.deg.(v) <- t.deg.(v) - 1);
      true
    end

  let iter_live_of_vertex t v ~f =
    Dsd_util.Vec.Int.iter (fun i -> if is_live t i then f i) t.posting.(v)

  let mem_vertex t i w =
    let lo = Dsd_util.Vec.Int.get t.off i in
    let hi = Dsd_util.Vec.Int.get t.off (i + 1) in
    let rec go p =
      p < hi && (Dsd_util.Vec.Int.get t.mem p = w || go (p + 1))
    in
    go lo

  (* Retire every live instance containing both endpoints of a deleted
     edge.  Scans the shorter posting list; membership of the other
     endpoint is a linear probe of the (small, h-sized) member run. *)
  let retire_edge t u v ~f =
    if u < 0 || u >= t.n || v < 0 || v >= t.n then
      invalid_arg "Instance_store.Dyn.retire_edge: vertex out of range";
    let scan, other =
      if
        Dsd_util.Vec.Int.length t.posting.(u)
        <= Dsd_util.Vec.Int.length t.posting.(v)
      then (u, v)
      else (v, u)
    in
    let retired = ref 0 in
    let hits = ref [] in
    iter_live_of_vertex t scan ~f:(fun i ->
        if mem_vertex t i other then hits := i :: !hits);
    List.iter
      (fun i ->
        if retire t i then begin
          incr retired;
          f i
        end)
      !hits;
    !retired

  (* All live instances in id (append) order — the canonical input for
     rebuilding a compacted store or arena. *)
  let live_members t =
    let acc = ref [] in
    for i = t.count - 1 downto 0 do
      if is_live t i then acc := members t i :: !acc
    done;
    Array.of_list !acc

  let create ~n insts =
    let off = Dsd_util.Vec.Int.create ~capacity:16 () in
    Dsd_util.Vec.Int.push off 0;
    let t =
      {
        n;
        count = 0;
        off;
        mem = Dsd_util.Vec.Int.create ~capacity:64 ();
        posting =
          Array.init (max 1 n) (fun _ ->
              Dsd_util.Vec.Int.create ~capacity:4 ());
        live = Bytes.make (max 16 (2 * Array.length insts)) '\000';
        deg = Array.make (max 1 n) 0;
        live_count = 0;
      }
    in
    Array.iter (fun m -> ignore (append t m)) insts;
    t
end
