type t = {
  n : int;
  insts : int array array;
  posting : int array array;   (* vertex -> ids of instances containing it *)
  live : Bytes.t;              (* instance -> 1 if live *)
  deg : int array;             (* vertex -> live instance count *)
  mutable live_count : int;
}

let create ~n insts =
  let counts = Array.make n 0 in
  Array.iter
    (fun inst ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Instance_store.create: vertex out of range";
          counts.(v) <- counts.(v) + 1)
        inst)
    insts;
  let posting = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make n 0 in
  Array.iteri
    (fun i inst ->
      Array.iter
        (fun v ->
          posting.(v).(fill.(v)) <- i;
          fill.(v) <- fill.(v) + 1)
        inst)
    insts;
  {
    n;
    insts;
    posting;
    live = Bytes.make (Array.length insts) '\001';
    deg = counts;
    live_count = Array.length insts;
  }

let total t = Array.length t.insts
let live_total t = t.live_count
let members t i = t.insts.(i)
let is_live t i = Bytes.get t.live i = '\001'
let degree t v = t.deg.(v)

let kill_instance_internal t i ~skip ~on_comember =
  Bytes.set t.live i '\000';
  t.live_count <- t.live_count - 1;
  Array.iter
    (fun u ->
      if u <> skip then begin
        t.deg.(u) <- t.deg.(u) - 1;
        on_comember u
      end)
    t.insts.(i)

let kill_vertex t v ~on_comember =
  let killed = ref 0 in
  Array.iter
    (fun i ->
      if is_live t i then begin
        incr killed;
        kill_instance_internal t i ~skip:v ~on_comember
      end)
    t.posting.(v);
  t.deg.(v) <- 0;
  !killed

let kill_instance t i =
  if is_live t i then
    kill_instance_internal t i ~skip:(-1) ~on_comember:(fun _ -> ())

let kill_instance_with t i ~on_comember =
  if is_live t i then kill_instance_internal t i ~skip:(-1) ~on_comember

let iter_live_of_vertex t v ~f =
  Array.iter (fun i -> if is_live t i then f i) t.posting.(v)

let reset t =
  Bytes.fill t.live 0 (Bytes.length t.live) '\001';
  t.live_count <- total t;
  Array.fill t.deg 0 t.n 0;
  Array.iter (fun inst -> Array.iter (fun v -> t.deg.(v) <- t.deg.(v) + 1) inst) t.insts

(* Growable variant for the incremental subsystem: instances are
   appended as edge inserts discover them and retired (tombstoned) as
   deletes destroy them.  Postings are append-only vectors that may
   contain dead ids — consumers filter through [is_live] — and dead
   slots are never reused, so instance ids are stable for the lifetime
   of the store (the flow arena keys its per-instance arcs by them). *)
module Dyn = struct
  type store = {
    n : int;
    mutable insts : int array array;     (* id -> members; [||] = unset *)
    mutable count : int;
    posting : Dsd_util.Vec.Int.t array;  (* vertex -> ids (may be dead) *)
    mutable live : Bytes.t;
    deg : int array;                     (* vertex -> live instance count *)
    mutable live_count : int;
  }

  let total t = t.count
  let live_total t = t.live_count
  let members t i = t.insts.(i)
  let is_live t i = i >= 0 && i < t.count && Bytes.get t.live i = '\001'
  let degree t v = t.deg.(v)

  let append t members =
    Array.iter
      (fun v ->
        if v < 0 || v >= t.n then
          invalid_arg "Instance_store.Dyn.append: vertex out of range")
      members;
    let id = t.count in
    if id >= Array.length t.insts then begin
      let grown = Array.make (max 16 (2 * Array.length t.insts)) [||] in
      Array.blit t.insts 0 grown 0 (Array.length t.insts);
      t.insts <- grown
    end;
    if id >= Bytes.length t.live then begin
      let grown = Bytes.make (max 16 (2 * Bytes.length t.live)) '\000' in
      Bytes.blit t.live 0 grown 0 (Bytes.length t.live);
      t.live <- grown
    end;
    t.insts.(id) <- members;
    Bytes.set t.live id '\001';
    t.count <- t.count + 1;
    t.live_count <- t.live_count + 1;
    Array.iter
      (fun v ->
        Dsd_util.Vec.Int.push t.posting.(v) id;
        t.deg.(v) <- t.deg.(v) + 1)
      members;
    id

  let retire t i =
    if not (is_live t i) then false
    else begin
      Bytes.set t.live i '\000';
      t.live_count <- t.live_count - 1;
      Array.iter (fun v -> t.deg.(v) <- t.deg.(v) - 1) t.insts.(i);
      true
    end

  let iter_live_of_vertex t v ~f =
    Dsd_util.Vec.Int.iter (fun i -> if is_live t i then f i) t.posting.(v)

  (* Retire every live instance containing both endpoints of a deleted
     edge.  Scans the shorter posting list; membership of the other
     endpoint is a linear probe of the (small, h-sized) member array. *)
  let retire_edge t u v ~f =
    if u < 0 || u >= t.n || v < 0 || v >= t.n then
      invalid_arg "Instance_store.Dyn.retire_edge: vertex out of range";
    let scan, other =
      if
        Dsd_util.Vec.Int.length t.posting.(u)
        <= Dsd_util.Vec.Int.length t.posting.(v)
      then (u, v)
      else (v, u)
    in
    let retired = ref 0 in
    let hits = ref [] in
    iter_live_of_vertex t scan ~f:(fun i ->
        if Array.exists (fun w -> w = other) t.insts.(i) then hits := i :: !hits);
    List.iter
      (fun i ->
        if retire t i then begin
          incr retired;
          f i
        end)
      !hits;
    !retired

  (* All live instances in id (append) order — the canonical input for
     rebuilding a compacted store or arena. *)
  let live_members t =
    let acc = ref [] in
    for i = t.count - 1 downto 0 do
      if is_live t i then acc := t.insts.(i) :: !acc
    done;
    Array.of_list !acc

  let create ~n insts =
    let t =
      {
        n;
        insts = Array.make (max 16 (2 * Array.length insts)) [||];
        count = 0;
        posting = Array.init (max 1 n) (fun _ -> Dsd_util.Vec.Int.create ~capacity:4 ());
        live = Bytes.make (max 16 (2 * Array.length insts)) '\000';
        deg = Array.make (max 1 n) 0;
        live_count = 0;
      }
    in
    Array.iter (fun m -> ignore (append t m)) insts;
    t
end
