type t = {
  n : int;
  insts : int array array;
  posting : int array array;   (* vertex -> ids of instances containing it *)
  live : Bytes.t;              (* instance -> 1 if live *)
  deg : int array;             (* vertex -> live instance count *)
  mutable live_count : int;
}

let create ~n insts =
  let counts = Array.make n 0 in
  Array.iter
    (fun inst ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Instance_store.create: vertex out of range";
          counts.(v) <- counts.(v) + 1)
        inst)
    insts;
  let posting = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make n 0 in
  Array.iteri
    (fun i inst ->
      Array.iter
        (fun v ->
          posting.(v).(fill.(v)) <- i;
          fill.(v) <- fill.(v) + 1)
        inst)
    insts;
  {
    n;
    insts;
    posting;
    live = Bytes.make (Array.length insts) '\001';
    deg = counts;
    live_count = Array.length insts;
  }

let total t = Array.length t.insts
let live_total t = t.live_count
let members t i = t.insts.(i)
let is_live t i = Bytes.get t.live i = '\001'
let degree t v = t.deg.(v)

let kill_instance_internal t i ~skip ~on_comember =
  Bytes.set t.live i '\000';
  t.live_count <- t.live_count - 1;
  Array.iter
    (fun u ->
      if u <> skip then begin
        t.deg.(u) <- t.deg.(u) - 1;
        on_comember u
      end)
    t.insts.(i)

let kill_vertex t v ~on_comember =
  let killed = ref 0 in
  Array.iter
    (fun i ->
      if is_live t i then begin
        incr killed;
        kill_instance_internal t i ~skip:v ~on_comember
      end)
    t.posting.(v);
  t.deg.(v) <- 0;
  !killed

let kill_instance t i =
  if is_live t i then
    kill_instance_internal t i ~skip:(-1) ~on_comember:(fun _ -> ())

let kill_instance_with t i ~on_comember =
  if is_live t i then kill_instance_internal t i ~skip:(-1) ~on_comember

let iter_live_of_vertex t v ~f =
  Array.iter (fun i -> if is_live t i then f i) t.posting.(v)

let reset t =
  Bytes.fill t.live 0 (Bytes.length t.live) '\001';
  t.live_count <- total t;
  Array.fill t.deg 0 t.n 0;
  Array.iter (fun inst -> Array.iter (fun v -> t.deg.(v) <- t.deg.(v) + 1) inst) t.insts
