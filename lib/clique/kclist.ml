module G = Dsd_graph.Graph

(* Out-neighbourhoods of the degeneracy DAG, each sorted by vertex id
   so candidate sets can be intersected by linear merges. *)
let build_dag g =
  let deg = Dsd_graph.Degeneracy.compute g in
  let n = G.n g in
  let out = Array.make n [||] in
  for v = 0 to n - 1 do
    (* Count first so each row is allocated exactly once, instead of
       growing a vector and copying it out. *)
    let cnt =
      G.fold_neighbors g v ~init:0 ~f:(fun acc w ->
          if deg.rank.(w) > deg.rank.(v) then acc + 1 else acc)
    in
    let row = Array.make cnt 0 in
    let i = ref 0 in
    G.iter_neighbors g v ~f:(fun w ->
        if deg.rank.(w) > deg.rank.(v) then begin
          row.(!i) <- w;
          incr i
        end);
    out.(v) <- row
  done;
  out

let intersect a b =
  let out = Dsd_util.Vec.Int.create ~capacity:(min (Array.length a) (Array.length b) + 1) () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      Dsd_util.Vec.Int.push out x;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Dsd_util.Vec.Int.to_array out

type dag = int array array

let prepare g = build_dag g

let iter_prepared out ~h ~roots ~f =
  if h < 1 then invalid_arg "Kclist.iter_prepared: h must be >= 1";
  let buf = Array.make h 0 in
  let emit = Array.make h 0 in
  (* Tally locally, publish once per call: with parallel striping each
     stripe lands one atomic add instead of one per instance. *)
  let emitted = ref 0 in
  let output () =
    Array.blit buf 0 emit 0 h;
    Array.sort compare emit;
    incr emitted;
    f emit
  in
  let flush_tally () =
    Dsd_obs.Counter.add Dsd_obs.Counter.Clique_instances !emitted
  in
  if h = 1 then begin
    Array.iter
      (fun v ->
        buf.(0) <- v;
        output ())
      roots;
    flush_tally ()
  end
  else begin
    (* [depth] members are already chosen in buf.(0..depth-1); [cand]
       holds the common DAG out-neighbours of all of them. *)
    let rec extend depth cand =
      if depth = h - 1 then
        Array.iter
          (fun u ->
            buf.(depth) <- u;
            output ())
          cand
      else
        Array.iter
          (fun u ->
            buf.(depth) <- u;
            extend (depth + 1) (intersect cand out.(u)))
          cand
    in
    Array.iter
      (fun v ->
        buf.(0) <- v;
        extend 1 out.(v))
      roots;
    flush_tally ()
  end

let iter g ~h ~f =
  let dag = prepare g in
  iter_prepared dag ~h ~roots:(Array.init (G.n g) (fun v -> v)) ~f

let count g ~h =
  let c = ref 0 in
  iter g ~h ~f:(fun _ -> incr c);
  !c

let list g ~h =
  let acc = ref [] in
  iter g ~h ~f:(fun inst -> acc := Array.copy inst :: !acc);
  Array.of_list (List.rev !acc)
