(** Baseline h-clique enumerator by plain backtracking (extend the
    current clique with higher-numbered common neighbours).

    Exponentially slower than {!Kclist} on dense graphs; retained as an
    independent oracle for tests. *)

val iter : Dsd_graph.Graph.t -> h:int -> f:(int array -> unit) -> unit
val count : Dsd_graph.Graph.t -> h:int -> int
val list : Dsd_graph.Graph.t -> h:int -> int array array
