module G = Dsd_graph.Graph

let degrees g ~h =
  let deg = Array.make (G.n g) 0 in
  Kclist.iter g ~h ~f:(fun inst ->
      Array.iter (fun v -> deg.(v) <- deg.(v) + 1) inst);
  deg

let mu g ~h = Kclist.count g ~h

let triangles_per_edge g =
  let out = ref [] in
  G.iter_edges g ~f:(fun u v ->
      let nu = G.neighbors g u and nv = G.neighbors g v in
      let i = ref 0 and j = ref 0 and c = ref 0 in
      while !i < Array.length nu && !j < Array.length nv do
        let x = nu.(!i) and y = nv.(!j) in
        if x = y then begin
          incr c;
          incr i;
          incr j
        end
        else if x < y then incr i
        else incr j
      done;
      out := ((u, v), !c) :: !out);
  Array.of_list (List.rev !out)
