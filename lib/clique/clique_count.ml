module G = Dsd_graph.Graph

let degrees g ~h =
  let deg = Array.make (G.n g) 0 in
  Kclist.iter g ~h ~f:(fun inst ->
      Array.iter (fun v -> deg.(v) <- deg.(v) + 1) inst);
  deg

let mu g ~h = Kclist.count g ~h

let triangles_per_edge g =
  let out = ref [] in
  G.iter_edges g ~f:(fun u v ->
      let c = ref 0 in
      G.iter_common_neighbors g u v ~f:(fun _ -> incr c);
      out := ((u, v), !c) :: !out);
  Array.of_list (List.rev !out)
