(** Nucleus baseline — local/AND-style k-(1,h) nucleus decomposition
    (Sariyuce, Seshadhri, Pinar, PVLDB'18; the paper's [59] baseline,
    run single-threaded as in Section 8).

    Every vertex starts at its Psi-degree and repeatedly applies the
    h-index update over the minimum values of its instances until a
    fixpoint; the fixpoint equals the (k, Psi)-core numbers, so the
    (kmax, Psi)-core can be read off.  Generalised to arbitrary
    patterns through the shared instance store. *)

type result = {
  subgraph : Density.subgraph;  (** the (kmax, Psi)-core *)
  core : int array;             (** converged clique-core numbers *)
  kmax : int;
  updates : int;                (** vertex re-evaluations until fixpoint *)
  elapsed_s : float;
}

val run : Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
