module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type t = {
  psi : P.t;
  core : int array;
  kmax : int;
  order : int array;
  mu_total : int;
  best_residual_density : float;
  best_residual_start : int;
  residual_densities : float array;
}

(* Shared peel skeleton.  [pop] yields the next minimum-degree vertex
   with its degree; [retire v] kills v's live instances, returning how
   many died, and updates co-member degrees (and whatever priority
   structure backs [pop]). *)
let peel ~n ~mu_total ~track_density ~pop ~retire =
  let core = Array.make n 0 in
  let order = Array.make n 0 in
  let mu_live = ref mu_total in
  let initial_density =
    if n = 0 then 0. else float_of_int mu_total /. float_of_int n
  in
  let residuals =
    if track_density then Array.make (max 1 n) initial_density else [||]
  in
  let best_density = ref initial_density in
  let best_start = ref 0 in
  let run_max = ref 0 in
  for i = 0 to n - 1 do
    match pop () with
    | None -> assert false
    | Some (v, deg) ->
      Dsd_obs.Counter.incr Dsd_obs.Counter.Peeled_vertices;
      if deg > !run_max then run_max := deg;
      core.(v) <- !run_max;
      order.(i) <- v;
      let killed = retire v in
      mu_live := !mu_live - killed;
      if track_density && i < n - 1 then begin
        let d = float_of_int !mu_live /. float_of_int (n - i - 1) in
        residuals.(i + 1) <- d;
        if d > !best_density then begin
          best_density := d;
          best_start := i + 1
        end
      end
  done;
  assert (!mu_live = 0);
  ( core,
    order,
    !run_max,
    (if track_density then !best_density else 0.),
    (if track_density then !best_start else 0),
    residuals )

let decompose_generic ~track_density g psi =
  let n = G.n g in
  let insts = Enumerate.instances g psi in
  let store = Dsd_clique.Instance_store.create ~n insts in
  let max_deg = ref 1 in
  for v = 0 to n - 1 do
    if Dsd_clique.Instance_store.degree store v > !max_deg then
      max_deg := Dsd_clique.Instance_store.degree store v
  done;
  let queue = Dsd_util.Bucket_queue.create ~n ~max_key:!max_deg in
  for v = 0 to n - 1 do
    Dsd_util.Bucket_queue.add queue ~item:v
      ~key:(Dsd_clique.Instance_store.degree store v)
  done;
  (* Deduplicate co-member notifications per deletion with a stamp. *)
  let stamp = Array.make n (-1) in
  let touched = Dsd_util.Vec.Int.create () in
  let retire v =
    Dsd_util.Vec.Int.clear touched;
    let killed =
      Dsd_clique.Instance_store.kill_vertex store v ~on_comember:(fun u ->
          if stamp.(u) <> v then begin
            stamp.(u) <- v;
            Dsd_util.Vec.Int.push touched u
          end)
    in
    Dsd_util.Vec.Int.iter
      (fun u ->
        if Dsd_util.Bucket_queue.mem queue u then
          Dsd_util.Bucket_queue.update queue ~item:u
            ~key:(Dsd_clique.Instance_store.degree store u))
      touched;
    killed
  in
  let mu_total = Dsd_clique.Instance_store.total store in
  let core, order, kmax, bd, bs, residuals =
    peel ~n ~mu_total ~track_density
      ~pop:(fun () -> Dsd_util.Bucket_queue.pop_min queue)
      ~retire
  in
  (core, order, kmax, bd, bs, residuals, mu_total)

(* Star / 4-cycle engine: closed-form degrees, decrement rules, lazy
   heap (degrees like C(d, x) overflow a bucket array). *)
let decompose_special g ~degrees_of ~on_delete =
  let n = G.n g in
  let live = Dsd_graph.Subgraph.of_graph g in
  let degs = degrees_of live in
  let heap = Dsd_util.Lazy_heap.create ~n in
  for v = 0 to n - 1 do
    Dsd_util.Lazy_heap.add heap ~item:v ~key:degs.(v)
  done;
  let psize_sum = Array.fold_left ( + ) 0 degs in
  let stamp = Array.make n (-1) in
  let touched = Dsd_util.Vec.Int.create () in
  let retire v =
    let killed = degs.(v) in
    Dsd_util.Vec.Int.clear touched;
    on_delete live ~v ~apply:(fun u delta ->
        degs.(u) <- degs.(u) - delta;
        if stamp.(u) <> v then begin
          stamp.(u) <- v;
          Dsd_util.Vec.Int.push touched u
        end);
    Dsd_graph.Subgraph.delete live v;
    degs.(v) <- 0;
    Dsd_util.Vec.Int.iter
      (fun u ->
        if Dsd_util.Lazy_heap.mem heap u then
          Dsd_util.Lazy_heap.update heap ~item:u ~key:degs.(u))
      touched;
    killed
  in
  (psize_sum, retire, heap)

let decompose ?(track_density = true) g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.decompose @@ fun () ->
  let n = G.n g in
  let core_arr, order, kmax, best_density, best_start, residuals, mu_total =
    match psi.kind with
    | P.Star x ->
      let sum, retire, heap =
        decompose_special g
          ~degrees_of:(fun live -> Dsd_pattern.Special.star_degrees live ~x)
          ~on_delete:(fun live ~v ~apply ->
            Dsd_pattern.Special.star_on_delete live ~x ~v ~apply)
      in
      let mu_total = sum / psi.size in
      let core, order, kmax, bd, bs, residuals =
        peel ~n ~mu_total ~track_density
          ~pop:(fun () -> Dsd_util.Lazy_heap.pop_min heap)
          ~retire
      in
      (core, order, kmax, bd, bs, residuals, mu_total)
    | P.Cycle4 ->
      let sum, retire, heap =
        decompose_special g
          ~degrees_of:Dsd_pattern.Special.c4_degrees
          ~on_delete:(fun live ~v ~apply ->
            Dsd_pattern.Special.c4_on_delete live ~v ~apply)
      in
      let mu_total = sum / 4 in
      let core, order, kmax, bd, bs, residuals =
        peel ~n ~mu_total ~track_density
          ~pop:(fun () -> Dsd_util.Lazy_heap.pop_min heap)
          ~retire
      in
      (core, order, kmax, bd, bs, residuals, mu_total)
    | P.Clique | P.Generic -> decompose_generic ~track_density g psi
  in
  {
    psi;
    core = core_arr;
    kmax;
    order;
    mu_total;
    best_residual_density = best_density;
    best_residual_start = best_start;
    residual_densities = residuals;
  }

let core_vertices t ~k =
  let out = Dsd_util.Vec.Int.create () in
  Array.iteri (fun v c -> if c >= k then Dsd_util.Vec.Int.push out v) t.core;
  Dsd_util.Vec.Int.to_array out

let kmax_core t = core_vertices t ~k:t.kmax

let best_residual t =
  let len = Array.length t.order - t.best_residual_start in
  let vs = Array.sub t.order t.best_residual_start len in
  Array.sort compare vs;
  vs
