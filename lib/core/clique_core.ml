module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type t = {
  psi : P.t;
  core : int array;
  kmax : int;
  order : int array;
  mu_total : int;
  best_residual_density : float;
  best_residual_start : int;
  residual_densities : float array;
}

(* Shared peel skeleton.  [pop] yields the next minimum-degree vertex
   with its degree; [retire v] kills v's live instances, returning how
   many died, and updates co-member degrees (and whatever priority
   structure backs [pop]). *)
let peel ~n ~mu_total ~track_density ~pop ~retire =
  let core = Array.make n 0 in
  let order = Array.make n 0 in
  let mu_live = ref mu_total in
  let initial_density =
    if n = 0 then 0. else float_of_int mu_total /. float_of_int n
  in
  let residuals =
    if track_density then Array.make (max 1 n) initial_density else [||]
  in
  let best_density = ref initial_density in
  let best_start = ref 0 in
  let run_max = ref 0 in
  for i = 0 to n - 1 do
    match pop () with
    | None -> assert false
    | Some (v, deg) ->
      Dsd_obs.Counter.incr Dsd_obs.Counter.Peeled_vertices;
      if deg > !run_max then run_max := deg;
      core.(v) <- !run_max;
      order.(i) <- v;
      let killed = retire v in
      mu_live := !mu_live - killed;
      if track_density && i < n - 1 then begin
        let d = float_of_int !mu_live /. float_of_int (n - i - 1) in
        residuals.(i + 1) <- d;
        if d > !best_density then begin
          best_density := d;
          best_start := i + 1
        end
      end
  done;
  assert (!mu_live = 0);
  ( core,
    order,
    !run_max,
    (if track_density then !best_density else 0.),
    (if track_density then !best_start else 0),
    residuals )

(* Round-synchronous (bucket-free) peel over an instance store — the
   canonical engine for clique/generic patterns, sequential and
   parallel alike.

   Threshold peeling's core numbers are order-independent: core(v) is
   the largest k such that v survives deleting everything of
   instance-degree < k, however ties are broken.  So instead of
   popping one minimum at a time, each level k removes the entire
   cascade of vertices whose live degree falls to <= k, in batched
   sub-rounds; every removed vertex gets core number k, which is
   exactly what a sequential bucket peel's running maximum assigns.

   The canonical peel order: each sub-round's frontier is linearised
   in ascending vertex id.  Under that linearisation the number of
   instances vertex v retires at its own removal step — and hence its
   live degree at removal time — equals the number of live instances
   whose minimum in-frontier member is v (every instance with a
   smaller in-frontier member died at that earlier member's step).
   Those "owned counts" come out of a read-only scan, so the
   per-step residual densities of Pruning1 (and Greedy++'s load
   updates, via [on_peel]) are computed exactly, without any
   sequential re-walk.  Peeling whole levels keeps the Theorem 3/4
   guarantees: at the first position of level k the residual graph has
   minimum degree k, so the best level-boundary suffix already attains
   the rho*/|Psi| bound PeelApp needs.

   Parallel structure per sub-round: the scan that maps each frontier
   vertex to the live instances it owns fans out across the pool;
   mutations (liveness bits, degree decrements, the next sub-frontier)
   are applied sequentially from the chunk-ordered scan results.
   Ownership (minimum in-frontier member — member slices are sorted)
   is a pure function of sub-round-start state, so it needs no
   synchronisation to agree across domains.  Chunk sizes are fixed
   constants, hence boundaries — and with them every merged result —
   are independent of the pool size: the transcript is bit-identical
   from one domain to as many as the hardware has. *)
let peel_store ?pool ?(on_peel = fun _ _ -> ()) ~track_density ~n store =
  let module IS = Dsd_clique.Instance_store in
  (* Fixed chunk sizes: scan results merge in chunk order, and with
     boundaries independent of the pool size the peel order is the
     same for every domain count. *)
  let scan_chunk = 4096 and frontier_chunk = 256 in
  let map_chunks ~chunk ~n f =
    match pool with
    | Some pool -> Dsd_util.Pool.map_chunks pool ~chunk ~n f
    | None ->
      if n = 0 then [||]
      else
        Array.init
          ((n + chunk - 1) / chunk)
          (fun c ->
            let lo = c * chunk in
            f lo (min n (lo + chunk)))
  in
  let core = Array.make n 0 in
  let order = Array.make n 0 in
  let mu_total = IS.total store in
  let mu_live = ref mu_total in
  let initial_density =
    if n = 0 then 0. else float_of_int mu_total /. float_of_int n
  in
  let residuals =
    if track_density then Array.make (max 1 n) initial_density else [||]
  in
  let best_density = ref initial_density in
  let best_start = ref 0 in
  let pos = ref 0 in
  let alive = Array.make n true in
  let in_frontier = Array.make n false in
  let queued = Array.make n false in
  let k = ref 0 in
  let kmax = ref 0 in
  (* Survivors, compacted per level so the level scans cost O(live)
     rather than O(n); filtering preserves ascending order. *)
  let active = ref (Array.init n (fun v -> v)) in
  while !pos < n do
    let act = !active in
    let an = Array.length act in
    (* Next level: the minimum live degree (strictly above the level
       just drained, so k advances past empty levels in one step). *)
    let level =
      Array.fold_left min max_int
        (map_chunks ~chunk:scan_chunk ~n:an (fun lo hi ->
             let m = ref max_int in
             for idx = lo to hi - 1 do
               let v = act.(idx) in
               if alive.(v) then begin
                 let d = IS.degree store v in
                 if d < !m then m := d
               end
             done;
             !m))
    in
    assert (level < max_int);
    k := level;
    kmax := level;
    let frontier =
      ref
        (Array.concat
           (Array.to_list
              (map_chunks ~chunk:scan_chunk ~n:an (fun lo hi ->
                   let out = Dsd_util.Vec.Int.create () in
                   for idx = lo to hi - 1 do
                     let v = act.(idx) in
                     if alive.(v) && IS.degree store v <= !k then
                       Dsd_util.Vec.Int.push out v
                   done;
                   Dsd_util.Vec.Int.to_array out))))
    in
    while Array.length !frontier > 0 do
      let fr = !frontier in
      let fn = Array.length fr in
      Array.iter (fun v -> in_frontier.(v) <- true) fr;
      (* Read-only ownership scan: liveness and degrees are not
         mutated until the kill lists and owned counts are complete. *)
      let scans =
        map_chunks ~chunk:frontier_chunk ~n:fn (fun lo hi ->
            let kills = Dsd_util.Vec.Int.create () in
            let owned = Array.make (hi - lo) 0 in
            for idx = lo to hi - 1 do
              let v = fr.(idx) in
              IS.iter_live_of_vertex store v ~f:(fun i ->
                  let rec owner j =
                    let u = IS.member store i j in
                    if in_frontier.(u) then u else owner (j + 1)
                  in
                  if owner 0 = v then begin
                    owned.(idx - lo) <- owned.(idx - lo) + 1;
                    Dsd_util.Vec.Int.push kills i
                  end)
            done;
            (kills, owned))
      in
      (* Linearised removal in ascending id order (fr is sorted):
         vertex bookkeeping, density tracking and the on_peel hook see
         exactly the sequential one-at-a-time transcript. *)
      Array.iteri
        (fun c (_, owned) ->
          let lo = c * frontier_chunk in
          Array.iteri
            (fun d cnt ->
              let v = fr.(lo + d) in
              let i = !pos in
              alive.(v) <- false;
              core.(v) <- !k;
              order.(i) <- v;
              pos := i + 1;
              Dsd_obs.Counter.incr Dsd_obs.Counter.Peeled_vertices;
              on_peel v cnt;
              mu_live := !mu_live - cnt;
              if track_density && i < n - 1 then begin
                let d = float_of_int !mu_live /. float_of_int (n - i - 1) in
                residuals.(i + 1) <- d;
                if d > !best_density then begin
                  best_density := d;
                  best_start := i + 1
                end
              end)
            owned)
        scans;
      (* Store mutation: retire owned instances, decrement co-member
         degrees, and queue the cascade that fell to <= k. *)
      let next = Dsd_util.Vec.Int.create () in
      Array.iter
        (fun (kills, _) ->
          Dsd_util.Vec.Int.iter
            (fun i ->
              IS.kill_instance_with store i ~on_comember:(fun u ->
                  if
                    alive.(u) && (not queued.(u)) && IS.degree store u <= !k
                  then begin
                    queued.(u) <- true;
                    Dsd_util.Vec.Int.push next u
                  end))
            kills)
        scans;
      Array.iter (fun v -> in_frontier.(v) <- false) fr;
      let nf = Dsd_util.Vec.Int.to_array next in
      (* Cascade discovery order depends on posting layout; sorting
         restores the canonical ascending linearisation. *)
      Array.sort compare nf;
      Array.iter (fun v -> queued.(v) <- false) nf;
      frontier := nf
    done;
    if !pos < n then begin
      let out = Dsd_util.Vec.Int.create ~capacity:(Array.length act) () in
      Array.iter
        (fun v -> if alive.(v) then Dsd_util.Vec.Int.push out v)
        act;
      active := Dsd_util.Vec.Int.to_array out
    end
  done;
  assert (!mu_live = 0);
  ( core,
    order,
    !kmax,
    (if track_density then !best_density else 0.),
    (if track_density then !best_start else 0),
    residuals )

let decompose_generic ?pool ~track_density g psi =
  let n = G.n g in
  let insts = Enumerate.instances ?pool g psi in
  let store = Dsd_clique.Instance_store.create ~n insts in
  let mu_total = Dsd_clique.Instance_store.total store in
  let core, order, kmax, bd, bs, residuals =
    peel_store ?pool ~track_density ~n store
  in
  (core, order, kmax, bd, bs, residuals, mu_total)

(* Star / 4-cycle engine: closed-form degrees, decrement rules, lazy
   heap (degrees like C(d, x) overflow a bucket array). *)
let decompose_special g ~degrees_of ~on_delete =
  let n = G.n g in
  let live = Dsd_graph.Subgraph.of_graph g in
  let degs = degrees_of live in
  let heap = Dsd_util.Lazy_heap.create ~n in
  for v = 0 to n - 1 do
    Dsd_util.Lazy_heap.add heap ~item:v ~key:degs.(v)
  done;
  let psize_sum = Array.fold_left ( + ) 0 degs in
  let stamp = Array.make n (-1) in
  let touched = Dsd_util.Vec.Int.create () in
  let retire v =
    let killed = degs.(v) in
    Dsd_util.Vec.Int.clear touched;
    on_delete live ~v ~apply:(fun u delta ->
        degs.(u) <- degs.(u) - delta;
        if stamp.(u) <> v then begin
          stamp.(u) <- v;
          Dsd_util.Vec.Int.push touched u
        end);
    Dsd_graph.Subgraph.delete live v;
    degs.(v) <- 0;
    Dsd_util.Vec.Int.iter
      (fun u ->
        if Dsd_util.Lazy_heap.mem heap u then
          Dsd_util.Lazy_heap.update heap ~item:u ~key:degs.(u))
      touched;
    killed
  in
  (psize_sum, retire, heap)

let decompose ?pool ?(track_density = true) g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.decompose @@ fun () ->
  let n = G.n g in
  let core_arr, order, kmax, best_density, best_start, residuals, mu_total =
    match psi.kind with
    | P.Star x ->
      let sum, retire, heap =
        decompose_special g
          ~degrees_of:(fun live -> Dsd_pattern.Special.star_degrees live ~x)
          ~on_delete:(fun live ~v ~apply ->
            Dsd_pattern.Special.star_on_delete live ~x ~v ~apply)
      in
      let mu_total = sum / psi.size in
      let core, order, kmax, bd, bs, residuals =
        peel ~n ~mu_total ~track_density
          ~pop:(fun () -> Dsd_util.Lazy_heap.pop_min heap)
          ~retire
      in
      (core, order, kmax, bd, bs, residuals, mu_total)
    | P.Cycle4 ->
      let sum, retire, heap =
        decompose_special g
          ~degrees_of:Dsd_pattern.Special.c4_degrees
          ~on_delete:(fun live ~v ~apply ->
            Dsd_pattern.Special.c4_on_delete live ~v ~apply)
      in
      let mu_total = sum / 4 in
      let core, order, kmax, bd, bs, residuals =
        peel ~n ~mu_total ~track_density
          ~pop:(fun () -> Dsd_util.Lazy_heap.pop_min heap)
          ~retire
      in
      (core, order, kmax, bd, bs, residuals, mu_total)
    | P.Clique | P.Generic -> decompose_generic ?pool ~track_density g psi
  in
  {
    psi;
    core = core_arr;
    kmax;
    order;
    mu_total;
    best_residual_density = best_density;
    best_residual_start = best_start;
    residual_densities = residuals;
  }

let core_vertices t ~k =
  let out = Dsd_util.Vec.Int.create () in
  Array.iteri (fun v c -> if c >= k then Dsd_util.Vec.Int.push out v) t.core;
  Dsd_util.Vec.Int.to_array out

let kmax_core t = core_vertices t ~k:t.kmax

let best_residual t =
  let len = Array.length t.order - t.best_residual_start in
  let vs = Array.sub t.order t.best_residual_start len in
  Array.sort compare vs;
  vs
