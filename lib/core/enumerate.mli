(** Unified instance enumeration for any Psi.

    Dispatches on the pattern's recognised shape: h-cliques go through
    the degeneracy-DAG lister ({!Dsd_clique.Kclist}), everything else
    through the generic matcher ({!Dsd_pattern.Match}).  All algorithms
    in this library consume Psi through this module, which is what lets
    one CDS code path serve the PDS problem (Section 7).

    Every function takes [?pool]: with a pool, the clique fast path
    fans out across its domains ({!Dsd_clique.Parallel}) with results
    — including the instance {e order} — bit-identical to the
    sequential path.  Other pattern shapes ignore the pool. *)

(** [instances g psi] materialises the distinct instances as sorted
    member arrays. *)
val instances :
  ?pool:Dsd_util.Pool.t -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t ->
  int array array

(** [count g psi] is mu(G, Psi). *)
val count :
  ?pool:Dsd_util.Pool.t -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int

(** [degrees g psi] is deg_G(v, Psi) for every vertex.  Uses the
    Appendix-D closed forms for star and 4-cycle patterns (no
    enumeration). *)
val degrees :
  ?pool:Dsd_util.Pool.t -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t ->
  int array

(** [max_degree g psi] = max_v deg_G(v, Psi). *)
val max_degree :
  ?pool:Dsd_util.Pool.t -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int
