module G = Dsd_graph.Graph
module Dyn = Dsd_graph.Dynamic
module P = Dsd_pattern.Pattern
module F = Dsd_flow.Flow_network
module Store = Dsd_clique.Instance_store.Dyn
module Counter = Dsd_obs.Counter

(* An incremental DSD session: a mutable graph handle plus a live
   h-clique instance store and a pds-style flow arena that are patched
   in place as edge batches arrive, so each query re-solves from the
   previous committed flow instead of rebuilding from scratch.

   The arena is the one-node-per-instance pds network (Section 7):
   source -> v with cap deg(v, Psi) for every vertex (cap 0 arcs stand
   in for absent ones so a later degree increase is a plain cap
   raise), v -> sink with cap h * alpha (the alpha-dependent class),
   and per live instance a fresh node with v -> inst cap 1 and
   inst -> v cap h-1 arcs.  Patching preserves two invariants between
   solver runs: flow <= cap on every arc (the drain repairs) and
   conservation at every internal node — feasibility, not optimality,
   which the next probe's augmentations restore.

   Queries run Exact.run's binary search — same bounds [0, max live
   instance-degree], same stopping gap, same probe decision (is the
   min-cut source side empty?) — except that a session which has
   answered before warm-brackets the search around its previous
   optimum (gallop out from [last_opt], then bisect), collapsing the
   probe count to a handful when a delta batch barely moved the
   density.  This is sound because the answer is canonical for any
   probe history: the loop exits with [u - l < stop_gap n], which is
   below the minimum spacing of distinct candidate densities, so the
   last feasible probe lies in the breakpoint-free interval just under
   the optimum, where the inclusion-minimal min-cut source side (what
   residual reachability computes, independent of which max flow the
   solver arrived at) is exactly the canonical CDS.  A patched
   session, a fresh session on the rebuilt graph, and any probe
   history therefore report the identical vertex set.
   [test_incremental] and the delta-equals-rebuild relation pin
   this. *)

type t = {
  psi : P.t;
  h : int;
  dyn : Dyn.t;
  mutable store : Store.store;
  mutable net : F.t;
  mutable source : int;
  mutable sink : int;
  mutable src_arc : int array;    (* v -> source-arc id *)
  mutable alpha_arc : int array;  (* v -> alpha-arc id *)
  mutable inst_node : int array;  (* instance id -> arena node *)
  mutable inst_arcs : int array array;  (* instance id -> its arc ids *)
  mutable last_opt : float;  (* previous query's density; < 0 = none *)
}

let alpha_coef t = float_of_int t.h

let grow_inst t id =
  if id >= Array.length t.inst_node then begin
    let cap = max 16 (2 * Array.length t.inst_node) in
    let node = Array.make cap (-1) in
    let arcs = Array.make cap [||] in
    Array.blit t.inst_node 0 node 0 (Array.length t.inst_node);
    Array.blit t.inst_arcs 0 arcs 0 (Array.length t.inst_arcs);
    t.inst_node <- node;
    t.inst_arcs <- arcs
  end

(* Wire one instance into the arena: a fresh node, member arcs, and the
   member source caps raised to the new degrees. *)
let arena_add_instance t id =
  grow_inst t id;
  let members = Store.members t.store id in
  let node = F.add_node t.net in
  let arcs = Array.make (2 * Array.length members) 0 in
  Array.iteri
    (fun i v ->
      arcs.(2 * i) <- F.add_edge t.net ~src:(v + 1) ~dst:node ~cap:1.;
      arcs.((2 * i) + 1) <-
        F.add_edge t.net ~src:node ~dst:(v + 1)
          ~cap:(float_of_int (t.h - 1));
      F.set_cap t.net t.src_arc.(v) (float_of_int (Store.degree t.store v)))
    members;
  t.inst_node.(id) <- node;
  t.inst_arcs.(id) <- arcs

(* Unwire a retired instance: zero its arcs (carrying then draining any
   committed flow) and shrink the member source caps.  Zero-capacity
   arcs are invisible to cut values and residual reachability, so the
   dead node is semantically absent from every later probe. *)
let arena_retire_instance t id =
  let members = Store.members t.store id in
  Array.iter
    (fun a ->
      F.set_cap_carry t.net a 0.;
      ignore (F.restore_arc_full t.net ~s:t.source ~sink:t.sink a))
    t.inst_arcs.(id);
  Array.iter
    (fun v ->
      F.set_cap_carry t.net t.src_arc.(v)
        (float_of_int (Store.degree t.store v));
      ignore (F.restore_arc_head t.net ~sink:t.sink t.src_arc.(v)))
    members;
  t.inst_arcs.(id) <- [||];
  t.inst_node.(id) <- -1

let build_arena t =
  let n = Dyn.n t.dyn in
  let net = F.create (n + 2) in
  t.net <- net;
  t.source <- 0;
  t.sink <- n + 1;
  t.src_arc <- Array.init (max 1 n) (fun _ -> -1);
  t.alpha_arc <- Array.init (max 1 n) (fun _ -> -1);
  t.inst_node <- Array.make 16 (-1);
  t.inst_arcs <- Array.make 16 [||];
  for v = 0 to n - 1 do
    t.src_arc.(v) <- F.add_edge net ~src:0 ~dst:(v + 1) ~cap:0.;
    t.alpha_arc.(v) <- F.add_edge net ~src:(v + 1) ~dst:t.sink ~cap:0.
  done;
  Counter.incr Counter.Flow_networks_built;
  for id = 0 to Store.total t.store - 1 do
    if Store.is_live t.store id then arena_add_instance t id
  done

let create ?pool g (psi : P.t) =
  if psi.P.kind <> P.Clique then
    invalid_arg "Inc_dsd.create: only h-clique patterns are supported";
  let dyn = Dyn.of_graph g in
  let instances = Enumerate.instances ?pool g psi in
  let store = Store.create ~n:(G.n g) instances in
  let t =
    {
      psi;
      h = psi.P.size;
      dyn;
      store;
      net = F.create 1;
      source = 0;
      sink = 0;
      src_arc = [||];
      alpha_arc = [||];
      inst_node = [||];
      inst_arcs = [||];
      last_opt = -1.;
    }
  in
  build_arena t;
  t

(* New h-clique instances created by inserting edge (u,v): {u,v} plus
   every (h-2)-subset of the common neighbourhood that is itself a
   clique.  The common array is sorted, and candidates are extended in
   index order, so discovery order is canonical. *)
let discover_instances t u v =
  if t.h = 2 then [ [| min u v; max u v |] ]
  else begin
    let common = Dyn.common_neighbors t.dyn u v in
    let found = ref [] in
    let chosen = Array.make (t.h - 2) 0 in
    let rec extend depth lo =
      if depth = t.h - 2 then begin
        let members = Array.make t.h 0 in
        members.(0) <- u;
        members.(1) <- v;
        Array.blit chosen 0 members 2 (t.h - 2);
        Array.sort compare members;
        found := members :: !found
      end
      else
        for i = lo to Array.length common - 1 do
          let w = common.(i) in
          let ok = ref true in
          for j = 0 to depth - 1 do
            if not (Dyn.mem_edge t.dyn chosen.(j) w) then ok := false
          done;
          if !ok then begin
            chosen.(depth) <- w;
            extend (depth + 1) (i + 1)
          end
        done
    in
    extend 0 0;
    List.rev !found
  end

(* Tombstones never shrink the arena, so once they dominate we compact:
   rebuild the store and arena from the live instances (in stable id
   order).  The committed flow is dropped — the next probe starts cold
   — but results are unaffected, and the threshold keeps the amortised
   cost negligible. *)
let maybe_compact t =
  let dead = Store.total t.store - Store.live_total t.store in
  if dead > 64 && dead > 3 * Store.live_total t.store then begin
    Counter.incr Counter.Delta_arena_rebuilds;
    t.store <- Store.create ~n:(Dyn.n t.dyn) (Store.live_members t.store);
    build_arena t
  end

let apply_op t op =
  match op with
  | Dyn.Add (u, v) ->
    if Dyn.add_edge t.dyn u v then begin
      List.iter
        (fun members ->
          let id = Store.append t.store members in
          arena_add_instance t id;
          Counter.incr Counter.Delta_instances_added)
        (discover_instances t u v);
      true
    end
    else false
  | Dyn.Remove (u, v) ->
    if Dyn.remove_edge t.dyn u v then begin
      ignore
        (Store.retire_edge t.store u v ~f:(fun id ->
             arena_retire_instance t id;
             Counter.incr Counter.Delta_instances_retired));
      true
    end
    else false

let apply t ops =
  Dsd_obs.Span.with_ Dsd_obs.Phase.incremental @@ fun () ->
  let applied =
    Array.fold_left
      (fun acc op -> if apply_op t op then acc + 1 else acc)
      0 ops
  in
  maybe_compact t;
  applied

let max_live_degree t =
  let best = ref 0 in
  for v = 0 to Dyn.n t.dyn - 1 do
    if Store.degree t.store v > !best then best := Store.degree t.store v
  done;
  !best

let retarget t alpha =
  Dsd_obs.Span.with_ Dsd_obs.Phase.retarget @@ fun () ->
  Counter.incr Counter.Flow_retargets;
  Counter.incr Counter.Flow_warm_starts;
  let cap = Float.max (alpha_coef t *. alpha) 0. in
  Array.iter (fun a -> F.set_cap_carry t.net a cap) t.alpha_arc;
  Array.iter (fun a -> ignore (F.restore_arc t.net ~s:t.source a)) t.alpha_arc

let solve t =
  Dsd_obs.Span.with_ Dsd_obs.Phase.flow @@ fun () ->
  let aug0 = Counter.get Counter.Flow_augmentations in
  let _flow, side = Dsd_flow.Min_cut.solve t.net ~s:t.source ~t:t.sink in
  Dsd_obs.Probe.record (Counter.get Counter.Flow_augmentations - aug0);
  let out = Dsd_util.Vec.Int.create () in
  for v = 0 to Dyn.n t.dyn - 1 do
    if side.(v + 1) then Dsd_util.Vec.Int.push out v
  done;
  Dsd_util.Vec.Int.to_array out

let query t =
  Dsd_obs.Span.with_ Dsd_obs.Phase.incremental @@ fun () ->
  let n = Dyn.n t.dyn in
  let mu = Store.live_total t.store in
  if n = 0 || mu = 0 then Density.empty
  else begin
    let l = ref 0. and u = ref (float_of_int (max_live_degree t)) in
    let gap = Density.stop_gap n in
    let best_vertices = ref [||] in
    let probe alpha =
      Counter.incr Counter.Core_iterations;
      retarget t alpha;
      let s_side = solve t in
      if Array.length s_side = 0 then u := alpha
      else begin
        l := alpha;
        best_vertices := s_side
      end
    in
    (* Warm bracket: the answer is canonical for any probe history (see
       the module comment), so a patched session may narrow [l, u)
       around its previous optimum instead of bisecting the full range.
       Probe just below the last density — if the optimum is unchanged
       that probe is feasible and the next one closes the bracket — and
       gallop with doubling steps in whichever direction it moved.  A
       fresh session ([last_opt < 0]) takes the plain bisection. *)
    let a0 = t.last_opt -. (gap /. 2.) in
    if a0 > !l && a0 < !u then begin
      probe a0;
      let step = ref gap in
      let live = ref true in
      while !live && !u -. !l >= gap do
        let x = if !l >= a0 then !l +. !step else !u -. !step in
        if x <= !l || x >= !u then live := false
        else begin
          probe x;
          step := !step *. 2.
        end
      done
    end;
    while !u -. !l >= gap do
      probe ((!l +. !u) /. 2.)
    done;
    let result =
      if Array.length !best_vertices = 0 then Density.empty
      else Density.of_vertices (Dyn.snapshot t.dyn) t.psi !best_vertices
    in
    t.last_opt <- result.Density.density;
    result
  end

let density t = (query t).Density.density
let graph t = Dyn.snapshot t.dyn
let dynamic t = t.dyn
let psi t = t.psi
let core_numbers t = Dyn.core_numbers t.dyn
let live_instances t = Store.live_total t.store
let total_instances t = Store.total t.store
