(** PExact — Algorithm 8: the exact PDS baseline.  {!Exact.run} with
    the one-node-per-instance pattern network forced, regardless of
    whether the pattern happens to be a clique (useful for
    benchmarking the constructions against each other). *)

val run :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> Exact.result
