module D = Dsd_graph.Digraph
module F = Dsd_flow.Flow_network

type result = {
  s_side : int array;
  t_side : int array;
  density : float;
  flows : int;
  elapsed_s : float;
}

let density g ~s ~t_side =
  let cards = Array.length s * Array.length t_side in
  if cards = 0 then 0.
  else
    float_of_int (D.edges_between g ~s ~t_side)
    /. sqrt (float_of_int cards)

(* Decision network for guess [g_val] and ratio [c]: maximise
   e(S,T) - p|S| - q|T| with p = g/(2 sqrt c), q = (g sqrt c)/2.
   Nodes: source, u1 (u in S?), v2 (v in T?), one AND node per arc,
   sink.  Min cut = m - max f; S/T are read off the source side. *)
let solve_decision g ~g_val ~c =
  let n = D.n g in
  let m = D.m g in
  let p = g_val /. (2. *. sqrt c) in
  let q = g_val *. sqrt c /. 2. in
  let size = 2 + (2 * n) + m in
  let net = F.create size in
  let source = 0 and sink = size - 1 in
  let s_node u = 1 + u in
  let t_node v = 1 + n + v in
  let arc_node i = 1 + (2 * n) + i in
  for u = 0 to n - 1 do
    ignore (F.add_edge net ~src:(s_node u) ~dst:sink ~cap:p);
    ignore (F.add_edge net ~src:(t_node u) ~dst:sink ~cap:q)
  done;
  let i = ref 0 in
  D.iter_arcs g ~f:(fun u v ->
      let a = arc_node !i in
      incr i;
      ignore (F.add_edge net ~src:source ~dst:a ~cap:1.);
      ignore (F.add_edge net ~src:a ~dst:(s_node u) ~cap:infinity);
      ignore (F.add_edge net ~src:a ~dst:(t_node v) ~cap:infinity));
  let _flow, side = Dsd_flow.Min_cut.solve net ~s:source ~t:sink in
  let s_side = Dsd_util.Vec.Int.create () in
  let t_side = Dsd_util.Vec.Int.create () in
  for u = 0 to n - 1 do
    if side.(s_node u) then Dsd_util.Vec.Int.push s_side u;
    if side.(t_node u) then Dsd_util.Vec.Int.push t_side u
  done;
  (Dsd_util.Vec.Int.to_array s_side, Dsd_util.Vec.Int.to_array t_side)

(* Binary search over the density guess for one ratio, tracking the
   best exactly-rescored witness. *)
let search_ratio g ~c ~upper ~flows ~best ~best_pair =
  (* Only densities beating the best witness so far matter, so later
     ratios start their search from it — after one good ratio the rest
     are usually a couple of failed probes each. *)
  let l = ref !best and u = ref upper in
  (* One probe at the current best decides whether this ratio can beat
     it at all; hopeless ratios cost a single min-cut. *)
  let hopeless =
    !best > 0.
    && begin
      incr flows;
      let s_side, t_side = solve_decision g ~g_val:!best ~c in
      if Array.length s_side = 0 || Array.length t_side = 0 then true
      else begin
        let d = density g ~s:s_side ~t_side in
        if d > !best then begin
          best := d;
          best_pair := (s_side, t_side);
          l := d
        end;
        false
      end
    end
  in
  (* Densities are e / sqrt(k): halve well below any separation at the
     supported graph sizes. *)
  let iterations = 60 in
  let steps = ref (if hopeless then iterations else 0) in
  while !steps < iterations && !u -. !l > 1e-12 *. upper do
    incr steps;
    incr flows;
    let g_val = (!l +. !u) /. 2. in
    let s_side, t_side = solve_decision g ~g_val ~c in
    if Array.length s_side = 0 || Array.length t_side = 0 then u := g_val
    else begin
      let d = density g ~s:s_side ~t_side in
      if d > !best then begin
        best := d;
        best_pair := (s_side, t_side)
      end;
      (* The relaxation guarantees d > g_val on success (AM-GM), so
         the lower bound can jump to d. *)
      if d > g_val then l := max d g_val else u := g_val
    end
  done

let run_ratios g ratios =
  let t0 = Dsd_util.Timer.now_s () in
  let flows = ref 0 in
  let best = ref 0. in
  let best_pair = ref ([||], [||]) in
  let upper = float_of_int (max 1 (D.m g)) in
  List.iter
    (fun c -> search_ratio g ~c ~upper ~flows ~best ~best_pair)
    ratios;
  (* Degenerate fallback: a single best arc (density 1 for distinct
     endpoints) in case every search returned empty sides. *)
  if !best = 0. && D.m g > 0 then begin
    let done_ = ref false in
    D.iter_arcs g ~f:(fun u v ->
        if not !done_ then begin
          best_pair := ([| u |], [| v |]);
          best := 1.;
          done_ := true
        end)
  end;
  let s_side, t_side = !best_pair in
  let s_side = Array.copy s_side and t_side = Array.copy t_side in
  Array.sort compare s_side;
  Array.sort compare t_side;
  { s_side;
    t_side;
    density = !best;
    flows = !flows;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }

let exact ?(max_n = 64) g =
  let n = D.n g in
  if n > max_n then
    invalid_arg "Directed.exact: graph too large (use Directed.approx)";
  (* All realisable ratios |S|/|T| = a/b. *)
  let ratios = ref [] in
  for a = 1 to n do
    for b = 1 to n do
      ratios := (float_of_int a /. float_of_int b) :: !ratios
    done
  done;
  let ratios = List.sort_uniq compare !ratios in
  run_ratios g ratios

let approx ?(eps = 0.1) g =
  if not (eps > 0.) then invalid_arg "Directed.approx: eps must be positive";
  let n = max 2 (D.n g) in
  let nf = float_of_int n in
  let ratios = ref [] in
  let c = ref (1. /. nf) in
  while !c <= nf do
    ratios := !c :: !ratios;
    c := !c *. (1. +. eps)
  done;
  ratios := nf :: !ratios;
  run_ratios g !ratios
