module P = Dsd_pattern.Pattern

(* [?pool] parallelises the clique fast path across a shared domain
   pool; the chunk-ordered merge in {!Dsd_clique.Parallel} keeps the
   instance order bit-identical to the sequential lister, so callers
   downstream (instance stores, flow networks) see the exact same
   input.  The generic matcher and the Appendix-D closed forms stay
   sequential. *)

let instances ?pool g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.enumerate @@ fun () ->
  match (psi.kind, pool) with
  | P.Clique, Some pool -> Dsd_clique.Parallel.list_in pool g ~h:psi.size
  | P.Clique, None -> Dsd_clique.Kclist.list g ~h:psi.size
  | (P.Star _ | P.Cycle4 | P.Generic), _ -> Dsd_pattern.Match.instances g psi

let count ?pool g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.enumerate @@ fun () ->
  match (psi.kind, pool) with
  | P.Clique, Some pool -> Dsd_clique.Parallel.count_in pool g ~h:psi.size
  | P.Clique, None -> Dsd_clique.Kclist.count g ~h:psi.size
  | (P.Star _ | P.Cycle4 | P.Generic), _ -> Dsd_pattern.Match.count g psi

let degrees ?pool g (psi : P.t) =
  match (psi.kind, pool) with
  | P.Clique, Some pool -> Dsd_clique.Parallel.degrees_in pool g ~h:psi.size
  | P.Clique, None -> Dsd_clique.Clique_count.degrees g ~h:psi.size
  | P.Star x, _ ->
    Dsd_pattern.Special.star_degrees (Dsd_graph.Subgraph.of_graph g) ~x
  | P.Cycle4, _ ->
    Dsd_pattern.Special.c4_degrees (Dsd_graph.Subgraph.of_graph g)
  | P.Generic, _ -> Dsd_pattern.Match.degrees g psi

let max_degree ?pool g psi = Array.fold_left max 0 (degrees ?pool g psi)
