module P = Dsd_pattern.Pattern

let instances g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.enumerate @@ fun () ->
  match psi.kind with
  | P.Clique -> Dsd_clique.Kclist.list g ~h:psi.size
  | P.Star _ | P.Cycle4 | P.Generic -> Dsd_pattern.Match.instances g psi

let count g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.enumerate @@ fun () ->
  match psi.kind with
  | P.Clique -> Dsd_clique.Kclist.count g ~h:psi.size
  | P.Star _ | P.Cycle4 | P.Generic -> Dsd_pattern.Match.count g psi

let degrees g (psi : P.t) =
  match psi.kind with
  | P.Clique -> Dsd_clique.Clique_count.degrees g ~h:psi.size
  | P.Star x ->
    Dsd_pattern.Special.star_degrees (Dsd_graph.Subgraph.of_graph g) ~x
  | P.Cycle4 ->
    Dsd_pattern.Special.c4_degrees (Dsd_graph.Subgraph.of_graph g)
  | P.Generic -> Dsd_pattern.Match.degrees g psi

let max_degree g psi =
  Array.fold_left max 0 (degrees g psi)
