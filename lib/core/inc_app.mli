(** IncApp — Algorithm 5: run the full (k, Psi)-core decomposition and
    return the (kmax, Psi)-core, a deterministic
    1/|V_Psi|-approximation (Lemma 8).  Skips PeelApp's per-round
    density bookkeeping. *)

type result = {
  subgraph : Density.subgraph;  (** the (kmax, Psi)-core with its exact density *)
  kmax : int;
  elapsed_s : float;
}

(** [?pool] parallelises enumeration and the frontier-synchronous
    peel; core numbers (hence the returned core) are exactly the
    sequential ones. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
