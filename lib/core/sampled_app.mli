(** Randomised sampling approximation in the style of Mitzenmacher et
    al. [49], with the core-based speedup the paper's conclusion lists
    as future work ("exploit our core-based techniques to speed up the
    randomized approximation algorithm in [49]").

    Each Psi-instance is kept independently with probability [p]; the
    peeling approximation runs on the sampled instance hypergraph, and
    the returned vertex set is re-scored against the *full* instance
    set, so the reported density is exact even though the search was
    randomised.  With [core_first] (the future-work idea), instances
    are only enumerated inside the (ceil(kmax / |V_Psi|), Psi)-core,
    which contains the CDS (Lemma 7 with Theorem 1's lower bound), so
    the restriction loses nothing while shrinking the sample space. *)

type result = {
  subgraph : Density.subgraph;   (** true (unsampled) density *)
  sampled_instances : int;
  total_instances : int;
  elapsed_s : float;
}

(** [run ~seed ~p g psi] with sampling probability [p] in (0, 1];
    [core_first] defaults to [true].
    @raise Invalid_argument on [p] outside (0, 1]. *)
val run :
  ?core_first:bool -> seed:int -> p:float ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
