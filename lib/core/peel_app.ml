type result = {
  subgraph : Density.subgraph;
  mu : int;
  elapsed_s : float;
}

let run ?pool g psi =
  Dsd_obs.Span.with_ Dsd_obs.Phase.peel_app @@ fun () ->
  let t0 = Dsd_util.Timer.now_s () in
  let decomp = Clique_core.decompose ?pool ~track_density:true g psi in
  let subgraph =
    if decomp.Clique_core.mu_total = 0 then Density.empty
    else
      { Density.vertices = Clique_core.best_residual decomp;
        density = decomp.Clique_core.best_residual_density }
  in
  { subgraph;
    mu = decomp.Clique_core.mu_total;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }
