(** Classical k-core decomposition (Definition 5; Batagelj-Zaversnik).

    Thin wrapper over {!Dsd_graph.Degeneracy} exposing core-number
    queries in the vocabulary of the paper. *)

type t

val decompose : Dsd_graph.Graph.t -> t

(** [core_number t v]. *)
val core_number : t -> int -> int

val core_numbers : t -> int array

(** Maximum core number (the degeneracy). *)
val kmax : t -> int

(** [k_core t g ~k] is the vertex set of the k-core: vertices with core
    number >= k (may be empty; the k-core is their induced subgraph). *)
val k_core : t -> k:int -> int array

(** [kmax_core t] = [k_core t ~k:(kmax t)]. *)
val kmax_core : t -> int array
