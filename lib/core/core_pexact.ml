let run ?prunings g psi =
  Core_exact.run ?prunings ~family:Flow_build.Pds_grouped g psi
