let run ?pool ?prunings g psi =
  Core_exact.run ?pool ?prunings ~family:Flow_build.Pds_grouped g psi
