let run ?pool ?warm ?prunings g psi =
  Core_exact.run ?pool ?warm ?prunings ~family:Flow_build.Pds_grouped g psi
