(** Greedy++ — iterated load-balanced peeling (Boob et al., WWW'20),
    the natural strengthening of PeelApp (Algorithm 2) from the
    literature the paper builds on.

    Each round peels by [load(v) + current instance-degree(v)] instead
    of the degree alone, then adds the removed vertex's degree to its
    load; the best residual graph over all rounds is returned.  One
    round is exactly PeelApp; as rounds grow the density provably
    converges to rho_opt for edge density (and empirically for
    h-cliques — our ablation bench measures this).  A useful middle
    ground between PeelApp's 1/|V_Psi| guarantee and CoreExact's cost:
    the work per round matches PeelApp. *)

type result = {
  subgraph : Density.subgraph;   (** best residual over all rounds *)
  rounds : int;
  densities : float array;       (** best-so-far density after each round *)
  elapsed_s : float;
}

(** [run ?pool ?rounds g psi] (default 8 rounds).  [?pool] accelerates
    enumeration and the first round (the canonical round-synchronous
    peel, bit-identical to PeelApp for every pool size); later rounds'
    load-ordered peels are inherently sequential. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  ?rounds:int -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
