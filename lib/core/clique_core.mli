(** (k, Psi)-core decomposition — Algorithm 3 of the paper, generalised
    from h-cliques to arbitrary patterns (Section 5.4).

    Peels the minimum-instance-degree vertex; the value popped (run
    through a running maximum) is the vertex's clique-core number, and
    the (k, Psi)-core is exactly the set of vertices whose core number
    is >= k (nestedness, property 1 of Definition 6).

    Two engines:
    - the generic engine materialises all instances once
      ({!Dsd_clique.Instance_store}) and retires them on deletion;
    - star and 4-cycle patterns use the Appendix-D closed-form degrees
      and O(d^2) decrement rules ({!Dsd_pattern.Special}), never
      enumerating instances.

    While peeling, the decomposition optionally tracks the Psi-density
    of every residual graph — the rho' of Pruning1 — at O(1) extra cost
    per step, and remembers the best residual suffix (which is also
    precisely what PeelApp returns). *)

type t = {
  psi : Dsd_pattern.Pattern.t;
  core : int array;                (** clique-core number per vertex *)
  kmax : int;                      (** max clique-core number *)
  order : int array;               (** peel order; suffixes are the residual graphs *)
  mu_total : int;                  (** mu(G, Psi) *)
  best_residual_density : float;   (** rho' = max residual density (incl. full graph) *)
  best_residual_start : int;       (** the suffix order.(start ..) attains rho' *)
  residual_densities : float array;
      (** residual_densities.(i) = Psi-density of the residual graph
          order.(i ..); index 0 is the whole graph.  Empty unless
          [track_density]. *)
}

(** [decompose g psi] runs the decomposition.  [~track_density:false]
    skips the rho' bookkeeping (IncApp mode); the density fields are
    then 0.

    The generic engine peels round-synchronously (bucket-free): each
    level retires the whole cascade of vertices at the minimum degree
    in batched sub-rounds, linearised in ascending vertex id, with
    per-step residual densities recovered exactly from read-only
    "owned instance" counts.  [?pool] fans the enumeration and the
    per-round scans out across a shared domain pool; chunk boundaries
    are fixed constants, so {e every} field of the result — core
    numbers, peel order, residual-density transcript — is bit-identical
    for every pool size, including no pool at all. *)
val decompose :
  ?pool:Dsd_util.Pool.t ->
  ?track_density:bool -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> t

(** The round-synchronous peel engine itself, over a prepared
    {!Dsd_clique.Instance_store} on vertices [0 .. n-1].  Returns
    [(core, order, kmax, best_density, best_start, residuals)] — the
    density fields are 0 / empty unless [track_density].  [on_peel v
    killed] fires once per vertex in canonical peel order, where
    [killed] is v's live instance count at its (linearised) removal
    step — exactly the degree Greedy++ charges to its loads.  The
    store is consumed (all instances dead on return; [reset] it to
    reuse). *)
val peel_store :
  ?pool:Dsd_util.Pool.t ->
  ?on_peel:(int -> int -> unit) ->
  track_density:bool ->
  n:int ->
  Dsd_clique.Instance_store.t ->
  int array * int array * int * float * int * float array

(** [core_vertices t ~k] is the vertex set of the (k, Psi)-core
    ({v | core(v) >= k}, possibly empty). *)
val core_vertices : t -> k:int -> int array

(** [kmax_core t] is the (kmax, Psi)-core vertex set. *)
val kmax_core : t -> int array

(** [best_residual t] is the vertex set of the densest residual graph
    observed while peeling (requires [track_density]). *)
val best_residual : t -> int array
