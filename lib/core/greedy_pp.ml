module G = Dsd_graph.Graph

type result = {
  subgraph : Density.subgraph;
  rounds : int;
  densities : float array;
  elapsed_s : float;
}

let run ?pool ?(rounds = 8) g psi =
  if rounds < 1 then invalid_arg "Greedy_pp.run: rounds must be >= 1";
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  let instances = Enumerate.instances ?pool g psi in
  let mu_total = Array.length instances in
  if mu_total = 0 || n = 0 then
    { subgraph = Density.empty;
      rounds;
      densities = Array.make rounds 0.;
      elapsed_s = Dsd_util.Timer.now_s () -. t0 }
  else begin
    let store = Dsd_clique.Instance_store.create ~n instances in
    let loads = Array.make n 0 in
    let best = ref Density.empty in
    let densities = Array.make rounds 0. in
    (* Round 1 is PeelApp bit-for-bit: all loads are zero, so it IS the
       canonical round-synchronous peel — run it on the shared engine
       (pool-accelerated), charging each vertex's removal-time degree
       to its load through the on_peel hook.  Later rounds order by
       loads + degree, which no threshold peel can batch, so they keep
       the sequential lazy heap (loads grow past any bucket bound). *)
    let _, order0, _, bd0, bs0, _ =
      Clique_core.peel_store ?pool
        ~on_peel:(fun v killed -> loads.(v) <- loads.(v) + killed)
        ~track_density:true ~n store
    in
    if bd0 > !best.Density.density then begin
      let vs = Array.sub order0 bs0 (n - bs0) in
      Array.sort compare vs;
      best := { Density.vertices = vs; density = bd0 }
    end;
    densities.(0) <- !best.Density.density;
    let order = Array.make n 0 in
    (* Deduplicate co-member notifications per deletion (one final-key
       update per touched vertex, as in Clique_core's peel). *)
    let stamp = Array.make n (-1) in
    let touched = Dsd_util.Vec.Int.create () in
    let ops = ref 0 in
    for round = 1 to rounds - 1 do
      Dsd_clique.Instance_store.reset store;
      let heap = Dsd_util.Lazy_heap.create ~n in
      for v = 0 to n - 1 do
        Dsd_util.Lazy_heap.add heap ~item:v
          ~key:(loads.(v) + Dsd_clique.Instance_store.degree store v)
      done;
      let pop () = Dsd_util.Lazy_heap.pop_min heap in
      let update u key = Dsd_util.Lazy_heap.update heap ~item:u ~key in
      let mem u = Dsd_util.Lazy_heap.mem heap u in
      let mu_live = ref mu_total in
      let best_density = ref (float_of_int mu_total /. float_of_int n) in
      let best_start = ref 0 in
      for i = 0 to n - 1 do
        match pop () with
        | None -> assert false
        | Some (v, _key) ->
          order.(i) <- v;
          let deg_v = Dsd_clique.Instance_store.degree store v in
          loads.(v) <- loads.(v) + deg_v;
          incr ops;
          let tag = !ops in
          Dsd_util.Vec.Int.clear touched;
          let killed =
            Dsd_clique.Instance_store.kill_vertex store v ~on_comember:(fun u ->
                if stamp.(u) <> tag then begin
                  stamp.(u) <- tag;
                  Dsd_util.Vec.Int.push touched u
                end)
          in
          Dsd_util.Vec.Int.iter
            (fun u ->
              if mem u then
                update u
                  (loads.(u) + Dsd_clique.Instance_store.degree store u))
            touched;
          mu_live := !mu_live - killed;
          if i < n - 1 then begin
            let d = float_of_int !mu_live /. float_of_int (n - i - 1) in
            if d > !best_density then begin
              best_density := d;
              best_start := i + 1
            end
          end
      done;
      if !best_density > !best.Density.density then begin
        let vs = Array.sub order !best_start (n - !best_start) in
        Array.sort compare vs;
        best := { Density.vertices = vs; density = !best_density }
      end;
      densities.(round) <- !best.Density.density
    done;
    { subgraph = !best;
      rounds;
      densities;
      elapsed_s = Dsd_util.Timer.now_s () -. t0 }
  end
