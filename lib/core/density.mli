(** Density functions (Definitions 1, 4 and 10) and the result type
    shared by every DSD algorithm. *)

(** A candidate densest subgraph: original-graph vertex ids plus its
    exact Psi-density. *)
type subgraph = {
  vertices : int array;  (** sorted original ids; empty if none found *)
  density : float;       (** rho(G[vertices], Psi); 0 when empty *)
}

(** [edge_density g] = m / n (Definition 1); 0 on the empty graph. *)
val edge_density : Dsd_graph.Graph.t -> float

(** [pattern_density g psi] = mu(G, Psi) / n (Definitions 4/10). *)
val pattern_density : Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> float

(** [of_vertices g psi vs] evaluates the Psi-density of the subgraph of
    [g] induced by [vs] and packages the result. *)
val of_vertices : Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array -> subgraph

(** The empty result. *)
val empty : subgraph

(** [better a b] keeps the denser of the two (ties favour [a]). *)
val better : subgraph -> subgraph -> subgraph

(** [min_gap n] = 1 / (n (n-1)): a lower bound on the difference of any
    two distinct subgraph densities (Lemma 12). *)
val min_gap : int -> float

(** [stop_gap n] = [min_gap n / 2]: the binary-search stopping width.
    Halving the theoretical gap keeps termination correct while
    guarding against the float-rounding tie where [u - l] lands exactly
    on the gap and the search would stop one iteration short of the
    optimum. *)
val stop_gap : int -> float
