(** One-call convenience layer over the whole library.

    [densest_subgraph g] finds the exact edge-densest subgraph;
    [~psi] switches the density (h-clique or pattern); [~algorithm]
    trades exactness for speed.  See the README quickstart. *)

type algorithm =
  | Exact_flow      (** Algorithm 1 / PExact: baseline exact *)
  | Core_exact      (** Algorithm 4 / CorePExact: fast exact (default) *)
  | Peel            (** Algorithm 2: 1/|V_Psi|-approx greedy peeling *)
  | Inc_app         (** Algorithm 5: (kmax, Psi)-core bottom-up *)
  | Core_app        (** Algorithm 6: (kmax, Psi)-core top-down *)

val algorithm_name : algorithm -> string

(** [densest_subgraph ?psi ?algorithm g] returns the (approximately)
    densest subgraph of [g] under Psi-density.  [psi] defaults to the
    single edge; [algorithm] to {!Core_exact}.

    [?pool] runs the parallel phases — enumeration, core
    decomposition, flow-network construction — on a shared domain pool
    ({!Dsd_util.Pool}); results are bit-identical to the sequential
    path for every pool size.

    [?warm] (default [true]; exact algorithms only) carries committed
    flow across the binary-search probes instead of re-solving from
    zero — see {!Flow_build.retarget}. *)
val densest_subgraph :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  ?psi:Dsd_pattern.Pattern.t ->
  ?algorithm:algorithm ->
  Dsd_graph.Graph.t -> Density.subgraph

(** [core_numbers g psi] is the (k, Psi)-core number of every vertex
    (Algorithm 3). *)
val core_numbers :
  ?pool:Dsd_util.Pool.t ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> int array

(** [kmax_core g psi] is the (kmax, Psi)-core as a subgraph result. *)
val kmax_core :
  ?pool:Dsd_util.Pool.t ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> Density.subgraph
