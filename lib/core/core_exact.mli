(** CoreExact — Algorithm 4, the paper's exact contribution.

    Three optimisations over Exact (Section 6.1):
    + tighter alpha bounds from Theorem 1
      (kmax / |V_Psi| <= rho_opt <= kmax);
    + the CDS is located inside small (k, Psi)-cores — Pruning1 (best
      residual density rho'), Pruning2 (per-component density rho''),
      Pruning3 (component-local stopping width);
    + flow networks shrink as the binary search raises the lower bound
      (the component is re-intersected with higher cores).

    Engineering deviations from the pseudo-code, both documented in
    DESIGN.md §6: the result is seeded with the densest subgraph seen
    during decomposition so an optimum that exactly equals the lower
    bound is still returned, and the binary-search upper bound is
    per-component (the maximum core number inside the component)
    rather than shared, which the pseudo-code's global [u] would make
    unsound when an early component is sparser than a later one.

    With [~grouped:true] the PDS networks use construct+ (Algorithm 7),
    making this CorePExact. *)

type prunings = {
  p1 : bool;  (** locate CDS in the ceil(rho')-core *)
  p2 : bool;  (** raise to ceil(rho'') from per-component densities *)
  p3 : bool;  (** component-local binary-search stopping width *)
}

val all_prunings : prunings
val no_prunings : prunings

type stats = {
  iterations : int;              (** min-cut computations *)
  network_nodes : int list;      (** |V_F| per iteration, oldest first (Figure 9) *)
  kmax : int;
  decompose_s : float;           (** core-decomposition time (Table 3) *)
  flow_s : float;                (** min-cut time *)
  elapsed_s : float;
}

type result = {
  subgraph : Density.subgraph;
  stats : stats;
}

(** [run g psi] returns the exact densest subgraph.  [family] overrides
    the network construction ([~grouped] only affects the automatic
    choice for non-clique patterns).  [warm] (default [true]) carries
    flow across probes within a component's prepared network; a
    Pruning-3 shrink still rebuilds from scratch.

    [?decomp] supplies a (k, Psi)-core decomposition of [g] w.r.t.
    [psi] computed earlier (the serving layer's prepared-state cache),
    skipping Step 1.  It is used only when it carries the density
    tracking the active prunings need ([Clique_core.decompose
    ~track_density:true], or any decomposition when Pruning1 is off or
    the graph has no instances); otherwise it is recomputed, so results
    are bit-identical with or without the hook.  [stats.decompose_s] is
    0 when the cached decomposition is used. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  ?prunings:prunings ->
  ?grouped:bool ->
  ?family:Flow_build.family ->
  ?decomp:Clique_core.t ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
