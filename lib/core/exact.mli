(** Exact — Algorithm 1: densest-subgraph binary search over min-cuts
    on the whole graph.  With [~family:Pds] this is PExact
    (Algorithm 8); the dispatch is automatic by pattern kind.

    This is the paper's baseline exact method: loose bounds
    [0, max deg(v, Psi)], network rebuilt on all of G each iteration.
    CoreExact ({!Core_exact}) is the contribution that beats it. *)

type stats = {
  iterations : int;        (** binary-search steps *)
  last_network_nodes : int;
  mu : int;                (** instance count of the input graph *)
  elapsed_s : float;
}

type result = {
  subgraph : Density.subgraph;
  stats : stats;
}

(** [run g psi] returns the exact densest subgraph w.r.t. Psi-density.
    [family] overrides the flow-network construction (defaults to the
    paper's choice for the pattern kind).  [warm] (default [true])
    carries the committed flow across binary-search probes
    ({!Flow_build.retarget}); [~warm:false] restores the
    reset-per-probe behaviour. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  ?family:Flow_build.family ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
