(** Exact — Algorithm 1: densest-subgraph binary search over min-cuts
    on the whole graph.  With [~family:Pds] this is PExact
    (Algorithm 8); the dispatch is automatic by pattern kind.

    This is the paper's baseline exact method: loose bounds
    [0, max deg(v, Psi)], network rebuilt on all of G each iteration.
    CoreExact ({!Core_exact}) is the contribution that beats it. *)

type stats = {
  iterations : int;        (** binary-search steps *)
  last_network_nodes : int;
  mu : int;                (** instance count of the input graph *)
  elapsed_s : float;
}

type result = {
  subgraph : Density.subgraph;
  stats : stats;
}

(** [run g psi] returns the exact densest subgraph w.r.t. Psi-density.
    [family] overrides the flow-network construction (defaults to the
    paper's choice for the pattern kind).  [warm] (default [true])
    carries the committed flow across binary-search probes
    ({!Flow_build.retarget}); [~warm:false] restores the
    reset-per-probe behaviour.

    Repeat-solve hooks (the serving layer's prepared-state cache):
    [?instances] supplies the Psi-instances of [g] enumerated earlier
    (must equal [Enumerate.instances g psi]; ignored by the EDS
    family), and [?prepared] a caller-owned slot for the retargetable
    flow arena — empty on the first call, reused (retarget-only, no
    rebuild) on every later call with the same [g], [psi] and
    [family].  Results are bit-identical with or without either
    hook. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  ?family:Flow_build.family ->
  ?instances:int array array ->
  ?prepared:Flow_build.prepared option ref ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
