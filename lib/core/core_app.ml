module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type result = {
  subgraph : Density.subgraph;
  kmax : int;
  rounds : int;
  final_window : int;
  elapsed_s : float;
}

(* Upper bound gamma(v, Psi) on the clique-core number of v (line 1 of
   Algorithm 6). *)
let gamma g (psi : P.t) =
  match psi.kind with
  | P.Clique ->
    let kc = Kcore.decompose g in
    Array.init (G.n g) (fun v ->
        Dsd_util.Binom.choose (Kcore.core_number kc v) (psi.size - 1))
  | P.Star x -> Dsd_pattern.Special.star_degrees (Dsd_graph.Subgraph.of_graph g) ~x
  | P.Cycle4 -> Dsd_pattern.Special.c4_degrees (Dsd_graph.Subgraph.of_graph g)
  | P.Generic -> Dsd_pattern.Match.degrees g psi

let run ?pool ?initial_window g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.core_app @@ fun () ->
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  let initial_window =
    match initial_window with
    | Some w -> max w (psi.size + 1)
    | None -> max 16 (psi.size + 1)
  in
  let bounds = gamma g psi in
  (* Vertices in decreasing gamma order; windows are prefixes. *)
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare bounds.(b) bounds.(a)) order;
  let kmax = ref 0 in
  let sstar = ref [||] in
  let rounds = ref 0 in
  let window = ref (min n initial_window) in
  let continue_ = ref (n > 0) in
  while !continue_ do
    incr rounds;
    Dsd_obs.Counter.incr Dsd_obs.Counter.Core_iterations;
    let w_vertices = Array.sub order 0 !window in
    let gw, map = G.induced g w_vertices in
    let decomp = Clique_core.decompose ?pool ~track_density:false gw psi in
    let kw = decomp.Clique_core.kmax in
    if kw >= !kmax && kw > 0 then begin
      kmax := kw;
      sstar := Array.map (fun v -> map.(v)) (Clique_core.kmax_core decomp)
    end;
    (* Stopping criterion (line 4): every vertex outside W has
       gamma < kmax, hence core number < kmax. *)
    if !window >= n then continue_ := false
    else if bounds.(order.(!window)) < !kmax then continue_ := false
    else window := min n (2 * !window)
  done;
  let subgraph =
    if Array.length !sstar = 0 then Density.empty
    else Density.of_vertices g psi !sstar
  in
  { subgraph;
    kmax = !kmax;
    rounds = !rounds;
    final_window = !window;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }
