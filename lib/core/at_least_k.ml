module G = Dsd_graph.Graph

type result = {
  subgraph : Density.subgraph;
  elapsed_s : float;
}

let run g psi ~k =
  let n = G.n g in
  if k < 1 || k > n then invalid_arg "At_least_k.run: k out of range";
  let t0 = Dsd_util.Timer.now_s () in
  let decomp = Clique_core.decompose ~track_density:true g psi in
  (* Densest peel suffix among those with >= k vertices: suffixes
     starting at index <= n - k. *)
  let best_start = ref 0 in
  let densities = decomp.Clique_core.residual_densities in
  for i = 1 to n - k do
    if densities.(i) > densities.(!best_start) then best_start := i
  done;
  let vs = Array.sub decomp.Clique_core.order !best_start (n - !best_start) in
  Array.sort compare vs;
  { subgraph = { Density.vertices = vs; density = densities.(!best_start) };
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }
