module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type result = {
  subgraph : Density.subgraph;
  sampled_instances : int;
  total_instances : int;
  elapsed_s : float;
}

(* Greedy peel over an arbitrary instance multiset on [n] vertices,
   returning the best residual vertex suffix under the *sampled*
   density. *)
let peel_sampled ~n instances =
  let store = Dsd_clique.Instance_store.create ~n instances in
  let max_deg = ref 1 in
  for v = 0 to n - 1 do
    max_deg := max !max_deg (Dsd_clique.Instance_store.degree store v)
  done;
  let queue = Dsd_util.Bucket_queue.create ~n ~max_key:!max_deg in
  for v = 0 to n - 1 do
    Dsd_util.Bucket_queue.add queue ~item:v
      ~key:(Dsd_clique.Instance_store.degree store v)
  done;
  let order = Array.make n 0 in
  let mu_live = ref (Array.length instances) in
  let best = ref (float_of_int !mu_live /. float_of_int (max 1 n)) in
  let best_start = ref 0 in
  for i = 0 to n - 1 do
    match Dsd_util.Bucket_queue.pop_min queue with
    | None -> assert false
    | Some (v, _) ->
      order.(i) <- v;
      let killed =
        Dsd_clique.Instance_store.kill_vertex store v ~on_comember:(fun u ->
            if Dsd_util.Bucket_queue.mem queue u then
              Dsd_util.Bucket_queue.update queue ~item:u
                ~key:(Dsd_clique.Instance_store.degree store u))
      in
      mu_live := !mu_live - killed;
      if i < n - 1 then begin
        let d = float_of_int !mu_live /. float_of_int (n - i - 1) in
        if d > !best then begin
          best := d;
          best_start := i + 1
        end
      end
  done;
  Array.sub order !best_start (n - !best_start)

let run ?(core_first = true) ~seed ~p g (psi : P.t) =
  if not (p > 0. && p <= 1.) then invalid_arg "Sampled_app.run: p must be in (0, 1]";
  let t0 = Dsd_util.Timer.now_s () in
  let rng = Dsd_util.Prng.create seed in
  (* Candidate region: the whole graph, or the core certified to
     contain the CDS. *)
  let region, map =
    if core_first then begin
      let decomp = Clique_core.decompose ~track_density:false g psi in
      let k =
        (decomp.Clique_core.kmax + psi.size - 1) / psi.size   (* ceil(kmax/p) *)
      in
      G.induced g (Clique_core.core_vertices decomp ~k)
    end
    else (g, Array.init (G.n g) Fun.id)
  in
  let all = Enumerate.instances region psi in
  let sample =
    Array.of_list
      (List.filter
         (fun _ -> Dsd_util.Prng.float rng 1.0 < p)
         (Array.to_list all))
  in
  let subgraph =
    if Array.length sample = 0 then Density.empty
    else begin
      let local = peel_sampled ~n:(G.n region) sample in
      (* Re-score the candidate against the full graph. *)
      Density.of_vertices g psi (Array.map (fun v -> map.(v)) local)
    end
  in
  { subgraph;
    sampled_instances = Array.length sample;
    total_instances = Array.length all;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }
