module G = Dsd_graph.Graph

type subgraph = {
  vertices : int array;
  density : float;
}

let edge_density g =
  if G.n g = 0 then 0. else float_of_int (G.m g) /. float_of_int (G.n g)

let pattern_density g psi =
  if G.n g = 0 then 0.
  else float_of_int (Enumerate.count g psi) /. float_of_int (G.n g)

let of_vertices g psi vs =
  if Array.length vs = 0 then { vertices = [||]; density = 0. }
  else begin
    let sub, _map = G.induced g vs in
    let sorted = Array.copy vs in
    Array.sort compare sorted;
    { vertices = sorted; density = pattern_density sub psi }
  end

let empty = { vertices = [||]; density = 0. }

let better a b = if b.density > a.density then b else a

let min_gap n =
  if n < 2 then 1. else 1. /. (float_of_int n *. float_of_int (n - 1))

let stop_gap n = min_gap n /. 2.
