(** EMcore baseline — in-memory adaptation of Cheng et al.'s top-down
    external-memory core decomposition (ICDE'11; the paper's [13]),
    stopped as soon as the classical kmax-core is known, exactly as
    Section 8.1 adapts it for Table 4.

    Vertices are ranked by degree (EMcore's upper bound, weaker than
    CoreApp's core-number bound) and accumulated in fixed-fraction
    blocks; each round re-decomposes the accumulated subgraph until no
    remaining vertex's degree can reach the best core found.  Only the
    edge pattern applies (EMcore predates clique-cores). *)

type result = {
  subgraph : Density.subgraph;  (** the classical kmax-core with edge density *)
  kmax : int;
  rounds : int;
  elapsed_s : float;
}

val run : Dsd_graph.Graph.t -> result
