module G = Dsd_graph.Graph

type stats = {
  iterations : int;
  last_network_nodes : int;
  mu : int;
  elapsed_s : float;
}

type result = {
  subgraph : Density.subgraph;
  stats : stats;
}

let run ?pool ?(warm = true) ?family ?instances ?prepared g psi =
  Dsd_obs.Span.with_ Dsd_obs.Phase.exact @@ fun () ->
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  let family =
    match family with
    | Some f -> f
    | None -> Flow_build.auto_family psi ~grouped:false
  in
  let instances =
    match (family, instances) with
    | Flow_build.Eds, _ -> [||]  (* the EDS network needs no instance list *)
    | _, Some i -> i             (* enumerated once by a caller that repeats *)
    | _, None -> Enumerate.instances ?pool g psi
  in
  let max_deg =
    match family with
    | Flow_build.Eds -> G.max_degree g
    | _ ->
      Array.fold_left max 0 (Flow_build.instance_degrees ?pool n instances)
  in
  let mu =
    match family with
    | Flow_build.Eds -> G.m g
    | _ -> Array.length instances
  in
  let finish best iterations last_nodes =
    { subgraph = best;
      stats =
        { iterations;
          last_network_nodes = last_nodes;
          mu;
          elapsed_s = Dsd_util.Timer.now_s () -. t0 } }
  in
  if n = 0 || mu = 0 then finish Density.empty 0 0
  else begin
    (* Algorithm 1 lines 1-3: l = 0, u = max clique-degree; stop when
       the interval is below the minimal density gap. *)
    let l = ref 0. and u = ref (float_of_int max_deg) in
    let gap = Density.stop_gap n in
    let best_vertices = ref [||] in
    let iterations = ref 0 in
    let last_nodes = ref 0 in
    (* The network topology is alpha-invariant: build the arena once on
       the first iteration, then only re-point the alpha arcs.  A
       caller-owned [?prepared] slot survives this call, so a server
       answering the same (g, psi) twice pays the build exactly once
       and every later search is pure retargets (warm-started from
       whatever flow the previous search left committed — the min-cut
       source side is unique, so results are unchanged). *)
    let prepared =
      match prepared with
      | Some slot -> slot
      | None -> ref None
    in
    while !u -. !l >= gap do
      incr iterations;
      Dsd_obs.Counter.incr Dsd_obs.Counter.Core_iterations;
      let alpha = (!l +. !u) /. 2. in
      let network =
        match !prepared with
        | Some p -> Flow_build.retarget ~warm p ~alpha
        | None ->
          let p = Flow_build.prepare ?pool family g psi ~instances ~alpha in
          prepared := Some p;
          p.Flow_build.network
      in
      last_nodes := network.node_count;
      let s_side = Flow_build.solve network in
      if Array.length s_side = 0 then u := alpha
      else begin
        l := alpha;
        best_vertices := s_side
      end
    done;
    let best =
      if Array.length !best_vertices = 0 then
        (* The optimum equals the trivial lower bound only when every
           density is 0, excluded above; the remaining corner is a
           single dense component found at the first step. *)
        Density.empty
      else Density.of_vertices g psi !best_vertices
    in
    finish best !iterations !last_nodes
  end
