(** Flow-network constructions for the min-cut-based exact algorithms.

    Four builders:
    - {!eds_network}: Goldberg's simplified network for edge density
      (the [32] construction quoted after Algorithm 1);
    - {!clique_network}: Algorithm 1 lines 5-15 — source, vertex nodes,
      (h-1)-clique nodes, sink.  (h-1)-cliques that extend to no
      h-clique are omitted: they can never lie on the source side and
      only pad the network;
    - {!pds_network}: PExact's construction (Algorithm 8) with one node
      per pattern instance;
    - {!pds_network_grouped}: construct+ (Algorithm 7), grouping
      instances that share a vertex set; Lemma 11 proves the min-cut
      capacity is unchanged.

    In every network: node 0 is the source, node 1 + i is data vertex
    i, instance/clique nodes follow, and the last node is the sink.
    After a min-cut, [dense_side_vertices] decodes S \ {s} back to data
    vertices (Algorithm 1 line 18). *)

type t = {
  net : Dsd_flow.Flow_network.t;
  source : int;
  sink : int;
  n_vertices : int;
  node_count : int;   (** |V_F|, the Figure 9 "size of flow network" *)
}

(** A constructed network plus the alpha-dependent arc class.

    Goldberg's parametric-flow observation: across the O(log n)
    binary-search iterations of Algorithms 1/4/8, the network topology
    — arena, clique/instance node layout, every alpha-independent arc —
    never changes; only the vertex-to-sink capacities do.  [prepare]
    builds once and records those arcs with their capacity law
    [cap(alpha) = max(base + coef * alpha, 0)]; [retarget] then costs
    O(V) capacity writes instead of a fresh enumeration + build. *)
type prepared = {
  network : t;
  alpha_arcs : int array;    (** arc ids whose capacity depends on alpha *)
  alpha_base : float array;
  alpha_coef : float array;
}

(** [solve t] computes the min cut and returns the data vertices on the
    source side (empty iff S = {s}). *)
val solve : t -> int array

val eds_network : Dsd_graph.Graph.t -> alpha:float -> t

val clique_network : Dsd_graph.Graph.t -> h:int -> alpha:float -> t

(** [instance_degrees ~n instances] is deg(v, Psi) restricted to
    [instances], for v in [0..n-1].  With [?pool] the partial counts
    stripe across the pool's domains and merge deterministically. *)
val instance_degrees :
  ?pool:Dsd_util.Pool.t -> int -> int array array -> int array

(** [clique_network_pre] reuses h-clique instances enumerated once per
    component across the binary-search iterations.  [pinned] vertices
    get infinite-capacity source arcs, forcing them onto the source
    side of every min cut (the query-vertex variant, Section 6.3).
    With [?pool], the per-instance arc material — member/(h-1)-subset
    pairs and instance degrees — is built in stripes across the pool
    and merged in stripe order, so the resulting network is arc-for-arc
    identical to the sequential construction for every pool size. *)
val clique_network_pre :
  ?pool:Dsd_util.Pool.t ->
  ?pinned:int array ->
  Dsd_graph.Graph.t -> h:int -> instances:int array array -> alpha:float -> t

val pds_network :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> alpha:float -> t

val pds_network_pre :
  ?pool:Dsd_util.Pool.t ->
  ?pinned:int array ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> instances:int array array ->
  alpha:float -> t

val pds_network_grouped :
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> alpha:float -> t

val pds_network_grouped_pre :
  ?pool:Dsd_util.Pool.t ->
  ?pinned:int array ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> instances:int array array ->
  alpha:float -> t

(** Which exact-network family an automatic solver should use for this
    pattern: cliques get the clique/EDS networks, general patterns the
    PDS ones. *)
type family = Eds | Clique_flow | Pds | Pds_grouped

(** [auto_family psi ~grouped] follows the paper's defaults:
    h = 2 -> [Eds], h-clique -> [Clique_flow], pattern -> [Pds] (or
    [Pds_grouped] when [grouped]). *)
val auto_family : Dsd_pattern.Pattern.t -> grouped:bool -> family

(** [build family g psi ~instances ~alpha] dispatches on the family;
    [instances] must be the Psi-instances of [g] (ignored by [Eds]).
    For [Clique_flow] they are the h-cliques.  With a non-empty
    [pinned] set, [Eds] falls back to the generic h = 2 network (the
    Goldberg construction has no pinning analysis).

    Equivalent to [(prepare ... ~alpha).network]; use {!prepare} when
    the same topology will be solved at several alphas. *)
val build :
  ?pool:Dsd_util.Pool.t ->
  ?pinned:int array ->
  family -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t ->
  instances:int array array -> alpha:float -> t

(** [prepare family g psi ~instances ~alpha] builds the network for
    [alpha] exactly like {!build} (same dispatch, pool striping and
    pinning fallback; counted once as [flow_networks_built]) and
    returns the retargetable handle.  The handle is tied to [g] and
    [instances]: when the vertex set changes (CoreExact's Pruning-3
    core shrink), discard it and prepare a fresh one. *)
val prepare :
  ?pool:Dsd_util.Pool.t ->
  ?pinned:int array ->
  family -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t ->
  instances:int array array -> alpha:float -> prepared

(** [retarget p ~alpha] rewrites the alpha-dependent capacities for the
    new [alpha] and returns the (shared, mutated) network ready to
    solve.  Counted as [flow_retargets] either way.

    With [~warm:true] (the default) the committed flow of the previous
    probe is kept: capacities are written with
    {!Dsd_flow.Flow_network.set_cap_carry} and any arc whose new
    capacity fell below its flow is repaired with
    {!Dsd_flow.Flow_network.restore_arc} (excess drained back to the
    source), so the next solve only augments the difference.  Alpha may
    move in either direction.  Warm retargets are additionally counted
    as [flow_warm_starts].

    With [~warm:false] all flow is zeroed first — the PR 3 behaviour —
    and the next solve starts from scratch. *)
val retarget : ?warm:bool -> prepared -> alpha:float -> t

(** The underlying network of a prepared handle (shared with every
    [retarget] result). *)
val network : prepared -> t
