module G = Dsd_graph.Graph

type prunings = { p1 : bool; p2 : bool; p3 : bool }

let all_prunings = { p1 = true; p2 = true; p3 = true }
let no_prunings = { p1 = false; p2 = false; p3 = false }

type stats = {
  iterations : int;
  network_nodes : int list;
  kmax : int;
  decompose_s : float;
  flow_s : float;
  elapsed_s : float;
}

type result = {
  subgraph : Density.subgraph;
  stats : stats;
}

let safe_ceil = Dsd_util.Float_guard.safe_ceil

let run ?pool ?(warm = true) ?(prunings = all_prunings) ?(grouped = false)
    ?family ?decomp g psi =
  Dsd_obs.Span.with_ Dsd_obs.Phase.core_exact @@ fun () ->
  let t0 = Dsd_util.Timer.now_s () in
  let p = psi.Dsd_pattern.Pattern.size in
  let family =
    match family with
    | Some f -> f
    | None -> Flow_build.auto_family psi ~grouped
  in
  let iterations = ref 0 in
  let network_nodes = ref [] in
  let flow_s = ref 0. in
  (* ---- Step 1: (k, Psi)-core decomposition, tracking rho' ---- *)
  (* A caller-supplied decomposition (the serving layer's prepared-state
     cache) replaces the expensive step when it carries the density
     tracking Pruning1 reads; one that lacks it is recomputed rather
     than trusted, so results never depend on how the cache was
     populated. *)
  let decomp, decompose_s =
    match decomp with
    | Some d
      when (not prunings.p1)
           || Array.length d.Clique_core.residual_densities > 0
           || d.Clique_core.mu_total = 0 ->
      (d, 0.)
    | _ ->
      Dsd_util.Timer.time (fun () ->
          Clique_core.decompose ?pool ~track_density:prunings.p1 g psi)
  in
  let kmax = decomp.Clique_core.kmax in
  let finish best =
    { subgraph = best;
      stats =
        { iterations = !iterations;
          network_nodes = List.rev !network_nodes;
          kmax;
          decompose_s;
          flow_s = !flow_s;
          elapsed_s = Dsd_util.Timer.now_s () -. t0 } }
  in
  if decomp.Clique_core.mu_total = 0 then finish Density.empty
  else begin
    (* Seed the answer with the densest subgraph already witnessed so
       an optimum equal to the lower bound survives the feasibility
       skips below. *)
    let seed_vertices =
      if prunings.p1 then Clique_core.best_residual decomp
      else Clique_core.kmax_core decomp
    in
    let best = ref (Density.of_vertices g psi seed_vertices) in
    (* Theorem 1 lower bound, improved by Pruning1's rho'. *)
    let l = ref (max (float_of_int kmax /. float_of_int p) !best.density) in
    let k'' = ref (max 1 (safe_ceil !l)) in
    (* ---- Pruning2: per-component densities of the core ---- *)
    let core_set = Clique_core.core_vertices decomp ~k:!k'' in
    let core_graph, core_map = G.induced g core_set in
    let component_sets =
      Dsd_graph.Traversal.component_members core_graph
      |> List.map (Array.map (fun v -> core_map.(v)))
    in
    let components =
      if prunings.p2 then begin
        List.iter
          (fun comp ->
            let cand = Density.of_vertices g psi comp in
            if cand.density > !best.density then best := cand)
          component_sets;
        l := max !l !best.density;
        let k2 = max !k'' (safe_ceil !l) in
        if k2 > !k'' then begin
          k'' := k2;
          (* Re-locate in the higher core. *)
          let core_set = Clique_core.core_vertices decomp ~k:!k'' in
          let core_graph, core_map = G.induced g core_set in
          Dsd_graph.Traversal.component_members core_graph
          |> List.map (Array.map (fun v -> core_map.(v)))
        end
        else component_sets
      end
      else component_sets
    in
    (* ---- Domain-striped per-component binary searches ----
       Each component's probe sequence is self-contained: the lower
       bound is frozen at the post-Pruning2 value l0, and Pruning-3
       shrinks are keyed to the component-local l, so a component's
       probe transcript depends only on the component — never on
       scheduling.  A shared atomic carries the best exact witnessed
       density so far; it is consulted ONLY for the strict
       result-invariant skip [ub < best]: a component whose core-number
       upper bound lies strictly below an already-witnessed density can
       hold neither the maximiser nor a tie, whatever the schedule.
       Candidates merge in component order with a strict [>], so the
       returned subgraph is bit-identical for every pool size,
       including no pool. *)
    let l0 = !l in
    let k0 = !k'' in
    let comps = Array.of_list components in
    let ncomps = Array.length comps in
    let best_rho = Atomic.make !best.Density.density in
    let publish rho =
      let rec go () =
        let cur = Atomic.get best_rho in
        if rho > cur && not (Atomic.compare_and_set best_rho cur rho) then
          go ()
      in
      go ()
    in
    (* slot = (candidate, probe count, network sizes in probe order,
       flow seconds): stats always recorded, candidate only when the
       component produced a witness. *)
    let slots = Array.make ncomps (None, 0, [], 0.) in
    (* Restrict a component to vertices whose core number certifies
       membership in the ceil(l)-core. *)
    let shrink comp threshold =
      Array.of_list
        (List.filter
           (fun v -> decomp.Clique_core.core.(v) >= threshold)
           (Array.to_list comp))
    in
    let process ?pool ci =
      let iters = ref 0 in
      let nodes = ref [] in
      let span = Dsd_util.Timer.Span.create () in
      (* Per-component retargetable handle: the arena is built at the
         first probe and only re-capacitated on later iterations.  A
         Pruning-3 core shrink changes the vertex set, so the caller
         resets the handle to [None] and the next probe rebuilds. *)
      let solve_network ~prepared gc alpha ~instances =
        incr iters;
        Dsd_obs.Counter.incr Dsd_obs.Counter.Core_iterations;
        Dsd_util.Timer.Span.start span;
        let network =
          match !prepared with
          | Some p -> Flow_build.retarget ~warm p ~alpha
          | None ->
            let p = Flow_build.prepare ?pool family gc psi ~instances ~alpha in
            prepared := Some p;
            p.Flow_build.network
        in
        nodes := network.node_count :: !nodes;
        let s_side = Flow_build.solve network in
        Dsd_util.Timer.Span.stop span;
        s_side
      in
      let l = ref l0 in
      (* Line 6: if l has outgrown this core level, drop low-core
         vertices before doing any flow work. *)
      let comp =
        if safe_ceil l0 > k0 then shrink comps.(ci) (safe_ceil l0)
        else comps.(ci)
      in
      (* Per-component upper bound: max core number inside. *)
      let ub =
        float_of_int
          (Array.fold_left
             (fun acc v -> max acc decomp.Clique_core.core.(v))
             0 comp)
      in
      let cand = ref None in
      if Array.length comp >= p && not (ub < Atomic.get best_rho) then begin
        let gc = ref (G.empty 0) in
        let map = ref [||] in
        let rebuild vs =
          let sub, m = G.induced g vs in
          gc := sub;
          map := m
        in
        rebuild comp;
        let instances = ref (Enumerate.instances ?pool !gc psi) in
        let comp = ref comp in
        let prepared = ref None in
        (* Feasibility probe at alpha = l (lines 7-9). *)
        let s0 = solve_network ~prepared !gc !l ~instances:!instances in
        if Array.length s0 > 0 then begin
          let u = ref ub in
          let witness = ref (Array.map (fun v -> !map.(v)) s0) in
          let gap () =
            if prunings.p3 then Density.stop_gap (Array.length !comp)
            else Density.stop_gap (G.n g)
          in
          while !u -. !l >= gap () do
            let alpha = (!l +. !u) /. 2. in
            let s_side =
              solve_network ~prepared !gc alpha ~instances:!instances
            in
            if Array.length s_side = 0 then u := alpha
            else begin
              witness := Array.map (fun v -> !map.(v)) s_side;
              (* Optimisation 3: raise l, shrink the component (and so
                 the next network) to the higher core. *)
              if safe_ceil alpha > safe_ceil !l then begin
                let smaller = shrink !comp (safe_ceil alpha) in
                if Array.length smaller >= p
                   && Array.length smaller < Array.length !comp
                then begin
                  comp := smaller;
                  rebuild smaller;
                  instances := Enumerate.instances ?pool !gc psi;
                  (* The handle's arena indexes the old vertex set:
                     invalidate so the next probe rebuilds. *)
                  prepared := None
                end
              end;
              l := alpha
            end
          done;
          let c = Density.of_vertices g psi !witness in
          publish c.Density.density;
          cand := Some c
        end
      end;
      slots.(ci) <-
        (!cand, !iters, List.rev !nodes, Dsd_util.Timer.Span.total_s span)
    in
    (match pool with
     | Some pl when ncomps > 1 ->
       (* One component per chunk, [eager] because a handful of
          components each hide a full binary search of flow solves.
          Component bodies run pool-free (pools don't nest). *)
       Dsd_util.Pool.parallel_for pl ~eager:true ~chunk:1 ~n:ncomps
         (fun lo hi ->
           for ci = lo to hi - 1 do
             process ci
           done)
     | _ ->
       for ci = 0 to ncomps - 1 do
         process ?pool ci
       done);
    Array.iter
      (fun (cand, it, nds, fs) ->
        iterations := !iterations + it;
        List.iter (fun nc -> network_nodes := nc :: !network_nodes) nds;
        flow_s := !flow_s +. fs;
        match cand with
        | Some c when c.Density.density > !best.Density.density -> best := c
        | _ -> ())
      slots;
    finish !best
  end
