type result = {
  subgraph : Density.subgraph;
  kmax : int;
  elapsed_s : float;
}

let run ?pool g psi =
  let t0 = Dsd_util.Timer.now_s () in
  let decomp = Clique_core.decompose ?pool ~track_density:false g psi in
  let subgraph =
    if decomp.Clique_core.mu_total = 0 then Density.empty
    else Density.of_vertices g psi (Clique_core.kmax_core decomp)
  in
  { subgraph;
    kmax = decomp.Clique_core.kmax;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }
