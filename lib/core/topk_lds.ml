module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type stats = {
  rounds : int;
  iterations : int;
  components_pruned : int;
  elapsed_s : float;
}

type result = {
  regions : Density.subgraph list;
  stats : stats;
}

let safe_ceil = Dsd_util.Float_guard.safe_ceil

let family_for (psi : P.t) =
  (* The canonicalization cut pins its witness, and pinning needs the
     generic networks even for h = 2 (see Query_dsd). *)
  match psi.kind with
  | P.Clique -> Flow_build.Clique_flow
  | P.Star _ | P.Cycle4 | P.Generic -> Flow_build.Pds_grouped

(* Exact optimum and canonical maximal densest subgraph of gr[verts]
   (verts in gr-local ids, regions reported in g-global ids via
   map_r).  None when the part holds no Psi-instance.

   The binary search keeps the Query_dsd invariant — l is always the
   exact density of a witnessed subset, u only drops when a min cut
   certifies no denser subset exists — so on termination the witness
   density IS the part's rho (no density fits strictly between l and u
   once u - l < min_gap).  One extra min cut at rho - stop_gap then
   canonicalizes: densest subsets are closed under union (instance
   counts are supermodular), so at that alpha the maximiser of
   mu(S) - alpha |S| is unique — the union of all densest subsets —
   and any min cut returns it.  The witness is pinned to the source
   side, which cannot change the unique answer (it contains every
   densest subset) but routes the cut through the pinned prepared-arena
   path. *)
let solve_part ?pool ~warm ~family g gr ~map_r psi ~verts ~u0 ~iterations =
  let cg, cmap = G.induced gr verts in
  let instances = Enumerate.instances ?pool cg psi in
  if Array.length instances = 0 then None
  else begin
    let global_of side = Array.map (fun v -> map_r.(cmap.(v))) side in
    let u0 =
      match u0 with
      | Some b -> b
      | None ->
        (* the loose Exact-style bound: max instance degree *)
        float_of_int
          (Array.fold_left max 0
             (Flow_build.instance_degrees ?pool (G.n cg) instances))
    in
    (* Seed: the whole part is a subset of itself, so its exact density
       is a sound lower bound with itself as witness. *)
    let witness_local = ref (Array.init (G.n cg) Fun.id) in
    let witness = ref (Density.of_vertices g psi (global_of !witness_local)) in
    let l = ref !witness.Density.density in
    let u = ref (Float.max u0 !l) in
    let gap = Density.stop_gap (G.n cg) in
    let prepared = ref None in
    let solve_at ?pinned alpha =
      incr iterations;
      match (pinned, !prepared) with
      | None, Some p -> Flow_build.solve (Flow_build.retarget ~warm p ~alpha)
      | None, None ->
        let p = Flow_build.prepare ?pool family cg psi ~instances ~alpha in
        prepared := Some p;
        Flow_build.solve p.Flow_build.network
      | Some _, _ ->
        (* pinned arcs differ from the search arena: one-shot build *)
        Flow_build.solve
          (Flow_build.prepare ?pool ?pinned family cg psi ~instances ~alpha)
            .Flow_build.network
    in
    while !u -. !l >= gap do
      let alpha = (!l +. !u) /. 2. in
      let side = solve_at alpha in
      if Array.length side = 0 then u := alpha
      else begin
        let cand = Density.of_vertices g psi (global_of side) in
        if cand.Density.density > alpha then begin
          l := cand.Density.density;
          witness := cand;
          witness_local := side
        end
        else u := alpha
      end
    done;
    let rho = !witness.Density.density in
    let side = solve_at ~pinned:!witness_local (rho -. gap) in
    Some (rho, global_of side)
  end

(* One extraction round over the remaining graph gr: the exact round
   optimum and its canonical region, or None when gr has no instances
   left.  [prev_rho] is the previous round's density — a sound upper
   bound, since the remaining graph only shrinks. *)
let round_pruned ?pool ~warm ~family ~decomp g gr ~map_r (psi : P.t) ~prev_rho
    ~iterations ~pruned =
  let d =
    match decomp with
    | Some d
      when Array.length d.Clique_core.residual_densities > 0
           || d.Clique_core.mu_total = 0 ->
      d
    | _ -> Clique_core.decompose ?pool ~track_density:true gr psi
  in
  if d.Clique_core.mu_total = 0 then None
  else begin
    let p = psi.P.size in
    let kmax = d.Clique_core.kmax in
    (* Every densest subset S has min instance-degree >= ceil(rho_opt)
       inside S, so S survives peeling up to that level: S lives in the
       ceil(l)-core for any lower bound l <= rho_opt. *)
    let l0 =
      Float.max
        (float_of_int kmax /. float_of_int p)
        d.Clique_core.best_residual_density
    in
    let k'' = min kmax (max 1 (safe_ceil l0)) in
    let candidates = Clique_core.core_vertices d ~k:k'' in
    let cand_g, cand_map = G.induced gr candidates in
    (* Components of the induced candidate subgraph: instances are
       connected, so no instance spans two components and densest
       subsets split cleanly across them. *)
    let comps =
      Dsd_graph.Traversal.component_members cand_g
      |> List.map (fun comp ->
             let comp = Array.map (fun v -> cand_map.(v)) comp in
             let bound =
               Array.fold_left
                 (fun acc v -> max acc d.Clique_core.core.(v))
                 0 comp
             in
             (float_of_int bound, comp))
      |> List.stable_sort (fun (a, _) (b, _) -> compare b a)
    in
    (* Striped strict-skip solves: one slot per component holds its
       outcome; a shared atomic carries the best exact rho witnessed so
       far.  A skipped component has bound < some witnessed rho <=
       rho_star, so it can neither set rho_star nor tie it — the merged
       union below is schedule-invariant.  (The probe/prune tallies are
       not: they depend on how far the bound had advanced at each
       check, which is why --stats runs pin --domains 1.) *)
    let comps = Array.of_list comps in
    let ncomps = Array.length comps in
    let slots = Array.make ncomps `Pruned in
    let best_rho = Atomic.make 0. in
    let publish rho =
      let rec go () =
        let cur = Atomic.get best_rho in
        if rho > cur && not (Atomic.compare_and_set best_rho cur rho) then
          go ()
      in
      go ()
    in
    let process ?pool ci =
      let bound, comp = comps.(ci) in
      (* The skip is strict: a component tied with the best so far has
         bound >= its own rho = best, so ties are always solved — the
         canonical region is the union over ALL tied components. *)
      if bound < Atomic.get best_rho then slots.(ci) <- `Pruned
      else begin
        let iters = ref 0 in
        let r =
          solve_part ?pool ~warm ~family g gr ~map_r psi ~verts:comp
            ~u0:(Some (Float.min bound prev_rho))
            ~iterations:iters
        in
        (match r with Some (rho, _) -> publish rho | None -> ());
        slots.(ci) <- `Solved (r, !iters)
      end
    in
    (match pool with
     | Some pl when ncomps > 1 ->
       (* One component per chunk, [eager]: a handful of components
          each hide a full binary search of flow solves.  Component
          bodies run pool-free (pools don't nest). *)
       Dsd_util.Pool.parallel_for pl ~eager:true ~chunk:1 ~n:ncomps
         (fun lo hi ->
           for ci = lo to hi - 1 do
             process ci
           done)
     | _ ->
       for ci = 0 to ncomps - 1 do
         process ?pool ci
       done);
    let solved = ref [] in
    Array.iter
      (function
        | `Pruned ->
          incr pruned;
          Dsd_obs.Counter.incr Dsd_obs.Counter.Topk_components_pruned
        | `Solved (r, it) -> (
          iterations := !iterations + it;
          match r with
          | None -> ()
          | Some (rho, region) -> solved := (rho, region) :: !solved))
      slots;
    match !solved with
    | [] -> None
    | solved ->
      let rho_star = List.fold_left (fun a (r, _) -> Float.max a r) 0. solved in
      (* Exact rationals divide to bit-identical floats, so float
         equality here is rational equality. *)
      let union =
        List.concat_map
          (fun (r, region) ->
            if r = rho_star then Array.to_list region else [])
          solved
      in
      Some (Density.of_vertices g psi (Array.of_list union))
  end

let round_unpruned ?pool ~warm ~family g gr ~map_r psi ~iterations =
  let verts = Array.init (G.n gr) Fun.id in
  match
    solve_part ?pool ~warm ~family g gr ~map_r psi ~verts ~u0:None ~iterations
  with
  | None -> None
  | Some (_rho, region) -> Some (Density.of_vertices g psi region)

let run ?pool ?(warm = true) ?(prune = true) ?decomp ~k g psi =
  if k < 1 then invalid_arg "Topk_lds: k must be >= 1";
  Dsd_obs.Span.with_ Dsd_obs.Phase.topk @@ fun () ->
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  let family = family_for psi in
  let iterations = ref 0 in
  let pruned = ref 0 in
  let rounds = ref 0 in
  let remaining = Array.make (max 1 n) true in
  let n_remaining = ref n in
  let regions = ref [] in
  let prev_rho = ref infinity in
  let stop = ref (n = 0) in
  while (not !stop) && List.length !regions < k do
    incr rounds;
    Dsd_obs.Counter.incr Dsd_obs.Counter.Topk_rounds;
    let rest = ref [] in
    for v = n - 1 downto 0 do
      if remaining.(v) then rest := v :: !rest
    done;
    let gr, map_r = G.induced g (Array.of_list !rest) in
    let round_region =
      if prune then
        (* A caller-supplied decomposition only matches the first round
           (it describes the full graph). *)
        let decomp = if !rounds = 1 then decomp else None in
        round_pruned ?pool ~warm ~family ~decomp g gr ~map_r psi
          ~prev_rho:!prev_rho ~iterations ~pruned
      else round_unpruned ?pool ~warm ~family g gr ~map_r psi ~iterations
    in
    match round_region with
    | None -> stop := true
    | Some region when Array.length region.Density.vertices = 0 ->
      (* cannot happen (instances exist => positive optimum), but never
         loop on an empty extraction *)
      stop := true
    | Some region ->
      regions := region :: !regions;
      Dsd_obs.Counter.incr Dsd_obs.Counter.Topk_regions;
      Array.iter (fun v -> remaining.(v) <- false) region.Density.vertices;
      n_remaining := !n_remaining - Array.length region.Density.vertices;
      prev_rho := region.Density.density;
      if !n_remaining = 0 then stop := true
  done;
  { regions = List.rev !regions;
    stats =
      { rounds = !rounds;
        iterations = !iterations;
        components_pruned = !pruned;
        elapsed_s = Dsd_util.Timer.now_s () -. t0 } }
