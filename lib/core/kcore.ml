type t = Dsd_graph.Degeneracy.t

let decompose g = Dsd_graph.Degeneracy.compute g

let core_number (t : t) v = t.core.(v)
let core_numbers (t : t) = Array.copy t.core
let kmax (t : t) = t.degeneracy

let k_core (t : t) ~k =
  let out = Dsd_util.Vec.Int.create () in
  Array.iteri
    (fun v c -> if c >= k then Dsd_util.Vec.Int.push out v)
    t.core;
  Dsd_util.Vec.Int.to_array out

let kmax_core t = k_core t ~k:(kmax t)
