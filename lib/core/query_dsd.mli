(** The query-vertex variant of CDS (Section 6.3): given query vertices
    Q, find the subgraph containing all of Q with the highest
    Psi-density.

    Following the paper's sketch: decompose (k, Psi)-cores, let x be
    the minimum clique-core number among Q — every subgraph containing
    Q lives inside the (x', Psi)-core for suitable x', so the flow
    binary search runs on that core instead of all of G.  The flow
    network is the standard one with the query vertices pinned to the
    source side (infinite-capacity source arcs), the exact-CDS
    framework of Tsourakakis [65] that the paper adapts.

    Connectivity caveat: as in [65], the optimum is the densest vertex
    set containing Q; it need not be connected through Q. *)

type result = {
  subgraph : Density.subgraph;   (** contains all query vertices *)
  iterations : int;
  elapsed_s : float;
}

(** [run g psi ~query] solves the variant exactly.  [warm] (default
    [true]) carries flow across binary-search probes; the pinned arcs
    are alpha-independent so pinning composes with warm starts.
    [?decomp] supplies a (k, Psi)-core decomposition of [g] w.r.t.
    [psi] computed earlier (the serving layer's prepared-state cache);
    only core numbers and the instance count are read, so any
    [track_density] mode drops in with bit-identical results.
    @raise Invalid_argument if [query] is empty or out of range. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  ?decomp:Clique_core.t ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> query:int array -> result

(** [run_naive g psi ~query] is the same binary search without the core
    restriction (the [65] baseline; used for tests and the ablation
    bench). *)
val run_naive :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> query:int array -> result
