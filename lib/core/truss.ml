module G = Dsd_graph.Graph

type t = {
  n : int;
  edge_u : int array;        (* edge id -> smaller endpoint *)
  edge_v : int array;
  truss : int array;         (* edge id -> truss number *)
  edge_ids : (int, int) Hashtbl.t;   (* encoded (u,v) -> edge id *)
  kmax : int;
}

let encode n u v = (min u v * n) + max u v

let decompose g =
  let n = G.n g in
  let m = G.m g in
  let edge_u = Array.make (max 1 m) 0 in
  let edge_v = Array.make (max 1 m) 0 in
  let edge_ids = Hashtbl.create (2 * m) in
  let next = ref 0 in
  G.iter_edges g ~f:(fun u v ->
      edge_u.(!next) <- u;
      edge_v.(!next) <- v;
      Hashtbl.replace edge_ids (encode n u v) !next;
      incr next);
  let alive = Bytes.make (max 1 m) '\001' in
  let edge_id u v = Hashtbl.find_opt edge_ids (encode n u v) in
  let support = Array.make (max 1 m) 0 in
  (* Initial supports: common-neighbour counts, merged on the CSR rows
     without materialising the neighbour arrays. *)
  let common u v f = G.iter_common_neighbors g u v ~f in
  for e = 0 to m - 1 do
    let c = ref 0 in
    common edge_u.(e) edge_v.(e) (fun _ -> incr c);
    support.(e) <- !c
  done;
  let max_support = Array.fold_left max 1 support in
  let queue = Dsd_util.Bucket_queue.create ~n:(max 1 m) ~max_key:max_support in
  for e = 0 to m - 1 do
    Dsd_util.Bucket_queue.add queue ~item:e ~key:support.(e)
  done;
  let truss = Array.make (max 1 m) 2 in
  let run_max = ref 0 in
  for _ = 1 to m do
    match Dsd_util.Bucket_queue.pop_min queue with
    | None -> assert false
    | Some (e, s) ->
      if s > !run_max then run_max := s;
      truss.(e) <- !run_max + 2;
      Bytes.set alive e '\000';
      let u = edge_u.(e) and v = edge_v.(e) in
      common u v (fun w ->
          (* The triangle (u, v, w) dies with e; both side edges lose
             one support if still queued. *)
          match (edge_id u w, edge_id v w) with
          | Some e1, Some e2 ->
            if Bytes.get alive e1 = '\001' && Bytes.get alive e2 = '\001'
            then begin
              List.iter
                (fun ei ->
                  if Dsd_util.Bucket_queue.mem queue ei then begin
                    let k = Dsd_util.Bucket_queue.key queue ei in
                    if k > s then
                      Dsd_util.Bucket_queue.update queue ~item:ei ~key:(k - 1)
                  end)
                [ e1; e2 ]
            end
          | _ -> assert false)
  done;
  { n;
    edge_u;
    edge_v;
    truss;
    edge_ids;
    kmax = (if m = 0 then 0 else !run_max + 2) }

let truss_number t ~u ~v =
  match Hashtbl.find_opt t.edge_ids (encode t.n u v) with
  | Some e -> t.truss.(e)
  | None -> raise Not_found

let kmax t = t.kmax

let k_truss t ~k =
  let out = ref [] in
  Array.iteri
    (fun e tn -> if tn >= k then out := (t.edge_u.(e), t.edge_v.(e)) :: !out)
    t.truss;
  Array.of_list (List.rev !out)

let max_truss_subgraph g t =
  if t.kmax = 0 then Density.empty
  else begin
    let edges = k_truss t ~k:t.kmax in
    let vs = Hashtbl.create 16 in
    Array.iter
      (fun (u, v) ->
        Hashtbl.replace vs u ();
        Hashtbl.replace vs v ())
      edges;
    let members = Hashtbl.fold (fun v () acc -> v :: acc) vs [] in
    Density.of_vertices g Dsd_pattern.Pattern.edge (Array.of_list members)
  end
