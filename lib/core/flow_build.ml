module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module F = Dsd_flow.Flow_network

type t = {
  net : F.t;
  source : int;
  sink : int;
  n_vertices : int;
  node_count : int;
}

(* The binary searches of Algorithms 1/4/8 change only the
   alpha-dependent arc class between iterations (Goldberg's parametric
   observation), so each constructor records those arcs together with
   their capacity law cap(alpha) = max(base + coef * alpha, 0) and
   [retarget] re-points the same arena at a new alpha in O(V). *)
type prepared = {
  network : t;
  alpha_arcs : int array;
  alpha_base : float array;
  alpha_coef : float array;
}

let vertex_node v = v + 1

let solve t =
  Dsd_obs.Span.with_ Dsd_obs.Phase.flow @@ fun () ->
  let aug0 = Dsd_obs.Counter.get Dsd_obs.Counter.Flow_augmentations in
  let _flow, side = Dsd_flow.Min_cut.solve t.net ~s:t.source ~t:t.sink in
  Dsd_obs.Probe.record
    (Dsd_obs.Counter.get Dsd_obs.Counter.Flow_augmentations - aug0);
  let out = Dsd_util.Vec.Int.create () in
  for v = 0 to t.n_vertices - 1 do
    if side.(vertex_node v) then Dsd_util.Vec.Int.push out v
  done;
  Dsd_util.Vec.Int.to_array out

let alpha_cap ~base ~coef alpha = Float.max (base +. (coef *. alpha)) 0.

(* Collects the alpha-dependent arcs a constructor emits. *)
let alpha_recorder () =
  let arcs = Dsd_util.Vec.Int.create () in
  let bases = Dsd_util.Vec.Float.create () in
  let coefs = Dsd_util.Vec.Float.create () in
  let record net ~src ~dst ~base ~coef ~alpha =
    let id = F.add_edge net ~src ~dst ~cap:(alpha_cap ~base ~coef alpha) in
    Dsd_util.Vec.Int.push arcs id;
    Dsd_util.Vec.Float.push bases base;
    Dsd_util.Vec.Float.push coefs coef
  in
  let finish network =
    { network;
      alpha_arcs = Dsd_util.Vec.Int.to_array arcs;
      alpha_base = Dsd_util.Vec.Float.to_array bases;
      alpha_coef = Dsd_util.Vec.Float.to_array coefs }
  in
  (record, finish)

let retarget ?(warm = true) p ~alpha =
  Dsd_obs.Span.with_ Dsd_obs.Phase.retarget @@ fun () ->
  Dsd_obs.Counter.incr Dsd_obs.Counter.Flow_retargets;
  let net = p.network.net in
  if warm then begin
    (* Keep the previous probe's flow: rewrite every alpha capacity
       first (alpha may move either direction), then repair the arcs
       whose new capacity fell below their committed flow by draining
       the excess back to the source.  The solver then only has to
       augment the difference. *)
    Dsd_obs.Counter.incr Dsd_obs.Counter.Flow_warm_starts;
    for i = 0 to Array.length p.alpha_arcs - 1 do
      F.set_cap_carry net p.alpha_arcs.(i)
        (alpha_cap ~base:p.alpha_base.(i) ~coef:p.alpha_coef.(i) alpha)
    done;
    let s = p.network.source in
    Array.iter (fun e -> ignore (F.restore_arc net ~s e)) p.alpha_arcs
  end
  else begin
    F.reset_flow net;
    for i = 0 to Array.length p.alpha_arcs - 1 do
      F.set_cap net p.alpha_arcs.(i)
        (alpha_cap ~base:p.alpha_base.(i) ~coef:p.alpha_coef.(i) alpha)
    done
  end;
  p.network

let network p = p.network

let eds_prepared g ~alpha =
  let n = G.n g in
  let m = float_of_int (G.m g) in
  let size = n + 2 in
  let net = F.create size in
  let source = 0 and sink = size - 1 in
  let record, finish = alpha_recorder () in
  for v = 0 to n - 1 do
    ignore (F.add_edge net ~src:source ~dst:(vertex_node v) ~cap:m);
    (* cap = m + 2 alpha - deg(v), clamped at 0. *)
    record net ~src:(vertex_node v) ~dst:sink
      ~base:(m -. float_of_int (G.degree g v)) ~coef:2. ~alpha
  done;
  G.iter_edges g ~f:(fun u v ->
      ignore (F.add_edge net ~src:(vertex_node u) ~dst:(vertex_node v) ~cap:1.);
      ignore (F.add_edge net ~src:(vertex_node v) ~dst:(vertex_node u) ~cap:1.));
  finish { net; source; sink; n_vertices = n; node_count = size }

let eds_network g ~alpha = (eds_prepared g ~alpha).network

(* Shared degree computation from an instance list.  With a pool the
   per-chunk partial counts fan out across domains; integer addition
   commutes, so the merged array is exactly the sequential one. *)
let degrees_of_instances ?pool n instances =
  match pool with
  | Some pool when Array.length instances > 0 && n > 0 ->
    let len = Array.length instances in
    let chunk = max 1024 (len / (2 * Dsd_util.Pool.parallel_width pool ~n:len)) in
    let parts =
      Dsd_util.Pool.map_chunks pool ~chunk ~n:len (fun lo hi ->
          let deg = Array.make n 0 in
          for i = lo to hi - 1 do
            Array.iter (fun v -> deg.(v) <- deg.(v) + 1) instances.(i)
          done;
          deg)
    in
    let first = parts.(0) in
    for p = 1 to Array.length parts - 1 do
      let part = parts.(p) in
      for v = 0 to n - 1 do
        first.(v) <- first.(v) + part.(v)
      done
    done;
    first
  | _ ->
    let deg = Array.make n 0 in
    Array.iter
      (fun inst -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) inst)
      instances;
    deg

let instance_degrees = degrees_of_instances

let clique_prepared ?pool ?(pinned = [||]) g ~h ~instances ~alpha =
  let n = G.n g in
  let ninst = Array.length instances in
  (* For every h-clique and every member v, an arc v -> (clique minus
     v) is needed.  Materialising the (member, subset) pairs is the
     allocation-heavy part, and each pair depends on one instance
     only, so it stripes across the pool; chunks concatenate back to
     the forward generation order. *)
  let pairs_chunk lo hi =
    let out = Array.make ((hi - lo) * h) (0, [||]) in
    let p = ref 0 in
    for ii = lo to hi - 1 do
      let inst = instances.(ii) in
      for i = 0 to h - 1 do
        let psi = Array.make (h - 1) 0 in
        let k = ref 0 in
        for j = 0 to h - 1 do
          if j <> i then begin
            psi.(!k) <- inst.(j);
            incr k
          end
        done;
        out.(!p) <- (inst.(i), psi);
        incr p
      done
    done;
    out
  in
  let pairs =
    if ninst = 0 then [||]
    else
      match pool with
      | None -> pairs_chunk 0 ninst
      | Some pool ->
        let chunk =
          max 512 (ninst / (8 * Dsd_util.Pool.parallel_width pool ~n:ninst))
        in
        Array.concat
          (Array.to_list
             (Dsd_util.Pool.map_chunks pool ~chunk ~n:ninst pairs_chunk))
  in
  (* Node each (h-1)-subset of some h-clique, keyed by the sorted
     member array.  Ids are assigned sequentially in forward pair
     order: the hash table sees the same insertions in the same order
     as a fully sequential build, so its iteration order — and with it
     every arc of the network — is bit-identical for any pool size. *)
  let sub_ids : (int array, int) Hashtbl.t = Hashtbl.create 256 in
  let next = ref 0 in
  let arcs = ref [] in
  Array.iter
    (fun (v, psi) ->
      let id =
        match Hashtbl.find_opt sub_ids psi with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.add sub_ids psi id;
          id
      in
      arcs := (v, id) :: !arcs)
    pairs;
  let lambda = !next in
  let size = n + lambda + 2 in
  let net = F.create size in
  let source = 0 and sink = size - 1 in
  let sub_node id = n + 1 + id in
  let deg = degrees_of_instances ?pool n instances in
  let record, finish = alpha_recorder () in
  for v = 0 to n - 1 do
    if deg.(v) > 0 then
      ignore (F.add_edge net ~src:source ~dst:(vertex_node v)
                ~cap:(float_of_int deg.(v)));
    record net ~src:(vertex_node v) ~dst:sink
      ~base:0. ~coef:(float_of_int h) ~alpha
  done;
  Array.iter
    (fun q ->
      ignore (F.add_edge net ~src:source ~dst:(vertex_node q) ~cap:infinity))
    pinned;
  List.iter
    (fun (v, id) ->
      ignore (F.add_edge net ~src:(vertex_node v) ~dst:(sub_node id) ~cap:1.))
    !arcs;
  Hashtbl.iter
    (fun psi id ->
      Array.iter
        (fun u ->
          ignore
            (F.add_edge net ~src:(sub_node id) ~dst:(vertex_node u)
               ~cap:infinity))
        psi)
    sub_ids;
  finish { net; source; sink; n_vertices = n; node_count = size }

let clique_network_pre ?pool ?pinned g ~h ~instances ~alpha =
  (clique_prepared ?pool ?pinned g ~h ~instances ~alpha).network

let clique_network g ~h ~alpha =
  clique_network_pre g ~h ~instances:(Dsd_clique.Kclist.list g ~h) ~alpha

let pds_prepared ?pool ?(pinned = [||]) ~grouped g (psi : P.t) ~instances
    ~alpha =
  let n = G.n g in
  let p = psi.size in
  (* construct+ groups instances sharing a vertex set; the ungrouped
     network is the degenerate case where every group has size 1. *)
  let groups =
    if grouped then begin
      let tbl : (int array, int) Hashtbl.t = Hashtbl.create 256 in
      Array.iter
        (fun inst ->
          let c = try Hashtbl.find tbl inst with Not_found -> 0 in
          Hashtbl.replace tbl inst (c + 1))
        instances;
      Hashtbl.fold (fun members count acc -> (members, count) :: acc) tbl []
      |> Array.of_list
    end
    else Array.map (fun inst -> (inst, 1)) instances
  in
  let lambda = Array.length groups in
  let size = n + lambda + 2 in
  let net = F.create size in
  let source = 0 and sink = size - 1 in
  let group_node id = n + 1 + id in
  let deg = degrees_of_instances ?pool n instances in
  let record, finish = alpha_recorder () in
  for v = 0 to n - 1 do
    if deg.(v) > 0 then
      ignore (F.add_edge net ~src:source ~dst:(vertex_node v)
                ~cap:(float_of_int deg.(v)));
    record net ~src:(vertex_node v) ~dst:sink
      ~base:0. ~coef:(float_of_int p) ~alpha
  done;
  Array.iter
    (fun q ->
      ignore (F.add_edge net ~src:source ~dst:(vertex_node q) ~cap:infinity))
    pinned;
  Array.iteri
    (fun id (members, count) ->
      let cf = float_of_int count in
      Array.iter
        (fun v ->
          ignore (F.add_edge net ~src:(vertex_node v) ~dst:(group_node id) ~cap:cf);
          ignore
            (F.add_edge net ~src:(group_node id) ~dst:(vertex_node v)
               ~cap:(cf *. float_of_int (p - 1))))
        members)
    groups;
  finish { net; source; sink; n_vertices = n; node_count = size }

let pds_network_pre ?pool ?pinned g psi ~instances ~alpha =
  (pds_prepared ?pool ?pinned ~grouped:false g psi ~instances ~alpha).network

let pds_network g psi ~alpha =
  pds_network_pre g psi ~instances:(Enumerate.instances g psi) ~alpha

let pds_network_grouped_pre ?pool ?pinned g psi ~instances ~alpha =
  (pds_prepared ?pool ?pinned ~grouped:true g psi ~instances ~alpha).network

let pds_network_grouped g psi ~alpha =
  pds_network_grouped_pre g psi ~instances:(Enumerate.instances g psi) ~alpha

type family = Eds | Clique_flow | Pds | Pds_grouped

let auto_family (psi : P.t) ~grouped =
  match psi.kind with
  | P.Clique when psi.size = 2 -> Eds
  | P.Clique -> Clique_flow
  | P.Star _ | P.Cycle4 | P.Generic -> if grouped then Pds_grouped else Pds

let prepare ?pool ?pinned family g (psi : P.t) ~instances ~alpha =
  Dsd_obs.Span.with_ Dsd_obs.Phase.build_network @@ fun () ->
  Dsd_obs.Counter.incr Dsd_obs.Counter.Flow_networks_built;
  match family with
  | Eds ->
    (match pinned with
     | None | Some [||] -> eds_prepared g ~alpha
     | Some _ ->
       (* The Goldberg construction has no pinning analysis; fall back
          to the generic h = 2 network, which supports it. *)
       clique_prepared ?pool ?pinned g ~h:2
         ~instances:(Array.map (fun (u, v) -> [| u; v |]) (G.edges g))
         ~alpha)
  | Clique_flow -> clique_prepared ?pool ?pinned g ~h:psi.size ~instances ~alpha
  | Pds -> pds_prepared ?pool ?pinned ~grouped:false g psi ~instances ~alpha
  | Pds_grouped ->
    pds_prepared ?pool ?pinned ~grouped:true g psi ~instances ~alpha

let build ?pool ?pinned family g psi ~instances ~alpha =
  (prepare ?pool ?pinned family g psi ~instances ~alpha).network
