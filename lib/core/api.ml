type algorithm =
  | Exact_flow
  | Core_exact
  | Peel
  | Inc_app
  | Core_app

let algorithm_name = function
  | Exact_flow -> "Exact"
  | Core_exact -> "CoreExact"
  | Peel -> "PeelApp"
  | Inc_app -> "IncApp"
  | Core_app -> "CoreApp"

let densest_subgraph ?pool ?warm ?(psi = Dsd_pattern.Pattern.edge)
    ?(algorithm = Core_exact) g =
  match algorithm with
  | Exact_flow -> (Exact.run ?pool ?warm g psi).subgraph
  | Core_exact -> (Core_exact.run ?pool ?warm g psi).subgraph
  | Peel -> (Peel_app.run ?pool g psi).subgraph
  | Inc_app -> (Inc_app.run ?pool g psi).subgraph
  | Core_app -> (Core_app.run ?pool g psi).subgraph

let core_numbers ?pool g psi =
  (Clique_core.decompose ?pool ~track_density:false g psi).Clique_core.core

let kmax_core ?pool g psi = (Inc_app.run ?pool g psi).subgraph
