type algorithm =
  | Exact_flow
  | Core_exact
  | Peel
  | Inc_app
  | Core_app

let algorithm_name = function
  | Exact_flow -> "Exact"
  | Core_exact -> "CoreExact"
  | Peel -> "PeelApp"
  | Inc_app -> "IncApp"
  | Core_app -> "CoreApp"

let densest_subgraph ?(psi = Dsd_pattern.Pattern.edge)
    ?(algorithm = Core_exact) g =
  match algorithm with
  | Exact_flow -> (Exact.run g psi).subgraph
  | Core_exact -> (Core_exact.run g psi).subgraph
  | Peel -> (Peel_app.run g psi).subgraph
  | Inc_app -> (Inc_app.run g psi).subgraph
  | Core_app -> (Core_app.run g psi).subgraph

let core_numbers g psi =
  (Clique_core.decompose ~track_density:false g psi).Clique_core.core

let kmax_core g psi = (Inc_app.run g psi).subgraph
