(** CorePExact — Section 7.2's core-based exact PDS algorithm:
    {!Core_exact.run} with the construct+ grouped network
    (Algorithm 7) forced. *)

val run :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  ?prunings:Core_exact.prunings ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> Core_exact.result
