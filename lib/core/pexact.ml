let run g psi = Exact.run ~family:Flow_build.Pds g psi
