let run ?pool g psi = Exact.run ?pool ~family:Flow_build.Pds g psi
