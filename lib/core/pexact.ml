let run ?pool ?warm g psi = Exact.run ?pool ?warm ~family:Flow_build.Pds g psi
