(** Bahmani-Kumar-Vassilvitskii streaming/MapReduce approximation
    (PVLDB'12 — the paper's reference [6] baseline).

    O(log n / eps) sequential passes over the graph; each pass deletes
    every vertex whose current Psi-degree is at most
    |V_Psi| * (1 + eps) * rho(current).  The best candidate set across
    passes is a 1 / (|V_Psi| (1 + eps))-approximation: the first
    optimal vertex deleted certifies that the surviving set was already
    nearly optimal (the argument of Lemma 4 applied per pass).

    Each pass re-derives degrees from the graph alone — no state beyond
    the surviving vertex set — which is what makes the algorithm
    streamable; we execute the passes in memory. *)

type result = {
  subgraph : Density.subgraph;
  passes : int;
  elapsed_s : float;
}

(** [run ?eps g psi] (default eps = 0.1).
    @raise Invalid_argument if [eps <= 0]. *)
val run :
  ?eps:float -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
