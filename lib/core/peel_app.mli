(** PeelApp — Algorithm 2: Charikar/Tsourakakis greedy peeling.

    Removes the minimum-Psi-degree vertex for n rounds and returns the
    densest residual graph; a deterministic 1/|V_Psi|-approximation
    (Lemma 10).  Implemented as the density-tracking mode of the shared
    peel engine, so the returned subgraph is exactly the best peel
    suffix. *)

type result = {
  subgraph : Density.subgraph;
  mu : int;
  elapsed_s : float;
}

(** [?pool] parallelises instance enumeration and the round-synchronous
    peel scans; the result — including the returned suffix, which
    depends on the peel order — is bit-identical for every pool
    size. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
