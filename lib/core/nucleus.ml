module G = Dsd_graph.Graph

type result = {
  subgraph : Density.subgraph;
  core : int array;
  kmax : int;
  updates : int;
  elapsed_s : float;
}

let run g psi =
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  let instances = Enumerate.instances g psi in
  let posting = Array.make n [] in
  Array.iteri
    (fun i inst -> Array.iter (fun v -> posting.(v) <- i :: posting.(v)) inst)
    instances;
  let nu = Array.make n 0 in
  Array.iter
    (fun inst -> Array.iter (fun v -> nu.(v) <- nu.(v) + 1) inst)
    instances;
  (* h-index of v over min co-member values, capped at nu(v): the
     largest k such that at least k of v's instances have every other
     member at value >= k. *)
  let h_index v =
    let cap = nu.(v) in
    if cap = 0 then 0
    else begin
      let counts = Array.make (cap + 1) 0 in
      List.iter
        (fun i ->
          let m = ref max_int in
          Array.iter
            (fun u -> if u <> v && nu.(u) < !m then m := nu.(u))
            instances.(i);
          let m = min !m cap in
          counts.(m) <- counts.(m) + 1)
        posting.(v);
      let rec scan k acc =
        let acc = acc + counts.(k) in
        if acc >= k then k else scan (k - 1) acc
      in
      scan cap 0
    end
  in
  let in_queue = Array.make n true in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    Queue.add v queue
  done;
  let updates = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    in_queue.(v) <- false;
    incr updates;
    let fresh = h_index v in
    if fresh < nu.(v) then begin
      nu.(v) <- fresh;
      (* Co-members above the new value may now be able to drop. *)
      List.iter
        (fun i ->
          Array.iter
            (fun u ->
              if u <> v && nu.(u) > fresh && not in_queue.(u) then begin
                in_queue.(u) <- true;
                Queue.add u queue
              end)
            instances.(i))
        posting.(v)
    end
  done;
  let kmax = Array.fold_left max 0 nu in
  let core_vs = Dsd_util.Vec.Int.create () in
  Array.iteri
    (fun v k -> if k >= kmax && kmax > 0 then Dsd_util.Vec.Int.push core_vs v)
    nu;
  let members = Dsd_util.Vec.Int.to_array core_vs in
  let subgraph =
    if Array.length members = 0 then Density.empty
    else Density.of_vertices g psi members
  in
  { subgraph;
    core = nu;
    kmax;
    updates = !updates;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }
