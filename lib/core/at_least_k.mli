(** Size-constrained DSD (the paper's future work: "finding densest
    subgraphs with size constraints"): the densest-at-least-k problem —
    the densest subgraph with at least [k] vertices.

    NP-hard in general; the Andersen-Chellapilla-style heuristic
    returns the densest peel *suffix* of size >= k, which for edge
    density is a 1/3-approximation of the at-least-k optimum (and in
    practice far better).  Runs on the same peel engine as PeelApp, so
    any Psi works. *)

type result = {
  subgraph : Density.subgraph;   (** |vertices| >= k (when n >= k) *)
  elapsed_s : float;
}

(** [run g psi ~k].
    @raise Invalid_argument if [k < 1] or [k > n]. *)
val run : Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> k:int -> result
