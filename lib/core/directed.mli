(** Directed densest subgraph (Kannan-Vinay density; the paper's
    related work [43, 10, 44]): find S, T ⊆ V (possibly overlapping)
    maximising e(S, T) / sqrt(|S| |T|), where e(S, T) counts arcs from
    S into T.

    Khuller-Saha-style solution: for a fixed ratio guess c = |S|/|T|,
    the relaxed objective e(S,T) - (g/2)(|S|/sqrt c + sqrt c |T|) is
    cut-representable (an AND-gadget node per arc), lower-bounds
    e - g sqrt(|S||T|) by AM-GM, and is tight when c is the optimum's
    ratio.  [exact] sweeps every realisable ratio a/b (O(n^2) flows —
    small graphs only); [approx ~eps] sweeps a (1+eps)-geometric grid,
    giving a 1/sqrt(1+eps) approximation.  Every returned pair is
    re-scored exactly, so reported densities are true densities. *)

type result = {
  s_side : int array;     (** S, sorted *)
  t_side : int array;     (** T, sorted *)
  density : float;        (** e(S,T) / sqrt(|S| |T|), exact *)
  flows : int;            (** min-cut computations *)
  elapsed_s : float;
}

(** [density g ~s ~t_side] evaluates the directed density of a pair. *)
val density : Dsd_graph.Digraph.t -> s:int array -> t_side:int array -> float

(** Exact optimum; O(n^2 log) min-cuts.
    @raise Invalid_argument when the graph has more than [max_n]
    vertices (default 64) — use {!approx} beyond that. *)
val exact : ?max_n:int -> Dsd_graph.Digraph.t -> result

(** [approx ~eps g]: density within factor 1/sqrt(1+eps) of optimal. *)
val approx : ?eps:float -> Dsd_graph.Digraph.t -> result
