(** Top-k locally h-clique densest subgraphs (Xu et al.,
    arXiv:2408.14022 workload, on this repo's pattern-density
    machinery).

    A {e locally densest subgraph} (LDS) here is a region that is the
    densest subgraph of its own locality and maximal with that density:
    the solver returns the unique {e canonical maximal densest
    subgraph} of the remaining graph at each round, then deletes it and
    repeats — so the k regions are pairwise disjoint, their densities
    are non-increasing, and the first region's density is exactly
    rho_opt of the whole graph (bit-identical to {!Exact} /
    {!Core_exact}).

    Canonicality is what makes the answer a pure function of the input
    rather than of min-cut tie-breaking: Psi-instance counts are
    supermodular, so the densest subsets of a graph are closed under
    union and have a unique maximal element D.  At
    [alpha = rho_opt - eps] with [0 < eps < Density.min_gap n], the
    {e unique} maximiser of [mu(S) - alpha |S|] is D, so one extra
    min cut at that alpha — pinned on the binary search's witness,
    through the {!Flow_build.prepare} pinned path — returns D no matter
    which of several min cuts the solver happens to find.

    With [~prune:true] (the default) each round restricts the search to
    the ceil(l)-core of the remaining graph (every densest subset lives
    there), solves the candidate core's connected components
    independently — sorted by their per-component kmax upper bound,
    skipping outright any component whose bound is strictly below the
    best density already found this round — and unions the canonical
    regions of the components tied at the round optimum.  With
    [~prune:false] every round is a single whole-remaining-graph binary
    search with the loose Exact-style bounds.  The two modes return
    bit-identical regions; only the work differs. *)

type stats = {
  rounds : int;             (** extraction rounds run (>= number of regions) *)
  iterations : int;         (** min-cut probes, canonicalization cuts included *)
  components_pruned : int;  (** candidate components skipped by the core bound *)
  elapsed_s : float;
}

type result = {
  regions : Density.subgraph list;
      (** pairwise disjoint, densities non-increasing, at most [k];
          shorter when the graph runs out of Psi-instances first *)
  stats : stats;
}

(** [run ~k g psi] extracts up to [k] disjoint locally densest regions.

    [warm] (default [true]) carries committed flow across binary-search
    probes ({!Flow_build.retarget}); [prune] (default [true]) selects
    the core-pruned per-component mode.  [?decomp] drops in a cached
    density-tracked decomposition of [g] (the serving layer's prepared
    state) for the first round; like {!Core_exact.run} it is recomputed
    rather than trusted when it lacks density tracking.  Results are
    bit-identical across every combination of the options.

    @raise Invalid_argument when [k < 1]. *)
val run :
  ?pool:Dsd_util.Pool.t ->
  ?warm:bool ->
  ?prune:bool ->
  ?decomp:Clique_core.t ->
  k:int ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
