(** Density-friendly (locally-dense) graph decomposition — Tatti &
    Gionis, WWW'15; Danisch et al., WWW'17 (the paper's related work
    [64, 18]), generalised from edges to any Psi.

    Produces the chain ∅ = B_0 ⊂ B_1 ⊂ ... ⊂ B_t = V where each
    augmentation X_i = B_i \ B_{i-1} maximises the *marginal* density
    (mu(B_i) - mu(B_{i-1})) / |X_i|; the marginal densities are
    strictly decreasing and B_1 is exactly the densest subgraph.  Each
    level is found by the same pinned min-cut binary search as the
    query variant: with B pinned to the source side, the min cut
    maximises mu(S) - alpha |S| over S ⊇ B. *)

type level = {
  vertices : int array;       (** the new vertices X_i of this level, sorted *)
  marginal_density : float;   (** (mu(B_i) - mu(B_{i-1})) / |X_i| *)
  prefix_size : int;          (** |B_i| *)
}

type t = {
  levels : level list;        (** outermost-first: head is B_1 *)
  iterations : int;           (** total min-cut probes (incl. canonicalization cuts) *)
  elapsed_s : float;
}

(** [decompose g psi].  The union of all level vertex sets is V; the
    first level is the canonical (maximal) Psi-densest subgraph of [g]
    — each level ends with one extra cut at [marginal - stop_gap],
    where the maximiser of mu(S) - alpha |S| is unique (max-marginal
    augmentations are closed under union), so the chain is the
    density-friendly decomposition itself, not an arbitrary
    max-marginal chain.

    Probes run on a per-level prepared arena ({!Flow_build.prepare})
    and each subsequent alpha is an O(V) {!Flow_build.retarget} that
    keeps the committed flow ([~warm:false] resets it;
    [~prepared:false] falls back to building every network from
    scratch — both escape hatches are bit-identical to the default).
    Candidates are core-restricted per level: level 1 searches the
    ceil(l0)-core of the Theorem-1 sandwich (as {!Topk_lds}), later
    levels the (1, Psi)-core.  [?decomp] reuses a caller's
    density-tracked core decomposition; [?pool] fans enumeration and
    peeling across a domain pool.  Results are bit-identical for every
    option combination.

    Emits one [ld] span; counts [ld_levels] / [ld_probes] /
    [ld_retargets]. *)
val decompose :
  ?pool:Dsd_util.Pool.t ->
  ?decomp:Clique_core.t ->
  ?prepared:bool ->
  ?warm:bool ->
  Dsd_graph.Graph.t ->
  Dsd_pattern.Pattern.t ->
  t

(** [prefix t i] is B_i (the union of the first [i] levels), sorted.
    [prefix t 0 = [||]]; [prefix t (List.length t.levels)] is all of V.

    @raise Invalid_argument when [i < 0] or [i > List.length t.levels]. *)
val prefix : t -> int -> int array
