(** Density-friendly (locally-dense) graph decomposition — Tatti &
    Gionis, WWW'15; Danisch et al., WWW'17 (the paper's related work
    [64, 18]), generalised from edges to any Psi.

    Produces the chain ∅ = B_0 ⊂ B_1 ⊂ ... ⊂ B_t = V where each
    augmentation X_i = B_i \ B_{i-1} maximises the *marginal* density
    (mu(B_i) - mu(B_{i-1})) / |X_i|; the marginal densities are
    strictly decreasing and B_1 is exactly the densest subgraph.  Each
    level is found by the same pinned min-cut binary search as the
    query variant: with B pinned to the source side, the min cut
    maximises mu(S) - alpha |S| over S ⊇ B. *)

type level = {
  vertices : int array;       (** the new vertices X_i of this level, sorted *)
  marginal_density : float;   (** (mu(B_i) - mu(B_{i-1})) / |X_i| *)
  prefix_size : int;          (** |B_i| *)
}

type t = {
  levels : level list;        (** outermost-first: head is B_1 *)
  iterations : int;           (** total min-cut computations *)
  elapsed_s : float;
}

(** [decompose g psi].  The union of all level vertex sets is V; the
    first level is the Psi-densest subgraph of [g]. *)
val decompose : Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> t

(** [prefix t i] is B_i (the union of the first [i] levels), sorted.
    [prefix t 0 = [||]]; [prefix t (List.length t.levels)] is all of V.

    @raise Invalid_argument when [i < 0] or [i > List.length t.levels]. *)
val prefix : t -> int -> int array
