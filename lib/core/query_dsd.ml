module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type result = {
  subgraph : Density.subgraph;
  iterations : int;
  elapsed_s : float;
}

let validate g query =
  if Array.length query = 0 then invalid_arg "Query_dsd: empty query";
  Array.iter
    (fun q ->
      if q < 0 || q >= G.n g then invalid_arg "Query_dsd: query vertex out of range")
    query

let family_for (psi : P.t) =
  (* Pinning needs the generic networks even for h = 2. *)
  match psi.kind with
  | P.Clique -> Flow_build.Clique_flow
  | P.Star _ | P.Cycle4 | P.Generic -> Flow_build.Pds_grouped

(* Binary search with query vertices pinned to the source side.  The
   min cut maximises mu(A1) - alpha |A1| over A1 containing the query,
   so the decision "exists S containing Q with density > alpha" is read
   off the exact density of the returned side (which is itself the
   witness). *)
let search ?pool ?warm g psi ~query ~candidates ~l0 ~u0 ~witness0 ~iterations =
  let family = family_for psi in
  let gc, map = G.induced g candidates in
  let back = Array.make (G.n g) (-1) in
  Array.iteri (fun i v -> back.(v) <- i) map;
  let pinned = Array.map (fun q -> back.(q)) query in
  (* Candidates must cover the query (the k_loc-core does by
     construction). *)
  assert (Array.for_all (fun q -> q >= 0) pinned);
  let instances = Enumerate.instances ?pool gc psi in
  let best = ref witness0 in
  let l = ref (max l0 !best.Density.density) and u = ref u0 in
  let gap = Density.stop_gap (G.n gc) in
  (* Pinned arcs are alpha-independent, so the pinned network retargets
     like any other: built once, re-capacitated per iteration. *)
  let prepared = ref None in
  while !u -. !l >= gap do
    incr iterations;
    let alpha = (!l +. !u) /. 2. in
    let network =
      match !prepared with
      | Some p -> Flow_build.retarget ?warm p ~alpha
      | None ->
        let p =
          Flow_build.prepare ?pool ~pinned family gc psi ~instances ~alpha
        in
        prepared := Some p;
        p.Flow_build.network
    in
    let side = Flow_build.solve network in
    let side_orig = Array.map (fun v -> map.(v)) side in
    let cand = Density.of_vertices g psi side_orig in
    if cand.Density.density > alpha then begin
      l := cand.Density.density;
      best := cand
    end
    else u := alpha
  done;
  !best

let run_naive ?pool ?warm g psi ~query =
  validate g query;
  let t0 = Dsd_util.Timer.now_s () in
  let iterations = ref 0 in
  let everything = Array.init (G.n g) Fun.id in
  let u0 = float_of_int (Enumerate.max_degree ?pool g psi) in
  let witness0 = Density.of_vertices g psi everything in
  let best =
    if u0 = 0. then Density.of_vertices g psi query
    else
      search ?pool ?warm g psi ~query ~candidates:everything ~l0:0. ~u0
        ~witness0 ~iterations
  in
  { subgraph = best; iterations = !iterations; elapsed_s = Dsd_util.Timer.now_s () -. t0 }

let run ?pool ?warm ?decomp g psi ~query =
  validate g query;
  let t0 = Dsd_util.Timer.now_s () in
  let iterations = ref 0 in
  (* Only [core] and [mu_total] are read below, and those are identical
     whether or not the decomposition tracked densities — so a cached
     decomposition from the serving layer drops in directly. *)
  let decomp =
    match decomp with
    | Some d -> d
    | None -> Clique_core.decompose ?pool ~track_density:false g psi
  in
  (* x = minimum clique-core number over the query: the x-core is the
     densest core certain to contain Q. *)
  let x =
    Array.fold_left
      (fun acc q -> min acc decomp.Clique_core.core.(q))
      max_int query
  in
  let p = psi.P.size in
  let x_core = Clique_core.core_vertices decomp ~k:x in
  (* The x-core contains Q and has density >= x/p (Theorem 1): both a
     lower bound and an initial witness. *)
  let witness0 = Density.of_vertices g psi x_core in
  let l0 = max (float_of_int x /. float_of_int p) witness0.Density.density in
  (* Optimal S lives in the min(ceil(l), x)-core: S's non-query
     vertices have at least ceil(rho_opt) instances inside S, and Q
     survives any peeling up to level x. *)
  let k_loc = min x (max 0 (Dsd_util.Float_guard.safe_ceil l0)) in
  let candidates = Clique_core.core_vertices decomp ~k:k_loc in
  let u0 =
    float_of_int
      (Array.fold_left
         (fun acc v -> max acc decomp.Clique_core.core.(v))
         0 candidates)
  in
  let best =
    if decomp.Clique_core.mu_total = 0 then Density.of_vertices g psi query
    else search ?pool ?warm g psi ~query ~candidates ~l0 ~u0 ~witness0 ~iterations
  in
  { subgraph = best; iterations = !iterations; elapsed_s = Dsd_util.Timer.now_s () -. t0 }
