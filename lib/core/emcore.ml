module G = Dsd_graph.Graph

type result = {
  subgraph : Density.subgraph;
  kmax : int;
  rounds : int;
  elapsed_s : float;
}

let run g =
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare (G.degree g b) (G.degree g a)) order;
  (* Ten blocks per pass mimics EMcore's partition granularity; the
     degree bound forces more passes than CoreApp's core bound. *)
  let block = max 1 (n / 10) in
  let kmax = ref 0 in
  let best = ref [||] in
  let rounds = ref 0 in
  let window = ref 0 in
  let continue_ = ref (n > 0) in
  while !continue_ do
    incr rounds;
    window := min n (!window + block);
    let w_vertices = Array.sub order 0 !window in
    let gw, map = G.induced g w_vertices in
    let kc = Kcore.decompose gw in
    if Kcore.kmax kc >= !kmax && Kcore.kmax kc > 0 then begin
      kmax := Kcore.kmax kc;
      best := Array.map (fun v -> map.(v)) (Kcore.kmax_core kc)
    end;
    if !window >= n then continue_ := false
    else if G.degree g order.(!window) < !kmax then continue_ := false
  done;
  let subgraph =
    if Array.length !best = 0 then Density.empty
    else Density.of_vertices g (Dsd_pattern.Pattern.clique 2) !best
  in
  { subgraph; kmax = !kmax; rounds = !rounds; elapsed_s = Dsd_util.Timer.now_s () -. t0 }
