(** CoreApp — Algorithm 6, the paper's fastest approximation: compute
    the (kmax, Psi)-core *top-down* from subgraphs induced by the
    vertices with the largest degree upper bounds, doubling the window
    until the stopping criterion proves no outside vertex can beat the
    best core found.

    gamma(v, Psi) upper-bounds the clique-core number: C(core(v), h-1)
    for h-cliques (the classical-core argument of Section 6.2); for
    star/4-cycle patterns the closed-form exact pattern degree; for
    other patterns the exact pattern degree via enumeration (a valid,
    if costlier, bound — the paper leaves non-clique gamma open).

    Deviation noted in DESIGN.md §6: the best core is re-recorded when
    a later window reproduces the same kmax, so the returned subgraph
    is the full (kmax, Psi)-core of G, not the first window's
    fragment. *)

type result = {
  subgraph : Density.subgraph;
  kmax : int;
  rounds : int;          (** number of windows examined *)
  final_window : int;    (** |W| of the last round *)
  elapsed_s : float;
}

(** [run g psi] computes the (kmax, Psi)-core.  [initial_window]
    defaults to max(16, |V_Psi| + 1). *)
val run :
  ?pool:Dsd_util.Pool.t ->
  ?initial_window:int ->
  Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> result
