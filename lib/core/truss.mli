(** k-truss decomposition (Cohen 2008; the paper's related-work family
    [15, 37]): the k-truss is the largest subgraph in which every edge
    lies in at least k - 2 triangles.

    Included as a comparison point for the dense-subgraph models of
    Section 2: trusses are cohesive but optimise support, not density —
    the example bench contrasts the max-truss with the CDS.  Classic
    edge-support peeling with a bucket queue, O(m^1.5). *)

type t

val decompose : Dsd_graph.Graph.t -> t

(** [truss_number t ~u ~v] of an existing edge; the largest k whose
    k-truss contains it.
    @raise Not_found if (u, v) is not an edge. *)
val truss_number : t -> u:int -> v:int -> int

(** Maximum truss number (>= 2 whenever the graph has an edge). *)
val kmax : t -> int

(** [k_truss t ~k] is the edge set of the k-truss (pairs u < v). *)
val k_truss : t -> k:int -> (int * int) array

(** [max_truss_subgraph g t] is the vertex set spanned by the
    kmax-truss with its edge density. *)
val max_truss_subgraph : Dsd_graph.Graph.t -> t -> Density.subgraph
