(** Incremental exact DSD sessions over edge streams.

    A session owns a {!Dsd_graph.Dynamic} handle, a growable h-clique
    instance store and a pds-style flow arena.  {!apply} patches all
    three in place per edge insert/delete — incremental core-number
    repair, instance discovery/retirement localised to the changed
    edge, and arc surgery that carries the committed flow through the
    PR 4 drain machinery — and {!query} then re-runs the Exact binary
    search warm from the previous flow instead of rebuilding.

    Results are bit-identical to a from-scratch rebuild: the probe
    decision and the final CDS vertex set depend only on the residual
    min-cut structure, which is canonical (the inclusion-minimal
    min-cut source side is the same for every max flow), and a patched
    arena is semantically equal to a freshly built one (zero-capacity
    arcs and disconnected retired nodes are invisible to cuts).  The
    [test_incremental] differential battery and the
    [delta-equals-rebuild] fuzz relation enforce this.

    Only h-clique patterns are supported ({!create} raises
    [Invalid_argument] otherwise). *)

type t

(** [create ?pool g psi] starts a session on the current graph —
    enumeration and arena build happen here, once.  The same
    constructor is the rebuild oracle used by the differential
    tests. *)
val create :
  ?pool:Dsd_util.Pool.t -> Dsd_graph.Graph.t -> Dsd_pattern.Pattern.t -> t

(** [apply t ops] applies a delta batch in order, patching graph,
    store and arena; returns how many ops changed the graph.
    Duplicate inserts and absent deletes are no-ops. *)
val apply : t -> Dsd_graph.Dynamic.op array -> int

(** [query t] = the exact CDS of the current graph, solved warm from
    the committed flow ({!Density.empty} when the graph or instance
    set is empty). *)
val query : t -> Density.subgraph

(** [density t] = [(query t).density]. *)
val density : t -> float

(** Current-graph accessors (the snapshot is cached between batches). *)
val graph : t -> Dsd_graph.Graph.t

val dynamic : t -> Dsd_graph.Dynamic.t
val psi : t -> Dsd_pattern.Pattern.t

(** Incrementally maintained classical core numbers. *)
val core_numbers : t -> int array

val live_instances : t -> int
val total_instances : t -> int
