module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type level = {
  vertices : int array;
  marginal_density : float;
  prefix_size : int;
}

type t = {
  levels : level list;
  iterations : int;
  elapsed_s : float;
}

let safe_ceil = Dsd_util.Float_guard.safe_ceil

let family_for (psi : P.t) =
  (* Every probe pins B to the source side, and pinning needs the
     generic networks even for h = 2 (see Query_dsd). *)
  match psi.kind with
  | P.Clique -> Flow_build.Clique_flow
  | P.Star _ | P.Cycle4 | P.Generic -> Flow_build.Pds_grouped

(* The candidate subgraph a level's binary search runs on: induced
   graph, both id maps, its instance list and a scratch membership
   mask.  Level 1 restricts to the ceil(l0)-core exactly as Topk_lds;
   every later level's canonical witness lives in B ∪ (1, Psi)-core
   (each new vertex joins an instance inside the witness, and that
   instance's vertices mutually certify core number >= 1), and B itself
   is inside the 1-core by induction — so one shared context covers all
   levels after the first. *)
type ctx = {
  gc : G.t;
  cand : int array;          (* sorted global ids = map, local i -> global *)
  back : int array;          (* global -> local, -1 outside *)
  insts : int array array;   (* Psi-instances of gc, local ids *)
  inside : bool array;       (* scratch for mu counting *)
}

let mk_ctx ?pool g psi cand =
  let gc, map = G.induced g cand in
  let back = Array.make (max 1 (G.n g)) (-1) in
  Array.iteri (fun i v -> back.(v) <- i) map;
  let insts = Enumerate.instances ?pool gc psi in
  { gc; cand = map; back; insts; inside = Array.make (max 1 (G.n gc)) false }

(* mu of a local vertex set, counted over the cached instance list.
   Instances of the induced candidate graph are exactly the instances
   of g inside the candidate set, so this is integer-identical to
   re-enumerating the induced subgraph (the old per-probe mu_of). *)
let mu_inside ctx side =
  Array.iter (fun v -> ctx.inside.(v) <- true) side;
  let mu = ref 0 in
  Array.iter
    (fun inst ->
      if Array.for_all (fun v -> ctx.inside.(v)) inst then incr mu)
    ctx.insts;
  Array.iter (fun v -> ctx.inside.(v) <- false) side;
  !mu

let decompose ?pool ?decomp ?(prepared = true) ?(warm = true) g (psi : P.t) =
  Dsd_obs.Span.with_ Dsd_obs.Phase.ld @@ fun () ->
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  (* A caller-supplied decomposition is only usable when it tracked the
     residual densities Pruning1 needs (or the graph has no instances
     at all, where every field is trivial). *)
  let d =
    match decomp with
    | Some d
      when Array.length d.Clique_core.residual_densities > 0
           || d.Clique_core.mu_total = 0 ->
      d
    | _ -> Clique_core.decompose ?pool ~track_density:true g psi
  in
  let family = family_for psi in
  let probes = ref 0 in
  let gap = Density.stop_gap n in
  let in_b = Array.make (max 1 n) false in
  let b = ref [||] in (* current prefix B; sorted by construction *)
  let mu_b = ref 0 in
  let levels = ref [] in
  let emit lvl =
    Dsd_obs.Counter.incr Dsd_obs.Counter.Ld_levels;
    levels := lvl :: !levels
  in
  (* The final level: whatever is left once no strictly positive
     marginal remains.  The certified bound u < gap < 1/n at that point
     forces the numerator mu(V) - mu(B) to be exactly 0, so the quotient
     is an exact 0. (kept as the same division the fixtures pinned). *)
  let emit_zero () =
    let rest = ref [] in
    for v = n - 1 downto 0 do
      if not in_b.(v) then rest := v :: !rest
    done;
    match !rest with
    | [] -> ()
    | rest ->
      let nb = Array.length !b in
      emit
        { vertices = Array.of_list rest;
          marginal_density =
            (if n = nb then 0.
             else
               float_of_int (d.Clique_core.mu_total - !mu_b)
               /. float_of_int (n - nb));
          prefix_size = n }
  in
  if n > 0 then begin
    if d.Clique_core.mu_total = 0 then emit_zero ()
    else begin
      let p = psi.P.size in
      let kmax = d.Clique_core.kmax in
      let core1 = lazy (mk_ctx ?pool g psi (Clique_core.core_vertices d ~k:1)) in
      (* Marginal densities strictly decrease along the chain, so each
         level's search starts its upper bound at the previous level's
         value; level 1 starts at the kmax sandwich bound rho <= kmax. *)
      let upper = ref (float_of_int (max 1 kmax)) in
      let finished = ref false in
      let first = ref true in
      while not !finished do
        let ctx =
          if !first then begin
            (* Theorem-1 pruning, as Topk_lds.round_pruned: the densest
               subsets all survive peeling to the ceil(l0)-core. *)
            let l0 =
              Float.max
                (float_of_int kmax /. float_of_int p)
                d.Clique_core.best_residual_density
            in
            let k1 = min kmax (max 1 (safe_ceil l0)) in
            if k1 <= 1 then Lazy.force core1
            else mk_ctx ?pool g psi (Clique_core.core_vertices d ~k:k1)
          end
          else Lazy.force core1
        in
        first := false;
        if Array.length !b = Array.length ctx.cand then begin
          (* B has swallowed the whole 1-core: every instance is inside
             B already, so the rest is one final zero-marginal level. *)
          emit_zero ();
          finished := true
        end
        else begin
          (* Find max over S ⊋ B of (mu(S) - mu(B)) / (|S| - |B|) with
             its witness, by binary search on the marginal alpha: with B
             pinned to the source the min cut maximises mu(S) - alpha |S|
             over S ⊇ B, and marginal > alpha for some S iff the
             maximiser beats f(B). *)
          let pinned = Array.map (fun v -> ctx.back.(v)) !b in
          let arena = ref None in
          let solve_at alpha =
            incr probes;
            Dsd_obs.Counter.incr Dsd_obs.Counter.Ld_probes;
            if not prepared then
              Flow_build.solve
                (Flow_build.build ?pool ~pinned family ctx.gc psi
                   ~instances:ctx.insts ~alpha)
            else
              match !arena with
              | Some pa ->
                Dsd_obs.Counter.incr Dsd_obs.Counter.Ld_retargets;
                Flow_build.solve (Flow_build.retarget ~warm pa ~alpha)
              | None ->
                let pa =
                  Flow_build.prepare ?pool ~pinned family ctx.gc psi
                    ~instances:ctx.insts ~alpha
                in
                arena := Some pa;
                Flow_build.solve pa.Flow_build.network
          in
          let nb = Array.length !b in
          let marginal s_mu s_card =
            if s_card = nb then 0.
            else float_of_int (s_mu - !mu_b) /. float_of_int (s_card - nb)
          in
          let best_m = ref 0. in
          let have_witness = ref false in
          let l = ref 0. and u = ref !upper in
          while !u -. !l >= gap do
            let alpha = (!l +. !u) /. 2. in
            let side = solve_at alpha in
            let m = marginal (mu_inside ctx side) (Array.length side) in
            if Array.length side > nb && m > alpha then begin
              l := m;
              best_m := m;
              have_witness := true
            end
            else u := alpha
          done;
          if not !have_witness then begin
            emit_zero ();
            finished := true
          end
          else begin
            (* Canonicalization cut: on termination best_m IS the level's
               exact marginal (distinct marginals over the same B differ
               by >= 2 * stop_gap).  At alpha = best_m - gap the value
               f(S) - f(B) is |X| * gap for max-marginal sets and < 0 for
               everything else, and max-marginal sets are closed under
               union — so the maximiser is unique: the union of them
               all.  Any min cut returns it, making the level set
               deterministic (and the chain the density-friendly
               decomposition, not just some max-marginal chain). *)
            let side = solve_at (!best_m -. gap) in
            let s_mu = mu_inside ctx side in
            (* solve returns ascending local ids and cand is ascending,
               so s — and therefore b and the level's vertices — are
               sorted by construction; no defensive re-sort. *)
            let s = Array.map (fun v -> ctx.cand.(v)) side in
            let xs =
              Array.of_list
                (List.filter (fun v -> not in_b.(v)) (Array.to_list s))
            in
            Array.iter (fun v -> in_b.(v) <- true) xs;
            emit
              { vertices = xs;
                marginal_density = !best_m;
                prefix_size = Array.length s };
            b := s;
            mu_b := s_mu;
            upper := !best_m;
            if Array.length s = n then finished := true
          end
        end
      done
    end
  end;
  { levels = List.rev !levels;
    iterations = !probes;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }

let prefix t i =
  (* Out-of-range indices used to fall through the recursion and
     silently return the full vertex set — for i < 0 as well, which is
     never what the caller meant. *)
  if i < 0 || i > List.length t.levels then
    invalid_arg
      (Printf.sprintf "Ld_decomposition.prefix: index %d not in [0, %d]" i
         (List.length t.levels));
  let rec take acc k = function
    | [] -> acc
    | _ when k = 0 -> acc
    | level :: rest -> take (Array.to_list level.vertices @ acc) (k - 1) rest
  in
  (* Each level block is sorted, but blocks interleave in general, so
     the prefix still merges by sorting the concatenation. *)
  let vs = Array.of_list (take [] i t.levels) in
  Array.sort compare vs;
  vs
