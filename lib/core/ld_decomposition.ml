module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type level = {
  vertices : int array;
  marginal_density : float;
  prefix_size : int;
}

type t = {
  levels : level list;
  iterations : int;
  elapsed_s : float;
}

(* Count Psi-instances inside a vertex set (by induction; the sets only
   grow along the chain so this is called once per level). *)
let mu_of g psi vs =
  if Array.length vs = 0 then 0
  else begin
    let sub, _ = G.induced g vs in
    Enumerate.count sub psi
  end

let family_for (psi : P.t) =
  match psi.kind with
  | P.Clique -> Flow_build.Clique_flow
  | P.Star _ | P.Cycle4 | P.Generic -> Flow_build.Pds_grouped

let decompose g (psi : P.t) =
  let t0 = Dsd_util.Timer.now_s () in
  let n = G.n g in
  let iterations = ref 0 in
  let family = family_for psi in
  let instances = Enumerate.instances g psi in
  let max_deg =
    let deg = Array.make (max 1 n) 0 in
    Array.iter
      (fun inst -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) inst)
      instances;
    Array.fold_left max 0 deg
  in
  let in_b = Array.make (max 1 n) false in
  let b = ref [||] in         (* current prefix B, sorted *)
  let mu_b = ref 0 in
  let levels = ref [] in
  let gap = Density.stop_gap n in
  let finished = ref (n = 0) in
  (* Marginal densities strictly decrease along the chain, so each
     level's search can start its upper bound at the previous level's
     value. *)
  let upper = ref (float_of_int (max 1 max_deg)) in
  while not !finished do
    (* Find max over S ⊋ B of (mu(S) - mu(B)) / (|S| - |B|) with its
       witness, by binary search on the marginal alpha: the pinned min
       cut maximises f(S) = mu(S) - alpha |S|, and marginal > alpha for
       some S iff f(S_max) > f(B). *)
    let pinned = Array.copy !b in
    let marginal s_mu s_card =
      if s_card = Array.length !b then 0.
      else
        float_of_int (s_mu - !mu_b)
        /. float_of_int (s_card - Array.length !b)
    in
    let best_witness = ref [||] in
    let best_marginal = ref 0. in
    let l = ref 0. and u = ref !upper in
    while !u -. !l >= gap do
      incr iterations;
      let alpha = (!l +. !u) /. 2. in
      let network = Flow_build.build ~pinned family g psi ~instances ~alpha in
      let side = Flow_build.solve network in
      (* The pinned network's source side always contains B; vertices
         with zero degree and alpha = 0 edge cases are handled by the
         cardinality check. *)
      let s_mu = mu_of g psi side in
      let m = marginal s_mu (Array.length side) in
      if Array.length side > Array.length !b && m > alpha then begin
        l := m;
        best_marginal := m;
        best_witness := side
      end
      else u := alpha
    done;
    if Array.length !best_witness = 0 then begin
      (* No strictly positive marginal remains: the rest of the graph
         is one final level of marginal density 0 (or the chain is
         complete). *)
      let rest = ref [] in
      for v = n - 1 downto 0 do
        if not in_b.(v) then rest := v :: !rest
      done;
      (match !rest with
       | [] -> ()
       | rest ->
         let vs = Array.of_list rest in
         levels :=
           { vertices = vs;
             marginal_density = marginal (mu_of g psi (Array.init n Fun.id)) n;
             prefix_size = n }
           :: !levels);
      finished := true
    end
    else begin
      let s = !best_witness in
      let xs = Array.of_list (List.filter (fun v -> not in_b.(v)) (Array.to_list s)) in
      Array.sort compare xs;
      Array.iter (fun v -> in_b.(v) <- true) xs;
      levels :=
        { vertices = xs;
          marginal_density = !best_marginal;
          prefix_size = Array.length s }
        :: !levels;
      b := Array.copy s;
      Array.sort compare !b;
      mu_b := mu_of g psi s;
      upper := !best_marginal;
      if Array.length s = n then finished := true
    end
  done;
  { levels = List.rev !levels;
    iterations = !iterations;
    elapsed_s = Dsd_util.Timer.now_s () -. t0 }

let prefix t i =
  (* Out-of-range indices used to fall through the recursion and
     silently return the full vertex set — for i < 0 as well, which is
     never what the caller meant. *)
  if i < 0 || i > List.length t.levels then
    invalid_arg
      (Printf.sprintf "Ld_decomposition.prefix: index %d not in [0, %d]" i
         (List.length t.levels));
  let rec take acc k = function
    | [] -> acc
    | _ when k = 0 -> acc
    | level :: rest -> take (Array.to_list level.vertices @ acc) (k - 1) rest
  in
  let vs = Array.of_list (take [] i t.levels) in
  Array.sort compare vs;
  vs
