module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

type result = {
  subgraph : Density.subgraph;
  passes : int;
  elapsed_s : float;
}

let run ?(eps = 0.1) g (psi : P.t) =
  if not (eps > 0.) then invalid_arg "Streaming.run: eps must be positive";
  let t0 = Dsd_util.Timer.now_s () in
  let p = float_of_int psi.size in
  let best = ref Density.empty in
  let passes = ref 0 in
  let current = ref (Array.init (G.n g) Fun.id) in
  let continue_ = ref (G.n g > 0) in
  while !continue_ do
    incr passes;
    let sub, map = G.induced g !current in
    let mu = Enumerate.count sub psi in
    if mu = 0 then continue_ := false
    else begin
      let rho = float_of_int mu /. float_of_int (G.n sub) in
      if rho > !best.Density.density then begin
        let vs = Array.copy !current in
        Array.sort compare vs;
        best := { Density.vertices = vs; density = rho }
      end;
      (* One pass: drop everything at or below the threshold degree. *)
      let deg = Enumerate.degrees sub psi in
      let threshold = p *. (1. +. eps) *. rho in
      let survivors = Dsd_util.Vec.Int.create () in
      Array.iteri
        (fun v d ->
          if float_of_int d > threshold then
            Dsd_util.Vec.Int.push survivors map.(v))
        deg;
      let next = Dsd_util.Vec.Int.to_array survivors in
      if Array.length next = Array.length !current then
        (* No progress can only happen on a Psi-regular remainder; it
           is itself the final candidate. *)
        continue_ := false
      else current := next;
      if Array.length !current = 0 then continue_ := false
    end
  done;
  { subgraph = !best; passes = !passes; elapsed_s = Dsd_util.Timer.now_s () -. t0 }
