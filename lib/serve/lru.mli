(** Bounded least-recently-used cache over string keys — the serving
    layer's hot-result store ([--max-cached]).

    Recency is a logical clock bumped on every {!find} hit and {!add};
    when an insert would exceed the capacity, the entry with the oldest
    clock value — exactly the least recently used — is evicted.  The
    cache keeps its own hit/miss/eviction tallies so accounting works
    whether or not {!Dsd_obs} recording is enabled. *)

type 'a t

(** [create ~capacity] holds at most [capacity] entries.
    [capacity = 0] caches nothing (every [add] is dropped, every [find]
    misses).  @raise Invalid_argument if negative. *)
val create : capacity:int -> 'a t

val capacity : _ t -> int

(** Entries currently resident (≤ capacity, always). *)
val length : _ t -> int

(** [find t key] returns the cached value and marks it most recently
    used.  Counts one hit or one miss. *)
val find : 'a t -> string -> 'a option

(** [mem t key] tests residency without touching recency or tallies. *)
val mem : _ t -> string -> bool

(** [add t key v] inserts or replaces the binding and marks it most
    recently used.  Returns the key evicted to make room, if any
    (never the key just added; [None] with capacity 0, where nothing
    is ever resident). *)
val add : 'a t -> string -> 'a -> string option

(** Resident keys, most recently used first. *)
val keys_by_recency : _ t -> string list

val hits : _ t -> int
val misses : _ t -> int
val evictions : _ t -> int

val clear : _ t -> unit

(** [remove_where t ~f] drops every entry whose key satisfies [f] —
    targeted invalidation (e.g. all results of one mutated graph).
    Dropped entries are not counted as evictions (they were not
    displaced by capacity pressure).  Returns how many were removed. *)
val remove_where : _ t -> f:(string -> bool) -> int
