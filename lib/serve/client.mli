(** Client side of the `dsd serve` protocol, shared by the
    `dsd client` subcommand, the differential tests and the bench.

    One {!t} is one connection; requests on it are answered in order
    (the protocol has no pipelining ids, so callers interleave
    themselves). *)

type t

(** @raise Unix.Unix_error if the server is not reachable. *)
val connect : Server.address -> t

val close : t -> unit

(** [call t req] sends one request and blocks for its response.
    @raise Protocol.Error if the server closed the connection or sent
    a malformed frame. *)
val call : t -> Protocol.request -> Protocol.response

(** [once addr req] is connect / {!call} / close. *)
val once : Server.address -> Protocol.request -> Protocol.response
