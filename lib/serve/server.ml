module Counter = Dsd_obs.Counter

type address =
  | Unix_domain of string
  | Tcp of { host : string; port : int }

type t = { thread : Thread.t }

let bind_listen addr =
  match addr with
  | Unix_domain path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    fd
  | Tcp { host; port } ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 16;
    fd

let cleanup addr fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match addr with
  | Unix_domain path -> (
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

(* A peer closing mid-response must surface as EPIPE, not SIGPIPE. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* Best-effort error frame: the peer may already be gone, and that is
   its problem, not the accept loop's. *)
let try_send_error conn msg =
  let tag, body = Protocol.encode_response (Protocol.Error_r msg) in
  try Protocol.write_frame conn ~tag body
  with Protocol.Error _ | Unix.Unix_error _ -> ()

(* One connection: read frames until the peer closes, a frame is
   malformed, or a Shutdown request arrives.  Returns [`Stop] only for
   Shutdown. *)
let handle_connection ~state conn =
  let respond resp =
    let tag, body = Protocol.encode_response resp in
    Protocol.write_frame conn ~tag body
  in
  let rec loop () =
    match Protocol.read_frame conn with
    | None -> `Continue
    | Some (tag, body) -> (
      match Protocol.decode_request tag body with
      | exception Protocol.Error msg ->
        Counter.incr Counter.Serve_protocol_errors;
        try_send_error conn ("bad request: " ^ msg);
        `Continue
      | Protocol.Shutdown ->
        (try respond Protocol.Shutdown_r
         with Protocol.Error _ | Unix.Unix_error _ -> ());
        `Stop
      | req ->
        let resp =
          try State.handle state req
          with e ->
            Protocol.Error_r ("internal error: " ^ Printexc.to_string e)
        in
        respond resp;
        loop ())
  in
  try loop () with
  | Protocol.Error msg ->
    (* Malformed frame (truncated, oversized, wrong version). *)
    Counter.incr Counter.Serve_protocol_errors;
    try_send_error conn ("bad frame: " ^ msg);
    `Continue
  | End_of_file -> `Continue
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
    (* Receive timeout: the peer went silent mid-request. *)
    Counter.incr Counter.Serve_protocol_errors;
    `Continue
  | Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Continue

let rec accept_retry fd =
  try Unix.accept fd with Unix.Unix_error (EINTR, _, _) -> accept_retry fd

(* The accept loop proper, over an already-listening socket. *)
let serve_loop ~receive_timeout_s ~state ~addr fd =
  Fun.protect
    ~finally:(fun () -> cleanup addr fd)
    (fun () ->
      let stop = ref false in
      while not !stop do
        let conn, _peer = accept_retry fd in
        (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO receive_timeout_s
         with Unix.Unix_error _ -> ());
        let verdict =
          try handle_connection ~state conn
          with e ->
            (* Defence in depth: nothing above should raise, but an
               accept loop must outlive anything one connection does. *)
            try_send_error conn ("internal error: " ^ Printexc.to_string e);
            `Continue
        in
        (try Unix.close conn with Unix.Unix_error _ -> ());
        if verdict = `Stop then stop := true
      done)

let run ?(receive_timeout_s = 30.) ~state addr =
  ignore_sigpipe ();
  let fd = bind_listen addr in
  serve_loop ~receive_timeout_s ~state ~addr fd

let start ?(receive_timeout_s = 30.) ~state addr =
  ignore_sigpipe ();
  (* Bind in the calling thread so a returned handle is connectable;
     only the accept loop moves to the background. *)
  let fd = bind_listen addr in
  { thread =
      Thread.create (fun () -> serve_loop ~receive_timeout_s ~state ~addr fd) () }

let join t = Thread.join t.thread
