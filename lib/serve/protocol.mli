(** The `dsd serve` wire protocol: length-prefixed binary frames over a
    Unix-domain or TCP stream socket.

    Frame layout: a 4-byte big-endian payload length, then the payload
    — one version byte, one tag byte, and the tag-specific body.  The
    length covers the version and tag bytes, is at least 2 and at most
    {!max_frame}; anything else (including a stream that ends inside a
    frame) raises {!Error}, which the server answers with a structured
    error frame or a clean close — never a crash.

    Scalars inside bodies are 8-byte big-endian integers; strings and
    int arrays are length-prefixed (with lengths validated against the
    bytes actually present, so a forged length cannot over-allocate);
    floats travel as their IEEE-754 bit patterns
    ({!Int64.bits_of_float}), which is what makes server responses
    bit-identical to in-process API results, not merely close. *)

(** Malformed frame or body.  The message never echoes payload bytes. *)
exception Error of string

(** Protocol version carried by every frame. *)
val version : int

(** Hard upper bound on a frame payload (bytes). *)
val max_frame : int

(** {1 Requests and responses} *)

type request =
  | Ping
  | Stats
  | Density of { graph : string; psi : string; algorithm : string }
      (** just the optimum Psi-density *)
  | Cds of { graph : string; psi : string; algorithm : string }
      (** density plus the witness vertex set *)
  | Decompose of { graph : string; psi : string }
  | Query of { graph : string; psi : string; vertices : int array }
  | Apply_delta of {
      graph : string;
      adds : (int * int) array;
      removes : (int * int) array;
    }  (** mutate a served graph in place: inserts, then deletes *)
  | Topk of { graph : string; psi : string; k : int }
      (** the k disjoint locally densest regions ({!Dsd_core.Topk_lds}) *)
  | Hierarchy of { graph : string; psi : string; levels : int }
      (** the density-friendly decomposition
          ({!Dsd_core.Ld_decomposition}); [levels = 0] returns the whole
          chain, [levels > 0] only its first [levels] entries *)
  | Shutdown

type response =
  | Pong
  | Stats_r of {
      counters : (string * int) list;  (** {!Dsd_obs.Counter.snapshot} *)
      cache : (string * int) list;     (** requests/hits/misses/evictions/... *)
      graphs : string list;            (** one ["name n=… m=…"] line each *)
    }
  | Density_r of float
  | Cds_r of { density : float; vertices : int array }
  | Decompose_r of { kmax : int; core : int array }
  | Query_r of { density : float; vertices : int array }
  | Apply_delta_r of { n : int; m : int; added : int; removed : int }
      (** post-delta size plus how many ops actually changed the graph *)
  | Topk_r of { regions : (float * int array) list }
      (** (density, vertices) in extraction order, densities
          non-increasing *)
  | Hierarchy_r of { levels : (float * int array) list }
      (** (marginal density, new vertices) outermost first, marginals
          strictly decreasing *)
  | Shutdown_r
  | Error_r of string

(** {1 Frame I/O} *)

(** [read_frame fd] blocks for one frame.  [None] on a clean
    end-of-stream (the peer closed between frames).
    @raise Error on truncation mid-frame, an oversized or undersized
    length prefix, or a version mismatch.
    @raise Unix.Unix_error as the underlying reads do (e.g. a receive
    timeout). *)
val read_frame : Unix.file_descr -> (int * string) option

(** [write_frame fd ~tag body] writes one frame.
    @raise Error if the payload would exceed {!max_frame}. *)
val write_frame : Unix.file_descr -> tag:int -> string -> unit

(** {1 Typed encode/decode} *)

val encode_request : request -> int * string

(** @raise Error on an unknown tag or a malformed body. *)
val decode_request : int -> string -> request

val encode_response : response -> int * string

(** @raise Error on an unknown tag or a malformed body. *)
val decode_response : int -> string -> response

(** [request_key r] is a canonical cache key for the cacheable
    requests ([Density]/[Cds]/[Decompose]/[Query]/[Topk]/[Hierarchy]);
    [None] for the control requests and the [Apply_delta] mutation. *)
val request_key : request -> string option

(** [key_graph key] recovers the graph name a {!request_key} refers
    to — the predicate behind per-graph cache invalidation after an
    [Apply_delta].  [None] on anything that does not parse as a
    cacheable request's key. *)
val key_graph : string -> string option
