module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Counter = Dsd_obs.Counter

(* Per-(graph, psi) prepared state.  Everything here is a pure function
   of (graph, psi), computed at most once per server lifetime:
   [instances] feeds Exact and the PDS flow builders, [decomp] (with
   density tracking, the strongest mode) drops into CoreExact, Query
   and the decompose endpoint alike, and [exact_prepared] keeps Exact's
   whole-graph flow arena so repeat solves only retarget. *)
type psi_state = {
  psi : P.t;
  graph : G.t;
  instances : int array array Lazy.t;
  decomp : Dsd_core.Clique_core.t Lazy.t;
  exact_prepared : Dsd_core.Flow_build.prepared option ref;
  hierarchy : Dsd_core.Ld_decomposition.t Lazy.t;
      (* the full chain, computed once; per-request level truncation
         happens at response time (and in the result LRU, keyed by the
         requested level count) *)
}

(* [g] is the current snapshot; [dyn] (created on the first delta) is
   the mutable source of truth once the graph starts moving, and
   [incs] holds the per-psi incremental sessions, which are patched —
   never dropped — by apply-delta.  [psis] caches are a pure function
   of the snapshot, so a delta resets them; [incs] survives. *)
type graph_state = {
  mutable g : G.t;
  psis : (string, psi_state) Hashtbl.t;
  mutable dyn : Dsd_graph.Dynamic.t option;
  incs : (string, Dsd_core.Inc_dsd.t) Hashtbl.t;
}

type t = {
  names : string list;  (* registration order, for the stats endpoint *)
  tbl : (string, graph_state) Hashtbl.t;
  results : Protocol.response Lru.t;
  pool : Dsd_util.Pool.t option;
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?pool ~max_cached graphs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, g) ->
      if Hashtbl.mem tbl name then
        invalid_arg (Printf.sprintf "State.create: duplicate graph %s" name);
      Hashtbl.add tbl name
        { g; psis = Hashtbl.create 8; dyn = None; incs = Hashtbl.create 4 })
    graphs;
  { names = List.map fst graphs;
    tbl;
    results = Lru.create ~capacity:max_cached;
    pool;
    requests = 0;
    hits = 0;
    misses = 0 }

let graphs t = List.map (fun name -> (name, (Hashtbl.find t.tbl name).g)) t.names

let psi_state t (gs : graph_state) (psi : P.t) =
  let key = psi.P.name in
  match Hashtbl.find_opt gs.psis key with
  | Some ps -> ps
  | None ->
    let pool = t.pool in
    let g = gs.g in
    let decomp =
      lazy (Dsd_core.Clique_core.decompose ?pool ~track_density:true g psi)
    in
    let ps =
      { psi;
        graph = g;
        instances = lazy (Dsd_core.Enumerate.instances ?pool g psi);
        decomp;
        exact_prepared = ref None;
        hierarchy =
          lazy
            (Dsd_core.Ld_decomposition.decompose ?pool
               ~decomp:(Lazy.force decomp) g psi) }
    in
    Hashtbl.add gs.psis key ps;
    ps

let clear_results t = Lru.clear t.results

let cache_stats t =
  [ ("capacity", Lru.capacity t.results);
    ("entries", Lru.length t.results);
    ("requests", t.requests);
    ("hits", t.hits);
    ("misses", t.misses);
    ("evictions", Lru.evictions t.results) ]

(* ---- validation ---- *)

type lookup = {
  gs : graph_state;
  ps : psi_state;
}

let errorf fmt = Printf.ksprintf (fun s -> Protocol.Error_r s) fmt

let lookup t ~graph ~psi =
  match Hashtbl.find_opt t.tbl graph with
  | None ->
    Error
      (errorf "unknown graph %s (serving: %s)" graph
         (String.concat ", " t.names))
  | Some gs -> (
    match P.of_string psi with
    | None -> Error (errorf "unknown pattern %s (see 'dsd patterns')" psi)
    | Some p -> Ok { gs; ps = psi_state t gs p })

(* ---- solvers ---- *)

(* The per-(graph, psi) incremental session: built once from the
   current snapshot, then patched in place by apply-delta — across
   deltas it keeps its flow arena warm, which is its whole point. *)
let inc_session t (gs : graph_state) (psi : P.t) =
  match Hashtbl.find_opt gs.incs psi.P.name with
  | Some s -> s
  | None ->
    let s = Dsd_core.Inc_dsd.create ?pool:t.pool gs.g psi in
    Hashtbl.add gs.incs psi.P.name s;
    s

let densest t (gs : graph_state) (ps : psi_state) algorithm =
  let pool = t.pool in
  let g = ps.graph and psi = ps.psi in
  match String.lowercase_ascii algorithm with
  | "exact" ->
    let family = Dsd_core.Flow_build.auto_family psi ~grouped:false in
    let instances =
      match family with
      | Dsd_core.Flow_build.Eds -> [||]  (* never enumerated by Exact *)
      | _ -> Lazy.force ps.instances
    in
    Ok
      (Dsd_core.Exact.run ?pool ~instances ~prepared:ps.exact_prepared g psi)
        .Dsd_core.Exact.subgraph
  | "coreexact" ->
    Ok
      (Dsd_core.Core_exact.run ?pool ~decomp:(Lazy.force ps.decomp) g psi)
        .Dsd_core.Core_exact.subgraph
  | "peel" ->
    Ok (Dsd_core.Api.densest_subgraph ?pool ~psi ~algorithm:Dsd_core.Api.Peel g)
  | "incapp" ->
    Ok
      (Dsd_core.Api.densest_subgraph ?pool ~psi ~algorithm:Dsd_core.Api.Inc_app
         g)
  | "coreapp" ->
    Ok
      (Dsd_core.Api.densest_subgraph ?pool ~psi ~algorithm:Dsd_core.Api.Core_app
         g)
  | "incremental" -> (
    try Ok (Dsd_core.Inc_dsd.query (inc_session t gs psi))
    with Invalid_argument msg -> Error (errorf "%s" msg))
  | other -> Error (errorf "unknown algorithm %s" other)

(* The apply-delta endpoint: mutate the graph handle, patch every live
   incremental session with the same ops, refresh the snapshot, and
   invalidate only this graph's derived state — its (graph, psi)
   prepared caches and its result-LRU entries.  Other graphs' cached
   results stay resident (and keep hitting). *)
let apply_delta t ~graph ~adds ~removes : Protocol.response =
  match Hashtbl.find_opt t.tbl graph with
  | None ->
    errorf "unknown graph %s (serving: %s)" graph (String.concat ", " t.names)
  | Some gs ->
    let n = G.n gs.g in
    let bad (u, v) = u < 0 || u >= n || v < 0 || v >= n in
    if Array.exists bad adds || Array.exists bad removes then
      errorf "delta vertex out of range (graph has %d vertices)" n
    else begin
      let dyn =
        match gs.dyn with
        | Some d -> d
        | None ->
          let d = Dsd_graph.Dynamic.of_graph gs.g in
          gs.dyn <- Some d;
          d
      in
      let added = ref 0 and removed = ref 0 in
      Array.iter
        (fun (u, v) -> if Dsd_graph.Dynamic.add_edge dyn u v then incr added)
        adds;
      Array.iter
        (fun (u, v) -> if Dsd_graph.Dynamic.remove_edge dyn u v then incr removed)
        removes;
      let ops =
        Array.append
          (Array.map (fun (u, v) -> Dsd_graph.Dynamic.Add (u, v)) adds)
          (Array.map (fun (u, v) -> Dsd_graph.Dynamic.Remove (u, v)) removes)
      in
      Hashtbl.iter (fun _ s -> ignore (Dsd_core.Inc_dsd.apply s ops)) gs.incs;
      gs.g <- Dsd_graph.Dynamic.snapshot dyn;
      Hashtbl.reset gs.psis;
      ignore
        (Lru.remove_where t.results ~f:(fun key ->
             Protocol.key_graph key = Some graph));
      Apply_delta_r
        { n; m = Dsd_graph.Dynamic.m dyn; added = !added; removed = !removed }
    end

let compute t (req : Protocol.request) : Protocol.response =
  match req with
  | Ping | Stats | Shutdown | Apply_delta _ ->
    assert false  (* not cacheable; handled below *)
  | Density { graph; psi; algorithm } -> (
    match lookup t ~graph ~psi with
    | Error e -> e
    | Ok { gs; ps } -> (
      match densest t gs ps algorithm with
      | Error e -> e
      | Ok sg -> Density_r sg.Dsd_core.Density.density))
  | Cds { graph; psi; algorithm } -> (
    match lookup t ~graph ~psi with
    | Error e -> e
    | Ok { gs; ps } -> (
      match densest t gs ps algorithm with
      | Error e -> e
      | Ok sg ->
        Cds_r
          { density = sg.Dsd_core.Density.density;
            vertices = sg.Dsd_core.Density.vertices }))
  | Decompose { graph; psi } -> (
    match lookup t ~graph ~psi with
    | Error e -> e
    | Ok { ps; _ } ->
      let d = Lazy.force ps.decomp in
      Decompose_r
        { kmax = d.Dsd_core.Clique_core.kmax;
          core = Array.copy d.Dsd_core.Clique_core.core })
  | Query { graph; psi; vertices } -> (
    match lookup t ~graph ~psi with
    | Error e -> e
    | Ok { ps; _ } ->
      let n = G.n ps.graph in
      if Array.length vertices = 0 then errorf "query needs at least one vertex"
      else if Array.exists (fun v -> v < 0 || v >= n) vertices then
        errorf "query vertex out of range (graph has %d vertices)" n
      else begin
        let r =
          Dsd_core.Query_dsd.run ?pool:t.pool ~decomp:(Lazy.force ps.decomp)
            ps.graph ps.psi ~query:vertices
        in
        let sg = r.Dsd_core.Query_dsd.subgraph in
        Query_r
          { density = sg.Dsd_core.Density.density;
            vertices = sg.Dsd_core.Density.vertices }
      end)
  | Topk { graph; psi; k } -> (
    match lookup t ~graph ~psi with
    | Error e -> e
    | Ok { ps; _ } ->
      if k < 1 then errorf "topk needs k >= 1 (got %d)" k
      else begin
        let r =
          Dsd_core.Topk_lds.run ?pool:t.pool ~decomp:(Lazy.force ps.decomp) ~k
            ps.graph ps.psi
        in
        Topk_r
          { regions =
              List.map
                (fun (sg : Dsd_core.Density.subgraph) ->
                  (sg.density, sg.vertices))
                r.Dsd_core.Topk_lds.regions }
      end)
  | Hierarchy { graph; psi; levels } -> (
    match lookup t ~graph ~psi with
    | Error e -> e
    | Ok { ps; _ } ->
      if levels < 0 then errorf "hierarchy needs levels >= 0 (got %d)" levels
      else begin
        let d = Lazy.force ps.hierarchy in
        let all =
          List.map
            (fun (lvl : Dsd_core.Ld_decomposition.level) ->
              (lvl.marginal_density, lvl.vertices))
            d.Dsd_core.Ld_decomposition.levels
        in
        let rec take k = function
          | x :: rest when k > 0 -> x :: take (k - 1) rest
          | _ -> []
        in
        Hierarchy_r
          { levels = (if levels = 0 then all else take levels all) }
      end)

(* Only successful answers enter the LRU: errors are cheap to recompute
   and must not shadow a graph registered later under the same name. *)
let cacheable_ok = function
  | Protocol.Error_r _ -> false
  | _ -> true

let handle_cached t req key =
  t.requests <- t.requests + 1;
  Counter.incr Counter.Serve_requests;
  match Lru.find t.results key with
  | Some resp ->
    t.hits <- t.hits + 1;
    Counter.incr Counter.Serve_cache_hits;
    resp
  | None ->
    t.misses <- t.misses + 1;
    Counter.incr Counter.Serve_cache_misses;
    let resp = compute t req in
    if cacheable_ok resp then begin
      match Lru.add t.results key resp with
      | Some _evicted -> Counter.incr Counter.Serve_cache_evictions
      | None -> ()
    end;
    resp

let handle t (req : Protocol.request) : Protocol.response =
  match req with
  | Ping -> Pong
  | Shutdown -> Shutdown_r
  | Apply_delta { graph; adds; removes } -> apply_delta t ~graph ~adds ~removes
  | Stats ->
    Stats_r
      { counters = Counter.snapshot ();
        cache = cache_stats t;
        graphs =
          List.map
            (fun (name, g) ->
              Printf.sprintf "%s n=%d m=%d" name (G.n g) (G.m g))
            (graphs t) }
  | Density _ | Cds _ | Decompose _ | Query _ | Topk _ | Hierarchy _ ->
    let key =
      match Protocol.request_key req with
      | Some k -> k
      | None -> assert false
    in
    Dsd_obs.Span.with_ Dsd_obs.Phase.serve_request (fun () ->
        handle_cached t req key)
