(** Server-side state and request dispatch, independent of any socket.

    One value of {!t} holds everything a long-lived `dsd serve` process
    amortises across requests:

    - the loaded graphs, keyed by the name they were registered under;
    - a {e prepared-state cache} keyed by (graph, Psi): the enumerated
      Psi-instances, the (k, Psi)-core decomposition (density-tracked,
      so CoreExact's Pruning1 can reuse it), and the retargetable
      whole-graph flow arena for Exact — each computed lazily on first
      need and kept for every later request;
    - an LRU over hot (graph, Psi, algorithm, query) {e results}
      ([--max-cached]), which answers a repeated request without
      touching a solver at all.

    {!handle} is the entire endpoint logic; the socket server, the
    differential tests and the [serve-equals-api] metamorphic relation
    all call it, which is what makes "server responses are bit-identical
    to API results" a statement about one function. *)

type t

(** [create ~max_cached graphs] registers the named graphs and sizes
    the result LRU.  [?pool] is threaded to every solver call.
    @raise Invalid_argument on a duplicate name or negative
    [max_cached]. *)
val create :
  ?pool:Dsd_util.Pool.t -> max_cached:int -> (string * Dsd_graph.Graph.t) list ->
  t

(** The registered graphs, in registration order. *)
val graphs : t -> (string * Dsd_graph.Graph.t) list

(** [handle t req] answers one request.  Never raises on a well-typed
    request: unknown graphs/patterns/algorithms and invalid query
    vertices come back as [Protocol.Error_r].

    [Apply_delta] mutates the named graph in place: edge inserts are
    applied before deletes, each patching a {!Dsd_graph.Dynamic}
    handle and every live incremental session for that graph
    ({!Dsd_core.Inc_dsd}, created on the first
    [algorithm = "incremental"] request and kept warm across deltas).
    Invalidation is targeted — only the mutated graph's prepared
    (graph, Psi) caches and its result-LRU entries are dropped; other
    graphs' cached results keep hitting.

    Cacheable requests are
    counted (requests, then one of hit/miss, evictions as they happen)
    in both the internal tallies reported by the [Stats] endpoint and
    the [Serve_*] counters of {!Dsd_obs.Counter}, and each runs under a
    {!Dsd_obs.Phase.serve_request} span. *)
val handle : t -> Protocol.request -> Protocol.response

(** [clear_results t] empties the result LRU (tallies survive) while
    keeping every prepared per-(graph, Psi) state — how the bench
    isolates "prepared but not cached" latency. *)
val clear_results : t -> unit

(** [cache_stats t] is the [Stats] endpoint's cache section:
    [capacity], [entries], [requests], [hits], [misses], [evictions] —
    with [hits + misses = requests] as a contract. *)
val cache_stats : t -> (string * int) list
