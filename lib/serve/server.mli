(** The `dsd serve` daemon: a sequential accept loop speaking
    {!Protocol} over a Unix-domain or TCP listening socket, dispatching
    every frame through {!State.handle}.

    Robustness contract (exercised by the fault-injection suite): a
    malformed frame gets a structured error frame (best effort) and the
    connection is closed; a peer that disconnects mid-frame or goes
    silent past the receive timeout just loses its connection; an
    exception escaping a handler becomes an error response.  None of
    these crash the process or wedge the accept loop — the only way to
    stop a server is a [Shutdown] request (or killing the process). *)

type address =
  | Unix_domain of string  (** socket path; re-created on bind *)
  | Tcp of { host : string; port : int }

(** A server running on a background thread. *)
type t

(** [run ~state addr] binds, listens and serves until a [Shutdown]
    request arrives; then the listening socket is closed (and a
    Unix-domain socket path unlinked) and [run] returns.  Connections
    are served one at a time; a connected peer that sends nothing for
    [receive_timeout_s] (default 30) is disconnected so it cannot
    starve the accept loop.  SIGPIPE is ignored for the whole process
    (writes to dead peers surface as [EPIPE] and close the connection
    instead of killing the daemon). *)
val run : ?receive_timeout_s:float -> state:State.t -> address -> unit

(** [start ~state addr] is {!run} on a fresh thread, returning once the
    listening socket is bound — a client may connect immediately. *)
val start : ?receive_timeout_s:float -> state:State.t -> address -> t

(** [join t] waits for the server thread to finish (i.e. for a
    [Shutdown] request to be served). *)
val join : t -> unit
