type t = { fd : Unix.file_descr }

let connect (addr : Server.address) =
  match addr with
  | Server.Unix_domain path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    { fd }
  | Server.Tcp { host; port } ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call t req =
  let tag, body = Protocol.encode_request req in
  Protocol.write_frame t.fd ~tag body;
  match Protocol.read_frame t.fd with
  | None -> raise (Protocol.Error "server closed the connection")
  | Some (tag, body) -> Protocol.decode_response tag body

let once addr req =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> call t req)
