module G = Dsd_graph.Graph

let magic = "DSDSNAP1"
let version = 1
let header_bytes = 8 + 4 + 8 + 8

(* FNV-1a, 64-bit: cheap, sequential, and sensitive to byte order —
   exactly what a single-pass load wants.  Not cryptographic; the
   checksum guards against truncation and bit rot, while the structural
   re-validation in Graph.of_csr guards against everything else. *)
let fnv64 bytes ~len =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get bytes i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let failf path fmt =
  Printf.ksprintf (fun s -> failwith (Printf.sprintf "snapshot %s: %s" path s)) fmt

(* File size for a graph with [n] vertices and [m] edges. *)
let total_bytes ~n ~m = header_bytes + (8 * (n + 1)) + (8 * 2 * m) + 8

let write path g =
  let n = G.n g and m = G.m g in
  let total = total_bytes ~n ~m in
  let buf = Bytes.create total in
  Bytes.blit_string magic 0 buf 0 8;
  Bytes.set_int32_be buf 8 (Int32.of_int version);
  Bytes.set_int64_be buf 12 (Int64.of_int n);
  Bytes.set_int64_be buf 20 (Int64.of_int m);
  (* Row offsets by prefix sum, then the neighbour lists in CSR order —
     both straight off the graph's accessors, no intermediate arrays. *)
  let off = ref header_bytes in
  let acc = ref 0 in
  for v = 0 to n do
    Bytes.set_int64_be buf !off (Int64.of_int !acc);
    off := !off + 8;
    if v < n then acc := !acc + G.degree g v
  done;
  for v = 0 to n - 1 do
    G.iter_neighbors g v ~f:(fun w ->
        Bytes.set_int64_be buf !off (Int64.of_int w);
        off := !off + 8)
  done;
  assert (!off = total - 8);
  Bytes.set_int64_be buf (total - 8) (fnv64 buf ~len:(total - 8));
  (* Atomic publish: a reader never observes a partially written
     snapshot under [path]. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_bytes oc buf;
  close_out oc;
  Sys.rename tmp path;
  total

(* An on-disk u64 must fit the host int: ids and offsets are
   non-negative and far below 2^62 in any loadable file. *)
let to_int path what v =
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    failf path "%s out of range (%Ld)" what v;
  Int64.to_int v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      buf)

let parse_header path buf =
  let len = Bytes.length buf in
  if len < header_bytes + 8 then failf path "truncated (only %d bytes)" len;
  if Bytes.sub_string buf 0 8 <> magic then failf path "bad magic (not a snapshot)";
  let v = Int32.to_int (Bytes.get_int32_be buf 8) in
  if v <> version then failf path "unsupported version %d (expected %d)" v version;
  let n = to_int path "vertex count" (Bytes.get_int64_be buf 12) in
  let m = to_int path "edge count" (Bytes.get_int64_be buf 20) in
  let expected = total_bytes ~n ~m in
  if len <> expected then
    failf path "wrong length: %d bytes for n=%d m=%d (expected %d)" len n m
      expected;
  (n, m)

let load path =
  let buf = read_file path in
  let n, m = parse_header path buf in
  let total = Bytes.length buf in
  let stored = Bytes.get_int64_be buf (total - 8) in
  let computed = fnv64 buf ~len:(total - 8) in
  if not (Int64.equal stored computed) then
    failf path "checksum mismatch (stored %016Lx, computed %016Lx)" stored
      computed;
  let word i = to_int path "entry" (Bytes.get_int64_be buf (header_bytes + (8 * i))) in
  let row = Array.init (n + 1) word in
  let col = Array.init (2 * m) (fun i -> word (n + 1 + i)) in
  try G.of_csr ~n ~row ~col
  with Invalid_argument msg -> failf path "invalid graph: %s" msg

type info = {
  info_version : int;
  n : int;
  m : int;
  bytes : int;
}

let info path =
  let buf = read_file path in
  let n, m = parse_header path buf in
  { info_version = version; n; m; bytes = Bytes.length buf }

let is_snapshot path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      in_channel_length ic >= 8
      && really_input_string ic 8 = magic)
