(* A clock-stamped LRU: every entry carries the logical time of its
   last use, and eviction removes the minimum stamp.  Lookups and
   inserts are O(1); eviction scans the (at most [capacity]) resident
   entries.  The caches this backs hold solver results behind
   [--max-cached] — dozens to hundreds of entries — so the scan is
   noise next to the solves it saves, and the representation stays
   simple enough to property-test against a reference model. *)

type 'a entry = { mutable value : 'a; mutable stamp : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.stamp <- tick t;
    t.hits <- t.hits + 1;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t key = Hashtbl.mem t.tbl key

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | None -> None
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1;
    Some key

let add t key v =
  if t.cap = 0 then None
  else
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      e.value <- v;
      e.stamp <- tick t;
      None
    | None ->
      let evicted = if length t >= t.cap then evict_lru t else None in
      Hashtbl.add t.tbl key { value = v; stamp = tick t };
      evicted

let keys_by_recency t =
  Hashtbl.fold (fun key e acc -> (e.stamp, key) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> List.map snd

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let clear t =
  Hashtbl.reset t.tbl;
  t.clock <- 0

let remove_where t ~f =
  let victims =
    Hashtbl.fold (fun key _ acc -> if f key then key :: acc else acc) t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) victims;
  List.length victims
