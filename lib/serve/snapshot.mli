(** Binary CSR graph snapshots — the serving layer's on-disk format.

    `dsd snapshot build` converts an edge-list file once; every later
    load is a single sequential read of the header plus two flat int
    arrays (the {!Dsd_graph.Graph} CSR row/col arrays), with no text
    parsing, vertex-id compaction, sorting or deduplication.  The file
    is fully self-validating: an 8-byte magic, a format version, exact
    length accounting and a trailing FNV-1a checksum over everything
    before it, so a truncated, corrupted or foreign file is rejected
    loudly instead of decoding into garbage.

    Layout (all integers big-endian):
    {v
      offset 0   8 bytes   magic "DSDSNAP1"
             8   4 bytes   format version (= 1)
            12   8 bytes   n (vertices)
            20   8 bytes   m (undirected edges)
            28   8 x (n+1) row offsets
             .   8 x 2m    concatenated sorted neighbour lists
          last   8 bytes   FNV-1a 64 checksum of all preceding bytes
    v} *)

(** Format version written by {!write}; {!load} accepts only this. *)
val version : int

(** [write path g] writes the snapshot atomically (temp file + rename,
    so a crashed writer never leaves a half-snapshot under [path]).
    Returns the file size in bytes. *)
val write : string -> Dsd_graph.Graph.t -> int

(** [load path] reads a snapshot back.  The CSR arrays are handed to
    {!Dsd_graph.Graph.of_csr}, which re-checks every structural
    invariant, so even a checksum-colliding corruption cannot produce
    an ill-formed graph.
    @raise Failure on bad magic, unsupported version, wrong length,
    checksum mismatch, or values that overflow the host [int]. *)
val load : string -> Dsd_graph.Graph.t

type info = {
  info_version : int;
  n : int;
  m : int;
  bytes : int;  (** total file size *)
}

(** [info path] reads and validates only the fixed-size header (plus
    the length accounting) — O(1), for `dsd snapshot info`.
    @raise Failure as {!load}, except checksum mismatches go
    undetected. *)
val info : string -> info

(** [is_snapshot path] sniffs the magic bytes: [true] iff [path]
    starts with the snapshot magic.  Lets every `--input` flag accept
    snapshots and edge lists interchangeably.
    @raise Sys_error if the file cannot be opened. *)
val is_snapshot : string -> bool
