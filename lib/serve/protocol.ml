exception Error of string

let version = 1
let max_frame = 16 * 1024 * 1024

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---- body codec ---- *)

(* Bodies are built and parsed with a tiny writer/reader pair.  The
   reader trusts nothing: every length prefix is checked against the
   bytes actually remaining before anything is allocated, so a frame
   whose payload lies about its own sizes is rejected as cheaply as a
   well-formed one is accepted. *)

module Enc = struct
  let create () = Buffer.create 64

  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let int b v =
    let bytes = Bytes.create 8 in
    Bytes.set_int64_be bytes 0 (Int64.of_int v);
    Buffer.add_bytes b bytes

  let float b v =
    let bytes = Bytes.create 8 in
    Bytes.set_int64_be bytes 0 (Int64.bits_of_float v);
    Buffer.add_bytes b bytes

  let str b s =
    int b (String.length s);
    Buffer.add_string b s

  let ints b a =
    int b (Array.length a);
    Array.iter (int b) a

  let contents = Buffer.contents
end

module Dec = struct
  type t = { body : string; mutable pos : int }

  let of_string body = { body; pos = 0 }
  let remaining t = String.length t.body - t.pos

  let u8 t =
    if remaining t < 1 then err "truncated body";
    let v = Char.code t.body.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let int64 t =
    if remaining t < 8 then err "truncated body";
    let v = String.get_int64_be t.body t.pos in
    t.pos <- t.pos + 8;
    v

  let int t =
    let v = int64 t in
    if Int64.compare v (Int64.of_int min_int) < 0
       || Int64.compare v (Int64.of_int max_int) > 0
    then err "integer out of range";
    Int64.to_int v

  let float t = Int64.float_of_bits (int64 t)

  let str t =
    let len = int t in
    if len < 0 || len > remaining t then err "corrupt string length";
    let s = String.sub t.body t.pos len in
    t.pos <- t.pos + len;
    s

  let ints t =
    let len = int t in
    if len < 0 || len > remaining t / 8 then err "corrupt array length";
    Array.init len (fun _ -> int t)

  let finish t = if remaining t <> 0 then err "trailing bytes in body"
end

(* ---- tags ---- *)

let tag_ping = 0x01
let tag_stats = 0x02
let tag_density = 0x03
let tag_cds = 0x04
let tag_decompose = 0x05
let tag_query = 0x06
let tag_shutdown = 0x07
let tag_apply_delta = 0x08
let tag_topk = 0x09
let tag_hierarchy = 0x0a
let tag_ok = 0x40
let tag_error = 0x7f

(* ---- frame I/O ---- *)

let rec write_all fd bytes off len =
  if len > 0 then begin
    let w = Unix.write fd bytes off len in
    write_all fd bytes (off + w) (len - w)
  end

(* [read_exact] returns the bytes read before end-of-stream, retrying
   on EINTR; callers distinguish "closed between frames" (0 bytes of a
   header) from "closed mid-frame" (anything else). *)
let read_exact fd bytes len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match Unix.read fd bytes !got (len - !got) with
    | 0 -> eof := true
    | r -> got := !got + r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  !got

let read_frame fd =
  let header = Bytes.create 4 in
  match read_exact fd header 4 with
  | 0 -> None
  | h when h < 4 -> err "truncated frame header"
  | _ ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 2 then err "frame too short (%d bytes)" len;
    if len > max_frame then err "oversized frame (%d bytes, max %d)" len max_frame;
    let payload = Bytes.create len in
    let got = read_exact fd payload len in
    if got < len then err "truncated frame body (%d of %d bytes)" got len;
    let v = Char.code (Bytes.get payload 0) in
    if v <> version then err "protocol version mismatch (%d, expected %d)" v version;
    Some (Char.code (Bytes.get payload 1), Bytes.sub_string payload 2 (len - 2))

let write_frame fd ~tag body =
  let len = String.length body + 2 in
  if len > max_frame then err "frame too large to send (%d bytes)" len;
  let bytes = Bytes.create (4 + len) in
  Bytes.set_int32_be bytes 0 (Int32.of_int len);
  Bytes.set bytes 4 (Char.chr version);
  Bytes.set bytes 5 (Char.chr tag);
  Bytes.blit_string body 0 bytes 6 (String.length body);
  write_all fd bytes 0 (4 + len)

(* ---- typed layer ---- *)

type request =
  | Ping
  | Stats
  | Density of { graph : string; psi : string; algorithm : string }
  | Cds of { graph : string; psi : string; algorithm : string }
  | Decompose of { graph : string; psi : string }
  | Query of { graph : string; psi : string; vertices : int array }
  | Apply_delta of {
      graph : string;
      adds : (int * int) array;
      removes : (int * int) array;
    }
  | Topk of { graph : string; psi : string; k : int }
  | Hierarchy of { graph : string; psi : string; levels : int }
  | Shutdown

type response =
  | Pong
  | Stats_r of {
      counters : (string * int) list;
      cache : (string * int) list;
      graphs : string list;
    }
  | Density_r of float
  | Cds_r of { density : float; vertices : int array }
  | Decompose_r of { kmax : int; core : int array }
  | Query_r of { density : float; vertices : int array }
  | Apply_delta_r of { n : int; m : int; added : int; removed : int }
  | Topk_r of { regions : (float * int array) list }
  | Hierarchy_r of { levels : (float * int array) list }
  | Shutdown_r
  | Error_r of string

(* Edge pairs travel as a flat int array of even length. *)
let enc_pairs b pairs =
  Enc.int b (2 * Array.length pairs);
  Array.iter
    (fun (u, v) ->
      Enc.int b u;
      Enc.int b v)
    pairs

let dec_pairs d =
  let flat = Dec.ints d in
  if Array.length flat mod 2 <> 0 then err "odd edge-pair array length";
  Array.init
    (Array.length flat / 2)
    (fun i -> (flat.(2 * i), flat.((2 * i) + 1)))

let encode_request req =
  let b = Enc.create () in
  let tag =
    match req with
    | Ping -> tag_ping
    | Stats -> tag_stats
    | Shutdown -> tag_shutdown
    | Density { graph; psi; algorithm } | Cds { graph; psi; algorithm } ->
      Enc.str b graph;
      Enc.str b psi;
      Enc.str b algorithm;
      (match req with Density _ -> tag_density | _ -> tag_cds)
    | Decompose { graph; psi } ->
      Enc.str b graph;
      Enc.str b psi;
      tag_decompose
    | Query { graph; psi; vertices } ->
      Enc.str b graph;
      Enc.str b psi;
      Enc.ints b vertices;
      tag_query
    | Apply_delta { graph; adds; removes } ->
      Enc.str b graph;
      enc_pairs b adds;
      enc_pairs b removes;
      tag_apply_delta
    | Topk { graph; psi; k } ->
      Enc.str b graph;
      Enc.str b psi;
      Enc.int b k;
      tag_topk
    | Hierarchy { graph; psi; levels } ->
      Enc.str b graph;
      Enc.str b psi;
      Enc.int b levels;
      tag_hierarchy
  in
  (tag, Enc.contents b)

let decode_request tag body =
  let d = Dec.of_string body in
  let req =
    if tag = tag_ping then Ping
    else if tag = tag_stats then Stats
    else if tag = tag_shutdown then Shutdown
    else if tag = tag_density || tag = tag_cds then begin
      let graph = Dec.str d in
      let psi = Dec.str d in
      let algorithm = Dec.str d in
      if tag = tag_density then Density { graph; psi; algorithm }
      else Cds { graph; psi; algorithm }
    end
    else if tag = tag_decompose then begin
      let graph = Dec.str d in
      let psi = Dec.str d in
      Decompose { graph; psi }
    end
    else if tag = tag_query then begin
      let graph = Dec.str d in
      let psi = Dec.str d in
      let vertices = Dec.ints d in
      Query { graph; psi; vertices }
    end
    else if tag = tag_apply_delta then begin
      let graph = Dec.str d in
      let adds = dec_pairs d in
      let removes = dec_pairs d in
      Apply_delta { graph; adds; removes }
    end
    else if tag = tag_topk then begin
      let graph = Dec.str d in
      let psi = Dec.str d in
      let k = Dec.int d in
      Topk { graph; psi; k }
    end
    else if tag = tag_hierarchy then begin
      let graph = Dec.str d in
      let psi = Dec.str d in
      let levels = Dec.int d in
      Hierarchy { graph; psi; levels }
    end
    else err "unknown request tag 0x%02x" tag
  in
  Dec.finish d;
  req

(* OK responses carry a kind byte so the decoder needs no context;
   errors travel under their own tag. *)
let kind_pong = 0x01
let kind_stats = 0x02
let kind_density = 0x03
let kind_cds = 0x04
let kind_decompose = 0x05
let kind_query = 0x06
let kind_shutdown = 0x07
let kind_apply_delta = 0x08
let kind_topk = 0x09
let kind_hierarchy = 0x0a

let encode_kv b (k, v) =
  Enc.str b k;
  Enc.int b v

let decode_kv d =
  let k = Dec.str d in
  let v = Dec.int d in
  (k, v)

let encode_list b enc items =
  Enc.int b (List.length items);
  List.iter (enc b) items

let decode_list d dec =
  let len = Dec.int d in
  if len < 0 || len > Dec.remaining d then err "corrupt list length";
  List.init len (fun _ -> dec d)

let encode_response resp =
  let b = Enc.create () in
  match resp with
  | Error_r msg ->
    Enc.str b msg;
    (tag_error, Enc.contents b)
  | _ ->
    (match resp with
    | Pong -> Enc.u8 b kind_pong
    | Stats_r { counters; cache; graphs } ->
      Enc.u8 b kind_stats;
      encode_list b encode_kv counters;
      encode_list b encode_kv cache;
      encode_list b Enc.str graphs
    | Density_r rho ->
      Enc.u8 b kind_density;
      Enc.float b rho
    | Cds_r { density; vertices } ->
      Enc.u8 b kind_cds;
      Enc.float b density;
      Enc.ints b vertices
    | Decompose_r { kmax; core } ->
      Enc.u8 b kind_decompose;
      Enc.int b kmax;
      Enc.ints b core
    | Query_r { density; vertices } ->
      Enc.u8 b kind_query;
      Enc.float b density;
      Enc.ints b vertices
    | Apply_delta_r { n; m; added; removed } ->
      Enc.u8 b kind_apply_delta;
      Enc.int b n;
      Enc.int b m;
      Enc.int b added;
      Enc.int b removed
    | Topk_r { regions } ->
      Enc.u8 b kind_topk;
      encode_list b
        (fun b (density, vertices) ->
          Enc.float b density;
          Enc.ints b vertices)
        regions
    | Hierarchy_r { levels } ->
      Enc.u8 b kind_hierarchy;
      encode_list b
        (fun b (marginal, vertices) ->
          Enc.float b marginal;
          Enc.ints b vertices)
        levels
    | Shutdown_r -> Enc.u8 b kind_shutdown
    | Error_r _ -> assert false);
    (tag_ok, Enc.contents b)

let decode_response tag body =
  let d = Dec.of_string body in
  let resp =
    if tag = tag_error then Error_r (Dec.str d)
    else if tag = tag_ok then begin
      let kind = Dec.u8 d in
      if kind = kind_pong then Pong
      else if kind = kind_stats then begin
        let counters = decode_list d decode_kv in
        let cache = decode_list d decode_kv in
        let graphs = decode_list d Dec.str in
        Stats_r { counters; cache; graphs }
      end
      else if kind = kind_density then Density_r (Dec.float d)
      else if kind = kind_cds then begin
        let density = Dec.float d in
        let vertices = Dec.ints d in
        Cds_r { density; vertices }
      end
      else if kind = kind_decompose then begin
        let kmax = Dec.int d in
        let core = Dec.ints d in
        Decompose_r { kmax; core }
      end
      else if kind = kind_query then begin
        let density = Dec.float d in
        let vertices = Dec.ints d in
        Query_r { density; vertices }
      end
      else if kind = kind_apply_delta then begin
        let n = Dec.int d in
        let m = Dec.int d in
        let added = Dec.int d in
        let removed = Dec.int d in
        Apply_delta_r { n; m; added; removed }
      end
      else if kind = kind_topk then begin
        let regions =
          decode_list d (fun d ->
              let density = Dec.float d in
              let vertices = Dec.ints d in
              (density, vertices))
        in
        Topk_r { regions }
      end
      else if kind = kind_hierarchy then begin
        let levels =
          decode_list d (fun d ->
              let marginal = Dec.float d in
              let vertices = Dec.ints d in
              (marginal, vertices))
        in
        Hierarchy_r { levels }
      end
      else if kind = kind_shutdown then Shutdown_r
      else err "unknown response kind 0x%02x" kind
    end
    else err "unknown response tag 0x%02x" tag
  in
  Dec.finish d;
  resp

(* The canonical key is simply the request's own wire encoding — two
   requests are the same query iff they serialise identically. *)
let request_key req =
  match req with
  | Ping | Stats | Shutdown | Apply_delta _ -> None
  | Density _ | Cds _ | Decompose _ | Query _ | Topk _ | Hierarchy _ ->
    let tag, body = encode_request req in
    Some (Printf.sprintf "%d:%s" tag body)

(* Recover the graph name a cached result key refers to, for targeted
   invalidation after a delta.  Every cacheable request's body starts
   with the graph string, so decoding one string from the key's body
   suffices; keys that fail to parse return None (and are left alone
   by invalidation — they cannot exist, but be conservative). *)
let key_graph key =
  match String.index_opt key ':' with
  | None -> None
  | Some i -> (
    match int_of_string_opt (String.sub key 0 i) with
    | Some tag
      when tag = tag_density || tag = tag_cds || tag = tag_decompose
           || tag = tag_query || tag = tag_topk || tag = tag_hierarchy -> (
      let body = String.sub key (i + 1) (String.length key - i - 1) in
      try Some (Dec.str (Dec.of_string body)) with Error _ -> None)
    | _ -> None)
