(** Immutable directed simple graphs (CSR, both directions indexed).

    Substrate for the directed densest-subgraph problem (Kannan-Vinay
    density; related work [43, 10, 44] of the paper).  Self loops are
    dropped; parallel arcs collapse. *)

type t

(** [of_edges ~n arcs] with arcs (u, v) meaning u -> v. *)
val of_edges : n:int -> (int * int) array -> t

val of_edge_list : n:int -> (int * int) list -> t

val n : t -> int

(** Number of arcs. *)
val m : t -> int

val out_degree : t -> int -> int
val in_degree : t -> int -> int
val out_neighbors : t -> int -> int array
val in_neighbors : t -> int -> int array
val iter_out : t -> int -> f:(int -> unit) -> unit
val iter_in : t -> int -> f:(int -> unit) -> unit
val mem_arc : t -> src:int -> dst:int -> bool

(** [iter_arcs t ~f] applies [f u v] once per arc u -> v. *)
val iter_arcs : t -> f:(int -> int -> unit) -> unit

(** [edges_between t ~s ~t_side] = e(S, T): the number of arcs from
    the set [s] into the set [t_side] (sets may overlap, as in the
    directed DSD definition). *)
val edges_between : t -> s:int array -> t_side:int array -> int

val pp : Format.formatter -> t -> unit
