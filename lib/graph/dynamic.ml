module Counter = Dsd_obs.Counter

type op =
  | Add of int * int
  | Remove of int * int

type t = {
  n : int;
  nbr : (int, unit) Hashtbl.t array;  (* adjacency sets, symmetric *)
  mutable m : int;
  core : int array;                   (* maintained classical core numbers *)
  mutable snap : Graph.t option;      (* cached CSR snapshot *)
}

let n t = t.n
let m t = t.m

let check_vertex t v name =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Dynamic.%s: vertex out of range" name)

let mem_edge t u v = u <> v && Hashtbl.mem t.nbr.(u) v

let degree t v =
  check_vertex t v "degree";
  Hashtbl.length t.nbr.(v)

let core t v =
  check_vertex t v "core";
  t.core.(v)

let core_numbers t = Array.copy t.core

let neighbors t v =
  check_vertex t v "neighbors";
  let out = Array.make (Hashtbl.length t.nbr.(v)) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun w () ->
      out.(!i) <- w;
      incr i)
    t.nbr.(v);
  Array.sort compare out;
  out

let common_neighbors t u v =
  check_vertex t u "common_neighbors";
  check_vertex t v "common_neighbors";
  let small, big =
    if Hashtbl.length t.nbr.(u) <= Hashtbl.length t.nbr.(v) then (u, v)
    else (v, u)
  in
  let acc = ref [] in
  Hashtbl.iter
    (fun w () -> if Hashtbl.mem t.nbr.(big) w then acc := w :: !acc)
    t.nbr.(small);
  let out = Array.of_list !acc in
  Array.sort compare out;
  out

let snapshot t =
  match t.snap with
  | Some g -> g
  | None ->
    let edges = ref [] in
    for u = 0 to t.n - 1 do
      Hashtbl.iter (fun v () -> if u < v then edges := (u, v) :: !edges) t.nbr.(u)
    done;
    let g = Graph.of_edges ~n:t.n (Array.of_list !edges) in
    t.snap <- Some g;
    g

let edges t = Graph.edges (snapshot t)

(* --- incremental core-number maintenance (traversal/subcore repair) ---

   A single edge change moves core numbers by at most 1, and only for
   vertices of the affected subcore: the set of core-r vertices
   (r = min of the endpoint cores) reachable from the changed edge's
   endpoints through core-r vertices.  We collect that subcore with a
   BFS, seed each member's core degree cd(w) = #{x in N(w) : core(x) >= r},
   and peel locally:

   - insert: survivors of peeling with threshold cd <= r gain core r+1
     (they have >= r+1 neighbours inside the surviving set or the old
     (r+1)-core, which is untouched by an insertion);
   - delete: members peeled with threshold cd < r drop to core r-1, and
     each drop decrements the cd of its still-standing subcore
     neighbours (vertices with core >= r+1 cannot drop on a single
     deletion, so they keep counting).

   Both repairs are confluent — the fixpoint does not depend on BFS or
   queue order — so the maintained array always equals a from-scratch
   recomputation (the differential battery pins this). *)

let subcore t roots r =
  let cd = Hashtbl.create 16 in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if t.core.(v) = r && not (Hashtbl.mem cd v) then begin
        Hashtbl.replace cd v 0;
        Queue.add v queue
      end)
    roots;
  let members = ref [] in
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    members := w :: !members;
    let support = ref 0 in
    Hashtbl.iter
      (fun x () ->
        if t.core.(x) >= r then incr support;
        if t.core.(x) = r && not (Hashtbl.mem cd x) then begin
          Hashtbl.replace cd x 0;
          Queue.add x queue
        end)
      t.nbr.(w);
    Hashtbl.replace cd w !support
  done;
  (cd, !members)

let repair_insert t u v =
  let r = min t.core.(u) t.core.(v) in
  let roots = List.filter (fun x -> t.core.(x) = r) [ u; v ] in
  let cd, members = subcore t roots r in
  let removed = Hashtbl.create 16 in
  let queue = Queue.create () in
  List.iter (fun w -> if Hashtbl.find cd w <= r then Queue.add w queue) members;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    if not (Hashtbl.mem removed w) then begin
      Hashtbl.replace removed w ();
      Hashtbl.iter
        (fun x () ->
          if Hashtbl.mem cd x && not (Hashtbl.mem removed x) then begin
            let c = Hashtbl.find cd x - 1 in
            Hashtbl.replace cd x c;
            if c <= r then Queue.add x queue
          end)
        t.nbr.(w)
    end
  done;
  let changed = ref 0 in
  List.iter
    (fun w ->
      if not (Hashtbl.mem removed w) then begin
        t.core.(w) <- r + 1;
        incr changed
      end)
    members;
  !changed

let repair_delete t u v =
  let r = min t.core.(u) t.core.(v) in
  if r = 0 then 0
  else begin
    let roots = List.filter (fun x -> t.core.(x) = r) [ u; v ] in
    let cd, _members = subcore t roots r in
    let dropped = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.iter (fun w c -> if c < r then Queue.add w queue) cd;
    while not (Queue.is_empty queue) do
      let w = Queue.pop queue in
      if not (Hashtbl.mem dropped w) then begin
        Hashtbl.replace dropped w ();
        t.core.(w) <- r - 1;
        Hashtbl.iter
          (fun x () ->
            if Hashtbl.mem cd x && not (Hashtbl.mem dropped x) then begin
              let c = Hashtbl.find cd x - 1 in
              Hashtbl.replace cd x c;
              if c < r then Queue.add x queue
            end)
          t.nbr.(w)
      end
    done;
    Hashtbl.length dropped
  end

let add_edge t u v =
  check_vertex t u "add_edge";
  check_vertex t v "add_edge";
  if u = v || Hashtbl.mem t.nbr.(u) v then false
  else begin
    Hashtbl.replace t.nbr.(u) v ();
    Hashtbl.replace t.nbr.(v) u ();
    t.m <- t.m + 1;
    t.snap <- None;
    Counter.incr Counter.Delta_edges_added;
    Counter.add Counter.Delta_core_repairs (repair_insert t u v);
    true
  end

let remove_edge t u v =
  check_vertex t u "remove_edge";
  check_vertex t v "remove_edge";
  if u = v || not (Hashtbl.mem t.nbr.(u) v) then false
  else begin
    Hashtbl.remove t.nbr.(u) v;
    Hashtbl.remove t.nbr.(v) u;
    t.m <- t.m - 1;
    t.snap <- None;
    Counter.incr Counter.Delta_edges_removed;
    Counter.add Counter.Delta_core_repairs (repair_delete t u v);
    true
  end

let apply t ops =
  Array.fold_left
    (fun applied op ->
      let changed =
        match op with
        | Add (u, v) -> add_edge t u v
        | Remove (u, v) -> remove_edge t u v
      in
      if changed then applied + 1 else applied)
    0 ops

let of_graph g =
  let n = Graph.n g in
  let nbr = Array.init (max 1 n) (fun _ -> Hashtbl.create 4) in
  Array.iter
    (fun (u, v) ->
      Hashtbl.replace nbr.(u) v ();
      Hashtbl.replace nbr.(v) u ())
    (Graph.edges g);
  let core = if n = 0 then [||] else (Degeneracy.compute g).Degeneracy.core in
  { n; nbr; m = Graph.m g; core; snap = Some g }

let create ~n edges = of_graph (Graph.of_edges ~n edges)
