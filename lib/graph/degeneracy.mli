(** Degeneracy ordering and classical core numbers
    (Batagelj-Zaversnik, linear time).

    The ordering drives the kClist h-clique enumerator (each edge is
    oriented from the earlier to the later vertex, giving a DAG of
    out-degree ≤ degeneracy), and the core numbers are the classical
    k-core numbers used by CoreApp's gamma upper bound. *)

type t = {
  order : int array;       (** peel order: order.(i) is the i-th removed vertex *)
  rank : int array;        (** rank.(v) = position of v in [order] *)
  core : int array;        (** core.(v) = classical core number of v *)
  degeneracy : int;        (** max core number *)
}

val compute : Graph.t -> t
