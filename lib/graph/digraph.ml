type t = {
  n : int;
  m : int;
  out_row : int array;
  out_col : int array;
  in_row : int array;
  in_col : int array;
}

let n g = g.n
let m g = g.m

let out_degree g v = g.out_row.(v + 1) - g.out_row.(v)
let in_degree g v = g.in_row.(v + 1) - g.in_row.(v)

let out_neighbors g v = Array.sub g.out_col g.out_row.(v) (out_degree g v)
let in_neighbors g v = Array.sub g.in_col g.in_row.(v) (in_degree g v)

let iter_out g v ~f =
  for i = g.out_row.(v) to g.out_row.(v + 1) - 1 do
    f g.out_col.(i)
  done

let iter_in g v ~f =
  for i = g.in_row.(v) to g.in_row.(v + 1) - 1 do
    f g.in_col.(i)
  done

let mem_arc g ~src ~dst =
  let lo = ref g.out_row.(src) and hi = ref (g.out_row.(src + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.out_col.(mid) in
    if w = dst then found := true
    else if w < dst then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_arcs g ~f =
  for u = 0 to g.n - 1 do
    for i = g.out_row.(u) to g.out_row.(u + 1) - 1 do
      f u g.out_col.(i)
    done
  done

(* Build one CSR direction from (src, dst) pairs, sorting and deduping
   per row. *)
let build_csr n pairs key other =
  let deg = Array.make (n + 1) 0 in
  Array.iter (fun p -> deg.(key p) <- deg.(key p) + 1) pairs;
  let row = Array.make (n + 1) 0 in
  for v = 1 to n do
    row.(v) <- row.(v - 1) + deg.(v - 1)
  done;
  let col = Array.make row.(n) 0 in
  let fill = Array.copy row in
  Array.iter
    (fun p ->
      col.(fill.(key p)) <- other p;
      fill.(key p) <- fill.(key p) + 1)
    pairs;
  let new_row = Array.make (n + 1) 0 in
  let write = ref 0 in
  for v = 0 to n - 1 do
    new_row.(v) <- !write;
    let slice = Array.sub col row.(v) (row.(v + 1) - row.(v)) in
    Array.sort compare slice;
    let last = ref (-1) in
    Array.iter
      (fun w ->
        if w <> !last then begin
          col.(!write) <- w;
          incr write;
          last := w
        end)
      slice
  done;
  new_row.(n) <- !write;
  (new_row, Array.sub col 0 !write)

let of_edges ~n arcs =
  if n < 0 then invalid_arg "Digraph.of_edges: negative n";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.of_edges: endpoint out of range")
    arcs;
  let clean = Array.of_list (List.filter (fun (u, v) -> u <> v) (Array.to_list arcs)) in
  let out_row, out_col = build_csr n clean fst snd in
  let in_row, in_col = build_csr n clean snd fst in
  { n; m = Array.length out_col; out_row; out_col; in_row; in_col }

let of_edge_list ~n arcs = of_edges ~n (Array.of_list arcs)

let edges_between g ~s ~t_side =
  let in_t = Array.make g.n false in
  Array.iter (fun v -> in_t.(v) <- true) t_side;
  let count = ref 0 in
  Array.iter
    (fun u -> iter_out g u ~f:(fun v -> if in_t.(v) then incr count))
    s;
  !count

let pp fmt g = Format.fprintf fmt "@[digraph n=%d m=%d@]" g.n g.m
