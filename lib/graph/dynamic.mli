(** A mutable graph handle over a fixed vertex set supporting edge
    insert/delete batches with incremental classical core-number
    maintenance (subcore repair: a single edge change moves core
    numbers by at most one, and only inside the affected core-r
    subcore, so we re-peel that region instead of the whole graph).

    The handle is the substrate of the incremental DSD subsystem
    ({!module:Dsd_core.Inc_dsd}, [dsd watch], the serve apply-delta
    endpoint).  The maintained core numbers are always equal to a
    from-scratch [Degeneracy.compute] on {!snapshot} — the
    [test_incremental] differential battery pins this bit-identically.

    Self-loops, duplicate inserts and absent deletes are no-ops (the
    mutators return [false]); vertex ids outside [0 .. n-1] raise.
    Mutations bump the [Delta_edges_added] / [Delta_edges_removed] /
    [Delta_core_repairs] observability counters. *)

type t

type op =
  | Add of int * int
  | Remove of int * int

(** [create ~n edges] starts from the given edge set (duplicate pairs
    and self-loops are rejected by [Graph.of_edges]). *)
val create : n:int -> (int * int) array -> t

(** Start from an immutable graph (shares no state with it). *)
val of_graph : Graph.t -> t

val n : t -> int
val m : t -> int
val mem_edge : t -> int -> int -> bool
val degree : t -> int -> int

(** Sorted neighbour ids of a vertex. *)
val neighbors : t -> int -> int array

(** Sorted common neighbour ids of two vertices (used for incremental
    h-clique instance discovery around a changed edge). *)
val common_neighbors : t -> int -> int -> int array

(** [add_edge t u v] inserts the edge and repairs core numbers; returns
    [false] (and changes nothing) on self-loops and existing edges. *)
val add_edge : t -> int -> int -> bool

(** [remove_edge t u v] deletes the edge and repairs core numbers;
    returns [false] on self-loops and absent edges. *)
val remove_edge : t -> int -> int -> bool

(** [apply t ops] applies a batch in order; returns how many ops
    actually changed the graph. *)
val apply : t -> op array -> int

(** Maintained classical core number of a vertex. *)
val core : t -> int -> int

(** Copy of the maintained core-number array. *)
val core_numbers : t -> int array

(** Immutable CSR snapshot of the current edge set; cached until the
    next mutation, so repeated queries between batches are free. *)
val snapshot : t -> Graph.t

(** Current edge set, as the snapshot's canonical edge array. *)
val edges : t -> (int * int) array
