(** Mutable "live" view of a {!Graph.t} supporting vertex deletion.

    Peeling algorithms repeatedly remove vertices from a fixed base
    graph.  Rebuilding a CSR per removal would be quadratic; this view
    keeps a presence mask and live edge-degrees, all O(1) per query and
    O(degree) per deletion. *)

type t

(** [of_graph g] starts with every vertex of [g] alive. *)
val of_graph : Graph.t -> t

(** [of_graph_subset g vs] starts with exactly the vertices of [vs]
    alive. *)
val of_graph_subset : Graph.t -> int array -> t

val base : t -> Graph.t

(** Number of vertices currently alive. *)
val live_count : t -> int

(** Number of edges currently alive (both endpoints alive). *)
val live_edges : t -> int

val alive : t -> int -> bool

(** [live_degree t v] is the number of alive neighbours of an alive
    [v]. *)
val live_degree : t -> int -> int

(** [delete t v] removes an alive vertex, updating neighbour degrees. *)
val delete : t -> int -> unit

(** [iter_live_neighbors t v ~f] visits alive neighbours of [v]. *)
val iter_live_neighbors : t -> int -> f:(int -> unit) -> unit

(** [live_vertices t] is the ascending array of alive vertices. *)
val live_vertices : t -> int array

(** [to_graph t] materialises the current view as a fresh graph plus
    the old-id map. *)
val to_graph : t -> Graph.t * int array
