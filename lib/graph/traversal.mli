(** Breadth-first search, connected components, and eccentricity
    estimates over {!Graph.t}. *)

(** [bfs_distances g src] returns the array of hop
    distances from [src]; unreachable vertices get [-1]. *)
val bfs_distances : Graph.t -> int -> int array

(** [components g] assigns each vertex a component id in
    [0 .. count-1] and returns [(ids, count)]. *)
val components : Graph.t -> int array * int

(** [component_members g] lists the vertex arrays of every connected
    component, largest first. *)
val component_members : Graph.t -> int array list

(** [largest_component g] is the induced subgraph of the largest
    component together with the old-id map. *)
val largest_component : Graph.t -> Graph.t * int array

(** [pseudo_diameter g] lower-bounds the diameter of the largest
    component with a double-sweep BFS (exact on trees, a good estimate
    elsewhere; matches how Table 2's "maximum diameter" column is
    consumed — as a shape statistic). *)
val pseudo_diameter : Graph.t -> int
