type t = {
  n : int;
  m : int;
  row : int array;   (* row.(v) .. row.(v+1) - 1 index into col *)
  col : int array;   (* concatenated sorted neighbour lists *)
}

let n g = g.n
let m g = g.m

let degree g v = g.row.(v + 1) - g.row.(v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !d then d := degree g v
  done;
  !d

let neighbors g v = Array.sub g.col g.row.(v) (degree g v)

let iter_neighbors g v ~f =
  for i = g.row.(v) to g.row.(v + 1) - 1 do
    f g.col.(i)
  done

let fold_neighbors g v ~init ~f =
  let acc = ref init in
  for i = g.row.(v) to g.row.(v + 1) - 1 do
    acc := f !acc g.col.(i)
  done;
  !acc

let iter_common_neighbors g u v ~f =
  let i = ref g.row.(u) and j = ref g.row.(v) in
  let iend = g.row.(u + 1) and jend = g.row.(v + 1) in
  while !i < iend && !j < jend do
    let x = g.col.(!i) and y = g.col.(!j) in
    if x = y then begin
      f x;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done

let mem_edge g u v =
  let lo = ref g.row.(u) and hi = ref (g.row.(u + 1) - 1) in
  let found = ref false in
  while not !found && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.col.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_edges g ~f =
  for u = 0 to g.n - 1 do
    for i = g.row.(u) to g.row.(u + 1) - 1 do
      let v = g.col.(i) in
      if u < v then f u v
    done
  done

let edges g =
  let out = Array.make g.m (0, 0) in
  let k = ref 0 in
  iter_edges g ~f:(fun u v ->
      out.(!k) <- (u, v);
      incr k);
  out

let degrees g = Array.init g.n (fun v -> degree g v)

(* Build CSR from an arbitrary (possibly dirty) edge array: two counting
   passes plus a per-row sort-dedup.  O(m log d). *)
let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range")
    edges;
  let deg = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edges;
  let row = Array.make (n + 1) 0 in
  for v = 1 to n do
    row.(v) <- row.(v - 1) + deg.(v - 1)
  done;
  let col = Array.make row.(n) 0 in
  let fill = Array.copy row in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        col.(fill.(u)) <- v;
        fill.(u) <- fill.(u) + 1;
        col.(fill.(v)) <- u;
        fill.(v) <- fill.(v) + 1
      end)
    edges;
  (* Sort each row and squeeze out duplicates in place, then compact. *)
  let new_row = Array.make (n + 1) 0 in
  let write = ref 0 in
  for v = 0 to n - 1 do
    new_row.(v) <- !write;
    let lo = row.(v) and hi = row.(v + 1) in
    let slice = Array.sub col lo (hi - lo) in
    Array.sort compare slice;
    let last = ref (-1) in
    Array.iter
      (fun w ->
        if w <> !last then begin
          col.(!write) <- w;
          incr write;
          last := w
        end)
      slice
  done;
  new_row.(n) <- !write;
  let col = Array.sub col 0 !write in
  { n; m = !write / 2; row = new_row; col }

let of_edge_list ~n edges = of_edges ~n (Array.of_list edges)

(* Adopt already-built CSR arrays (the binary-snapshot load path).
   Every invariant [of_edges] establishes is re-checked here — row
   monotonicity, strictly increasing loop-free rows, symmetry — so a
   corrupted or hand-forged snapshot cannot smuggle in a graph the
   algorithms would misbehave on.  O(m log d) for the symmetry pass. *)
let of_csr ~n ~row ~col =
  if n < 0 then invalid_arg "Graph.of_csr: negative n";
  if Array.length row <> n + 1 then
    invalid_arg "Graph.of_csr: row must have n + 1 entries";
  if row.(0) <> 0 || row.(n) <> Array.length col then
    invalid_arg "Graph.of_csr: row must span col exactly";
  for v = 0 to n - 1 do
    if row.(v + 1) < row.(v) then
      invalid_arg "Graph.of_csr: row offsets must be monotone"
  done;
  let g = { n; m = Array.length col / 2; row; col } in
  if Array.length col land 1 <> 0 then
    invalid_arg "Graph.of_csr: col length must be even (symmetric edges)";
  for v = 0 to n - 1 do
    let prev = ref (-1) in
    for i = row.(v) to row.(v + 1) - 1 do
      let w = col.(i) in
      if w < 0 || w >= n then invalid_arg "Graph.of_csr: neighbour out of range";
      if w = v then invalid_arg "Graph.of_csr: self loop";
      if w <= !prev then
        invalid_arg "Graph.of_csr: neighbours must be strictly increasing";
      prev := w;
      if not (mem_edge g w v) then
        invalid_arg "Graph.of_csr: adjacency is not symmetric"
    done
  done;
  g

let empty n = of_edges ~n [||]

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  of_edge_list ~n !edges

let induced g vs =
  (* Deduplicate while keeping ascending old-id order. *)
  let vs = Array.copy vs in
  Array.sort compare vs;
  let uniq = Dsd_util.Vec.Int.create () in
  Array.iter
    (fun v ->
      if Dsd_util.Vec.Int.length uniq = 0
         || Dsd_util.Vec.Int.get uniq (Dsd_util.Vec.Int.length uniq - 1) <> v
      then Dsd_util.Vec.Int.push uniq v)
    vs;
  let old_of_new = Dsd_util.Vec.Int.to_array uniq in
  let new_of_old = Array.make g.n (-1) in
  Array.iteri (fun i v -> new_of_old.(v) <- i) old_of_new;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      iter_neighbors g v ~f:(fun w ->
          let j = new_of_old.(w) in
          if j >= 0 && i < j then edges := (i, j) :: !edges))
    old_of_new;
  (of_edge_list ~n:(Array.length old_of_new) !edges, old_of_new)

let induced_mask g keep =
  let vs = Dsd_util.Vec.Int.create () in
  Array.iteri (fun v k -> if k then Dsd_util.Vec.Int.push vs v) keep;
  induced g (Dsd_util.Vec.Int.to_array vs)

let equal a b =
  a.n = b.n && a.m = b.m && a.row = b.row && a.col = b.col

let pp fmt g =
  Format.fprintf fmt "@[graph n=%d m=%d@]" g.n g.m
