(** Immutable undirected simple graphs in compressed sparse row form.

    Vertices are dense integers [0 .. n-1].  Neighbour lists are sorted,
    deduplicated, and never contain self loops, so adjacency tests are
    O(log d) and neighbourhood intersections are linear merges.  This is
    the substrate every algorithm in the library runs on (Section 3 of
    the paper: undirected, unweighted, simple graphs). *)

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph on vertices [0..n-1].  Duplicate
    edges, reversed duplicates and self loops are dropped.
    @raise Invalid_argument if an endpoint is outside [0..n-1]. *)
val of_edges : n:int -> (int * int) array -> t

(** [of_edge_list ~n edges] is [of_edges] over a list. *)
val of_edge_list : n:int -> (int * int) list -> t

(** [of_csr ~n ~row ~col] adopts ready-made CSR arrays — the
    binary-snapshot load path ({!Dsd_serve.Snapshot}), which reads the
    arrays straight off disk instead of re-parsing an edge list.  The
    arrays are owned by the graph afterwards and must not be mutated.
    @raise Invalid_argument unless the arrays satisfy every invariant
    [of_edges] establishes: [row] has [n + 1] monotone offsets spanning
    [col] exactly, each neighbour list is strictly increasing, in
    range, loop-free, and the adjacency is symmetric. *)
val of_csr : n:int -> row:int array -> col:int array -> t

(** [empty n] has [n] vertices and no edges. *)
val empty : int -> t

(** [complete n] is K_n. *)
val complete : int -> t

(** {1 Accessors} *)

(** Number of vertices [n = |V|]. *)
val n : t -> int

(** Number of undirected edges [m = |E|]. *)
val m : t -> int

(** [degree g v] is the number of neighbours of [v]. *)
val degree : t -> int -> int

(** [max_degree g] is the paper's [d]. *)
val max_degree : t -> int

(** [neighbors g v] is the sorted neighbour array of [v], copied with
    [Array.sub] on every call.  Convenient for tests; hot loops should
    use {!iter_neighbors}, {!fold_neighbors} or
    {!iter_common_neighbors}, which never allocate. *)
val neighbors : t -> int -> int array

(** [iter_neighbors g v ~f] applies [f] to each neighbour of [v] in
    increasing order.  Allocation-free. *)
val iter_neighbors : t -> int -> f:(int -> unit) -> unit

(** [fold_neighbors g v ~init ~f] folds [f] over the neighbours of [v]
    in increasing order.  Allocation-free (for unboxed accumulators). *)
val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [iter_common_neighbors g u v ~f] applies [f] to each common
    neighbour of [u] and [v] in increasing order — a linear merge of
    the two sorted rows, directly on the CSR arrays, with no per-call
    allocation (unlike pairing {!neighbors} with a manual merge). *)
val iter_common_neighbors : t -> int -> int -> f:(int -> unit) -> unit

(** [mem_edge g u v] tests adjacency in O(log min-degree). *)
val mem_edge : t -> int -> int -> bool

(** [iter_edges g ~f] applies [f u v] once per undirected edge with
    [u < v]. *)
val iter_edges : t -> f:(int -> int -> unit) -> unit

(** [edges g] lists the edges as pairs with [u < v]. *)
val edges : t -> (int * int) array

(** [degrees g] is the degree sequence (fresh array). *)
val degrees : t -> int array

(** {1 Derived graphs} *)

(** [induced g vs] is the subgraph induced by the vertex set [vs]
    (duplicates ignored), together with the map from new vertex ids to
    the original ids.  New ids preserve the relative order of old
    ids. *)
val induced : t -> int array -> t * int array

(** [induced_mask g keep] is [induced] over [{ v | keep.(v) }]. *)
val induced_mask : t -> bool array -> t * int array

(** {1 Comparison and display} *)

(** Structural equality (same n, same edge set). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
