type t = {
  order : int array;
  rank : int array;
  core : int array;
  degeneracy : int;
}

let compute g =
  let n = Graph.n g in
  let order = Array.make n 0 in
  let rank = Array.make n 0 in
  let core = Array.make n 0 in
  if n = 0 then { order; rank; core; degeneracy = 0 }
  else begin
    let queue =
      Dsd_util.Bucket_queue.create ~n ~max_key:(max 1 (Graph.max_degree g))
    in
    for v = 0 to n - 1 do
      Dsd_util.Bucket_queue.add queue ~item:v ~key:(Graph.degree g v)
    done;
    (* Peel minimum-degree vertices; the running maximum of pop keys is
       exactly the core number of the popped vertex. *)
    let kmax = ref 0 in
    for i = 0 to n - 1 do
      match Dsd_util.Bucket_queue.pop_min queue with
      | None -> assert false
      | Some (v, k) ->
        if k > !kmax then kmax := k;
        core.(v) <- !kmax;
        order.(i) <- v;
        rank.(v) <- i;
        Graph.iter_neighbors g v ~f:(fun w ->
            if Dsd_util.Bucket_queue.mem queue w then begin
              let kw = Dsd_util.Bucket_queue.key queue w in
              if kw > k then
                Dsd_util.Bucket_queue.update queue ~item:w ~key:(kw - 1)
            end)
    done;
    { order; rank; core; degeneracy = !kmax }
end
