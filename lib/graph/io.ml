(* Vertex ids are strict non-negative decimals: int_of_string_opt alone
   would silently accept OCaml literal syntax — hex ("0x10" = 16),
   underscores ("1_0" = 10), signs — and misparse a corrupt file into a
   plausible-looking graph. *)
let is_decimal s =
  String.length s > 0 && String.for_all (fun c -> c >= '0' && c <= '9') s

let parse_lines fold_lines =
  let raw = Dsd_util.Vec.Int.create () in
  fold_lines (fun original ->
      (* Strip trailing comments so "u v  # note" parses. *)
      let line =
        match String.index_opt original '#' with
        | Some i -> String.sub original 0 i
        | None -> original
      in
      let line = String.trim line in
      if String.length line > 0 && line.[0] <> '%' then begin
        let malformed why =
          failwith
            (Printf.sprintf "Io: %s in line: %s" why (String.trim original))
        in
        match String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t')
              |> List.filter (fun s -> s <> "") with
        | a :: b :: rest ->
          let parse s =
            if not (is_decimal s) then
              malformed (Printf.sprintf "malformed vertex id %S" s)
            else
              match int_of_string_opt s with
              | Some v -> v
              | None -> malformed (Printf.sprintf "vertex id %S out of range" s)
          in
          (* Extra columns (weights, timestamps) are ignored but must
             at least be numeric — anything else means the file is not
             an edge list. *)
          List.iter
            (fun s ->
              if float_of_string_opt s = None then
                malformed (Printf.sprintf "malformed trailing column %S" s))
            rest;
          Dsd_util.Vec.Int.push raw (parse a);
          Dsd_util.Vec.Int.push raw (parse b)
        | _ -> malformed "malformed edge line"
      end);
  let flat = Dsd_util.Vec.Int.to_array raw in
  (* Compact sparse ids to 0..n-1 preserving numeric order. *)
  let ids = Array.copy flat in
  Array.sort compare ids;
  let uniq = Dsd_util.Vec.Int.create () in
  Array.iter
    (fun v ->
      let len = Dsd_util.Vec.Int.length uniq in
      if len = 0 || Dsd_util.Vec.Int.get uniq (len - 1) <> v then
        Dsd_util.Vec.Int.push uniq v)
    ids;
  let old_of_new = Dsd_util.Vec.Int.to_array uniq in
  let tbl = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.replace tbl v i) old_of_new;
  let m = Array.length flat / 2 in
  let edges =
    Array.init m (fun i ->
        (Hashtbl.find tbl flat.(2 * i), Hashtbl.find tbl flat.((2 * i) + 1)))
  in
  (Graph.of_edges ~n:(Array.length old_of_new) edges, old_of_new)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      parse_lines (fun f ->
          try
            while true do
              f (input_line ic)
            done
          with End_of_file -> ()))

let read_string data =
  parse_lines (fun f -> List.iter f (String.split_on_char '\n' data))

let write path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "# n=%d m=%d\n" (Graph.n g) (Graph.m g);
      Graph.iter_edges g ~f:(fun u v -> Printf.fprintf oc "%d %d\n" u v))

let write_dot path g ~highlight =
  let marked = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace marked v ()) highlight;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "graph dsd {\n  node [shape=circle, fontsize=10];\n";
      for v = 0 to Graph.n g - 1 do
        if Hashtbl.mem marked v then
          Printf.fprintf oc "  %d [style=filled, fillcolor=gold];\n" v
      done;
      Graph.iter_edges g ~f:(fun u v ->
          let both = Hashtbl.mem marked u && Hashtbl.mem marked v in
          Printf.fprintf oc "  %d -- %d%s;\n" u v
            (if both then " [penwidth=2]" else ""));
      output_string oc "}\n")
