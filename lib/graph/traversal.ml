let bfs_distances g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u ~f:(fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let components g =
  let n = Graph.n g in
  let ids = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if ids.(s) < 0 then begin
      let c = !count in
      incr count;
      ids.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u ~f:(fun v ->
            if ids.(v) < 0 then begin
              ids.(v) <- c;
              Queue.add v queue
            end)
      done
    end
  done;
  (ids, !count)

let component_members g =
  let ids, count = components g in
  let buckets = Array.make count [] in
  (* Reverse iteration keeps each member list ascending. *)
  for v = Graph.n g - 1 downto 0 do
    buckets.(ids.(v)) <- v :: buckets.(ids.(v))
  done;
  Array.to_list buckets
  |> List.map Array.of_list
  |> List.sort (fun a b -> compare (Array.length b) (Array.length a))

let largest_component g =
  match component_members g with
  | [] -> (g, [||])
  | biggest :: _ -> Graph.induced g biggest

let pseudo_diameter g =
  if Graph.n g = 0 then 0
  else begin
    let lc, _ = largest_component g in
    if Graph.n lc = 0 then 0
    else begin
      let farthest dist =
        let best = ref 0 and best_d = ref (-1) in
        Array.iteri
          (fun v d ->
            if d > !best_d then begin
              best := v;
              best_d := d
            end)
          dist;
        (!best, !best_d)
      in
      let _, _ = farthest (bfs_distances lc 0) in
      let u, _ = farthest (bfs_distances lc 0) in
      let _, d = farthest (bfs_distances lc u) in
      max d 0
    end
  end
