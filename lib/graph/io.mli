(** Plain-text edge-list serialisation.

    Format: one [u v] pair per line, separated by spaces or tabs.
    ['#'] starts a comment (whole-line or trailing); lines starting
    with ['%'] are comments too (the Konect convention).  CRLF line
    endings and surrounding whitespace are tolerated.  Extra columns
    after the two endpoints (weights, timestamps) are accepted but
    must be numeric.  Vertex ids are strict non-negative decimal
    integers — ["0x10"], ["1_0"], ["+3"] and negatives are rejected
    with a one-line error naming the offending line — and may be
    arbitrarily sparse; they are compacted to a dense [0..n-1] range
    on load (SNAP files use sparse ids).  Self loops and duplicate
    (or reversed-duplicate) edges are dropped, matching
    {!Graph.of_edges}. *)

(** [read path] loads a graph and the map from dense ids back to the
    ids found in the file.
    @raise Failure on malformed lines. *)
val read : string -> Graph.t * int array

(** [read_string data] parses the same format from memory. *)
val read_string : string -> Graph.t * int array

(** [write path g] writes one edge per line with a size header
    comment. *)
val write : string -> Graph.t -> unit

(** [write_dot path g ~highlight] writes Graphviz DOT with the
    [highlight] vertices filled (e.g. a discovered densest subgraph),
    for the case-study figures. *)
val write_dot : string -> Graph.t -> highlight:int array -> unit
