(** Plain-text edge-list serialisation.

    Format: optional comment lines starting with ['#' ] or ['%'], then
    one [u v] pair per line.  Vertex ids may be arbitrary non-negative
    integers; they are compacted to a dense [0..n-1] range on load
    (SNAP files use sparse ids). *)

(** [read path] loads a graph and the map from dense ids back to the
    ids found in the file. *)
val read : string -> Graph.t * int array

(** [read_string data] parses the same format from memory. *)
val read_string : string -> Graph.t * int array

(** [write path g] writes one edge per line with a size header
    comment. *)
val write : string -> Graph.t -> unit

(** [write_dot path g ~highlight] writes Graphviz DOT with the
    [highlight] vertices filled (e.g. a discovered densest subgraph),
    for the case-study figures. *)
val write_dot : string -> Graph.t -> highlight:int array -> unit
