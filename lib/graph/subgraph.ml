type t = {
  base : Graph.t;
  present : bool array;
  deg : int array;
  mutable live : int;
  mutable edges : int;
}

let of_graph_subset g vs =
  let n = Graph.n g in
  let present = Array.make n false in
  Array.iter (fun v -> present.(v) <- true) vs;
  let deg = Array.make n 0 in
  let live = ref 0 and edges = ref 0 in
  for v = 0 to n - 1 do
    if present.(v) then begin
      incr live;
      let d = ref 0 in
      Graph.iter_neighbors g v ~f:(fun w -> if present.(w) then incr d);
      deg.(v) <- !d;
      edges := !edges + !d
    end
  done;
  { base = g; present; deg; live = !live; edges = !edges / 2 }

let of_graph g = of_graph_subset g (Array.init (Graph.n g) (fun v -> v))

let base t = t.base
let live_count t = t.live
let live_edges t = t.edges
let alive t v = t.present.(v)

let live_degree t v =
  if not t.present.(v) then invalid_arg "Subgraph.live_degree: dead vertex";
  t.deg.(v)

let delete t v =
  if not t.present.(v) then invalid_arg "Subgraph.delete: dead vertex";
  t.present.(v) <- false;
  t.live <- t.live - 1;
  t.edges <- t.edges - t.deg.(v);
  Graph.iter_neighbors t.base v ~f:(fun w ->
      if t.present.(w) then t.deg.(w) <- t.deg.(w) - 1)

let iter_live_neighbors t v ~f =
  Graph.iter_neighbors t.base v ~f:(fun w -> if t.present.(w) then f w)

let live_vertices t =
  let out = Dsd_util.Vec.Int.create ~capacity:(max 1 t.live) () in
  Array.iteri (fun v p -> if p then Dsd_util.Vec.Int.push out v) t.present;
  Dsd_util.Vec.Int.to_array out

let to_graph t = Graph.induced t.base (live_vertices t)
