(* Binary heap of (key, item) pairs in two parallel int vectors; the
   authoritative key of an item lives in [keys], so any heap entry
   whose key disagrees is stale and dropped on pop. *)

type t = {
  hkeys : Vec.Int.t;
  hitems : Vec.Int.t;
  keys : int array;
  present : bool array;
  mutable card : int;
}

let create ~n =
  {
    hkeys = Vec.Int.create ~capacity:(max 16 n) ();
    hitems = Vec.Int.create ~capacity:(max 16 n) ();
    keys = Array.make (max 1 n) 0;
    present = Array.make (max 1 n) false;
    card = 0;
  }

let mem t item = t.present.(item)

let key t item =
  if not t.present.(item) then invalid_arg "Lazy_heap.key: absent item";
  t.keys.(item)

let cardinal t = t.card

let swap t i j =
  let k = Vec.Int.get t.hkeys i and it = Vec.Int.get t.hitems i in
  Vec.Int.set t.hkeys i (Vec.Int.get t.hkeys j);
  Vec.Int.set t.hitems i (Vec.Int.get t.hitems j);
  Vec.Int.set t.hkeys j k;
  Vec.Int.set t.hitems j it

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Vec.Int.get t.hkeys i < Vec.Int.get t.hkeys parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let len = Vec.Int.length t.hkeys in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < len && Vec.Int.get t.hkeys l < Vec.Int.get t.hkeys !smallest then
    smallest := l;
  if r < len && Vec.Int.get t.hkeys r < Vec.Int.get t.hkeys !smallest then
    smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push_entry t ~item ~key =
  Vec.Int.push t.hkeys key;
  Vec.Int.push t.hitems item;
  sift_up t (Vec.Int.length t.hkeys - 1)

let add t ~item ~key =
  if t.present.(item) then invalid_arg "Lazy_heap.add: duplicate item";
  t.present.(item) <- true;
  t.keys.(item) <- key;
  t.card <- t.card + 1;
  push_entry t ~item ~key

let update t ~item ~key =
  if not t.present.(item) then invalid_arg "Lazy_heap.update: absent item";
  if t.keys.(item) <> key then begin
    t.keys.(item) <- key;
    push_entry t ~item ~key
  end

let remove t item =
  if not t.present.(item) then invalid_arg "Lazy_heap.remove: absent item";
  t.present.(item) <- false;
  t.card <- t.card - 1

let pop_heap_top t =
  let last = Vec.Int.length t.hkeys - 1 in
  let k = Vec.Int.get t.hkeys 0 and it = Vec.Int.get t.hitems 0 in
  swap t 0 last;
  ignore (Vec.Int.pop t.hkeys);
  ignore (Vec.Int.pop t.hitems);
  if Vec.Int.length t.hkeys > 0 then sift_down t 0;
  (it, k)

let rec pop_min t =
  if t.card = 0 then None
  else begin
    let item, k = pop_heap_top t in
    if t.present.(item) && t.keys.(item) = k then begin
      t.present.(item) <- false;
      t.card <- t.card - 1;
      Some (item, k)
    end
    else pop_min t
  end
