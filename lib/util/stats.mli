(** Small statistics helpers used by the dataset-characteristics table
    (Table 2 / Figure 18: power-law exponent, degree summaries). *)

val mean : float array -> float
val median : float array -> float
val max_int_arr : int array -> int
val min_int_arr : int array -> int

(** [power_law_alpha degrees] estimates the exponent alpha of
    f(x) ~ x^(-alpha) from the positive entries of a degree sequence
    using the discrete maximum-likelihood estimator of Clauset et al.
    with x_min = 1: alpha = 1 + n / sum(ln x_i). *)
val power_law_alpha : int array -> float

(** [histogram xs] maps each distinct value to its multiplicity. *)
val histogram : int array -> (int * int) list
