(** Float-noise guards shared by the core algorithms.

    Densities are ratios of small integers recovered through float
    arithmetic, so an exactly-integral value can arrive as
    [k +/- few ulps].  [safe_ceil] (resp. [safe_floor]) nudges by
    {!eps} before rounding so such a value maps to [k] instead of
    [k + 1] (resp. [k - 1]).  Under-rounding is the safe direction for
    core thresholds: a lower k keeps the CDS inside the core by
    nestedness. *)

(** Comparison slack, also the residual-capacity threshold of the flow
    networks. *)
val eps : float

(** [safe_ceil x] = [ceil (x - eps)], as an int. *)
val safe_ceil : float -> int

(** [safe_floor x] = [floor (x + eps)], as an int. *)
val safe_floor : float -> int
