(* Splitmix64: a tiny, high-quality, splittable PRNG.  Reference:
   Steele, Lea, Flood, "Fast splittable pseudorandom number generators"
   (OOPSLA'14).  State is a single 64-bit counter advanced by the golden
   gamma; output is a finalising mix of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Derive a decorrelated child by mixing one draw with a distinct
     finaliser round. *)
  { state = mix64 (Int64.logxor (bits64 t) 0xD1B54A32D192ED03L) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else go ()
  in
  go ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let pair_distinct t n =
  if n < 2 then invalid_arg "Prng.pair_distinct: need n >= 2";
  let a = int t n in
  let b = int t (n - 1) in
  (a, if b >= a then b + 1 else b)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let geometric t p =
  if not (p > 0. && p <= 1.) then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p = 1. then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    (* Clamp before the float->int conversion: for extreme p the ratio
       can exceed the integer range and int_of_float would be
       unspecified. *)
    let skips = floor (log u /. log (1. -. p)) in
    if skips >= 1e18 then max_int else int_of_float skips
