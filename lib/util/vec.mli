(** Growable arrays of unboxed ints and floats.

    Used on hot paths (flow-network arcs, instance postings) where
    OCaml lists or [Buffer]-style structures would box or fragment. *)

module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val push : t -> int -> unit

  (** [pop t] removes and returns the last element.
      @raise Invalid_argument on an empty vector. *)
  val pop : t -> int

  val clear : t -> unit
  val to_array : t -> int array
  val of_array : int array -> t
  val iter : (int -> unit) -> t -> unit
  val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
end

module Float : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val push : t -> float -> unit
  val clear : t -> unit
  val to_array : t -> float array
end
