(** Monotone bucket priority queue over items [0 .. n-1] with integer
    keys [0 .. max_key].

    This is the classic O(n + m) "bin sort" structure behind the
    Batagelj-Zaversnik k-core algorithm and all peeling loops in this
    library: [pop_min] is amortised O(1) as long as keys only decrease
    between pops (which peeling guarantees); [update] itself is O(1)
    unconditionally. *)

type t

(** [create ~n ~max_key] makes an empty queue for items [0..n-1] and
    keys [0..max_key]. *)
val create : n:int -> max_key:int -> t

(** [add t ~item ~key] inserts [item].  [item] must not be present. *)
val add : t -> item:int -> key:int -> unit

(** [mem t item] tests presence. *)
val mem : t -> int -> bool

(** [key t item] is the current key of a present [item]. *)
val key : t -> int -> int

(** [cardinal t] is the number of items currently queued. *)
val cardinal : t -> int

(** [update t ~item ~key] moves a present [item] to a new bucket. *)
val update : t -> item:int -> key:int -> unit

(** [remove t item] deletes a present [item]. *)
val remove : t -> int -> unit

(** [pop_min t] removes and returns a minimum-key item with its key, or
    [None] when empty. *)
val pop_min : t -> (int * int) option
