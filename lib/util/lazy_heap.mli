(** Min-heap over items [0 .. n-1] with lazy decrease-key.

    The bucket queue ({!Bucket_queue}) needs an array of size max-key;
    star-pattern degrees reach C(d, x) and would blow that up.  This
    heap instead pushes a fresh (key, item) pair on every update and
    discards stale pairs at pop time — O(log size) per operation with
    size bounded by the number of updates. *)

type t

val create : n:int -> t

(** [add t ~item ~key] inserts an absent item. *)
val add : t -> item:int -> key:int -> unit

val mem : t -> int -> bool
val key : t -> int -> int
val cardinal : t -> int

(** [update t ~item ~key] changes a present item's key (any
    direction). *)
val update : t -> item:int -> key:int -> unit

val remove : t -> int -> unit

(** [pop_min t] removes and returns a minimum-key item, or [None]. *)
val pop_min : t -> (int * int) option
