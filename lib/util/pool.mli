(** A reusable pool of worker domains.

    OCaml 5 domains are heavyweight (each spawn forks a full runtime
    participant), so spawning per parallel call — as the first cut of
    {!Dsd_clique.Parallel} did — wastes milliseconds per phase and
    caps how fine-grained parallelism can be.  A [Pool.t] spawns its
    workers once; every parallel phase then submits jobs to the same
    domains.

    {2 Determinism contract}

    All iteration primitives split [0 .. n-1] into {e contiguous}
    chunks, and chunked results are always merged in chunk-index
    order, so the merged sequence covers [0 .. n-1] in order no matter
    how chunks were scheduled or how many domains ran them.  Hence any
    computation whose per-index work is pure — or commutes like
    integer addition — produces results bit-identical to a sequential
    loop, for every pool size.  This is the invariant the parallel
    solvers build on: parallel decompositions return exactly the
    sequential answer.

    {2 Blocking contract}

    Jobs run to completion on the calling domain plus the workers; the
    caller participates, so a pool of size 1 degenerates to an
    ordinary loop with no synchronisation beyond two atomics.  Pools
    are not re-entrant: submitting a job while another is running
    (from inside a job body, or from another thread) raises {!Nested}
    rather than deadlocking. *)

type t

(** Raised when a job is submitted to a pool that is already running
    one — e.g. from inside a job body. *)
exception Nested

(** [create size] makes a pool of [size - 1] worker domains plus the
    caller, so [size] is the total parallelism.  [size] must be ≥ 1.
    The workers are spawned lazily, by the first job large enough to
    engage them: idle domains still take part in GC barriers, so a
    pool whose every job falls back to the inline path costs exactly
    nothing over not having a pool.

    [sequential_below] (default {!default_sequential_below}) is the
    work-item threshold under which a job runs inline on the calling
    domain instead of waking the workers: small jobs pay more in
    condition-variable round trips than the loop costs.  The fallback
    is semantics-preserving — chunk boundaries, merge order, exception
    behaviour and the busy/Nested discipline are identical; only the
    scheduling changes.  Pass [~sequential_below:0] to force every job
    onto the workers (tests that must exercise multi-domain paths). *)
val create : ?sequential_below:int -> int -> t

(** Total parallelism (caller + workers), as passed to {!create}. *)
val size : t -> int

(** The pool's inline-fallback threshold. *)
val sequential_below : t -> int

(** [parallel_width t ~n] is the number of domains a job over [n] work
    items will actually run on: [1] when it falls under the inline
    threshold, [size t] otherwise.  Callers that derive an explicit
    [chunk] from the pool size should divide by this instead, so a job
    destined for the inline path is not split — and does not pay any
    per-chunk setup — as if all workers were coming. *)
val parallel_width : t -> n:int -> int

(** Default [sequential_below] (65536 work items). *)
val default_sequential_below : int

(** Join the worker domains (a no-op when none were ever spawned).
    The pool must be idle; using it afterwards raises
    [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool size f] = [create], [f], [shutdown] (also on
    exception). *)
val with_pool : ?sequential_below:int -> int -> (t -> 'a) -> 'a

(** [parallel_for t ?chunk ?eager ?wrap ~n f] calls [f lo hi] for
    contiguous chunks [lo, hi) covering [0 .. n-1] exactly once,
    distributed over the pool by work stealing.  [chunk] is the chunk
    length (default: a fraction of [n / size], at least 1).  [eager]
    (default false) skips the [sequential_below] inline fallback:
    fan-outs with few items but huge per-item work (one flow
    subproblem per item) engage the workers no matter how small [n]
    is.  [wrap] runs once around each domain's participation — every
    domain participates in every job, even when it claims no chunks —
    which is where callers attach per-domain observability spans.  An
    exception from [f] is re-raised in the caller after the job drains
    (first one wins). *)
val parallel_for :
  t ->
  ?chunk:int ->
  ?eager:bool ->
  ?wrap:((unit -> unit) -> unit) ->
  n:int ->
  (int -> int -> unit) ->
  unit

(** [map_chunks t ?chunk ?eager ?wrap ~n f] is {!parallel_for} with
    one result per chunk, returned in chunk-index order (i.e.
    ascending [lo]) regardless of which domain computed which chunk. *)
val map_chunks :
  t ->
  ?chunk:int ->
  ?eager:bool ->
  ?wrap:((unit -> unit) -> unit) ->
  n:int ->
  (int -> int -> 'a) ->
  'a array

(** [fold_chunks t ?chunk ?eager ?wrap ~n ~init ~merge f] folds the
    {!map_chunks} results left-to-right in chunk order:
    [merge (… (merge init r0) …) rk].  Deterministic reduction even
    for non-commutative [merge]. *)
val fold_chunks :
  t ->
  ?chunk:int ->
  ?eager:bool ->
  ?wrap:((unit -> unit) -> unit) ->
  n:int ->
  init:'b ->
  merge:('b -> 'a -> 'b) ->
  (int -> int -> 'a) ->
  'b

(** [set_job_reporter f] installs a utilization hook called once per
    completed job (inline or fanned out) with the job's chunk count
    and the per-participant claim tally ([claimed.(0)] is the calling
    domain, [claimed.(i)] worker [i]).  Runs on the calling domain
    after the job drains.  {!Dsd_obs} installs a reporter that feeds
    the [pool_*] counters; the default reporter does nothing. *)
val set_job_reporter : (chunks:int -> claimed:int array -> unit) -> unit
