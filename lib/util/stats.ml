let mean a =
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let median a =
  if Array.length a = 0 then 0.
  else begin
    let b = Array.copy a in
    Array.sort compare b;
    let n = Array.length b in
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.
  end

let max_int_arr a = Array.fold_left max min_int a
let min_int_arr a = Array.fold_left min max_int a

let power_law_alpha degrees =
  let n = ref 0 and sum_log = ref 0. in
  Array.iter
    (fun d ->
      if d >= 1 then begin
        incr n;
        sum_log := !sum_log +. log (float_of_int d)
      end)
    degrees;
  if !n = 0 || !sum_log <= 0. then infinity
  else 1. +. (float_of_int !n /. !sum_log)

let histogram xs =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let c = try Hashtbl.find tbl x with Not_found -> 0 in
      Hashtbl.replace tbl x (c + 1))
    xs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
