exception Nested

type job = {
  n : int;
  chunk_len : int;
  nchunks : int;
  eager : bool;
  next : int Atomic.t;
  body : int -> int -> unit;
  wrap : (unit -> unit) -> unit;
  failed : exn option Atomic.t;
  (* claimed.(p) = chunks participant p executed (0 = caller, 1.. =
     workers).  Each participant writes only its own slot, and the
     caller reads after the drain barrier, so plain ints suffice. *)
  claimed : int array;
}

(* Utilization hook: called once per completed job with the chunk
   count and the per-participant claim tally.  [Dsd_obs] installs a
   reporter that turns these into pool counters; the default is free.
   The hook runs on the calling domain after the job drains. *)
let job_reporter : (chunks:int -> claimed:int array -> unit) ref =
  ref (fun ~chunks:_ ~claimed:_ -> ())

let set_job_reporter f = job_reporter := f

type t = {
  size : int;
  sequential_below : int;
  (* Spawned lazily by the first job that actually engages the pool:
     idle domains are not free (they still take part in GC barriers),
     so a pool whose every job falls under [sequential_below] must be
     indistinguishable from running without one. *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  wake : Condition.t;
  drained : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
  mutable alive : bool;
  busy : bool Atomic.t;
}

(* Every participant — caller and each worker — runs [wrap] exactly
   once per job, then claims chunks until the shared cursor runs out.
   Exceptions (from the body or from a broken [wrap]) are parked in
   [failed]; the job still drains so the chunk accounting stays
   simple, and the caller re-raises the first one. *)
let participate slot job =
  let claim () =
    let mine = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add job.next 1 in
      if i >= job.nchunks then continue_ := false
      else begin
        incr mine;
        let lo = i * job.chunk_len in
        let hi = min job.n (lo + job.chunk_len) in
        try job.body lo hi
        with e -> ignore (Atomic.compare_and_set job.failed None (Some e))
      end
    done;
    job.claimed.(slot) <- !mine
  in
  try job.wrap claim
  with e -> ignore (Atomic.compare_and_set job.failed None (Some e))

let worker t slot =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.generation = !last do
      Condition.wait t.wake t.m
    done;
    if t.generation = !last then begin
      (* [stop] set with no fresh job: exit. *)
      Mutex.unlock t.m;
      running := false
    end
    else begin
      last := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      participate slot job;
      Mutex.lock t.m;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.drained;
      Mutex.unlock t.m
    end
  done

(* Below this many work items, waking the workers costs more than the
   loop itself: every row of the pre-threshold BENCH_parallel.json had
   speedup < 1 at the 20k-vertex scale the bench drives, so the default
   is deliberately high — a pool only helps once the per-item work
   dwarfs the condition-variable round trip. *)
let default_sequential_below = 65536

let create ?(sequential_below = default_sequential_below) size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  if sequential_below < 0 then
    invalid_arg "Pool.create: sequential_below must be >= 0";
  {
    size;
    sequential_below;
    workers = [||];
    m = Mutex.create ();
    wake = Condition.create ();
    drained = Condition.create ();
    job = None;
    generation = 0;
    active = 0;
    stop = false;
    alive = true;
    busy = Atomic.make false;
  }

(* Only ever called from [run] while [busy] is held, so at most one
   caller can race to spawn. *)
let ensure_workers t =
  if Array.length t.workers = 0 && t.size > 1 then
    t.workers <-
      Array.init (t.size - 1) (fun i ->
          Domain.spawn (fun () -> worker t (i + 1)))

let size t = t.size
let sequential_below t = t.sequential_below

let parallel_width t ~n =
  if t.size = 1 || n < t.sequential_below then 1 else t.size

let shutdown t =
  if not t.alive then invalid_arg "Pool.shutdown: already shut down";
  if Atomic.get t.busy then invalid_arg "Pool.shutdown: pool is running a job";
  t.alive <- false;
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?sequential_below size f =
  let t = create ?sequential_below size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run t job =
  if not t.alive then invalid_arg "Pool: used after shutdown";
  if not (Atomic.compare_and_set t.busy false true) then raise Nested;
  (* Small jobs run inline on the caller: chunk boundaries, merge order
     and exception parking are untouched, only the workers stay asleep.
     [eager] jobs skip the threshold — few-item fan-outs whose per-item
     work is huge (one flow subproblem per item) engage the workers no
     matter how small [n] is. *)
  if
    t.size = 1 || job.nchunks <= 1
    || (job.n < t.sequential_below && not job.eager)
  then participate 0 job
  else begin
    ensure_workers t;
    Mutex.lock t.m;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.active <- t.size - 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    participate 0 job;
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.drained t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
  end;
  Atomic.set t.busy false;
  !job_reporter ~chunks:job.nchunks ~claimed:job.claimed;
  match Atomic.get job.failed with Some e -> raise e | None -> ()

let default_wrap f = f ()

(* Default granularity: several chunks per domain so the shared cursor
   load-balances skewed work, but coarse enough that the atomic claim
   is noise.  Callers whose per-chunk setup allocates (e.g. a scratch
   array per chunk) pass an explicitly coarser [chunk].  A job that
   will fall back to the inline path gets size-1 chunking: splitting
   it per the pool width would multiply any per-chunk setup cost for
   workers that never see the job. *)
let chunk_len_for t ?chunk ~eager n =
  match chunk with
  | Some c ->
    if c < 1 then invalid_arg "Pool: chunk must be >= 1";
    c
  | None ->
    let width = if n < t.sequential_below && not eager then 1 else t.size in
    max 1 (n / (8 * width))

let parallel_for t ?chunk ?(eager = false) ?(wrap = default_wrap) ~n body =
  if n < 0 then invalid_arg "Pool.parallel_for: n must be >= 0";
  if n = 0 then ()
  else begin
    let chunk_len = chunk_len_for t ?chunk ~eager n in
    let nchunks = (n + chunk_len - 1) / chunk_len in
    run t
      {
        n;
        chunk_len;
        nchunks;
        eager;
        next = Atomic.make 0;
        body;
        wrap;
        failed = Atomic.make None;
        claimed = Array.make t.size 0;
      }
  end

let map_chunks t ?chunk ?(eager = false) ?(wrap = default_wrap) ~n f =
  if n < 0 then invalid_arg "Pool.map_chunks: n must be >= 0";
  if n = 0 then [||]
  else begin
    let chunk_len = chunk_len_for t ?chunk ~eager n in
    let nchunks = (n + chunk_len - 1) / chunk_len in
    let slots = Array.make nchunks None in
    let body lo hi = slots.(lo / chunk_len) <- Some (f lo hi) in
    run t
      {
        n;
        chunk_len;
        nchunks;
        eager;
        next = Atomic.make 0;
        body;
        wrap;
        failed = Atomic.make None;
        claimed = Array.make t.size 0;
      };
    Array.map
      (function
        | Some x -> x
        | None -> invalid_arg "Pool.map_chunks: missing chunk result")
      slots
  end

let fold_chunks t ?chunk ?eager ?wrap ~n ~init ~merge f =
  Array.fold_left merge init (map_chunks t ?chunk ?eager ?wrap ~n f)
