exception Nested

type job = {
  n : int;
  chunk_len : int;
  nchunks : int;
  next : int Atomic.t;
  body : int -> int -> unit;
  wrap : (unit -> unit) -> unit;
  failed : exn option Atomic.t;
}

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  wake : Condition.t;
  drained : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
  mutable alive : bool;
  busy : bool Atomic.t;
}

(* Every participant — caller and each worker — runs [wrap] exactly
   once per job, then claims chunks until the shared cursor runs out.
   Exceptions (from the body or from a broken [wrap]) are parked in
   [failed]; the job still drains so the chunk accounting stays
   simple, and the caller re-raises the first one. *)
let participate job =
  let claim () =
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add job.next 1 in
      if i >= job.nchunks then continue_ := false
      else begin
        let lo = i * job.chunk_len in
        let hi = min job.n (lo + job.chunk_len) in
        try job.body lo hi
        with e -> ignore (Atomic.compare_and_set job.failed None (Some e))
      end
    done
  in
  try job.wrap claim
  with e -> ignore (Atomic.compare_and_set job.failed None (Some e))

let worker t =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.generation = !last do
      Condition.wait t.wake t.m
    done;
    if t.generation = !last then begin
      (* [stop] set with no fresh job: exit. *)
      Mutex.unlock t.m;
      running := false
    end
    else begin
      last := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      participate job;
      Mutex.lock t.m;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.drained;
      Mutex.unlock t.m
    end
  done

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      size;
      workers = [||];
      m = Mutex.create ();
      wake = Condition.create ();
      drained = Condition.create ();
      job = None;
      generation = 0;
      active = 0;
      stop = false;
      alive = true;
      busy = Atomic.make false;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  if not t.alive then invalid_arg "Pool.shutdown: already shut down";
  if Atomic.get t.busy then invalid_arg "Pool.shutdown: pool is running a job";
  t.alive <- false;
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool size f =
  let t = create size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run t job =
  if not t.alive then invalid_arg "Pool: used after shutdown";
  if not (Atomic.compare_and_set t.busy false true) then raise Nested;
  if t.size = 1 then participate job
  else begin
    Mutex.lock t.m;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.active <- t.size - 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    participate job;
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.drained t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
  end;
  Atomic.set t.busy false;
  match Atomic.get job.failed with Some e -> raise e | None -> ()

let default_wrap f = f ()

(* Default granularity: several chunks per domain so the shared cursor
   load-balances skewed work, but coarse enough that the atomic claim
   is noise.  Callers whose per-chunk setup allocates (e.g. a scratch
   array per chunk) pass an explicitly coarser [chunk]. *)
let chunk_len_for t ?chunk n =
  match chunk with
  | Some c ->
    if c < 1 then invalid_arg "Pool: chunk must be >= 1";
    c
  | None -> max 1 (n / (8 * t.size))

let parallel_for t ?chunk ?(wrap = default_wrap) ~n body =
  if n < 0 then invalid_arg "Pool.parallel_for: n must be >= 0";
  if n = 0 then ()
  else begin
    let chunk_len = chunk_len_for t ?chunk n in
    let nchunks = (n + chunk_len - 1) / chunk_len in
    run t
      {
        n;
        chunk_len;
        nchunks;
        next = Atomic.make 0;
        body;
        wrap;
        failed = Atomic.make None;
      }
  end

let map_chunks t ?chunk ?(wrap = default_wrap) ~n f =
  if n < 0 then invalid_arg "Pool.map_chunks: n must be >= 0";
  if n = 0 then [||]
  else begin
    let chunk_len = chunk_len_for t ?chunk n in
    let nchunks = (n + chunk_len - 1) / chunk_len in
    let slots = Array.make nchunks None in
    let body lo hi = slots.(lo / chunk_len) <- Some (f lo hi) in
    run t
      {
        n;
        chunk_len;
        nchunks;
        next = Atomic.make 0;
        body;
        wrap;
        failed = Atomic.make None;
      };
    Array.map
      (function
        | Some x -> x
        | None -> invalid_arg "Pool.map_chunks: missing chunk result")
      slots
  end

let fold_chunks t ?chunk ?wrap ~n ~init ~merge f =
  Array.fold_left merge init (map_chunks t ?chunk ?wrap ~n f)
