let now_s () = Unix.gettimeofday ()

let time f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)

module Span = struct
  type t = { mutable total : float; mutable started_at : float option }

  let create () = { total = 0.; started_at = None }

  let start t =
    match t.started_at with
    | Some _ -> invalid_arg "Timer.Span.start: already running"
    | None -> t.started_at <- Some (now_s ())

  let stop t =
    match t.started_at with
    | None -> invalid_arg "Timer.Span.stop: not running"
    | Some s ->
      t.total <- t.total +. (now_s () -. s);
      t.started_at <- None

  let total_s t = t.total

  let reset t =
    t.total <- 0.;
    t.started_at <- None
end
