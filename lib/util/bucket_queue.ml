(* Buckets are intrusive doubly-linked lists threaded through the
   [next]/[prev] arrays; [head.(k)] is the first item with key [k] (or
   -1).  [floor_hint] only ever lags the true minimum key, so [pop_min]
   scans forward from it; peeling workloads keep the scan amortised
   O(1) because the hint is reset on every key decrease. *)

type t = {
  head : int array;            (* key -> first item, -1 if empty *)
  next : int array;            (* item -> next item in its bucket *)
  prev : int array;            (* item -> previous item, -1 if head *)
  keys : int array;            (* item -> key *)
  present : bool array;
  mutable floor_hint : int;    (* lower bound on the minimum live key *)
  mutable card : int;
  max_key : int;
}

let create ~n ~max_key =
  if n < 0 || max_key < 0 then invalid_arg "Bucket_queue.create";
  {
    head = Array.make (max_key + 1) (-1);
    next = Array.make (max 1 n) (-1);
    prev = Array.make (max 1 n) (-1);
    keys = Array.make (max 1 n) 0;
    present = Array.make (max 1 n) false;
    floor_hint = 0;
    card = 0;
    max_key;
  }

let mem t item = t.present.(item)

let key t item =
  if not t.present.(item) then invalid_arg "Bucket_queue.key: absent item";
  t.keys.(item)

let cardinal t = t.card

let link t item k =
  let h = t.head.(k) in
  t.next.(item) <- h;
  t.prev.(item) <- -1;
  if h >= 0 then t.prev.(h) <- item;
  t.head.(k) <- item;
  t.keys.(item) <- k

let unlink t item =
  let k = t.keys.(item) in
  let p = t.prev.(item) and nx = t.next.(item) in
  if p >= 0 then t.next.(p) <- nx else t.head.(k) <- nx;
  if nx >= 0 then t.prev.(nx) <- p

let add t ~item ~key =
  if t.present.(item) then invalid_arg "Bucket_queue.add: duplicate item";
  if key < 0 || key > t.max_key then invalid_arg "Bucket_queue.add: key out of range";
  t.present.(item) <- true;
  t.card <- t.card + 1;
  if key < t.floor_hint then t.floor_hint <- key;
  link t item key

let remove t item =
  if not t.present.(item) then invalid_arg "Bucket_queue.remove: absent item";
  unlink t item;
  t.present.(item) <- false;
  t.card <- t.card - 1

let update t ~item ~key =
  if not t.present.(item) then invalid_arg "Bucket_queue.update: absent item";
  if key < 0 || key > t.max_key then invalid_arg "Bucket_queue.update: key out of range";
  if key <> t.keys.(item) then begin
    unlink t item;
    link t item key;
    if key < t.floor_hint then t.floor_hint <- key
  end

let pop_min t =
  if t.card = 0 then None
  else begin
    let k = ref t.floor_hint in
    while t.head.(!k) < 0 do
      incr k
    done;
    t.floor_hint <- !k;
    let item = t.head.(!k) in
    remove t item;
    Some (item, !k)
  end
