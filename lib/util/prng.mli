(** Deterministic pseudo-random number generator.

    All randomised components of the library (graph generators, property
    tests, benchmark workloads) draw from this splitmix64-based PRNG so
    that every run of every experiment is reproducible from a single
    integer seed.  The stdlib [Random] module is deliberately not used:
    its sequence is not stable across OCaml releases. *)

type t

(** [create seed] makes an independent generator.  Equal seeds give
    equal streams. *)
val create : int -> t

(** [copy t] snapshots the generator state. *)
val copy : t -> t

(** [split t] derives a fresh generator whose stream is independent of
    the remainder of [t]'s stream (useful to decorrelate subsystems). *)
val split : t -> t

(** [bits64 t] returns 64 uniformly random bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [pair_distinct t n] returns two distinct uniform values in
    [\[0, n)].  [n] must be ≥ 2. *)
val pair_distinct : t -> int -> int * int

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] picks a uniform element of the non-empty array [a]. *)
val choose : t -> 'a array -> 'a

(** [geometric t p] samples a geometric variate with success
    probability [p] ∈ (0, 1]: the number of failures before the first
    success. *)
val geometric : t -> float -> int
