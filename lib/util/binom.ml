let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    (* C(n,k) = prod_{i=1..k} (n-k+i)/i, exact at every step because the
       running product of i consecutive ratios is itself a binomial. *)
    let acc = ref 1 in
    (try
       for i = 1 to k do
         let next_num = n - k + i in
         if !acc > max_int / next_num then begin
           acc := max_int;
           raise Exit
         end;
         acc := !acc * next_num / i
       done
     with Exit -> ());
    !acc
  end

let choose_float n k =
  if k < 0 || k > n then 0.
  else begin
    let k = min k (n - k) in
    let acc = ref 1. in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end
