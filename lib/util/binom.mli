(** Binomial coefficients with overflow saturation.

    Clique-degree upper bounds in CoreApp are C(core, h-1), which for
    large cores and h = 6 exceeds 63-bit range on paper-scale inputs;
    saturating at [max_int] keeps the bounds sound (they are only ever
    used as upper bounds). *)

(** [choose n k] is C(n, k), saturating at [max_int]; 0 when [k < 0]
    or [k > n]. *)
val choose : int -> int -> int

(** [choose_float n k] is C(n, k) as a float (for statistics). *)
val choose_float : int -> int -> float
