(** Disjoint-set forest with path compression and union by rank.

    Used for connected-component bookkeeping in generators and tests. *)

type t

val create : int -> t
val find : t -> int -> int

(** [union t a b] merges the sets of [a] and [b]; returns [true] iff
    they were previously distinct. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int
