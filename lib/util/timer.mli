(** Wall-clock timing helpers for the benchmark harness and the
    instrumentation hooks inside [Core_exact] (Table 3 reports the
    fraction of time spent in core decomposition). *)

(** [now_s ()] is a monotonic timestamp in seconds. *)
val now_s : unit -> float

(** [time f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds. *)
val time : (unit -> 'a) -> 'a * float

(** A restartable accumulator of elapsed time. *)
module Span : sig
  type t

  val create : unit -> t
  val start : t -> unit
  val stop : t -> unit

  (** Total accumulated seconds across all start/stop intervals. *)
  val total_s : t -> float

  val reset : t -> unit
end
