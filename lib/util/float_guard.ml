let eps = 1e-9

let safe_ceil x = int_of_float (Float.ceil (x -. eps))

let safe_floor x = int_of_float (Float.floor (x +. eps))
