module F = Flow_network

let max_flow net ~s ~t =
  if s = t then invalid_arg "Edmonds_karp.max_flow: s = t";
  let n = F.node_count net in
  let parent_arc = Array.make n (-1) in
  let visited = Array.make n false in
  let queue = Queue.create () in
  let find_path () =
    Dsd_obs.Counter.incr Dsd_obs.Counter.Flow_level_builds;
    Array.fill visited 0 n false;
    Array.fill parent_arc 0 n (-1);
    Queue.clear queue;
    visited.(s) <- true;
    Queue.add s queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      F.iter_arcs_from net u ~f:(fun e ->
          let v = F.arc_dst net e in
          if (not visited.(v)) && F.residual net e > F.eps then begin
            visited.(v) <- true;
            parent_arc.(v) <- e;
            if v = t then found := true else Queue.add v queue
          end)
    done;
    !found
  in
  let arc_src e =
    (* The twin arc points back at the source of [e]. *)
    F.arc_dst net (e lxor 1)
  in
  let total = ref 0. in
  while find_path () do
    Dsd_obs.Counter.incr Dsd_obs.Counter.Flow_augmentations;
    (* Bottleneck along the stored path. *)
    let bottleneck = ref infinity in
    let v = ref t in
    while !v <> s do
      let e = parent_arc.(!v) in
      bottleneck := min !bottleneck (F.residual net e);
      v := arc_src e
    done;
    let v = ref t in
    while !v <> s do
      let e = parent_arc.(!v) in
      F.push net e !bottleneck;
      v := arc_src e
    done;
    total := !total +. !bottleneck
  done;
  !total
