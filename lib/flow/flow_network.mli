(** Directed flow networks with float capacities in residual-arc form.

    Every [add_edge] creates a forward arc and a zero-capacity reverse
    arc stored at adjacent indices, so the reverse of arc [e] is
    [e lxor 1] — the standard residual-graph layout shared by the Dinic
    and Edmonds-Karp solvers.

    Capacities are floats because the DSD binary search guesses a
    fractional density [alpha] (arc capacities [alpha * |V_Psi|],
    Algorithm 1 line 8).  [infinity] is a legal capacity (the
    clique-node-to-vertex arcs of Algorithm 1 line 11). *)

type t

(** [create n] makes a network with nodes [0 .. n-1] and no arcs. *)
val create : int -> t

(** Number of nodes. *)
val node_count : t -> int

(** Number of [add_edge] calls so far. *)
val edge_count : t -> int

(** [add_node t] appends a fresh node and returns its id ([node_count]
    before the call).  Existing arcs, flow and node ids are untouched,
    so an arena can grow in place between solver runs — the incremental
    subsystem appends one node per newly discovered pattern instance. *)
val add_node : t -> int

(** [add_edge t ~src ~dst ~cap] adds a forward arc of capacity [cap]
    (must be ≥ 0; may be [infinity]) and its residual twin.  Returns
    the forward arc id. *)
val add_edge : t -> src:int -> dst:int -> cap:float -> int

(** {1 Low-level accessors used by the solvers} *)

val arc_count : t -> int
val arc_dst : t -> int -> int
val arc_cap : t -> int -> float

(** Current flow on an arc (negative on residual twins). *)
val arc_flow : t -> int -> float

(** [set_cap t arc cap] overwrites the capacity of [arc] — the
    parametric-flow primitive behind {!Flow_build}'s alpha retargeting
    (only the alpha-dependent arc class changes between binary-search
    iterations, so the network is built once and re-capacitated in
    O(V)).

    @raise Invalid_argument if [arc] is out of range, [cap] is negative
    (or NaN), or [cap] lies more than [eps] below the flow already
    pushed through the arc — lowering under committed flow is rejected
    rather than saturated; call {!reset_flow} first. *)
val set_cap : t -> int -> float -> unit

(** [set_cap_carry t arc cap] overwrites the capacity of [arc] while
    keeping whatever flow is already committed — the warm-start variant
    of {!set_cap}.  The network may transiently violate [flow ≤ cap] on
    [arc]; callers must call {!restore_arc} on every arc they lowered
    before running a solver again.

    @raise Invalid_argument if [arc] is out of range or [cap] is
    negative (or NaN). *)
val set_cap_carry : t -> int -> float -> unit

(** [restore_arc t ~s arc] repairs the feasibility of [arc] after a
    {!set_cap_carry} lowered its capacity below the committed flow: the
    arc flow is reduced to the new capacity and the resulting excess at
    the arc's tail is drained back to the source [s] along
    flow-carrying arcs (flow decomposition).  Conservation holds at
    every other node throughout.  Returns the number of drain paths
    used (0 when the arc was already feasible) and adds it to the
    [Flow_excess_drained] counter.

    @raise Invalid_argument if [arc] is out of range, or no
    flow-carrying path back to [s] exists (impossible for the excess
    produced by lowering a sink arc of a feasible flow). *)
val restore_arc : t -> s:int -> int -> int

(** [restore_arc_head t ~sink arc] is the dual of {!restore_arc} for
    arcs whose {e tail} is the non-conserving source: the arc flow is
    reduced to the new capacity and the resulting deficit at the arc's
    head is repaired by cancelling downstream flow forward to [sink]
    (or around flow-carrying cycles).  Used when a vertex's pattern
    degree drops and its source arc must shrink under committed flow.

    @raise Invalid_argument if [arc] is out of range or the deficit
    cannot be cancelled (impossible for a feasible flow, by flow
    decomposition). *)
val restore_arc_head : t -> sink:int -> int -> int

(** [restore_arc_full t ~s ~sink arc] repairs an {e internal} arc (both
    endpoints conserving) lowered under committed flow: flow that
    circulated around the arc (head-to-tail paths, i.e. broken cycles)
    is cancelled first — it can reach neither terminal — then the
    remaining surplus at the tail is drained back to [s] as in
    {!restore_arc} and the matching deficit at the head is cancelled
    forward to [sink] as in {!restore_arc_head}.  Used when retiring a
    pattern instance whose arcs still carry flow. *)
val restore_arc_full : t -> s:int -> sink:int -> int -> int

(** Remaining residual capacity of an arc. *)
val residual : t -> int -> float

(** [push t arc f] sends [f] units along [arc] (and -[f] along its
    twin). *)
val push : t -> int -> float -> unit

(** [iter_arcs_from t v ~f] visits the arc ids leaving node [v]
    (forward and residual twins alike). *)
val iter_arcs_from : t -> int -> f:(int -> unit) -> unit

val arcs_from : t -> int -> int array

(** [reset_flow t] zeroes all flow, restoring initial capacities. *)
val reset_flow : t -> unit

(** [flow_value t ~s] is the net outflow at [s] — the total value of
    the flow currently committed to the network, independent of how
    many solver calls accumulated it. *)
val flow_value : t -> s:int -> float

(** Tolerance under which a residual capacity counts as exhausted. *)
val eps : float
