(** Edmonds-Karp (BFS augmenting paths) maximum flow.

    Slower than {!Dinic} but textbook-simple; kept as an independent
    oracle so property tests can cross-check the two solvers on random
    networks. *)

val max_flow : Flow_network.t -> s:int -> t:int -> float
