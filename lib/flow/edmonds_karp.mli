(** Edmonds-Karp (BFS augmenting paths) maximum flow.

    Slower than {!Dinic} but textbook-simple; kept as an independent
    oracle so property tests can cross-check the two solvers on random
    networks. *)

(** Returns the flow pushed {e by this call}; like {!Dinic.max_flow}
    it resumes correctly from any feasible residual state, so it can
    warm-start from a previous probe's flow. *)
val max_flow : Flow_network.t -> s:int -> t:int -> float
