type t = {
  n : int;
  dst : Dsd_util.Vec.Int.t;        (* arc -> head node *)
  cap : Dsd_util.Vec.Float.t;      (* arc -> capacity *)
  flow : Dsd_util.Vec.Float.t;     (* arc -> current flow (may be < 0 on twins) *)
  out : Dsd_util.Vec.Int.t array;  (* node -> arc ids *)
  mutable edges : int;
}

let eps = Dsd_util.Float_guard.eps

let create n =
  {
    n;
    dst = Dsd_util.Vec.Int.create ~capacity:64 ();
    cap = Dsd_util.Vec.Float.create ~capacity:64 ();
    flow = Dsd_util.Vec.Float.create ~capacity:64 ();
    out = Array.init (max 1 n) (fun _ -> Dsd_util.Vec.Int.create ~capacity:2 ());
    edges = 0;
  }

let node_count t = t.n
let edge_count t = t.edges
let arc_count t = Dsd_util.Vec.Int.length t.dst

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Flow_network.add_edge: node out of range";
  if not (cap >= 0.) then invalid_arg "Flow_network.add_edge: negative capacity";
  let id = arc_count t in
  Dsd_util.Vec.Int.push t.dst dst;
  Dsd_util.Vec.Float.push t.cap cap;
  Dsd_util.Vec.Float.push t.flow 0.;
  Dsd_util.Vec.Int.push t.out.(src) id;
  Dsd_util.Vec.Int.push t.dst src;
  Dsd_util.Vec.Float.push t.cap 0.;
  Dsd_util.Vec.Float.push t.flow 0.;
  Dsd_util.Vec.Int.push t.out.(dst) (id + 1);
  t.edges <- t.edges + 1;
  id

let arc_dst t e = Dsd_util.Vec.Int.get t.dst e
let arc_cap t e = Dsd_util.Vec.Float.get t.cap e
let arc_flow t e = Dsd_util.Vec.Float.get t.flow e

let set_cap t e cap =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.set_cap: arc out of range";
  if not (cap >= 0.) then invalid_arg "Flow_network.set_cap: negative capacity";
  (* Lowering a capacity below flow already pushed through the arc
     would leave a negative residual the solvers never repair; callers
     must [reset_flow] first (the retarget fast path does). *)
  if cap +. eps < Dsd_util.Vec.Float.get t.flow e then
    invalid_arg "Flow_network.set_cap: capacity below committed flow";
  Dsd_util.Vec.Float.set t.cap e cap

let residual t e =
  Dsd_util.Vec.Float.get t.cap e -. Dsd_util.Vec.Float.get t.flow e

let push t e f =
  Dsd_util.Vec.Float.set t.flow e (Dsd_util.Vec.Float.get t.flow e +. f);
  let twin = e lxor 1 in
  Dsd_util.Vec.Float.set t.flow twin (Dsd_util.Vec.Float.get t.flow twin -. f)

let iter_arcs_from t v ~f = Dsd_util.Vec.Int.iter f t.out.(v)

let arcs_from t v = Dsd_util.Vec.Int.to_array t.out.(v)

let reset_flow t =
  for e = 0 to arc_count t - 1 do
    Dsd_util.Vec.Float.set t.flow e 0.
  done
