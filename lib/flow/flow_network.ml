type t = {
  mutable n : int;
  dst : Dsd_util.Vec.Int.t;        (* arc -> head node *)
  cap : Dsd_util.Vec.Float.t;      (* arc -> capacity *)
  flow : Dsd_util.Vec.Float.t;     (* arc -> current flow (may be < 0 on twins) *)
  mutable out : Dsd_util.Vec.Int.t array;  (* node -> arc ids *)
  mutable edges : int;
  (* Scratch for [restore_arc]'s path searches: a node is visited in
     the current search iff [drain_mark.(u) = drain_epoch], so starting
     a new search is one increment instead of an O(n) clear (or worse,
     an O(n) allocation) per drained path. *)
  mutable drain_mark : int array;
  mutable drain_epoch : int;
}

let eps = Dsd_util.Float_guard.eps

let create n =
  {
    n;
    dst = Dsd_util.Vec.Int.create ~capacity:64 ();
    cap = Dsd_util.Vec.Float.create ~capacity:64 ();
    flow = Dsd_util.Vec.Float.create ~capacity:64 ();
    out = Array.init (max 1 n) (fun _ -> Dsd_util.Vec.Int.create ~capacity:2 ());
    edges = 0;
    drain_mark = [||];
    drain_epoch = 0;
  }

let node_count t = t.n
let edge_count t = t.edges
let arc_count t = Dsd_util.Vec.Int.length t.dst

let add_node t =
  let id = t.n in
  if id >= Array.length t.out then begin
    let old = t.out in
    let grown =
      Array.init
        (max 4 (2 * Array.length old))
        (fun i ->
          if i < Array.length old then old.(i)
          else Dsd_util.Vec.Int.create ~capacity:2 ())
    in
    t.out <- grown
  end;
  t.n <- t.n + 1;
  id

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Flow_network.add_edge: node out of range";
  if not (cap >= 0.) then invalid_arg "Flow_network.add_edge: negative capacity";
  let id = arc_count t in
  Dsd_util.Vec.Int.push t.dst dst;
  Dsd_util.Vec.Float.push t.cap cap;
  Dsd_util.Vec.Float.push t.flow 0.;
  Dsd_util.Vec.Int.push t.out.(src) id;
  Dsd_util.Vec.Int.push t.dst src;
  Dsd_util.Vec.Float.push t.cap 0.;
  Dsd_util.Vec.Float.push t.flow 0.;
  Dsd_util.Vec.Int.push t.out.(dst) (id + 1);
  t.edges <- t.edges + 1;
  id

let arc_dst t e = Dsd_util.Vec.Int.get t.dst e
let arc_cap t e = Dsd_util.Vec.Float.get t.cap e
let arc_flow t e = Dsd_util.Vec.Float.get t.flow e

let set_cap t e cap =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.set_cap: arc out of range";
  if not (cap >= 0.) then invalid_arg "Flow_network.set_cap: negative capacity";
  (* Lowering a capacity below flow already pushed through the arc
     would leave a negative residual the solvers never repair; callers
     must [reset_flow] first (the retarget fast path does). *)
  if cap +. eps < Dsd_util.Vec.Float.get t.flow e then
    invalid_arg "Flow_network.set_cap: capacity below committed flow";
  Dsd_util.Vec.Float.set t.cap e cap

let set_cap_carry t e cap =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.set_cap_carry: arc out of range";
  if not (cap >= 0.) then
    invalid_arg "Flow_network.set_cap_carry: negative capacity";
  (* Unlike [set_cap], committed flow is kept even when it now exceeds
     the capacity; callers must follow up with [restore_arc] before
     handing the network back to a solver. *)
  Dsd_util.Vec.Float.set t.cap e cap

let residual t e =
  Dsd_util.Vec.Float.get t.cap e -. Dsd_util.Vec.Float.get t.flow e

let push t e f =
  Dsd_util.Vec.Float.set t.flow e (Dsd_util.Vec.Float.get t.flow e +. f);
  let twin = e lxor 1 in
  Dsd_util.Vec.Float.set t.flow twin (Dsd_util.Vec.Float.get t.flow twin -. f)

let iter_arcs_from t v ~f = Dsd_util.Vec.Int.iter f t.out.(v)

let arcs_from t v = Dsd_util.Vec.Int.to_array t.out.(v)

let reset_flow t =
  for e = 0 to arc_count t - 1 do
    Dsd_util.Vec.Float.set t.flow e 0.
  done

let flow_value t ~s =
  (* Net outflow at [s]: twins of arcs into [s] carry the negated
     incoming flow, so summing over every arc id in [out.(s)] yields
     outflow - inflow. *)
  let total = ref 0. in
  iter_arcs_from t s ~f:(fun e -> total := !total +. arc_flow t e);
  !total

(* Walk backwards from [v] to [s] along flow-carrying arcs.  From node
   [u] we traverse arc ids [a] with [flow a < -eps]: those are the
   residual twins of arcs currently pushing flow *into* [u], and
   [arc_dst a] is the upstream node.  The epoch mark persists across
   backtracking inside one search — a dead end stays dead because no
   flow changes mid-search. *)
let rec drain_path t ~s u path =
  if u = s then Some path
  else begin
    t.drain_mark.(u) <- t.drain_epoch;
    let arcs = t.out.(u) in
    let len = Dsd_util.Vec.Int.length arcs in
    let result = ref None in
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i < len do
      let a = Dsd_util.Vec.Int.get arcs !i in
      incr i;
      if arc_flow t a < -.eps then begin
        let w = arc_dst t a in
        if t.drain_mark.(w) <> t.drain_epoch then
          match drain_path t ~s w (a :: path) with
          | Some _ as r ->
            result := r;
            found := true
          | None -> ()
      end
    done;
    !result
  end

let restore_arc t ~s e =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.restore_arc: arc out of range";
  let excess = arc_flow t e -. arc_cap t e in
  if excess <= eps then 0
  else begin
    (* Pull the arc back to capacity; its tail is now a surplus node. *)
    push t e (-.excess);
    let v = arc_dst t (e lxor 1) in
    if Array.length t.drain_mark < t.n then begin
      t.drain_mark <- Array.make t.n 0;
      t.drain_epoch <- 0
    end;
    let remaining = ref excess in
    let paths = ref 0 in
    while !remaining > eps do
      t.drain_epoch <- t.drain_epoch + 1;
      match drain_path t ~s v [] with
      | None ->
        invalid_arg "Flow_network.restore_arc: no flow-carrying path to source"
      | Some path ->
        (* Pushing along residual twins cancels the committed flow on
           the corresponding upstream arcs. *)
        let bottleneck =
          List.fold_left
            (fun acc a -> Float.min acc (-.arc_flow t a))
            !remaining path
        in
        List.iter (fun a -> push t a bottleneck) path;
        remaining := !remaining -. bottleneck;
        incr paths
    done;
    Dsd_obs.Counter.add Dsd_obs.Counter.Flow_excess_drained !paths;
    !paths
  end

(* Walk forwards from [v] towards [dst] along arcs with committed
   positive flow — the mirror image of [drain_path], used to repair the
   *head* side of a lowered arc by cancelling downstream flow. *)
let rec drain_path_fwd t ~dst u path =
  if u = dst then Some path
  else begin
    t.drain_mark.(u) <- t.drain_epoch;
    let arcs = t.out.(u) in
    let len = Dsd_util.Vec.Int.length arcs in
    let result = ref None in
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i < len do
      let a = Dsd_util.Vec.Int.get arcs !i in
      incr i;
      if arc_flow t a > eps then begin
        let w = arc_dst t a in
        if t.drain_mark.(w) <> t.drain_epoch then
          match drain_path_fwd t ~dst w (a :: path) with
          | Some _ as r ->
            result := r;
            found := true
          | None -> ()
      end
    done;
    !result
  end

let ensure_drain_mark t =
  if Array.length t.drain_mark < t.n then begin
    t.drain_mark <- Array.make t.n 0;
    t.drain_epoch <- 0
  end

(* [v] receives [amount] more flow than it sends (a lowered *outgoing*
   arc left it with a surplus): cancel incoming flow back to [s], or
   around flow-carrying cycles through [v] when the inflow is purely
   circulatory. *)
let drain_surplus t ~s v amount =
  let remaining = ref amount in
  let paths = ref 0 in
  while !remaining > eps do
    t.drain_epoch <- t.drain_epoch + 1;
    let path =
      match drain_path t ~s v [] with
      | Some _ as p -> p
      | None ->
        (* All remaining inflow circulates through [v]: pick an in-arc
           and walk its upstream side back around to [v]. *)
        let arcs = t.out.(v) in
        let len = Dsd_util.Vec.Int.length arcs in
        let cycle = ref None in
        let i = ref 0 in
        while !cycle = None && !i < len do
          let a = Dsd_util.Vec.Int.get arcs !i in
          incr i;
          if arc_flow t a < -.eps then begin
            t.drain_epoch <- t.drain_epoch + 1;
            match drain_path t ~s:v (arc_dst t a) [ a ] with
            | Some _ as p -> cycle := p
            | None -> ()
          end
        done;
        !cycle
    in
    match path with
    | None ->
      invalid_arg "Flow_network.drain_surplus: no flow-carrying path or cycle"
    | Some path ->
      let bottleneck =
        List.fold_left
          (fun acc a -> Float.min acc (-.arc_flow t a))
          !remaining path
      in
      List.iter (fun a -> push t a bottleneck) path;
      remaining := !remaining -. bottleneck;
      incr paths
  done;
  !paths

(* [v] sends [amount] more flow than it receives (a lowered *incoming*
   arc left it with a deficit): cancel outgoing flow forward to the
   sink, or around flow-carrying cycles through [v]. *)
let drain_deficit t ~sink v amount =
  let remaining = ref amount in
  let paths = ref 0 in
  while !remaining > eps do
    t.drain_epoch <- t.drain_epoch + 1;
    let path =
      match drain_path_fwd t ~dst:sink v [] with
      | Some _ as p -> p
      | None ->
        let arcs = t.out.(v) in
        let len = Dsd_util.Vec.Int.length arcs in
        let cycle = ref None in
        let i = ref 0 in
        while !cycle = None && !i < len do
          let a = Dsd_util.Vec.Int.get arcs !i in
          incr i;
          if arc_flow t a > eps then begin
            t.drain_epoch <- t.drain_epoch + 1;
            match drain_path_fwd t ~dst:v (arc_dst t a) [ a ] with
            | Some _ as p -> cycle := p
            | None -> ()
          end
        done;
        !cycle
    in
    match path with
    | None ->
      invalid_arg "Flow_network.drain_deficit: no flow-carrying path or cycle"
    | Some path ->
      let bottleneck =
        List.fold_left
          (fun acc a -> Float.min acc (arc_flow t a))
          !remaining path
      in
      List.iter (fun a -> push t a (-.bottleneck)) path;
      remaining := !remaining -. bottleneck;
      incr paths
  done;
  !paths

let restore_arc_head t ~sink e =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.restore_arc_head: arc out of range";
  let excess = arc_flow t e -. arc_cap t e in
  if excess <= eps then 0
  else begin
    (* Pull the arc back to capacity.  The tail must be a
       non-conserving node (the source); the head is left with a
       deficit that we repair by cancelling its downstream flow. *)
    push t e (-.excess);
    let v = arc_dst t e in
    ensure_drain_mark t;
    let paths = drain_deficit t ~sink v excess in
    Dsd_obs.Counter.add Dsd_obs.Counter.Flow_excess_drained paths;
    paths
  end

let restore_arc_full t ~s ~sink e =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.restore_arc_full: arc out of range";
  let excess = arc_flow t e -. arc_cap t e in
  if excess <= eps then 0
  else begin
    (* An internal arc: pulling it back to capacity leaves a surplus at
       the tail *and* a deficit at the head; both must be repaired for
       conservation to hold again.

       Some of the lowered flow may have circulated: the arc fed a path
       head -> ... -> tail that closed a cycle through it.  That flow
       can reach neither the source nor the sink, so cancel it first —
       each head->tail path repairs one unit of both imbalances.  By
       flow decomposition the remainder splits into equal s->tail and
       head->sink parts, which the directional drains handle. *)
    push t e (-.excess);
    let tail = arc_dst t (e lxor 1) in
    let head = arc_dst t e in
    ensure_drain_mark t;
    let remaining = ref excess in
    let bridges = ref 0 in
    let exhausted = ref false in
    while (not !exhausted) && !remaining > eps do
      t.drain_epoch <- t.drain_epoch + 1;
      match drain_path_fwd t ~dst:tail head [] with
      | None -> exhausted := true
      | Some path ->
        let bottleneck =
          List.fold_left
            (fun acc a -> Float.min acc (arc_flow t a))
            !remaining path
        in
        List.iter (fun a -> push t a (-.bottleneck)) path;
        remaining := !remaining -. bottleneck;
        incr bridges
    done;
    let paths =
      !bridges
      +
      if !remaining > eps then
        drain_surplus t ~s tail !remaining
        + drain_deficit t ~sink head !remaining
      else 0
    in
    Dsd_obs.Counter.add Dsd_obs.Counter.Flow_excess_drained paths;
    paths
  end
