type t = {
  n : int;
  dst : Dsd_util.Vec.Int.t;        (* arc -> head node *)
  cap : Dsd_util.Vec.Float.t;      (* arc -> capacity *)
  flow : Dsd_util.Vec.Float.t;     (* arc -> current flow (may be < 0 on twins) *)
  out : Dsd_util.Vec.Int.t array;  (* node -> arc ids *)
  mutable edges : int;
  (* Scratch for [restore_arc]'s path searches: a node is visited in
     the current search iff [drain_mark.(u) = drain_epoch], so starting
     a new search is one increment instead of an O(n) clear (or worse,
     an O(n) allocation) per drained path. *)
  mutable drain_mark : int array;
  mutable drain_epoch : int;
}

let eps = Dsd_util.Float_guard.eps

let create n =
  {
    n;
    dst = Dsd_util.Vec.Int.create ~capacity:64 ();
    cap = Dsd_util.Vec.Float.create ~capacity:64 ();
    flow = Dsd_util.Vec.Float.create ~capacity:64 ();
    out = Array.init (max 1 n) (fun _ -> Dsd_util.Vec.Int.create ~capacity:2 ());
    edges = 0;
    drain_mark = [||];
    drain_epoch = 0;
  }

let node_count t = t.n
let edge_count t = t.edges
let arc_count t = Dsd_util.Vec.Int.length t.dst

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Flow_network.add_edge: node out of range";
  if not (cap >= 0.) then invalid_arg "Flow_network.add_edge: negative capacity";
  let id = arc_count t in
  Dsd_util.Vec.Int.push t.dst dst;
  Dsd_util.Vec.Float.push t.cap cap;
  Dsd_util.Vec.Float.push t.flow 0.;
  Dsd_util.Vec.Int.push t.out.(src) id;
  Dsd_util.Vec.Int.push t.dst src;
  Dsd_util.Vec.Float.push t.cap 0.;
  Dsd_util.Vec.Float.push t.flow 0.;
  Dsd_util.Vec.Int.push t.out.(dst) (id + 1);
  t.edges <- t.edges + 1;
  id

let arc_dst t e = Dsd_util.Vec.Int.get t.dst e
let arc_cap t e = Dsd_util.Vec.Float.get t.cap e
let arc_flow t e = Dsd_util.Vec.Float.get t.flow e

let set_cap t e cap =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.set_cap: arc out of range";
  if not (cap >= 0.) then invalid_arg "Flow_network.set_cap: negative capacity";
  (* Lowering a capacity below flow already pushed through the arc
     would leave a negative residual the solvers never repair; callers
     must [reset_flow] first (the retarget fast path does). *)
  if cap +. eps < Dsd_util.Vec.Float.get t.flow e then
    invalid_arg "Flow_network.set_cap: capacity below committed flow";
  Dsd_util.Vec.Float.set t.cap e cap

let set_cap_carry t e cap =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.set_cap_carry: arc out of range";
  if not (cap >= 0.) then
    invalid_arg "Flow_network.set_cap_carry: negative capacity";
  (* Unlike [set_cap], committed flow is kept even when it now exceeds
     the capacity; callers must follow up with [restore_arc] before
     handing the network back to a solver. *)
  Dsd_util.Vec.Float.set t.cap e cap

let residual t e =
  Dsd_util.Vec.Float.get t.cap e -. Dsd_util.Vec.Float.get t.flow e

let push t e f =
  Dsd_util.Vec.Float.set t.flow e (Dsd_util.Vec.Float.get t.flow e +. f);
  let twin = e lxor 1 in
  Dsd_util.Vec.Float.set t.flow twin (Dsd_util.Vec.Float.get t.flow twin -. f)

let iter_arcs_from t v ~f = Dsd_util.Vec.Int.iter f t.out.(v)

let arcs_from t v = Dsd_util.Vec.Int.to_array t.out.(v)

let reset_flow t =
  for e = 0 to arc_count t - 1 do
    Dsd_util.Vec.Float.set t.flow e 0.
  done

let flow_value t ~s =
  (* Net outflow at [s]: twins of arcs into [s] carry the negated
     incoming flow, so summing over every arc id in [out.(s)] yields
     outflow - inflow. *)
  let total = ref 0. in
  iter_arcs_from t s ~f:(fun e -> total := !total +. arc_flow t e);
  !total

(* Walk backwards from [v] to [s] along flow-carrying arcs.  From node
   [u] we traverse arc ids [a] with [flow a < -eps]: those are the
   residual twins of arcs currently pushing flow *into* [u], and
   [arc_dst a] is the upstream node.  The epoch mark persists across
   backtracking inside one search — a dead end stays dead because no
   flow changes mid-search. *)
let rec drain_path t ~s u path =
  if u = s then Some path
  else begin
    t.drain_mark.(u) <- t.drain_epoch;
    let arcs = t.out.(u) in
    let len = Dsd_util.Vec.Int.length arcs in
    let result = ref None in
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i < len do
      let a = Dsd_util.Vec.Int.get arcs !i in
      incr i;
      if arc_flow t a < -.eps then begin
        let w = arc_dst t a in
        if t.drain_mark.(w) <> t.drain_epoch then
          match drain_path t ~s w (a :: path) with
          | Some _ as r ->
            result := r;
            found := true
          | None -> ()
      end
    done;
    !result
  end

let restore_arc t ~s e =
  if e < 0 || e >= arc_count t then
    invalid_arg "Flow_network.restore_arc: arc out of range";
  let excess = arc_flow t e -. arc_cap t e in
  if excess <= eps then 0
  else begin
    (* Pull the arc back to capacity; its tail is now a surplus node. *)
    push t e (-.excess);
    let v = arc_dst t (e lxor 1) in
    if Array.length t.drain_mark < t.n then begin
      t.drain_mark <- Array.make t.n 0;
      t.drain_epoch <- 0
    end;
    let remaining = ref excess in
    let paths = ref 0 in
    while !remaining > eps do
      t.drain_epoch <- t.drain_epoch + 1;
      match drain_path t ~s v [] with
      | None ->
        invalid_arg "Flow_network.restore_arc: no flow-carrying path to source"
      | Some path ->
        (* Pushing along residual twins cancels the committed flow on
           the corresponding upstream arcs. *)
        let bottleneck =
          List.fold_left
            (fun acc a -> Float.min acc (-.arc_flow t a))
            !remaining path
        in
        List.iter (fun a -> push t a bottleneck) path;
        remaining := !remaining -. bottleneck;
        incr paths
    done;
    Dsd_obs.Counter.add Dsd_obs.Counter.Flow_excess_drained !paths;
    !paths
  end
