module F = Flow_network

(* Level graph + DFS blocking flow with per-node arc cursors ("current
   arc" optimisation).  Float capacities: an arc is usable while its
   residual exceeds [F.eps]. *)

let max_flow net ~s ~t =
  let n = F.node_count net in
  if s = t then invalid_arg "Dinic.max_flow: s = t";
  let level = Array.make n (-1) in
  let cursor = Array.make n 0 in
  let arcs = Array.init n (fun v -> F.arcs_from net v) in
  let queue = Queue.create () in
  let build_levels () =
    Dsd_obs.Counter.incr Dsd_obs.Counter.Flow_level_builds;
    Array.fill level 0 n (-1);
    Queue.clear queue;
    level.(s) <- 0;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun e ->
          let v = F.arc_dst net e in
          if level.(v) < 0 && F.residual net e > F.eps then begin
            level.(v) <- level.(u) + 1;
            Queue.add v queue
          end)
        arcs.(u)
    done;
    level.(t) >= 0
  in
  let rec dfs u limit =
    if u = t then begin
      Dsd_obs.Counter.incr Dsd_obs.Counter.Flow_augmentations;
      limit
    end
    else begin
      let pushed = ref 0. in
      let continue = ref true in
      while !continue && cursor.(u) < Array.length arcs.(u) do
        let e = arcs.(u).(cursor.(u)) in
        let v = F.arc_dst net e in
        let r = F.residual net e in
        if level.(v) = level.(u) + 1 && r > F.eps then begin
          let f = dfs v (min (limit -. !pushed) r) in
          if f > F.eps then begin
            F.push net e f;
            pushed := !pushed +. f;
            if limit -. !pushed <= F.eps then continue := false
          end
          else
            (* Dead end below; advance past this arc. *)
            cursor.(u) <- cursor.(u) + 1
        end
        else cursor.(u) <- cursor.(u) + 1
      done;
      !pushed
    end
  in
  let total = ref 0. in
  while build_levels () do
    Array.fill cursor 0 n 0;
    let f = ref (dfs s infinity) in
    while !f > F.eps do
      total := !total +. !f;
      f := dfs s infinity
    done
  done;
  !total
