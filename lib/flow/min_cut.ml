module F = Flow_network

let source_side net ~s =
  let n = F.node_count net in
  let side = Array.make n false in
  let queue = Queue.create () in
  side.(s) <- true;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    F.iter_arcs_from net u ~f:(fun e ->
        let v = F.arc_dst net e in
        if (not side.(v)) && F.residual net e > F.eps then begin
          side.(v) <- true;
          Queue.add v queue
        end)
  done;
  side

let solve net ~s ~t =
  (* [Dinic.max_flow] returns only the flow pushed by this call; under
     a warm start the network already carries flow from earlier probes,
     so report the total committed value instead of the delta. *)
  let (_ : float) = Dinic.max_flow net ~s ~t in
  (F.flow_value net ~s, source_side net ~s)

let cut_capacity net side =
  let total = ref 0. in
  for u = 0 to F.node_count net - 1 do
    if side.(u) then
      F.iter_arcs_from net u ~f:(fun e ->
          (* Only original forward arcs carry capacity; twins have cap 0
             and contribute nothing. *)
          let v = F.arc_dst net e in
          if not side.(v) then total := !total +. F.arc_cap net e)
  done;
  !total
