(** Minimum s-t cut extraction.

    After a max-flow computation the source side [S] of a minimum cut
    is the set of nodes reachable from [s] in the residual graph
    (max-flow/min-cut theorem).  DSD consumes exactly this set: the
    vertex nodes in [S \ {s}] induce the candidate densest subgraph
    (Algorithm 1 line 18). *)

(** [solve net ~s ~t] runs {!Dinic.max_flow} and returns
    [(flow_value, source_side)] where [source_side.(v)] iff node [v]
    is on the source side of a minimum cut.  [flow_value] is the total
    flow committed to the network ({!Flow_network.flow_value}), not the
    delta pushed by this call — the two coincide on a freshly built or
    [reset_flow]ed network but differ under warm-started retargeting. *)
val solve : Flow_network.t -> s:int -> t:int -> float * bool array

(** [source_side net ~s] recomputes reachability on an
    already-saturated network. *)
val source_side : Flow_network.t -> s:int -> bool array

(** [cut_capacity net side] sums the capacities of arcs crossing from
    [side] to its complement (sanity-check helper for tests: equals the
    max-flow value on a saturated network). *)
val cut_capacity : Flow_network.t -> bool array -> float
