(** Dinic's maximum-flow algorithm.

    O(V^2 E) in general and far better in practice on the shallow
    layered networks produced by DSD binary search (source -> vertices
    -> clique nodes -> sink is depth 3).  This plays the role of
    Gusfield's min-cut routine in the paper's Exact/CoreExact; both
    compute exact min-cuts, and DSD only consumes the cut. *)

(** [max_flow net ~s ~t] saturates the network in place and returns the
    flow pushed {e by this call}.  The solver works purely on residual
    capacities, so it may be invoked on any feasible intermediate state
    — in particular on a warm-started network that still carries the
    flow of a previous probe (after {!Flow_network.restore_arc} repaired
    any lowered arcs) — and will augment it to a maximum flow.  Use
    {!Flow_network.flow_value} for the total committed value. *)
val max_flow : Flow_network.t -> s:int -> t:int -> float
