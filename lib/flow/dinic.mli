(** Dinic's maximum-flow algorithm.

    O(V^2 E) in general and far better in practice on the shallow
    layered networks produced by DSD binary search (source -> vertices
    -> clique nodes -> sink is depth 3).  This plays the role of
    Gusfield's min-cut routine in the paper's Exact/CoreExact; both
    compute exact min-cuts, and DSD only consumes the cut. *)

(** [max_flow net ~s ~t] saturates the network in place and returns the
    max-flow value. *)
val max_flow : Flow_network.t -> s:int -> t:int -> float
