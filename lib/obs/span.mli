(** Named, nestable timed regions with a thread-safe accumulator.

    Totals are inclusive wall-clock sums per name, accumulated across
    all domains; nesting the same name recursively would double-count,
    so instrument each region at exactly one layer (the phase names in
    {!Phase} follow that rule).  While recording is disabled every
    entry point costs one atomic read and allocates nothing. *)

type token

(** [with_ name f] times [f] under [name] (exception-safe).  Prefer
    this to manual {!enter}/{!exit}. *)
val with_ : string -> (unit -> 'a) -> 'a

val enter : string -> token
val exit : token -> unit

(** Accumulated inclusive seconds (resp. completed entries) for a
    name; 0 for never-entered names. *)
val total_s : string -> float

val entries : string -> int

(** All accumulated spans as [(name, total_s, entries)], largest total
    first. *)
val snapshot : unit -> (string * float * int) list

val reset : unit -> unit
