(** Formatting of accumulated counters/spans for `dsd --stats` and the
    bench harness. *)

(** Multi-line report: spans sorted by total time, then non-zero
    counters. *)
val to_string : unit -> string

(** Compact one-line [k=v] fields — the {!Phase.breakdown} span totals
    (always present, as [<phase>_s=<secs>]) followed by non-zero
    counters. *)
val kv_fields : unit -> string
