(* Canonical span names, one per pipeline phase, so the CLI, bench
   harness and tests agree on spelling.  Each name is opened by exactly
   one layer of the stack (see Span's no-recursive-nesting rule):

   - algorithm wrappers:  exact / core_exact / peel_app / core_app
   - inside them:         decompose, enumerate, build_network, retarget, flow
   - under Clique_parallel: clique_stripe (one per domain stripe). *)

let decompose = "decompose"
let enumerate = "enumerate"
let build_network = "build_network"
let retarget = "retarget"
let flow = "flow"
let exact = "exact"
let core_exact = "core_exact"
let peel_app = "peel_app"
let core_app = "core_app"
let clique_stripe = "clique_stripe"

(* One span per request handled by the serving layer (`dsd serve`);
   the algorithm spans above nest underneath it. *)
let serve_request = "serve_request"

(* One span per incremental operation (a delta batch applied to a live
   session, or a query answered from a patched arena). *)
let incremental = "incremental"

(* One span per top-k locally-densest solve (all extraction rounds of
   one {!Dsd_core.Topk_lds.run}); decompose/enumerate/flow nest
   underneath it. *)
let topk = "topk"

(* One span per density-friendly decomposition (all levels of one
   {!Dsd_core.Ld_decomposition.decompose}); decompose/enumerate/
   retarget/flow nest underneath it. *)
let ld = "ld"

(* The paper's Figure 8/Table 3 attribution buckets, in display
   order. *)
let breakdown = [ decompose; enumerate; build_network; retarget; flow ]
