(** Per-probe augmenting-path deltas.

    A "probe" is one min-cut solve inside a binary search over the
    density guess α.  {!record} is called by [Flow_build.solve] with the
    number of augmenting paths that probe consumed; warm-started
    retargets keep the committed flow, so their deltas shrink towards
    zero as the search converges.  No-ops while recording is disabled
    (see {!Control.enable}). *)

(** [record d] appends one probe's augmenting-path count. *)
val record : int -> unit

(** Recorded deltas, in probe order. *)
val deltas : unit -> int list

val count : unit -> int
val total : unit -> int
val reset : unit -> unit

(** Deltas as a comma-joined single token, e.g. ["12,3,0,1"] — used as
    the [augmenting_paths=...] field in bench payloads. *)
val to_field : unit -> string
