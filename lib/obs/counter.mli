(** Monotonic global counters for the algorithmic events the paper's
    experiments attribute cost to.  All operations are no-ops while
    recording is disabled (see {!Control.enable}); with recording on,
    updates are atomic and safe from multiple domains. *)

type name =
  | Flow_augmentations  (** augmenting paths found (Dinic / Edmonds-Karp) *)
  | Flow_level_builds   (** Dinic level-graph rebuilds; Edmonds-Karp BFS passes *)
  | Peeled_vertices     (** vertices removed by core-decomposition peeling *)
  | Clique_instances    (** h-cliques / pattern instances enumerated *)
  | Core_iterations     (** binary-search min-cut probes / CoreApp rounds *)
  | Flow_networks_built (** flow-network arenas constructed from scratch *)
  | Flow_retargets      (** prepared networks re-capacitated for a new alpha *)
  | Flow_warm_starts    (** retargets that kept the committed flow (no reset) *)
  | Flow_excess_drained (** flow-decomposition paths cancelled back to the source *)
  | Serve_requests      (** cacheable requests handled by [dsd serve] *)
  | Serve_cache_hits    (** serve requests answered from the result LRU *)
  | Serve_cache_misses  (** serve requests that ran a solver *)
  | Serve_cache_evictions (** LRU entries displaced by [--max-cached] *)
  | Serve_protocol_errors (** malformed frames / requests rejected by the server *)
  | Delta_edges_added     (** edges inserted by incremental delta batches *)
  | Delta_edges_removed   (** edges deleted by incremental delta batches *)
  | Delta_core_repairs    (** vertices whose core number an incremental repair moved *)
  | Delta_instances_added (** pattern instances appended to a live arena *)
  | Delta_instances_retired (** pattern instances retired from a live arena *)
  | Delta_arena_rebuilds  (** incremental arenas compacted/rebuilt from scratch *)
  | Topk_rounds           (** extraction rounds run by the top-k LDS solver *)
  | Topk_components_pruned (** candidate components skipped by the core bound *)
  | Topk_regions          (** disjoint locally-densest regions returned *)
  | Pool_jobs             (** parallel fan-outs run by the domain pool *)
  | Pool_chunks           (** work chunks dispatched across all pool jobs *)
  | Pool_chunks_lead      (** chunks claimed by each job's busiest participant *)
  | Pool_workers_engaged  (** participants that claimed >= 1 chunk, summed over jobs *)
  | Ld_levels             (** levels emitted by the density-friendly decomposition *)
  | Ld_probes             (** min-cut probes posed by the hierarchy binary searches *)
  | Ld_retargets          (** hierarchy probes answered by an O(V) arena retarget *)

val all : name list
val to_string : name -> string

(** [incr n] adds 1; [add n k] adds [k] in one atomic update — batch
    per-stripe tallies through [add] rather than hammering [incr]. *)
val incr : name -> unit

val add : name -> int -> unit

(** Current value (readable whether or not recording is enabled). *)
val get : name -> int

val reset : unit -> unit

(** All counters as [(name, value)] pairs, in declaration order. *)
val snapshot : unit -> (string * int) list
