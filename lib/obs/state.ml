(* The one flag every instrumentation site reads on its fast path.
   When false (the default), counters and spans are no-ops: callers
   branch on this and fall straight through without allocating. *)

let enabled = Atomic.make false

let now_s = Dsd_util.Timer.now_s
