let is_enabled () = Atomic.get State.enabled

let enable ?(sink = Trace.null) () =
  Trace.set_sink sink;
  Atomic.set State.enabled true

let disable () =
  Atomic.set State.enabled false;
  Trace.set_sink Trace.null

let reset () =
  Counter.reset ();
  Span.reset ();
  Probe.reset ()

let with_recording ?sink f =
  reset ();
  enable ?sink ();
  match f () with
  | x ->
    disable ();
    x
  | exception e ->
    disable ();
    raise e
