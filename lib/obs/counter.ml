type name =
  | Flow_augmentations
  | Flow_level_builds
  | Peeled_vertices
  | Clique_instances
  | Core_iterations
  | Flow_networks_built
  | Flow_retargets
  | Flow_warm_starts
  | Flow_excess_drained
  | Serve_requests
  | Serve_cache_hits
  | Serve_cache_misses
  | Serve_cache_evictions
  | Serve_protocol_errors
  | Delta_edges_added
  | Delta_edges_removed
  | Delta_core_repairs
  | Delta_instances_added
  | Delta_instances_retired
  | Delta_arena_rebuilds
  | Topk_rounds
  | Topk_components_pruned
  | Topk_regions
  | Pool_jobs
  | Pool_chunks
  | Pool_chunks_lead
  | Pool_workers_engaged
  | Ld_levels
  | Ld_probes
  | Ld_retargets

let all =
  [ Flow_augmentations; Flow_level_builds; Peeled_vertices; Clique_instances;
    Core_iterations; Flow_networks_built; Flow_retargets; Flow_warm_starts;
    Flow_excess_drained; Serve_requests; Serve_cache_hits; Serve_cache_misses;
    Serve_cache_evictions; Serve_protocol_errors; Delta_edges_added;
    Delta_edges_removed; Delta_core_repairs; Delta_instances_added;
    Delta_instances_retired; Delta_arena_rebuilds; Topk_rounds;
    Topk_components_pruned; Topk_regions; Pool_jobs; Pool_chunks;
    Pool_chunks_lead; Pool_workers_engaged; Ld_levels; Ld_probes;
    Ld_retargets ]

let index = function
  | Flow_augmentations -> 0
  | Flow_level_builds -> 1
  | Peeled_vertices -> 2
  | Clique_instances -> 3
  | Core_iterations -> 4
  | Flow_networks_built -> 5
  | Flow_retargets -> 6
  | Flow_warm_starts -> 7
  | Flow_excess_drained -> 8
  | Serve_requests -> 9
  | Serve_cache_hits -> 10
  | Serve_cache_misses -> 11
  | Serve_cache_evictions -> 12
  | Serve_protocol_errors -> 13
  | Delta_edges_added -> 14
  | Delta_edges_removed -> 15
  | Delta_core_repairs -> 16
  | Delta_instances_added -> 17
  | Delta_instances_retired -> 18
  | Delta_arena_rebuilds -> 19
  | Topk_rounds -> 20
  | Topk_components_pruned -> 21
  | Topk_regions -> 22
  | Pool_jobs -> 23
  | Pool_chunks -> 24
  | Pool_chunks_lead -> 25
  | Pool_workers_engaged -> 26
  | Ld_levels -> 27
  | Ld_probes -> 28
  | Ld_retargets -> 29

let slots = 30

let to_string = function
  | Flow_augmentations -> "flow_augmentations"
  | Flow_level_builds -> "flow_level_builds"
  | Peeled_vertices -> "peeled_vertices"
  | Clique_instances -> "clique_instances"
  | Core_iterations -> "core_iterations"
  | Flow_networks_built -> "flow_networks_built"
  | Flow_retargets -> "flow_retargets"
  | Flow_warm_starts -> "flow_warm_starts"
  | Flow_excess_drained -> "flow_excess_drained"
  | Serve_requests -> "serve_requests"
  | Serve_cache_hits -> "serve_cache_hits"
  | Serve_cache_misses -> "serve_cache_misses"
  | Serve_cache_evictions -> "serve_cache_evictions"
  | Serve_protocol_errors -> "serve_protocol_errors"
  | Delta_edges_added -> "delta_edges_added"
  | Delta_edges_removed -> "delta_edges_removed"
  | Delta_core_repairs -> "delta_core_repairs"
  | Delta_instances_added -> "delta_instances_added"
  | Delta_instances_retired -> "delta_instances_retired"
  | Delta_arena_rebuilds -> "delta_arena_rebuilds"
  | Topk_rounds -> "topk_rounds"
  | Topk_components_pruned -> "topk_components_pruned"
  | Topk_regions -> "topk_regions"
  | Pool_jobs -> "pool_jobs"
  | Pool_chunks -> "pool_chunks"
  | Pool_chunks_lead -> "pool_chunks_lead"
  | Pool_workers_engaged -> "pool_workers_engaged"
  | Ld_levels -> "ld_levels"
  | Ld_probes -> "ld_probes"
  | Ld_retargets -> "ld_retargets"

(* One atomic per counter: domains striping clique enumeration bump
   these concurrently.  Hot loops either read State.enabled first or
   accumulate locally and [add] once per batch. *)
let values = Array.init slots (fun _ -> Atomic.make 0)

let incr name =
  if Atomic.get State.enabled then Atomic.incr values.(index name)

let add name k =
  if k <> 0 && Atomic.get State.enabled then
    ignore (Atomic.fetch_and_add values.(index name) k)

let get name = Atomic.get values.(index name)

let reset () = Array.iter (fun a -> Atomic.set a 0) values

let snapshot () = List.map (fun n -> (to_string n, get n)) all

(* Pool utilization feed.  Dsd_obs depends on Dsd_util, so the pool
   cannot call Counter directly; instead it reports each fanned-out
   job's per-participant chunk claims through this hook.  Installed
   here (not in Control) because Counter is transitively referenced by
   every consumer of the library, so the linker can never drop this
   module — and with it the registration — as dead code. *)
let () =
  Dsd_util.Pool.set_job_reporter (fun ~chunks ~claimed ->
      incr Pool_jobs;
      add Pool_chunks chunks;
      add Pool_chunks_lead (Array.fold_left max 0 claimed);
      add Pool_workers_engaged
        (Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 claimed))
