(* Named, nestable timed regions.

   Each domain keeps its own enter/exit stack (domain-local storage),
   so spans opened inside [Domain.spawn] nest independently of the
   parent; totals accumulate into one global table under a mutex, so
   concurrent stripes of the same region sum across domains.  Exits
   are rare relative to the work inside a span, so the mutex is not a
   contention point. *)

type acc = { mutable total_s : float; mutable entries : int }

let table : (string, acc) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let stack_key : (string * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

type token = { name : string; start_s : float; live : bool }

(* Shared token for the disabled path: entering costs one atomic read
   and no allocation. *)
let dead = { name = ""; start_s = 0.; live = false }

let depth_of stack = List.length !stack

let enter name =
  if not (Atomic.get State.enabled) then dead
  else begin
    let stack = Domain.DLS.get stack_key in
    let t = State.now_s () in
    let depth = depth_of stack in
    stack := (name, t) :: !stack;
    Trace.emit (fun () ->
        Trace.Span_enter
          { name; t_s = t; domain = (Domain.self () :> int); depth });
    { name; start_s = t; live = true }
  end

let exit tok =
  if tok.live then begin
    let t = State.now_s () in
    let stack = Domain.DLS.get stack_key in
    (match !stack with
     | (n, _) :: rest when n = tok.name -> stack := rest
     | _ ->
       (* Unbalanced exit (an exception unwound past intermediate
          spans, say): drop frames down to ours if present. *)
       let rec unwind = function
         | (n, _) :: rest -> if n = tok.name then rest else unwind rest
         | [] -> []
       in
       stack := unwind !stack);
    let elapsed = t -. tok.start_s in
    Mutex.lock lock;
    (match Hashtbl.find_opt table tok.name with
     | Some a ->
       a.total_s <- a.total_s +. elapsed;
       a.entries <- a.entries + 1
     | None -> Hashtbl.add table tok.name { total_s = elapsed; entries = 1 });
    Mutex.unlock lock;
    Trace.emit (fun () ->
        Trace.Span_exit
          { name = tok.name;
            t_s = t;
            elapsed_s = elapsed;
            domain = (Domain.self () :> int);
            depth = depth_of (Domain.DLS.get stack_key) })
  end

let with_ name f =
  if not (Atomic.get State.enabled) then f ()
  else begin
    let tok = enter name in
    match f () with
    | x ->
      exit tok;
      x
    | exception e ->
      exit tok;
      raise e
  end

let total_s name =
  Mutex.lock lock;
  let t =
    match Hashtbl.find_opt table name with Some a -> a.total_s | None -> 0.
  in
  Mutex.unlock lock;
  t

let entries name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt table name with Some a -> a.entries | None -> 0
  in
  Mutex.unlock lock;
  c

let snapshot () =
  Mutex.lock lock;
  let rows =
    Hashtbl.fold (fun name a acc -> (name, a.total_s, a.entries) :: acc) table []
  in
  Mutex.unlock lock;
  List.sort (fun (_, a, _) (_, b, _) -> compare b a) rows

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock
