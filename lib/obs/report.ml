(* Human- and machine-readable views of the accumulated counters and
   spans, shared by `dsd --stats` and the bench harness. *)

let span_lines () =
  List.map
    (fun (name, total, entries) ->
      Printf.sprintf "  %-16s %10.4fs  x%d" name total entries)
    (Span.snapshot ())

let counter_lines () =
  List.filter_map
    (fun (name, v) ->
      if v = 0 then None else Some (Printf.sprintf "  %-20s %12d" name v))
    (Counter.snapshot ())

let to_string () =
  let buf = Buffer.create 512 in
  let spans = span_lines () in
  let counters = counter_lines () in
  Buffer.add_string buf "spans (inclusive wall-clock):\n";
  if spans = [] then Buffer.add_string buf "  (none recorded)\n"
  else List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) spans;
  Buffer.add_string buf "counters:\n";
  if counters = [] then Buffer.add_string buf "  (none recorded)\n"
  else List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) counters;
  (* Derived pool-utilization view: how the domain pool's fan-outs
     spread across workers.  imbalance = busiest participant's share
     relative to a perfectly even split (1.00 = flat). *)
  let jobs = Counter.get Counter.Pool_jobs in
  if jobs > 0 then begin
    let chunks = Counter.get Counter.Pool_chunks in
    let lead = Counter.get Counter.Pool_chunks_lead in
    let engaged = Counter.get Counter.Pool_workers_engaged in
    Buffer.add_string buf "pool utilization:\n";
    Buffer.add_string buf (Printf.sprintf "  %-20s %12d\n" "jobs" jobs);
    Buffer.add_string buf (Printf.sprintf "  %-20s %12d\n" "chunks" chunks);
    Buffer.add_string buf
      (Printf.sprintf "  %-20s %12.2f\n" "workers_per_job"
         (float_of_int engaged /. float_of_int jobs));
    if engaged > 0 && chunks > 0 then
      (* lead_j * engaged_j / chunks_j is a job's busiest-worker share
         relative to an even split; with only summed tallies we scale
         the summed lead by the mean engagement instead. *)
      Buffer.add_string buf
        (Printf.sprintf "  %-20s %12.2f\n" "imbalance"
           (float_of_int (lead * engaged) /. float_of_int (jobs * chunks)))
  end;
  (match Probe.deltas () with
  | [] -> ()
  | ds ->
    Buffer.add_string buf "per-probe augmenting paths:\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-20s %12d\n" "probes" (List.length ds));
    Buffer.add_string buf
      (Printf.sprintf "  deltas               [%s]\n"
         (String.concat " " (List.map string_of_int ds))));
  Buffer.contents buf

(* One-line `k=v` fields: the decompose/enumerate/build/flow breakdown
   plus non-zero counters.  Bench payloads append this so BENCH_*.json
   rows stay comparable across runs. *)
let kv_fields () =
  let phase_fields =
    List.map
      (fun name -> Printf.sprintf "%s_s=%.4f" name (Span.total_s name))
      Phase.breakdown
  in
  let counter_fields =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None else Some (Printf.sprintf "%s=%d" name v))
      (Counter.snapshot ())
  in
  let probe_fields =
    if Probe.count () = 0 then []
    else [ Printf.sprintf "augmenting_paths=%s" (Probe.to_field ()) ]
  in
  String.concat " " (phase_fields @ counter_fields @ probe_fields)
