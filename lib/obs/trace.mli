(** Structured trace events and the sinks that receive them.

    Three sinks: {!null} (drop everything — the default), {!memory}
    (an in-process buffer for tests), and {!jsonl} (one JSON object
    per line on an output channel).  Sinks are safe to write from
    multiple domains. *)

type event =
  | Span_enter of { name : string; t_s : float; domain : int; depth : int }
  | Span_exit of {
      name : string;
      t_s : float;
      elapsed_s : float;
      domain : int;
      depth : int;
    }
  | Message of { text : string; t_s : float; domain : int }

type sink

val null : sink
val memory : unit -> sink
val jsonl : out_channel -> sink

(** Events captured by a {!memory} sink, oldest first; [[]] for other
    sinks. *)
val memory_events : sink -> event list

val json_of_event : event -> string

(** Install [s] as the destination for subsequent events.  Call before
    {!Control.enable}; instrumentation only reads the sink. *)
val set_sink : sink -> unit

val sink : unit -> sink

(** [emit mk] sends [mk ()] to the active sink; with {!null} installed
    the thunk is never run and nothing allocates. *)
val emit : (unit -> event) -> unit

(** [message text] records a free-form annotation (no-op while
    recording is disabled). *)
val message : string -> unit
