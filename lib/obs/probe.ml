(* Per-probe deltas: each min-cut probe of a binary search records how
   many augmenting paths it needed, so warm starts show up as shrinking
   per-probe work rather than just a smaller grand total.  Appends are
   mutex-protected (probes may run on pool domains); everything is a
   no-op while recording is disabled. *)

let lock = Mutex.create ()
let deltas_rev = ref []

let record delta =
  if Atomic.get State.enabled then begin
    Mutex.lock lock;
    deltas_rev := delta :: !deltas_rev;
    Mutex.unlock lock
  end

let deltas () =
  Mutex.lock lock;
  let ds = List.rev !deltas_rev in
  Mutex.unlock lock;
  ds

let count () = List.length (deltas ())
let total () = List.fold_left ( + ) 0 (deltas ())

let reset () =
  Mutex.lock lock;
  deltas_rev := [];
  Mutex.unlock lock

(* Compact one-token encoding for `k=v` bench payloads. *)
let to_field () = String.concat "," (List.map string_of_int (deltas ()))
