type event =
  | Span_enter of { name : string; t_s : float; domain : int; depth : int }
  | Span_exit of {
      name : string;
      t_s : float;
      elapsed_s : float;
      domain : int;
      depth : int;
    }
  | Message of { text : string; t_s : float; domain : int }

type sink =
  | Null
  | Memory of { lock : Mutex.t; mutable events : event list }
  | Jsonl of { lock : Mutex.t; chan : out_channel }

let null = Null
let memory () = Memory { lock = Mutex.create (); events = [] }
let jsonl chan = Jsonl { lock = Mutex.create (); chan }

let memory_events = function
  | Memory m ->
    Mutex.lock m.lock;
    let es = List.rev m.events in
    Mutex.unlock m.lock;
    es
  | Null | Jsonl _ -> []

(* Hand-rolled JSON: the event grammar is tiny and fixed, names come
   from our own phase constants (no escaping beyond strings we own). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_event = function
  | Span_enter { name; t_s; domain; depth } ->
    Printf.sprintf
      {|{"event":"span_enter","name":"%s","t_s":%.6f,"domain":%d,"depth":%d}|}
      (json_escape name) t_s domain depth
  | Span_exit { name; t_s; elapsed_s; domain; depth } ->
    Printf.sprintf
      {|{"event":"span_exit","name":"%s","t_s":%.6f,"elapsed_s":%.6f,"domain":%d,"depth":%d}|}
      (json_escape name) t_s elapsed_s domain depth
  | Message { text; t_s; domain } ->
    Printf.sprintf {|{"event":"message","text":"%s","t_s":%.6f,"domain":%d}|}
      (json_escape text) t_s domain

let record sink e =
  match sink with
  | Null -> ()
  | Memory m ->
    Mutex.lock m.lock;
    m.events <- e :: m.events;
    Mutex.unlock m.lock
  | Jsonl j ->
    Mutex.lock j.lock;
    output_string j.chan (json_of_event e);
    output_char j.chan '\n';
    Mutex.unlock j.lock

(* The active sink.  Set from Control before recording is enabled, so
   instrumentation threads only ever read it. *)
let current = Atomic.make Null

let set_sink s = Atomic.set current s
let sink () = Atomic.get current

(* [emit mk] builds the event lazily: with a Null sink nothing is
   allocated. *)
let emit mk =
  match Atomic.get current with
  | Null -> ()
  | s -> record s (mk ())

let message text =
  if Atomic.get State.enabled then
    emit (fun () ->
        Message
          { text;
            t_s = State.now_s ();
            domain = (Domain.self () :> int) })
