(** Recording on/off switch.  Disabled by default: every instrumented
    hot path then reduces to a single flag read.  [enable] optionally
    installs a trace sink for structured events; counters and spans
    accumulate regardless of the sink. *)

val is_enabled : unit -> bool
val enable : ?sink:Trace.sink -> unit -> unit
val disable : unit -> unit

(** Zero counters and span totals (does not touch the sink). *)
val reset : unit -> unit

(** [with_recording ?sink f]: reset, enable, run [f], disable
    (exception-safe).  Accumulated counters/spans remain readable
    after it returns. *)
val with_recording : ?sink:Trace.sink -> (unit -> 'a) -> 'a
