(* h-clique enumeration: known counts, kClist vs the naive oracle,
   instance-store behaviour. *)

module G = Dsd_graph.Graph
module K = Dsd_clique.Kclist
module N = Dsd_clique.Naive
module Store = Dsd_clique.Instance_store
module Binom = Dsd_util.Binom

let test_kn_counts () =
  (* K_n contains C(n, h) h-cliques. *)
  for n = 2 to 8 do
    let g = G.complete n in
    for h = 1 to n do
      Alcotest.(check int)
        (Printf.sprintf "C(%d,%d)" n h)
        (Binom.choose n h) (K.count g ~h)
    done
  done

let test_no_cliques_beyond_omega () =
  let g = Dsd_data.Paper_graphs.cycle 6 in
  Alcotest.(check int) "edges" 6 (K.count g ~h:2);
  Alcotest.(check int) "no triangles in C6" 0 (K.count g ~h:3)

let test_figure2_triangles () =
  let g = Dsd_data.Paper_graphs.figure2 in
  Alcotest.(check int) "one triangle" 1 (K.count g ~h:3);
  match K.list g ~h:3 with
  | [| inst |] -> Alcotest.(check (array int)) "members" [| 1; 2; 3 |] inst
  | _ -> Alcotest.fail "expected exactly one triangle"

let test_instances_sorted_unique () =
  let g = Helpers.random_graph ~seed:9 ~max_n:12 ~max_m:40 () in
  let seen = Hashtbl.create 16 in
  K.iter g ~h:3 ~f:(fun inst ->
      let copy = Array.copy inst in
      Alcotest.(check bool) "sorted" true (copy.(0) < copy.(1) && copy.(1) < copy.(2));
      Alcotest.(check bool) "fresh" false (Hashtbl.mem seen copy);
      Hashtbl.add seen copy ())

let kclist_matches_naive_prop h g =
  let a = K.list g ~h |> Array.to_list |> List.map Array.to_list |> List.sort compare in
  let b = N.list g ~h |> Array.to_list |> List.map Array.to_list |> List.sort compare in
  a = b

let test_clique_degrees_sum () =
  let g = Helpers.random_graph ~seed:21 ~max_n:15 ~max_m:50 () in
  for h = 2 to 4 do
    let deg = Dsd_clique.Clique_count.degrees g ~h in
    Alcotest.(check int)
      (Printf.sprintf "sum deg = h * mu (h=%d)" h)
      (h * K.count g ~h)
      (Array.fold_left ( + ) 0 deg)
  done

let test_clique_degree_figure1 () =
  (* Paper, after Definition 3: in the two-triangles-sharing-an-edge
     subgraph, triangle-degrees are A=2, B=1, C=2 (A, C on the shared
     edge).  Encode: A=0, C=1 shared edge; B=2, D=3 apexes. *)
  let g = G.of_edge_list ~n:4 [ (0, 1); (0, 2); (1, 2); (0, 3); (1, 3) ] in
  let deg = Dsd_clique.Clique_count.degrees g ~h:3 in
  Alcotest.(check (array int)) "degrees" [| 2; 2; 1; 1 |] deg

let test_triangles_per_edge () =
  let g = G.complete 4 in
  let support = Dsd_clique.Clique_count.triangles_per_edge g in
  Alcotest.(check int) "six edges" 6 (Array.length support);
  Array.iter
    (fun ((_u, _v), c) -> Alcotest.(check int) "support 2 in K4" 2 c)
    support

let test_store_basic () =
  let g = G.complete 4 in
  let insts = K.list g ~h:3 in
  let store = Store.create ~n:4 insts in
  Alcotest.(check int) "total" 4 (Store.total store);
  Alcotest.(check int) "degree" 3 (Store.degree store 0);
  let touched = ref [] in
  let killed = Store.kill_vertex store 0 ~on_comember:(fun u -> touched := u :: !touched) in
  Alcotest.(check int) "killed" 3 killed;
  Alcotest.(check int) "live" 1 (Store.live_total store);
  Alcotest.(check int) "degree after" 0 (Store.degree store 0);
  (* Each survivor lost 2 of its 3 triangles. *)
  Alcotest.(check int) "survivor degree" 1 (Store.degree store 1);
  (* Co-member callbacks: each killed triangle notifies its 2 other
     members. *)
  Alcotest.(check int) "notifications" 6 (List.length !touched)

let test_store_kill_instance_and_reset () =
  let g = G.complete 4 in
  let store = Store.create ~n:4 (K.list g ~h:3) in
  Store.kill_instance store 0;
  Store.kill_instance store 0;
  Alcotest.(check int) "idempotent" 3 (Store.live_total store);
  let live_ids = ref [] in
  Store.iter_live_of_vertex store 3 ~f:(fun i -> live_ids := i :: !live_ids);
  Alcotest.(check bool) "posting filtered" true
    (not (List.mem 0 !live_ids));
  Store.reset store;
  Alcotest.(check int) "reset total" 4 (Store.live_total store);
  Alcotest.(check int) "reset degree" 3 (Store.degree store 0)

let store_degree_matches_recount_prop seed =
  (* Kill random vertices; the store's degrees must equal freshly
     enumerated degrees of the surviving induced subgraph. *)
  let r = Dsd_util.Prng.create seed in
  let g = Dsd_data.Gen.random_graph_for_tests r ~max_n:12 ~max_m:40 in
  let h = 3 in
  let store = Store.create ~n:(G.n g) (K.list g ~h) in
  let alive = Array.make (G.n g) true in
  let steps = Dsd_util.Prng.int r (max 1 (G.n g)) in
  for _ = 1 to steps do
    let v = Dsd_util.Prng.int r (G.n g) in
    if alive.(v) then begin
      alive.(v) <- false;
      ignore (Store.kill_vertex store v ~on_comember:(fun _ -> ()))
    end
  done;
  let live = Array.of_list (List.filter (fun v -> alive.(v)) (List.init (G.n g) Fun.id)) in
  let sub, map = G.induced g live in
  let expect = Dsd_clique.Clique_count.degrees sub ~h in
  let ok = ref true in
  Array.iteri
    (fun i v -> if Store.degree store v <> expect.(i) then ok := false)
    map;
  !ok

let suite =
  [
    Alcotest.test_case "K_n counts" `Quick test_kn_counts;
    Alcotest.test_case "C6 has no triangles" `Quick test_no_cliques_beyond_omega;
    Alcotest.test_case "figure 2 triangles" `Quick test_figure2_triangles;
    Alcotest.test_case "instances sorted unique" `Quick test_instances_sorted_unique;
    Helpers.qtest ~count:60 "kclist = naive (h=3)"
      (Helpers.small_graph_arb ~max_n:12 ~max_m:40 ())
      (kclist_matches_naive_prop 3);
    Helpers.qtest ~count:60 "kclist = naive (h=4)"
      (Helpers.small_graph_arb ~max_n:12 ~max_m:40 ())
      (kclist_matches_naive_prop 4);
    Helpers.qtest ~count:40 "kclist = naive (h=5)"
      (Helpers.small_graph_arb ~max_n:11 ~max_m:35 ())
      (kclist_matches_naive_prop 5);
    Alcotest.test_case "degree sum identity" `Quick test_clique_degrees_sum;
    Alcotest.test_case "figure 1 triangle degrees" `Quick test_clique_degree_figure1;
    Alcotest.test_case "triangles per edge" `Quick test_triangles_per_edge;
    Alcotest.test_case "store basic" `Quick test_store_basic;
    Alcotest.test_case "store kill/reset" `Quick test_store_kill_instance_and_reset;
    Helpers.qtest ~count:80 "store degrees = recount" QCheck.small_int
      store_degree_matches_recount_prop;
  ]
