(* Pattern library tests: shape recognition, automorphisms, instance
   counting on known graphs, matcher-vs-clique-lister agreement, and
   the Appendix-D star/4-cycle fast paths vs generic enumeration. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module M = Dsd_pattern.Match
module S = Dsd_pattern.Special
module Sub = Dsd_graph.Subgraph

let test_recognize () =
  Alcotest.(check bool) "edge is clique" true (P.edge.kind = P.Clique);
  Alcotest.(check bool) "triangle is clique" true (P.triangle.kind = P.Clique);
  (match (P.star 2).kind with
   | P.Star 2 -> ()
   | _ -> Alcotest.fail "2-star not recognised");
  (match (P.star 3).kind with
   | P.Star 3 -> ()
   | _ -> Alcotest.fail "3-star not recognised");
  Alcotest.(check bool) "diamond is C4" true (P.diamond.kind = P.Cycle4);
  Alcotest.(check bool) "paw generic" true (P.c3_star.kind = P.Generic);
  Alcotest.(check bool) "2-triangle generic" true (P.two_triangle.kind = P.Generic);
  (* User-built patterns are recognised structurally too. *)
  let my_star = P.make ~name:"mine" ~size:4 [ (2, 0); (2, 1); (2, 3) ] in
  (match my_star.kind with
   | P.Star 3 -> ()
   | _ -> Alcotest.fail "relabelled star not recognised");
  let my_c4 = P.make ~name:"sq" ~size:4 [ (0, 2); (2, 1); (1, 3); (3, 0) ] in
  Alcotest.(check bool) "relabelled C4" true (my_c4.kind = P.Cycle4)

let test_make_validation () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Pattern.make: pattern must be connected")
    (fun () -> ignore (P.make ~name:"x" ~size:4 [ (0, 1); (2, 3) ]));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Pattern.make: self loop")
    (fun () -> ignore (P.make ~name:"x" ~size:2 [ (0, 0) ]))

let test_automorphisms () =
  Alcotest.(check int) "edge" 2 (P.automorphisms P.edge);
  Alcotest.(check int) "triangle" 6 (P.automorphisms P.triangle);
  Alcotest.(check int) "2-star" 2 (P.automorphisms (P.star 2));
  Alcotest.(check int) "3-star" 6 (P.automorphisms (P.star 3));
  Alcotest.(check int) "C4" 8 (P.automorphisms P.diamond);
  Alcotest.(check int) "K4 minus edge" 4 (P.automorphisms P.two_triangle);
  Alcotest.(check int) "paw" 2 (P.automorphisms P.c3_star);
  Alcotest.(check int) "4-clique" 24 (P.automorphisms (P.clique 4))

let test_counts_in_k4 () =
  let k4 = G.complete 4 in
  (* Every 4-vertex pattern's instance count inside K4 equals the
     number of distinct edge-subsets of that shape. *)
  Alcotest.(check int) "C4 in K4" 3 (M.count k4 P.diamond);
  Alcotest.(check int) "K4-e in K4" 6 (M.count k4 P.two_triangle);
  Alcotest.(check int) "paw in K4" 12 (M.count k4 P.c3_star);
  Alcotest.(check int) "3-star in K4" 4 (M.count k4 (P.star 3));
  Alcotest.(check int) "2-star in K4" 12 (M.count k4 (P.star 2));
  Alcotest.(check int) "triangle via matcher" 4 (M.count k4 P.triangle)

let test_counts_in_known_graphs () =
  let c4 = Dsd_data.Paper_graphs.cycle 4 in
  Alcotest.(check int) "C4 in C4" 1 (M.count c4 P.diamond);
  Alcotest.(check int) "K4-e in C4" 0 (M.count c4 P.two_triangle);
  let c5 = Dsd_data.Paper_graphs.cycle 5 in
  Alcotest.(check int) "C4 in C5" 0 (M.count c5 P.diamond);
  Alcotest.(check int) "2-star in C5" 5 (M.count c5 (P.star 2));
  let p4 = Dsd_data.Paper_graphs.path 4 in
  Alcotest.(check int) "2-star in P4" 2 (M.count p4 (P.star 2));
  (* K4 minus an edge contains exactly one C4 (DESIGN.md §3's Example 6
     argument). *)
  let diamond_graph =
    G.of_edge_list ~n:4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]
  in
  Alcotest.(check int) "C4 in K4-e" 1 (M.count diamond_graph P.diamond);
  Alcotest.(check int) "K4-e in K4-e" 1 (M.count diamond_graph P.two_triangle);
  Alcotest.(check int) "paw in K4-e" 4 (M.count diamond_graph P.c3_star)

let test_five_vertex_patterns () =
  let k5 = G.complete 5 in
  (* 3-triangle (fan: apex + path of 4) and basket (house) counts in K5
     equal #embeddings / |Aut|. *)
  List.iter
    (fun psi ->
      let embeddings = M.embeddings_count k5 psi in
      let aut = P.automorphisms psi in
      Alcotest.(check int)
        (psi.P.name ^ " dedup = embeddings/aut")
        (embeddings / aut) (M.count k5 psi);
      Alcotest.(check int)
        (psi.P.name ^ " embeddings divisible by aut")
        0
        (embeddings mod aut))
    [ P.three_triangle; P.basket ]

let embeddings_vs_dedup_prop psi g =
  M.embeddings_count g psi = M.count g psi * P.automorphisms psi

let test_degrees_sum_identity () =
  let g = Helpers.random_graph ~seed:31 ~max_n:12 ~max_m:36 () in
  List.iter
    (fun psi ->
      let deg = M.degrees g psi in
      Alcotest.(check int)
        (psi.P.name ^ " degree sum")
        (psi.P.size * M.count g psi)
        (Array.fold_left ( + ) 0 deg))
    P.figure7

let test_pattern_to_graph () =
  let pg = P.to_graph P.two_triangle in
  Alcotest.(check int) "n" 4 (G.n pg);
  Alcotest.(check int) "m" 5 (G.m pg)

(* --- Appendix D fast paths --- *)

let star_degree_matches_match_prop x g =
  let psi = P.star x in
  let fast = S.star_degrees (Sub.of_graph g) ~x in
  let slow = M.degrees g psi in
  fast = slow

let c4_degree_matches_match_prop g =
  let fast = S.c4_degrees (Sub.of_graph g) in
  let slow = M.degrees g P.diamond in
  fast = slow

(* Decrement rules: delete random vertices, apply the decrement
   callbacks, compare against freshly computed degrees on the smaller
   live graph. *)
let star_on_delete_prop x seed =
  let r = Dsd_util.Prng.create seed in
  let g = Dsd_data.Gen.random_graph_for_tests r ~max_n:12 ~max_m:36 in
  let live = Sub.of_graph g in
  let degs = S.star_degrees live ~x in
  let ok = ref true in
  let steps = Dsd_util.Prng.int r (max 1 (G.n g)) in
  for _ = 1 to steps do
    let v = Dsd_util.Prng.int r (G.n g) in
    if Sub.alive live v then begin
      S.star_on_delete live ~x ~v ~apply:(fun u d -> degs.(u) <- degs.(u) - d);
      Sub.delete live v;
      degs.(v) <- 0
    end
  done;
  let fresh = S.star_degrees live ~x in
  for v = 0 to G.n g - 1 do
    if Sub.alive live v && degs.(v) <> fresh.(v) then ok := false
  done;
  !ok

let c4_on_delete_prop seed =
  let r = Dsd_util.Prng.create seed in
  let g = Dsd_data.Gen.random_graph_for_tests r ~max_n:12 ~max_m:36 in
  let live = Sub.of_graph g in
  let degs = S.c4_degrees live in
  let ok = ref true in
  let steps = Dsd_util.Prng.int r (max 1 (G.n g)) in
  for _ = 1 to steps do
    let v = Dsd_util.Prng.int r (G.n g) in
    if Sub.alive live v then begin
      S.c4_on_delete live ~v ~apply:(fun u d -> degs.(u) <- degs.(u) - d);
      Sub.delete live v;
      degs.(v) <- 0
    end
  done;
  let fresh = S.c4_degrees live in
  for v = 0 to G.n g - 1 do
    if Sub.alive live v && degs.(v) <> fresh.(v) then ok := false
  done;
  !ok

let test_star_degree_closed_form () =
  (* Hub of K1,5: centre sees C(5,2) 2-stars; each leaf is a tail in 4
     centre-stars... plus the leaf as centre has degree 1 < 2. *)
  let star_graph = G.of_edge_list ~n:6 [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ] in
  let deg = S.star_degrees (Sub.of_graph star_graph) ~x:2 in
  Alcotest.(check int) "centre" 10 deg.(0);
  Alcotest.(check int) "leaf" 4 deg.(1)

let suite =
  [
    Alcotest.test_case "recognize kinds" `Quick test_recognize;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "automorphism counts" `Quick test_automorphisms;
    Alcotest.test_case "counts in K4" `Quick test_counts_in_k4;
    Alcotest.test_case "counts in known graphs" `Quick test_counts_in_known_graphs;
    Alcotest.test_case "5-vertex patterns in K5" `Quick test_five_vertex_patterns;
    Helpers.qtest ~count:40 "embeddings = count * aut (paw)"
      (Helpers.small_graph_arb ~max_n:9 ~max_m:25 ())
      (embeddings_vs_dedup_prop P.c3_star);
    Helpers.qtest ~count:40 "embeddings = count * aut (C4)"
      (Helpers.small_graph_arb ~max_n:9 ~max_m:25 ())
      (embeddings_vs_dedup_prop P.diamond);
    Helpers.qtest ~count:40 "embeddings = count * aut (2-triangle)"
      (Helpers.small_graph_arb ~max_n:9 ~max_m:25 ())
      (embeddings_vs_dedup_prop P.two_triangle);
    Alcotest.test_case "degree sum identity" `Quick test_degrees_sum_identity;
    Alcotest.test_case "pattern to graph" `Quick test_pattern_to_graph;
    Helpers.qtest ~count:60 "star degrees: fast = generic (x=2)"
      (Helpers.small_graph_arb ~max_n:10 ~max_m:30 ())
      (star_degree_matches_match_prop 2);
    Helpers.qtest ~count:60 "star degrees: fast = generic (x=3)"
      (Helpers.small_graph_arb ~max_n:10 ~max_m:30 ())
      (star_degree_matches_match_prop 3);
    Helpers.qtest ~count:60 "C4 degrees: fast = generic"
      (Helpers.small_graph_arb ~max_n:10 ~max_m:30 ())
      c4_degree_matches_match_prop;
    Helpers.qtest ~count:80 "star decrement rule (x=2)" QCheck.small_int
      (star_on_delete_prop 2);
    Helpers.qtest ~count:80 "star decrement rule (x=3)" QCheck.small_int
      (star_on_delete_prop 3);
    Helpers.qtest ~count:80 "C4 decrement rule" QCheck.small_int c4_on_delete_prop;
    Alcotest.test_case "star closed form" `Quick test_star_degree_closed_form;
  ]
