(* Graph.Io robustness: malformed and messy edge lists.

   The loader must either parse a line into exactly the edge it means
   or fail loudly — a silent misparse (hex ids, sign prefixes, garbage
   columns) corrupts every downstream density.  These tests pin both
   directions: the mess it must tolerate (comments, CRLF, whitespace,
   duplicates, self loops, numeric extra columns) and the corruption
   it must reject. *)

module G = Dsd_graph.Graph
module Io = Dsd_graph.Io

let accepts name data ~n ~m ~map =
  Alcotest.test_case name `Quick (fun () ->
      let g, got_map = Io.read_string data in
      Alcotest.(check int) "n" n (G.n g);
      Alcotest.(check int) "m" m (G.m g);
      Alcotest.(check (array int)) "map" map got_map)

let rejects name data =
  Alcotest.test_case name `Quick (fun () ->
      match Io.read_string data with
      | exception Failure msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the line (%s)" msg)
          true
          (String.length msg > 0)
      | g, _ ->
        Alcotest.failf "accepted malformed input %S as n=%d m=%d" data
          (G.n g) (G.m g))

let tolerated =
  [
    accepts "trailing comment after edge" "0 1 # weight comes later\n2 0\n"
      ~n:3 ~m:2 ~map:[| 0; 1; 2 |];
    accepts "comment-only and blank lines" "# header\n\n% konect\n   \n0 1\n"
      ~n:2 ~m:1 ~map:[| 0; 1 |];
    accepts "crlf endings" "0 1\r\n1 2\r\n" ~n:3 ~m:2 ~map:[| 0; 1; 2 |];
    accepts "trailing and leading whitespace" "  0\t1   \n\t1 2\t\r\n" ~n:3
      ~m:2 ~map:[| 0; 1; 2 |];
    accepts "self loops dropped, vertex kept" "0 1\n4 4\n" ~n:3 ~m:1
      ~map:[| 0; 1; 4 |];
    accepts "duplicate and reversed edges collapse" "5 9\n9 5\n5 9\n" ~n:2
      ~m:1 ~map:[| 5; 9 |];
    accepts "numeric weight column ignored" "0 1 2.5\n1 2 -1e3\n" ~n:3 ~m:2
      ~map:[| 0; 1; 2 |];
    accepts "numeric timestamp columns ignored" "0 1 1 1234567\n" ~n:2 ~m:1
      ~map:[| 0; 1 |];
    accepts "empty input is the empty graph" "# nothing\n% at all\n" ~n:0
      ~m:0 ~map:[||];
    accepts "sparse ids compact in numeric order" "1000000000 7\n" ~n:2 ~m:1
      ~map:[| 7; 1000000000 |];
  ]

let rejected =
  [
    rejects "single token" "42\n";
    rejects "words" "hello world\n";
    rejects "negative id" "0 -1\n";
    rejects "plus-signed id" "+1 2\n";
    (* int_of_string would happily read these two as 16 and 10. *)
    rejects "hex id" "0x10 1\n";
    rejects "underscore id" "1_0 2\n";
    rejects "float id" "1.5 2\n";
    rejects "id out of int range" "99999999999999999999999999 1\n";
    rejects "garbage trailing column" "0 1 oops\n";
  ]

(* One subtlety worth pinning: '#' always starts a comment, even glued
   to an id, so "2 3# x" truncates to "2 3". *)
let glued_comment =
  Alcotest.test_case "hash directly after id starts the comment" `Quick
    (fun () ->
      let g, map = Io.read_string "0 1\n2 3# tail\n" in
      Alcotest.(check int) "n" 4 (G.n g);
      Alcotest.(check int) "m" 2 (G.m g);
      Alcotest.(check (array int)) "map" [| 0; 1; 2; 3 |] map)

let roundtrip =
  Alcotest.test_case "write/read roundtrip preserves edges through map"
    `Quick (fun () ->
      let g = Helpers.random_graph ~seed:31 ~max_n:30 ~max_m:90 () in
      let path = Filename.temp_file "dsd_io" ".edges" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Dsd_graph.Io.write path g;
          let g', map = Dsd_graph.Io.read path in
          Alcotest.(check int) "m" (G.m g) (G.m g');
          G.iter_edges g' ~f:(fun u v ->
              Alcotest.(check bool)
                (Printf.sprintf "edge %d-%d survives" map.(u) map.(v))
                true
                (G.mem_edge g map.(u) map.(v)))))

let suite = tolerated @ rejected @ [ glued_comment; roundtrip ]
