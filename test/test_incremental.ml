(* The incremental subsystem pinned against from-scratch rebuilds.

   The battery streams random insert/delete batches (30+ seeds, h in
   {2, 3}, mixed batch sizes) into one long-lived Inc_dsd session and
   asserts, after EVERY batch, that the patched state is bit-identical
   to a rebuild: core numbers against a fresh Degeneracy pass, density
   and CDS vertex set against a fresh session on the rebuilt graph,
   and density against CoreExact.  Every failure message carries the
   Helpers.seed_ctx replay recipe. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Dyn = Dsd_graph.Dynamic
module Inc = Dsd_core.Inc_dsd
module Delta = Dsd_check.Delta
module F = Dsd_flow.Flow_network

let psi_of_h = function
  | 2 -> P.edge
  | 3 -> P.triangle
  | h -> P.clique h

let sorted_edges edges =
  let l =
    Array.to_list
      (Array.map (fun (u, v) -> if u <= v then (u, v) else (v, u)) edges)
  in
  List.sort_uniq compare l

(* One batch's worth of assertions: patched session vs rebuilt graph. *)
let check_against_rebuild ~ctx session rebuilt =
  let psi = Inc.psi session in
  let dyn = Inc.dynamic session in
  Alcotest.(check (list (pair int int)))
    (ctx ^ ": snapshot edge set")
    (sorted_edges (G.edges rebuilt))
    (sorted_edges (G.edges (Dyn.snapshot dyn)));
  Alcotest.(check (array int))
    (ctx ^ ": incremental core numbers vs fresh Degeneracy")
    (Dsd_graph.Degeneracy.compute rebuilt).Dsd_graph.Degeneracy.core
    (Dyn.core_numbers dyn);
  let patched = Inc.query session in
  let fresh = Inc.query (Inc.create rebuilt psi) in
  if patched.density <> fresh.density then
    Alcotest.failf "%s: patched density %.17g <> rebuilt %.17g" ctx
      patched.density fresh.density;
  Alcotest.(check (array int))
    (ctx ^ ": patched CDS vertex set vs rebuilt")
    fresh.vertices patched.vertices;
  let core =
    (Dsd_core.Core_exact.run rebuilt psi).Dsd_core.Core_exact.subgraph
  in
  if patched.density <> core.density then
    Alcotest.failf "%s: incremental density %.17g <> CoreExact %.17g" ctx
      patched.density core.density

(* ---- the differential battery ---- *)

let battery_one ~seed ~h =
  let g0 = Helpers.random_graph ~seed ~max_n:12 ~max_m:25 () in
  let n = G.n g0 in
  let psi = psi_of_h h in
  let session = Inc.create g0 psi in
  let rng = Helpers.rng ((seed * 1000) + h) in
  let edges = ref (G.edges g0) in
  let batch_no = ref 0 in
  (* several generator rounds so the stream mixes growth and decay *)
  for _round = 1 to 2 do
    let script = Delta.generate rng (G.of_edges ~n !edges) in
    Array.iter
      (fun batch ->
        incr batch_no;
        ignore (Inc.apply session batch);
        edges := Delta.final_edges ~n !edges [| batch |];
        let rebuilt = G.of_edges ~n !edges in
        check_against_rebuild
          ~ctx:
            (Printf.sprintf "%s h=%d batch=%d (%s)" (Helpers.seed_ctx seed)
               h !batch_no
               (Delta.to_string [| batch |]))
          session rebuilt)
      script
  done

let test_battery () =
  for seed = 1 to 35 do
    List.iter (fun h -> battery_one ~seed ~h) [ 2; 3 ]
  done

(* ---- edge cases: empty graph, delete to empty ---- *)

let test_empty_graph () =
  let g = G.of_edges ~n:0 [||] in
  let session = Inc.create g P.edge in
  ignore (Inc.apply session [||]);
  let sg = Inc.query session in
  Helpers.check_float "empty graph density" 0.0 sg.density;
  Alcotest.(check int) "empty graph CDS" 0 (Array.length sg.vertices)

let test_delete_to_empty () =
  List.iter
    (fun h ->
      let seed = 99 + h in
      let g = Helpers.random_graph ~seed ~max_n:8 ~max_m:14 () in
      let n = G.n g in
      let session = Inc.create g (psi_of_h h) in
      let edges = ref (G.edges g) in
      (* one delete per batch until nothing is left *)
      Array.iter
        (fun (u, v) ->
          let batch = [| Dyn.Remove (u, v) |] in
          ignore (Inc.apply session batch);
          edges := Delta.final_edges ~n !edges [| batch |];
          check_against_rebuild
            ~ctx:
              (Printf.sprintf "%s h=%d delete (%d,%d)" (Helpers.seed_ctx seed)
                 h u v)
            session (G.of_edges ~n !edges))
        (G.edges g);
      Alcotest.(check int)
        (Helpers.seed_ctx seed ^ ": graph drained to zero edges")
        0
        (Dyn.m (Inc.dynamic session));
      Alcotest.(check int)
        (Helpers.seed_ctx seed ^ ": no live instances after draining")
        0
        (Inc.live_instances session);
      (* and regrow: the session must come back from empty *)
      ignore (Inc.apply session (Array.map (fun (u, v) -> Dyn.Add (u, v)) (G.edges g)));
      check_against_rebuild
        ~ctx:(Helpers.seed_ctx seed ^ ": regrown after delete-to-empty")
        session g)
    [ 2; 3 ]

(* ---- Dynamic unit behaviour ---- *)

let test_dynamic_noops () =
  let t = Dyn.create ~n:4 [| (0, 1); (1, 2) |] in
  Alcotest.(check bool) "self-loop insert is a no-op" false (Dyn.add_edge t 2 2);
  Alcotest.(check bool) "duplicate insert is a no-op" false (Dyn.add_edge t 1 0);
  Alcotest.(check bool) "absent delete is a no-op" false (Dyn.remove_edge t 0 3);
  Alcotest.(check int) "m unchanged by no-ops" 2 (Dyn.m t);
  Alcotest.(check bool) "insert" true (Dyn.add_edge t 0 2);
  Alcotest.(check bool) "mem_edge symmetric" true (Dyn.mem_edge t 2 0);
  Alcotest.(check int) "m after insert" 3 (Dyn.m t);
  Alcotest.(check bool) "delete" true (Dyn.remove_edge t 2 1);
  Alcotest.(check int) "m after delete" 2 (Dyn.m t);
  Alcotest.(check (array int)) "neighbors sorted" [| 1; 2 |] (Dyn.neighbors t 0)

let test_dynamic_core_maintenance () =
  (* toggle edges of a random graph and cross-check the maintained core
     numbers against a fresh Degeneracy pass at every step *)
  for seed = 1 to 15 do
    let g = Helpers.random_graph ~seed ~max_n:10 ~max_m:20 () in
    let n = G.n g in
    if n >= 2 then begin
      let t = Dyn.of_graph g in
      let rng = Helpers.rng (seed + 7000) in
      for step = 1 to 30 do
        let u, v = Dsd_util.Prng.pair_distinct rng n in
        ignore
          (if Dyn.mem_edge t u v then Dyn.remove_edge t u v
           else Dyn.add_edge t u v);
        Alcotest.(check (array int))
          (Printf.sprintf "%s step=%d: maintained cores"
             (Helpers.seed_ctx seed) step)
          (Dsd_graph.Degeneracy.compute (Dyn.snapshot t))
            .Dsd_graph.Degeneracy.core
          (Dyn.core_numbers t)
      done
    end
  done

(* ---- Delta model and shrinker ---- *)

let test_delta_final_edges () =
  let script =
    [| [| Dyn.Add (0, 1); Dyn.Add (1, 1); Dyn.Add (0, 1) |];
       [| Dyn.Remove (2, 3); Dyn.Add (2, 0); Dyn.Remove (1, 0) |];
    |]
  in
  Alcotest.(check (list (pair int int)))
    "self-loops, duplicates and absent deletes are no-ops"
    [ (0, 2) ]
    (Array.to_list (Delta.final_edges ~n:4 [||] script))

let test_delta_shrink () =
  let script =
    [| [| Dyn.Add (0, 1); Dyn.Add (1, 2) |];
       [| Dyn.Remove (0, 1); Dyn.Add (2, 3) |];
       [| Dyn.Add (3, 4) |];
    |]
  in
  let still_fails s =
    Array.exists (fun b -> Array.exists (( = ) (Dyn.Remove (0, 1))) b) s
  in
  let minimal = Delta.shrink script ~still_fails in
  Alcotest.(check string)
    "shrinks to the single culprit op" "-0,1" (Delta.to_string minimal);
  Alcotest.(check bool)
    "shrunk script still fails" true (still_fails minimal)

(* ---- flow-arena repair primitives ---- *)

(* net outflow at a node: 0 on every conserving node of a feasible flow *)
let imbalance net v =
  let total = ref 0.0 in
  F.iter_arcs_from net v ~f:(fun a -> total := !total +. F.arc_flow net a);
  !total

let check_feasible ~ctx net ~s ~t =
  for a = 0 to (2 * F.edge_count net) - 1 do
    if F.arc_flow net a > F.arc_cap net a +. F.eps then
      Alcotest.failf "%s: arc %d over capacity (flow %g, cap %g)" ctx a
        (F.arc_flow net a) (F.arc_cap net a)
  done;
  for v = 0 to F.node_count net - 1 do
    if v <> s && v <> t && Float.abs (imbalance net v) > 1e-7 then
      Alcotest.failf "%s: conservation violated at node %d (net %g)" ctx v
        (imbalance net v)
  done

let test_add_node () =
  let net = F.create 2 in
  let a = F.add_node net in
  Alcotest.(check int) "fresh id" 2 a;
  Alcotest.(check int) "node count grew" 3 (F.node_count net);
  let e = F.add_edge net ~src:0 ~dst:a ~cap:1.5 in
  Alcotest.(check int) "arcs to the new node work" a (F.arc_dst net e)

(* s -> a -> b -> t path saturated, then the internal arc is lowered
   under flow: restore_arc_full must drain the surplus at a and cancel
   the deficit at b, leaving a feasible (here: smaller) flow. *)
let test_restore_arc_full () =
  let net = F.create 4 in
  let s = 0 and a = 1 and b = 2 and t = 3 in
  let _sa = F.add_edge net ~src:s ~dst:a ~cap:2.0 in
  let ab = F.add_edge net ~src:a ~dst:b ~cap:2.0 in
  let _bt = F.add_edge net ~src:b ~dst:t ~cap:2.0 in
  let flow, _ = Dsd_flow.Min_cut.solve net ~s ~t in
  Helpers.check_float "max flow before" 2.0 flow;
  F.set_cap_carry net ab 0.5;
  ignore (F.restore_arc_full net ~s ~sink:t ab);
  check_feasible ~ctx:"restore_arc_full" net ~s ~t;
  Helpers.check_float "flow value shrank to the new bottleneck" 0.5
    (F.flow_value net ~s)

(* lowering a source arc under flow: restore_arc_head repairs the
   head-side deficit by cancelling forward flow to the sink *)
let test_restore_arc_head () =
  let net = F.create 4 in
  let s = 0 and a = 1 and b = 2 and t = 3 in
  let sa = F.add_edge net ~src:s ~dst:a ~cap:2.0 in
  let _ab = F.add_edge net ~src:a ~dst:b ~cap:2.0 in
  let _bt = F.add_edge net ~src:b ~dst:t ~cap:2.0 in
  ignore (Dsd_flow.Min_cut.solve net ~s ~t);
  F.set_cap_carry net sa 1.0;
  ignore (F.restore_arc_head net ~sink:t sa);
  check_feasible ~ctx:"restore_arc_head" net ~s ~t;
  Helpers.check_float "flow value shrank to the new source cap" 1.0
    (F.flow_value net ~s)

let suite =
  [
    Alcotest.test_case "differential battery (35 seeds x h in {2,3})" `Slow
      test_battery;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "delete to empty and regrow" `Quick
      test_delete_to_empty;
    Alcotest.test_case "Dynamic: no-op semantics" `Quick test_dynamic_noops;
    Alcotest.test_case "Dynamic: core maintenance vs Degeneracy" `Quick
      test_dynamic_core_maintenance;
    Alcotest.test_case "Delta: final_edges model" `Quick
      test_delta_final_edges;
    Alcotest.test_case "Delta: shrinker minimizes" `Quick test_delta_shrink;
    Alcotest.test_case "Flow: add_node grows the arena" `Quick test_add_node;
    Alcotest.test_case "Flow: restore_arc_full repairs internal arcs" `Quick
      test_restore_arc_full;
    Alcotest.test_case "Flow: restore_arc_head repairs source arcs" `Quick
      test_restore_arc_head;
  ]
