(* Max-flow / min-cut tests: textbook instances, Dinic vs Edmonds-Karp
   cross-check, and max-flow = min-cut-capacity on random networks. *)

module F = Dsd_flow.Flow_network
module Prng = Dsd_util.Prng

(* CLRS figure 26.1-style classic network with max flow 23. *)
let clrs_network () =
  let net = F.create 6 in
  let e src dst cap = ignore (F.add_edge net ~src ~dst ~cap) in
  e 0 1 16.; e 0 2 13.;
  e 1 3 12.; e 2 1 4.; e 2 4 14.;
  e 3 2 9.; e 3 5 20.; e 4 3 7.; e 4 5 4.;
  net

let test_dinic_clrs () =
  let net = clrs_network () in
  Helpers.check_float "max flow" 23. (Dsd_flow.Dinic.max_flow net ~s:0 ~t:5)

let test_edmonds_karp_clrs () =
  let net = clrs_network () in
  Helpers.check_float "max flow" 23. (Dsd_flow.Edmonds_karp.max_flow net ~s:0 ~t:5)

let test_disconnected () =
  let net = F.create 4 in
  ignore (F.add_edge net ~src:0 ~dst:1 ~cap:5.);
  ignore (F.add_edge net ~src:2 ~dst:3 ~cap:5.);
  Helpers.check_float "no path" 0. (Dsd_flow.Dinic.max_flow net ~s:0 ~t:3)

let test_single_edge () =
  let net = F.create 2 in
  ignore (F.add_edge net ~src:0 ~dst:1 ~cap:2.5);
  Helpers.check_float "single" 2.5 (Dsd_flow.Dinic.max_flow net ~s:0 ~t:1)

let test_parallel_edges () =
  let net = F.create 2 in
  ignore (F.add_edge net ~src:0 ~dst:1 ~cap:1.);
  ignore (F.add_edge net ~src:0 ~dst:1 ~cap:2.);
  Helpers.check_float "parallel" 3. (Dsd_flow.Dinic.max_flow net ~s:0 ~t:1)

let test_infinite_capacity_path () =
  let net = F.create 3 in
  ignore (F.add_edge net ~src:0 ~dst:1 ~cap:infinity);
  ignore (F.add_edge net ~src:1 ~dst:2 ~cap:7.);
  Helpers.check_float "bottleneck" 7. (Dsd_flow.Dinic.max_flow net ~s:0 ~t:2)

let test_min_cut_source_side () =
  let net = clrs_network () in
  let value, side = Dsd_flow.Min_cut.solve net ~s:0 ~t:5 in
  Helpers.check_float "value" 23. value;
  Alcotest.(check bool) "s in S" true side.(0);
  Alcotest.(check bool) "t not in S" false side.(5);
  Helpers.check_float "cut capacity = flow" value
    (Dsd_flow.Min_cut.cut_capacity net side)

let test_reset_flow () =
  let net = clrs_network () in
  ignore (Dsd_flow.Dinic.max_flow net ~s:0 ~t:5);
  F.reset_flow net;
  Helpers.check_float "resolve after reset" 23.
    (Dsd_flow.Dinic.max_flow net ~s:0 ~t:5)

(* Random network: Dinic = Edmonds-Karp, and both equal the capacity of
   the extracted cut. *)
let random_network seed =
  let r = Prng.create seed in
  let n = 2 + Prng.int r 12 in
  let net_a = F.create n and net_b = F.create n in
  let arcs = 1 + Prng.int r 40 in
  for _ = 1 to arcs do
    let src = Prng.int r n and dst = Prng.int r n in
    if src <> dst then begin
      let cap = float_of_int (1 + Prng.int r 20) in
      ignore (F.add_edge net_a ~src ~dst ~cap);
      ignore (F.add_edge net_b ~src ~dst ~cap)
    end
  done;
  (net_a, net_b, n)

let solvers_agree_prop seed =
  let net_a, net_b, n = random_network seed in
  let s = 0 and t = n - 1 in
  let fa = Dsd_flow.Dinic.max_flow net_a ~s ~t in
  let fb = Dsd_flow.Edmonds_karp.max_flow net_b ~s ~t in
  Float.abs (fa -. fb) < 1e-6

let flow_equals_cut_prop seed =
  let net, _, n = random_network seed in
  let s = 0 and t = n - 1 in
  let value, side = Dsd_flow.Min_cut.solve net ~s ~t in
  Float.abs (value -. Dsd_flow.Min_cut.cut_capacity net side) < 1e-6

let test_add_edge_validation () =
  let net = F.create 2 in
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Flow_network.add_edge: negative capacity")
    (fun () -> ignore (F.add_edge net ~src:0 ~dst:1 ~cap:(-1.)));
  Alcotest.check_raises "node range"
    (Invalid_argument "Flow_network.add_edge: node out of range")
    (fun () -> ignore (F.add_edge net ~src:0 ~dst:5 ~cap:1.))

let suite =
  [
    Alcotest.test_case "dinic clrs" `Quick test_dinic_clrs;
    Alcotest.test_case "edmonds-karp clrs" `Quick test_edmonds_karp_clrs;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
    Alcotest.test_case "infinite capacity" `Quick test_infinite_capacity_path;
    Alcotest.test_case "min cut source side" `Quick test_min_cut_source_side;
    Alcotest.test_case "reset flow" `Quick test_reset_flow;
    Alcotest.test_case "add_edge validation" `Quick test_add_edge_validation;
    Helpers.qtest ~count:200 "dinic = edmonds-karp" QCheck.small_int solvers_agree_prop;
    Helpers.qtest ~count:200 "flow = cut capacity" QCheck.small_int flow_equals_cut_prop;
  ]
