(* Directed densest subgraph (Kannan-Vinay density): digraph substrate,
   exact flow algorithm against an exhaustive oracle over all (S, T)
   pairs, and the (1+eps) ratio-sweep approximation. *)

module D = Dsd_graph.Digraph
module Dir = Dsd_core.Directed

let test_digraph_basics () =
  let g = D.of_edge_list ~n:4 [ (0, 1); (1, 0); (0, 1); (2, 2); (1, 3) ] in
  Alcotest.(check int) "arcs (dedup, no self loop)" 3 (D.m g);
  Alcotest.(check int) "out degree" 1 (D.out_degree g 0);
  Alcotest.(check int) "in degree" 1 (D.in_degree g 0);
  Alcotest.(check (array int)) "out" [| 0; 3 |] (D.out_neighbors g 1);
  Alcotest.(check (array int)) "in of 3" [| 1 |] (D.in_neighbors g 3);
  Alcotest.(check bool) "arc 0->1" true (D.mem_arc g ~src:0 ~dst:1);
  Alcotest.(check bool) "no arc 3->1" false (D.mem_arc g ~src:3 ~dst:1)

let test_edges_between () =
  (* Complete bipartite orientation: all arcs from {0,1} to {2,3,4}. *)
  let arcs = List.concat_map (fun u -> List.map (fun v -> (u, v)) [ 2; 3; 4 ]) [ 0; 1 ] in
  let g = D.of_edge_list ~n:5 arcs in
  Alcotest.(check int) "e(S,T)" 6 (D.edges_between g ~s:[| 0; 1 |] ~t_side:[| 2; 3; 4 |]);
  Alcotest.(check int) "e(T,S)" 0 (D.edges_between g ~s:[| 2; 3 |] ~t_side:[| 0 |]);
  Helpers.check_float "density" (6. /. sqrt 6.)
    (Dir.density g ~s:[| 0; 1 |] ~t_side:[| 2; 3; 4 |])

(* Exhaustive oracle over all non-empty S, T pairs (n <= 6). *)
let brute_force_directed g =
  let n = D.n g in
  assert (n <= 7);
  let best = ref 0. in
  let subset mask =
    let vs = ref [] in
    for v = n - 1 downto 0 do
      if mask land (1 lsl v) <> 0 then vs := v :: !vs
    done;
    Array.of_list !vs
  in
  for ms = 1 to (1 lsl n) - 1 do
    let s = subset ms in
    for mt = 1 to (1 lsl n) - 1 do
      let t_side = subset mt in
      let d = Dir.density g ~s ~t_side in
      if d > !best then best := d
    done
  done;
  !best

let arb_digraph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" D.pp g)
    QCheck.Gen.(
      int_range 0 1_000_000 >|= fun seed ->
      Dsd_data.Gen.random_digraph_for_tests
        (Dsd_util.Prng.create seed) ~max_n:6 ~max_m:18)

let exact_matches_brute_prop g =
  let expect = brute_force_directed g in
  let r = Dir.exact g in
  Float.abs (r.Dir.density -. expect) < 1e-6

let approx_ratio_prop g =
  let expect = brute_force_directed g in
  let eps = 0.2 in
  let r = Dir.approx ~eps g in
  r.Dir.density <= expect +. 1e-9
  && r.Dir.density >= (expect /. sqrt (1. +. eps)) -. 1e-9

let result_density_consistent_prop g =
  let r = Dir.exact g in
  Float.abs (r.Dir.density -. Dir.density g ~s:r.Dir.s_side ~t_side:r.Dir.t_side)
  < 1e-9

let test_known_bipartite () =
  (* All arcs from a 2-set to a 3-set plus noise: the optimum is the
     full bipartite block, density 6/sqrt(6). *)
  let arcs =
    (List.concat_map (fun u -> List.map (fun v -> (u, v)) [ 2; 3; 4 ]) [ 0; 1 ])
    @ [ (5, 6) ]
  in
  let g = D.of_edge_list ~n:7 arcs in
  let r = Dir.exact g in
  Helpers.check_float "density" (6. /. sqrt 6.) r.Dir.density;
  Alcotest.(check (array int)) "S" [| 0; 1 |] r.Dir.s_side;
  Alcotest.(check (array int)) "T" [| 2; 3; 4 |] r.Dir.t_side

let test_hub_asymmetry () =
  (* One vertex pointing at k others: S = {hub}, T = the k targets,
     density k / sqrt(k) = sqrt(k) — the classic directed-density
     asymmetry that undirected density cannot express. *)
  let g = D.of_edge_list ~n:10 (List.init 9 (fun i -> (0, i + 1))) in
  let r = Dir.exact g in
  Helpers.check_float "sqrt 9" 3. r.Dir.density;
  Alcotest.(check (array int)) "S = hub" [| 0 |] r.Dir.s_side;
  Alcotest.(check int) "T = targets" 9 (Array.length r.Dir.t_side)

let test_overlapping_sides () =
  (* A directed 3-cycle: S = T = all three vertices, density
     3 / 3 = 1. *)
  let g = D.of_edge_list ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let r = Dir.exact g in
  Helpers.check_float "cycle density" 1. r.Dir.density

let test_exact_size_guard () =
  let g = Dsd_data.Gen.er_directed ~seed:1 ~n:100 ~p:0.05 in
  Alcotest.check_raises "guard"
    (Invalid_argument "Directed.exact: graph too large (use Directed.approx)")
    (fun () -> ignore (Dir.exact g));
  (* approx handles it fine. *)
  let r = Dir.approx ~eps:0.3 g in
  Alcotest.(check bool) "nonempty" true (r.Dir.density > 0.)

let test_empty_digraph () =
  let g = D.of_edge_list ~n:4 [] in
  let r = Dir.exact g in
  Helpers.check_float "zero" 0. r.Dir.density

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "edges between" `Quick test_edges_between;
    Alcotest.test_case "known bipartite block" `Quick test_known_bipartite;
    Alcotest.test_case "hub asymmetry" `Quick test_hub_asymmetry;
    Alcotest.test_case "overlapping S and T" `Quick test_overlapping_sides;
    Alcotest.test_case "exact size guard" `Slow test_exact_size_guard;
    Alcotest.test_case "empty digraph" `Quick test_empty_digraph;
    Helpers.qtest ~count:25 "exact = brute force" arb_digraph exact_matches_brute_prop;
    Helpers.qtest ~count:25 "approx ratio bound" arb_digraph approx_ratio_prop;
    Helpers.qtest ~count:25 "result density consistent" arb_digraph
      result_density_consistent_prop;
  ]
