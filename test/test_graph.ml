(* Tests for the graph substrate: CSR construction, traversal,
   degeneracy, live subgraph views, edge-list I/O. *)

module G = Dsd_graph.Graph
module T = Dsd_graph.Traversal
module Sub = Dsd_graph.Subgraph

let test_build_dedup () =
  (* Duplicates, reversed duplicates, and self loops all collapse. *)
  let g = G.of_edge_list ~n:4 [ (0, 1); (1, 0); (0, 1); (2, 2); (1, 2) ] in
  Alcotest.(check int) "n" 4 (G.n g);
  Alcotest.(check int) "m" 2 (G.m g);
  Alcotest.(check (array int)) "neighbors of 1" [| 0; 2 |] (G.neighbors g 1);
  Alcotest.(check bool) "mem 0-1" true (G.mem_edge g 0 1);
  Alcotest.(check bool) "mem 1-0" true (G.mem_edge g 1 0);
  Alcotest.(check bool) "no self loop" false (G.mem_edge g 2 2);
  Alcotest.(check bool) "absent" false (G.mem_edge g 0 3)

let test_build_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: endpoint out of range")
    (fun () -> ignore (G.of_edge_list ~n:2 [ (0, 2) ]))

let test_complete () =
  let g = G.complete 6 in
  Alcotest.(check int) "m of K6" 15 (G.m g);
  Alcotest.(check int) "max degree" 5 (G.max_degree g);
  for v = 0 to 5 do
    Alcotest.(check int) "degree" 5 (G.degree g v)
  done

let test_edges_iter () =
  let g = G.complete 5 in
  let count = ref 0 in
  G.iter_edges g ~f:(fun u v ->
      Alcotest.(check bool) "ordered" true (u < v);
      incr count);
  Alcotest.(check int) "edge count" 10 !count;
  Alcotest.(check int) "edges array" 10 (Array.length (G.edges g))

let test_induced () =
  let g = G.complete 5 in
  let sub, map = G.induced g [| 4; 1; 3; 1 |] in
  Alcotest.(check int) "n" 3 (G.n sub);
  Alcotest.(check int) "m" 3 (G.m sub);
  Alcotest.(check (array int)) "map ascending old ids" [| 1; 3; 4 |] map

let test_induced_mask () =
  let g = Dsd_data.Paper_graphs.figure2 in
  let keep = [| false; true; true; true |] in
  let sub, map = G.induced_mask g keep in
  (* B, C, D induce the triangle. *)
  Alcotest.(check int) "triangle n" 3 (G.n sub);
  Alcotest.(check int) "triangle m" 3 (G.m sub);
  Alcotest.(check (array int)) "map" [| 1; 2; 3 |] map

let test_equal () =
  let a = G.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let b = G.of_edge_list ~n:3 [ (1, 2); (1, 0) ] in
  let c = G.of_edge_list ~n:3 [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "equal" true (G.equal a b);
  Alcotest.(check bool) "not equal" false (G.equal a c)

let test_bfs () =
  let g = Dsd_data.Paper_graphs.path 5 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |]
    (T.bfs_distances g 0);
  let g2 = Dsd_data.Paper_graphs.figure3_like in
  let d = T.bfs_distances g2 0 in
  Alcotest.(check int) "unreachable" (-1) d.(6)

let test_components () =
  let g = Dsd_data.Paper_graphs.figure3_like in
  let _ids, count = T.components g in
  Alcotest.(check int) "two components" 2 count;
  match T.component_members g with
  | [ big; small ] ->
    Alcotest.(check int) "big size" 6 (Array.length big);
    Alcotest.(check (array int)) "small" [| 6; 7 |] small
  | _ -> Alcotest.fail "expected two components"

let test_largest_component () =
  let g = Dsd_data.Paper_graphs.figure3_like in
  let lc, map = T.largest_component g in
  Alcotest.(check int) "size" 6 (G.n lc);
  Alcotest.(check (array int)) "map" [| 0; 1; 2; 3; 4; 5 |] map

let test_pseudo_diameter () =
  Alcotest.(check int) "path" 7 (T.pseudo_diameter (Dsd_data.Paper_graphs.path 8));
  Alcotest.(check int) "K5" 1 (T.pseudo_diameter (G.complete 5));
  Alcotest.(check int) "empty-ish" 0 (T.pseudo_diameter (G.empty 3))

let test_degeneracy_clique () =
  let d = Dsd_graph.Degeneracy.compute (G.complete 7) in
  Alcotest.(check int) "degeneracy of K7" 6 d.degeneracy;
  Array.iter (fun c -> Alcotest.(check int) "core" 6 c) d.core

let test_degeneracy_figure3 () =
  let d = Dsd_graph.Degeneracy.compute Dsd_data.Paper_graphs.figure3_like in
  (* K4 members have core 3; triangle appendage 2; isolated edge 1. *)
  Alcotest.(check (array int)) "cores"
    [| 3; 3; 3; 3; 2; 2; 1; 1 |] d.core;
  Alcotest.(check int) "degeneracy" 3 d.degeneracy

let test_degeneracy_rank_inverse () =
  let g = Helpers.random_graph ~seed:11 ~max_n:30 ~max_m:60 () in
  let d = Dsd_graph.Degeneracy.compute g in
  Array.iteri
    (fun i v -> Alcotest.(check int) "rank inverse" i d.rank.(v))
    d.order

(* Property: every vertex has at least core(v) neighbours with core >=
   core(v) (definition of core number). *)
let degeneracy_core_prop g =
  let d = Dsd_graph.Degeneracy.compute g in
  let ok = ref true in
  for v = 0 to G.n g - 1 do
    let c = d.core.(v) in
    let high = ref 0 in
    G.iter_neighbors g v ~f:(fun w -> if d.core.(w) >= c then incr high);
    if !high < c then ok := false
  done;
  !ok

let test_subgraph_view () =
  let g = G.complete 5 in
  let live = Sub.of_graph g in
  Alcotest.(check int) "live" 5 (Sub.live_count live);
  Alcotest.(check int) "edges" 10 (Sub.live_edges live);
  Sub.delete live 0;
  Alcotest.(check int) "live after" 4 (Sub.live_count live);
  Alcotest.(check int) "edges after" 6 (Sub.live_edges live);
  Alcotest.(check int) "degree after" 3 (Sub.live_degree live 1);
  Alcotest.(check bool) "dead" false (Sub.alive live 0);
  let materialised, map = Sub.to_graph live in
  Alcotest.(check int) "to_graph n" 4 (G.n materialised);
  Alcotest.(check (array int)) "to_graph map" [| 1; 2; 3; 4 |] map

let test_subgraph_subset () =
  let g = G.complete 5 in
  let live = Sub.of_graph_subset g [| 0; 1; 2 |] in
  Alcotest.(check int) "live" 3 (Sub.live_count live);
  Alcotest.(check int) "edges" 3 (Sub.live_edges live);
  let seen = ref [] in
  Sub.iter_live_neighbors live 0 ~f:(fun w -> seen := w :: !seen);
  Alcotest.(check (list int)) "live neighbors" [ 2; 1 ] !seen

let test_io_roundtrip () =
  let g = Helpers.random_graph ~seed:5 ~max_n:40 ~max_m:120 () in
  let path = Filename.temp_file "dsd_test" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dsd_graph.Io.write path g;
      let g', _map = Dsd_graph.Io.read path in
      (* Vertex ids compact: isolated vertices are lost in an edge-list
         format, so compare edge sets through the id map instead. *)
      Alcotest.(check int) "m" (G.m g) (G.m g'))

let test_io_parses_comments_and_sparse_ids () =
  let data = "# a comment\n% another\n10 20\n20 30\n10\t30\n" in
  let g, map = Dsd_graph.Io.read_string data in
  Alcotest.(check int) "n" 3 (G.n g);
  Alcotest.(check int) "m" 3 (G.m g);
  Alcotest.(check (array int)) "map" [| 10; 20; 30 |] map

let test_io_crlf_and_blank_lines () =
  (* Windows line endings and stray blank lines are tolerated. *)
  let data = "# crlf file\r\n\r\n0 1\r\n1 2\r\n\n2 0\r\n" in
  let g, map = Dsd_graph.Io.read_string data in
  Alcotest.(check int) "n" 3 (G.n g);
  Alcotest.(check int) "m" 3 (G.m g);
  Alcotest.(check (array int)) "map" [| 0; 1; 2 |] map

let test_io_duplicate_and_reversed_edges () =
  (* The same edge listed twice — also reversed — collapses to one. *)
  let data = "3 7\n7 3\n3 7\n7 9\n" in
  let g, map = Dsd_graph.Io.read_string data in
  Alcotest.(check int) "n" 3 (G.n g);
  Alcotest.(check int) "m" 2 (G.m g);
  Alcotest.(check (array int)) "map" [| 3; 7; 9 |] map;
  Alcotest.(check int) "degree of 7" 2 (G.degree g (Array.length map - 2))

let test_io_self_loop_keeps_vertex () =
  (* A self-loop contributes no edge, but its endpoint still exists —
     this is how an edge-list file can carry an isolated max-id
     vertex. *)
  let data = "0 1\n5 5\n" in
  let g, map = Dsd_graph.Io.read_string data in
  Alcotest.(check int) "n" 3 (G.n g);
  Alcotest.(check int) "m" 1 (G.m g);
  Alcotest.(check (array int)) "map" [| 0; 1; 5 |] map;
  Alcotest.(check int) "isolated" 0 (G.degree g 2)

let test_io_rejects_malformed () =
  List.iter
    (fun data ->
      match Dsd_graph.Io.read_string data with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" data)
    [ "0 x\n"; "lonely\n"; "1 -2\n" ]

(* Property: a Subgraph view after an arbitrary deletion sequence
   agrees with naively re-inducing the graph on the survivors. *)
let subgraph_matches_naive_prop g =
  let n = G.n g in
  let live = Sub.of_graph g in
  let prng = Dsd_util.Prng.create 99 in
  let alive = Array.make n true in
  let deletions = if n = 0 then 0 else Dsd_util.Prng.int prng n in
  for _ = 1 to deletions do
    let v = ref (Dsd_util.Prng.int prng n) in
    while not alive.(!v) do
      v := (!v + 1) mod n
    done;
    alive.(!v) <- false;
    Sub.delete live !v
  done;
  let survivors =
    Array.of_list (List.filter (fun v -> alive.(v)) (List.init n Fun.id))
  in
  let naive, map = G.induced g survivors in
  (* map is ascending old ids, so survivor i has naive id i. *)
  assert (map = survivors);
  Sub.live_count live = Array.length survivors
  && Sub.live_edges live = G.m naive
  && Array.for_all
       (fun i -> Sub.live_degree live survivors.(i) = G.degree naive i)
       (Array.init (Array.length survivors) Fun.id)
  && (let g', map' = Sub.to_graph live in
      G.equal g' naive && map' = survivors)

let suite =
  [
    Alcotest.test_case "build dedup" `Quick test_build_dedup;
    Alcotest.test_case "build rejects range" `Quick test_build_rejects_out_of_range;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "edges iter" `Quick test_edges_iter;
    Alcotest.test_case "induced" `Quick test_induced;
    Alcotest.test_case "induced mask" `Quick test_induced_mask;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "bfs" `Quick test_bfs;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "largest component" `Quick test_largest_component;
    Alcotest.test_case "pseudo diameter" `Quick test_pseudo_diameter;
    Alcotest.test_case "degeneracy K7" `Quick test_degeneracy_clique;
    Alcotest.test_case "degeneracy figure3" `Quick test_degeneracy_figure3;
    Alcotest.test_case "degeneracy rank inverse" `Quick test_degeneracy_rank_inverse;
    Helpers.qtest "core number definition" (Helpers.small_graph_arb ~max_n:20 ~max_m:50 ())
      degeneracy_core_prop;
    Alcotest.test_case "subgraph view" `Quick test_subgraph_view;
    Alcotest.test_case "subgraph subset" `Quick test_subgraph_subset;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "io parse" `Quick test_io_parses_comments_and_sparse_ids;
    Alcotest.test_case "io crlf" `Quick test_io_crlf_and_blank_lines;
    Alcotest.test_case "io duplicate edges" `Quick test_io_duplicate_and_reversed_edges;
    Alcotest.test_case "io self-loop vertex" `Quick test_io_self_loop_keeps_vertex;
    Alcotest.test_case "io malformed" `Quick test_io_rejects_malformed;
    Helpers.qtest "subgraph deletions match naive"
      (Helpers.small_graph_arb ~max_n:25 ~max_m:70 ())
      subgraph_matches_naive_prop;
  ]
