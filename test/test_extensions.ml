(* Extension modules beyond the paper's core algorithms: Greedy++,
   the Bahmani streaming approximation, truss decomposition, parallel
   clique counting, DOT export. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

(* ---- Greedy++ ---- *)

(* Greedy++ carries PeelApp's 1/|V_Psi| guarantee (round 1 is a peel,
   modulo tie-breaking, and rounds only improve the tracked best). *)
let greedy_pp_ratio_prop psi g =
  let opt, _ = Helpers.brute_force_densest g psi in
  let gpp = Dsd_core.Greedy_pp.run ~rounds:4 g psi in
  gpp.Dsd_core.Greedy_pp.subgraph.D.density
  >= (opt /. float_of_int psi.P.size) -. 1e-9

let greedy_pp_monotone_prop psi g =
  let r = Dsd_core.Greedy_pp.run ~rounds:6 g psi in
  let ds = r.Dsd_core.Greedy_pp.densities in
  let ok = ref true in
  for i = 1 to Array.length ds - 1 do
    if ds.(i) < ds.(i - 1) -. 1e-12 then ok := false
  done;
  !ok

let greedy_pp_never_beats_optimum_prop psi g =
  let opt, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Greedy_pp.run ~rounds:6 g psi in
  r.Dsd_core.Greedy_pp.subgraph.D.density <= opt +. 1e-9

let test_greedy_pp_converges () =
  (* On a graph where plain peeling is suboptimal, extra rounds close
     most of the gap: K_{2,x} families are the classic hard case. *)
  let g = Dsd_data.Paper_graphs.theorem1_chain 30 in
  let exact = (Dsd_core.Core_exact.run g P.edge).subgraph in
  let one = Dsd_core.Greedy_pp.run ~rounds:1 g P.edge in
  let many = Dsd_core.Greedy_pp.run ~rounds:24 g P.edge in
  Alcotest.(check bool) "more rounds at least as good" true
    (many.Dsd_core.Greedy_pp.subgraph.D.density
     >= one.Dsd_core.Greedy_pp.subgraph.D.density -. 1e-9);
  Alcotest.(check bool) "within 2% of optimum" true
    (many.Dsd_core.Greedy_pp.subgraph.D.density >= 0.98 *. exact.D.density)

let test_greedy_pp_one_round_close_to_peel () =
  (* Round 1 replays PeelApp's bucket peel exactly (all loads are
     zero), so the one-round result is bit-identical to PeelApp. *)
  let g = Helpers.random_graph ~seed:91 ~max_n:40 ~max_m:160 () in
  let peel = (Dsd_core.Peel_app.run g P.triangle).Dsd_core.Peel_app.subgraph in
  let gpp = Dsd_core.Greedy_pp.run ~rounds:1 g P.triangle in
  Alcotest.(check bool) "density equal" true
    (gpp.Dsd_core.Greedy_pp.subgraph.D.density = peel.D.density);
  Alcotest.(check (array int)) "vertices equal" peel.D.vertices
    gpp.Dsd_core.Greedy_pp.subgraph.D.vertices

(* ---- Streaming ---- *)

let streaming_ratio_prop psi (g, eps_seed) =
  let eps = 0.05 +. (float_of_int (eps_seed mod 10) /. 10.) in
  let opt, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Streaming.run ~eps g psi in
  let bound = opt /. (float_of_int psi.P.size *. (1. +. eps)) in
  r.Dsd_core.Streaming.subgraph.D.density >= bound -. 1e-9
  && r.Dsd_core.Streaming.subgraph.D.density <= opt +. 1e-9

let test_streaming_pass_count () =
  (* Passes are logarithmic: even a 20k-vertex graph needs few. *)
  let g = Dsd_data.Gen.barabasi_albert ~seed:7 ~n:20_000 ~attach:3 in
  let r = Dsd_core.Streaming.run ~eps:0.5 g P.edge in
  Alcotest.(check bool) "few passes" true (r.Dsd_core.Streaming.passes <= 40);
  Alcotest.(check bool) "nonempty" true
    (Array.length r.Dsd_core.Streaming.subgraph.D.vertices > 0)

let test_streaming_validation () =
  Alcotest.check_raises "eps > 0"
    (Invalid_argument "Streaming.run: eps must be positive")
    (fun () -> ignore (Dsd_core.Streaming.run ~eps:0. (G.complete 3) P.edge))

(* ---- Truss ---- *)

let test_truss_complete () =
  (* Every edge of K_n lies in n-2 triangles: the whole graph is the
     n-truss. *)
  for n = 3 to 7 do
    let t = Dsd_core.Truss.decompose (G.complete n) in
    Alcotest.(check int) (Printf.sprintf "kmax K%d" n) n (Dsd_core.Truss.kmax t);
    Alcotest.(check int) "all edges in kmax truss"
      (n * (n - 1) / 2)
      (Array.length (Dsd_core.Truss.k_truss t ~k:n))
  done

let test_truss_figure3 () =
  let g = Dsd_data.Paper_graphs.figure3_like in
  let t = Dsd_core.Truss.decompose g in
  Alcotest.(check int) "kmax" 4 (Dsd_core.Truss.kmax t);
  (* K4 edges have truss 4; the pendant triangle 3; the bridge and the
     isolated edge 2. *)
  Alcotest.(check int) "K4 edge" 4 (Dsd_core.Truss.truss_number t ~u:0 ~v:1);
  Alcotest.(check int) "triangle edge" 3 (Dsd_core.Truss.truss_number t ~u:4 ~v:5);
  Alcotest.(check int) "isolated edge" 2 (Dsd_core.Truss.truss_number t ~u:6 ~v:7);
  Alcotest.check_raises "non-edge" Not_found (fun () ->
      ignore (Dsd_core.Truss.truss_number t ~u:0 ~v:7))

(* Definition check: inside the k-truss every edge has >= k-2 triangles
   formed by k-truss edges. *)
let truss_internal_support_prop g =
  let t = Dsd_core.Truss.decompose g in
  let ok = ref true in
  for k = 3 to Dsd_core.Truss.kmax t do
    let edges = Dsd_core.Truss.k_truss t ~k in
    let sub = G.of_edges ~n:(G.n g) edges in
    Array.iter
      (fun (u, v) ->
        let c = ref 0 in
        G.iter_neighbors sub u ~f:(fun w -> if G.mem_edge sub v w then incr c);
        if !c < k - 2 then ok := false)
      edges
  done;
  !ok

(* Truss numbers are maximal: recomputing the decomposition on the
   (k+1)-truss edge set must not reveal a higher level for excluded
   edges — checked indirectly via a naive fixpoint oracle. *)
let naive_truss_numbers g =
  let m = G.m g in
  let edges = G.edges g in
  let level = Array.make (max 1 m) 2 in
  for k = 3 to G.n g + 2 do
    (* Iteratively delete edges with support < k-2; survivors are the
       k-truss. *)
    let alive = Array.make m true in
    (* Start from all edges. *)
    let changed = ref true in
    while !changed do
      changed := false;
      let sub =
        G.of_edges ~n:(G.n g)
          (Array.of_seq
             (Seq.filter_map
                (fun i -> if alive.(i) then Some edges.(i) else None)
                (Seq.init m Fun.id)))
      in
      Array.iteri
        (fun i (u, v) ->
          if alive.(i) then begin
            let c = ref 0 in
            G.iter_neighbors sub u ~f:(fun w -> if G.mem_edge sub v w then incr c);
            if !c < k - 2 then begin
              alive.(i) <- false;
              changed := true
            end
          end)
        edges
    done;
    Array.iteri (fun i a -> if a then level.(i) <- k) alive
  done;
  level

let truss_matches_oracle_prop g =
  let t = Dsd_core.Truss.decompose g in
  let expect = naive_truss_numbers g in
  let ok = ref true in
  Array.iteri
    (fun i (u, v) ->
      if Dsd_core.Truss.truss_number t ~u ~v <> expect.(i) then ok := false)
    (G.edges g);
  !ok

(* ---- parallel clique counting ---- *)

let parallel_count_matches_prop (g, h_seed) =
  let h = 2 + (h_seed mod 4) in
  let seq = Dsd_clique.Kclist.count g ~h in
  Dsd_clique.Parallel.count g ~h ~domains:1 = seq
  && Dsd_clique.Parallel.count g ~h ~domains:3 = seq
  && Dsd_clique.Parallel.degrees g ~h ~domains:3
     = Dsd_clique.Clique_count.degrees g ~h

let test_parallel_medium () =
  let g = Dsd_data.Gen.ssca ~seed:17 ~n:4000 ~max_clique:9 in
  let domains = Dsd_clique.Parallel.recommended_domains () in
  Alcotest.(check bool) "domains >= 1" true (domains >= 1);
  Alcotest.(check int) "4-clique counts equal"
    (Dsd_clique.Kclist.count g ~h:4)
    (Dsd_clique.Parallel.count g ~h:4 ~domains)

(* ---- DOT export ---- *)

let test_dot_export () =
  let g = Dsd_data.Paper_graphs.figure2 in
  let path = Filename.temp_file "dsd_test" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dsd_graph.Io.write_dot path g ~highlight:[| 1; 2; 3 |];
      let ic = open_in path in
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "graph block" true
        (String.length data > 0 && String.sub data 0 5 = "graph");
      (* 3 highlighted nodes, 4 edges, 3 of them inside the triangle. *)
      let count_sub needle =
        let n = ref 0 and i = ref 0 in
        let nl = String.length needle in
        while !i + nl <= String.length data do
          if String.sub data !i nl = needle then incr n;
          incr i
        done;
        !n
      in
      Alcotest.(check int) "highlights" 3 (count_sub "fillcolor");
      Alcotest.(check int) "bold edges" 3 (count_sub "penwidth");
      Alcotest.(check int) "edges" 4 (count_sub " -- "))

let suite =
  [
    Alcotest.test_case "greedy++ converges on K2x chain" `Quick test_greedy_pp_converges;
    Alcotest.test_case "greedy++ round 1 = peel" `Quick test_greedy_pp_one_round_close_to_peel;
    Alcotest.test_case "streaming pass count" `Slow test_streaming_pass_count;
    Alcotest.test_case "streaming validation" `Quick test_streaming_validation;
    Alcotest.test_case "truss of K_n" `Quick test_truss_complete;
    Alcotest.test_case "truss of figure 3" `Quick test_truss_figure3;
    Alcotest.test_case "parallel medium" `Slow test_parallel_medium;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Helpers.qtest ~count:30 "truss internal support"
      (Helpers.small_graph_arb ~max_n:12 ~max_m:40 ())
      truss_internal_support_prop;
    Helpers.qtest ~count:20 "truss = naive oracle"
      (Helpers.small_graph_arb ~max_n:10 ~max_m:30 ())
      truss_matches_oracle_prop;
    Helpers.qtest ~count:30 "parallel = sequential counts"
      (QCheck.pair (Helpers.small_graph_arb ~max_n:14 ~max_m:50 ()) QCheck.small_int)
      parallel_count_matches_prop;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:20 ("greedy++ ratio: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (greedy_pp_ratio_prop psi);
          Helpers.qtest ~count:20 ("greedy++ monotone: " ^ name)
            (Helpers.small_graph_arb ~max_n:12 ~max_m:36 ())
            (greedy_pp_monotone_prop psi);
          Helpers.qtest ~count:20 ("greedy++ <= optimum: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (greedy_pp_never_beats_optimum_prop psi);
          Helpers.qtest ~count:20 ("streaming ratio: " ^ name)
            (QCheck.pair (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ()) QCheck.small_int)
            (streaming_ratio_prop psi);
        ])
      [ ("edge", P.edge); ("triangle", P.triangle); ("C4", P.diamond) ]
