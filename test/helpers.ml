(* Shared oracles and fixtures for the test suite.

   Ground-truth oracles live in Dsd_check.Oracle (one implementation,
   shared with the fuzz engine); the aliases below keep the historical
   [Helpers.*] call sites working.

   Every randomized fixture honors the DSD_SEED environment variable:
   unset (or 0) reproduces the historical streams, any other value
   re-rolls the whole randomized tier.  Failure messages built with
   [seed_ctx] always name the seed — and the override, when one is
   active — so any failure is replayable. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

(* ---- oracles (Dsd_check.Oracle aliases) ---- *)

let slow_count = Dsd_check.Oracle.slow_count
let density_of_subset = Dsd_check.Oracle.density_of_subset
let brute_force_densest = Dsd_check.Oracle.brute_force_densest
let naive_core_numbers = Dsd_check.Oracle.naive_core_numbers

(* ---- seeding ---- *)

let env_seed =
  match Sys.getenv_opt "DSD_SEED" with
  | None | Some "" -> 0
  | Some s -> (
    match int_of_string_opt s with
    | Some v -> v
    | None -> invalid_arg "DSD_SEED must be an integer")

(* Mix the override into a suite-local seed.  The multiplier spreads
   consecutive DSD_SEED values far apart in seed space; 0 is the
   identity so default runs keep their historical streams. *)
let effective_seed seed = seed + (env_seed * 0x9e3779b1)

(* The seed part of a failure message: replay instructions included. *)
let seed_ctx seed =
  if env_seed = 0 then Printf.sprintf "seed=%d" seed
  else Printf.sprintf "seed=%d DSD_SEED=%d" seed env_seed

(* Deterministic PRNG for all randomized tests. *)
let rng seed = Dsd_util.Prng.create (effective_seed seed)

let random_graph ?(seed = 42) ~max_n ~max_m () =
  Dsd_data.Gen.random_graph_for_tests (rng seed) ~max_n ~max_m

(* ---- checkers ---- *)

(* Sorted-int-array checker. *)
let sorted_array = Alcotest.(testable (Fmt.Dump.array Fmt.int) ( = ))

let check_float = Alcotest.(check (float 1e-9))

let int_array_as_set a =
  let l = Array.to_list a in
  List.sort_uniq compare l

(* qcheck -> alcotest bridging. *)
let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* A generator of small random graphs for qcheck properties.  The
   graph seed is re-rolled by DSD_SEED like every other fixture; the
   qcheck counterexample printer shows the graph itself, so failures
   stay replayable either way. *)
let small_graph_gen ?(max_n = 10) ?(max_m = 20) () =
  QCheck.Gen.(
    int_range 0 1_000_000 >|= fun seed ->
    Dsd_data.Gen.random_graph_for_tests
      (Dsd_util.Prng.create (effective_seed seed)) ~max_n ~max_m)

let small_graph_arb ?max_n ?max_m () =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" G.pp g)
    (small_graph_gen ?max_n ?max_m ())
