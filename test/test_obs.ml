(* The Dsd_obs contract: exact counter values through the in-memory
   sink, span nesting/summing (including across Domain.spawn via
   Clique_parallel), and — the zero-cost promise — bit-identical
   algorithm results with recording disabled. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module F = Dsd_flow.Flow_network
module Obs = Dsd_obs.Control
module Counter = Dsd_obs.Counter
module Span = Dsd_obs.Span
module Trace = Dsd_obs.Trace

(* s=0, a=1, b=2, t=3: two disjoint unit paths; max flow 2 with a
   fully deterministic search order. *)
let two_path_net () =
  let net = F.create 4 in
  ignore (F.add_edge net ~src:0 ~dst:1 ~cap:1.);
  ignore (F.add_edge net ~src:1 ~dst:3 ~cap:1.);
  ignore (F.add_edge net ~src:0 ~dst:2 ~cap:1.);
  ignore (F.add_edge net ~src:2 ~dst:3 ~cap:1.);
  net

let test_counters_disabled_stay_zero () =
  Obs.reset ();
  let flow = Dsd_flow.Dinic.max_flow (two_path_net ()) ~s:0 ~t:3 in
  Helpers.check_float "flow" 2. flow;
  List.iter
    (fun name -> Alcotest.(check int) (Counter.to_string name) 0 (Counter.get name))
    Counter.all

let test_dinic_counters_exact () =
  Obs.with_recording (fun () ->
      let flow = Dsd_flow.Dinic.max_flow (two_path_net ()) ~s:0 ~t:3 in
      Helpers.check_float "flow" 2. flow);
  (* One level phase pushes both paths; the second finds t unreachable. *)
  Alcotest.(check int) "level builds" 2 (Counter.get Counter.Flow_level_builds);
  Alcotest.(check int) "augmentations" 2
    (Counter.get Counter.Flow_augmentations)

let test_edmonds_karp_counters_exact () =
  Obs.with_recording (fun () ->
      let flow = Dsd_flow.Edmonds_karp.max_flow (two_path_net ()) ~s:0 ~t:3 in
      Helpers.check_float "flow" 2. flow);
  (* One BFS per augmenting path plus the failing final search. *)
  Alcotest.(check int) "bfs passes" 3 (Counter.get Counter.Flow_level_builds);
  Alcotest.(check int) "augmentations" 2
    (Counter.get Counter.Flow_augmentations)

let test_peel_and_instance_counters_exact () =
  (* K4 plus an isolated vertex: C(4,3) = 4 triangles, 5 peeled
     vertices. *)
  let g =
    G.of_edge_list ~n:5 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  Obs.with_recording (fun () ->
      ignore (Dsd_core.Clique_core.decompose g P.triangle));
  Alcotest.(check int) "peeled" 5 (Counter.get Counter.Peeled_vertices);
  Alcotest.(check int) "triangles enumerated" 4
    (Counter.get Counter.Clique_instances)

let test_span_nesting_and_totals () =
  Obs.with_recording (fun () ->
      Span.with_ "outer" (fun () ->
          Span.with_ "inner" (fun () -> Unix.sleepf 0.005);
          Span.with_ "inner" (fun () -> ())));
  Alcotest.(check int) "outer entries" 1 (Span.entries "outer");
  Alcotest.(check int) "inner entries" 2 (Span.entries "inner");
  let outer = Span.total_s "outer" and inner = Span.total_s "inner" in
  Alcotest.(check bool) "inner measured" true (inner >= 0.004);
  Alcotest.(check bool) "outer includes inner" true (outer >= inner)

let test_span_exception_safe () =
  Obs.with_recording (fun () ->
      (try Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
      (* The stack must have unwound: a sibling span nests at depth 0
         again and exits cleanly. *)
      Span.with_ "after" (fun () -> ()));
  Alcotest.(check int) "boom recorded" 1 (Span.entries "boom");
  Alcotest.(check int) "after recorded" 1 (Span.entries "after")

let test_memory_sink_events () =
  let sink = Trace.memory () in
  Obs.with_recording ~sink (fun () -> Span.with_ "phase" (fun () -> ()));
  match Trace.memory_events sink with
  | [ Trace.Span_enter e; Trace.Span_exit x ] ->
    Alcotest.(check string) "enter name" "phase" e.name;
    Alcotest.(check string) "exit name" "phase" x.name;
    Alcotest.(check int) "depth" 0 e.depth;
    Alcotest.(check bool) "elapsed >= 0" true (x.elapsed_s >= 0.)
  | es -> Alcotest.failf "expected enter+exit, got %d events" (List.length es)

let test_no_trace_output_when_disabled () =
  let sink = Trace.memory () in
  Trace.set_sink sink;
  (* Recording was never enabled: instrumented code must not emit. *)
  ignore (Dsd_flow.Dinic.max_flow (two_path_net ()) ~s:0 ~t:3);
  Trace.set_sink Trace.null;
  Alcotest.(check int) "no events" 0 (List.length (Trace.memory_events sink))

let test_disabled_results_bit_identical () =
  let g = Helpers.random_graph ~seed:77 ~max_n:20 ~max_m:60 () in
  let run () = Dsd_core.Core_exact.run g P.triangle in
  Obs.reset ();
  let off = run () in
  let on = Obs.with_recording ~sink:(Trace.memory ()) (fun () -> run ()) in
  let off_sg = off.Dsd_core.Core_exact.subgraph in
  let on_sg = on.Dsd_core.Core_exact.subgraph in
  Alcotest.(check bool) "identical density" true
    (Float.equal off_sg.Dsd_core.Density.density on_sg.Dsd_core.Density.density);
  Alcotest.check Helpers.sorted_array "identical vertices"
    off_sg.Dsd_core.Density.vertices on_sg.Dsd_core.Density.vertices;
  Alcotest.(check int) "identical iterations"
    off.Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations
    on.Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations

let test_parallel_stripes_spans_and_counts () =
  let g = Dsd_data.Gen.er_gnp ~seed:3 ~n:120 ~p:0.15 in
  let reference = Dsd_clique.Kclist.count g ~h:3 in
  let domains = 3 in
  (* sequential_below:0 forces the job onto the workers — the graph is
     far below the default inline-fallback threshold. *)
  Obs.with_recording (fun () ->
      let c =
        Dsd_util.Pool.with_pool ~sequential_below:0 domains (fun pool ->
            Dsd_clique.Parallel.count_in pool g ~h:3)
      in
      Alcotest.(check int) "parallel count" reference c);
  (* One clique_stripe span per domain, all summed into one entry
     row; instance tallies batch-added per stripe. *)
  Alcotest.(check int) "stripe spans" domains
    (Span.entries Dsd_obs.Phase.clique_stripe);
  Alcotest.(check bool) "stripe time recorded" true
    (Span.total_s Dsd_obs.Phase.clique_stripe > 0.);
  Alcotest.(check int) "instances counted across domains" reference
    (Counter.get Counter.Clique_instances)

let test_jsonl_sink_valid_lines () =
  let path = Filename.temp_file "dsd_obs" ".jsonl" in
  let chan = open_out path in
  Obs.with_recording ~sink:(Trace.jsonl chan) (fun () ->
      Span.with_ "a" (fun () -> Trace.message "hello \"world\"\n"));
  close_out chan;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "enter + message + exit" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "looks like a json object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Alcotest.(check bool) "escaped quote survives" true
    (List.exists
       (fun l ->
         (* The message line must carry the escaped payload. *)
         let needle = {|hello \"world\"\n|} in
         let rec find i =
           if i + String.length needle > String.length l then false
           else String.sub l i (String.length needle) = needle || find (i + 1)
         in
         find 0)
       lines)

let suite =
  [
    Alcotest.test_case "disabled: counters stay zero" `Quick
      test_counters_disabled_stay_zero;
    Alcotest.test_case "dinic counters exact" `Quick test_dinic_counters_exact;
    Alcotest.test_case "edmonds-karp counters exact" `Quick
      test_edmonds_karp_counters_exact;
    Alcotest.test_case "peel/instance counters exact" `Quick
      test_peel_and_instance_counters_exact;
    Alcotest.test_case "span nesting and totals" `Quick
      test_span_nesting_and_totals;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "memory sink events" `Quick test_memory_sink_events;
    Alcotest.test_case "disabled: no trace output" `Quick
      test_no_trace_output_when_disabled;
    Alcotest.test_case "disabled: results bit-identical" `Quick
      test_disabled_results_bit_identical;
    Alcotest.test_case "parallel stripes: spans sum across domains" `Quick
      test_parallel_stripes_spans_and_counts;
    Alcotest.test_case "jsonl sink writes valid lines" `Quick
      test_jsonl_sink_valid_lines;
  ]
