(* Generators and named datasets: determinism, parameter adherence,
   and the structural properties the benchmarks rely on. *)

module G = Dsd_graph.Graph
module Gen = Dsd_data.Gen

let test_er_gnp_determinism () =
  let a = Gen.er_gnp ~seed:1 ~n:500 ~p:0.01 in
  let b = Gen.er_gnp ~seed:1 ~n:500 ~p:0.01 in
  Alcotest.(check bool) "same graph" true (G.equal a b);
  let c = Gen.er_gnp ~seed:2 ~n:500 ~p:0.01 in
  Alcotest.(check bool) "different seed differs" false (G.equal a c)

let test_er_gnp_edge_count () =
  let n = 400 and p = 0.05 in
  let g = Gen.er_gnp ~seed:7 ~n ~p in
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let m = float_of_int (G.m g) in
  Alcotest.(check bool) "within 20% of expectation" true
    (m > 0.8 *. expected && m < 1.2 *. expected)

let test_er_gnp_extremes () =
  let empty = Gen.er_gnp ~seed:1 ~n:50 ~p:0.0 in
  Alcotest.(check int) "p=0" 0 (G.m empty);
  let full = Gen.er_gnp ~seed:1 ~n:20 ~p:1.0 in
  Alcotest.(check int) "p=1" 190 (G.m full)

let test_er_gnm () =
  let g = Gen.er_gnm ~seed:3 ~n:100 ~m:321 in
  Alcotest.(check int) "exact edge count" 321 (G.m g)

let test_rmat () =
  let g = Gen.rmat ~seed:4 ~scale:10 ~edge_factor:8 () in
  Alcotest.(check int) "n" 1024 (G.n g);
  Alcotest.(check bool) "edges present" true (G.m g > 1000);
  (* Power-law-ish: the max degree dwarfs the average. *)
  let avg = 2. *. float_of_int (G.m g) /. float_of_int (G.n g) in
  Alcotest.(check bool) "skewed degrees" true
    (float_of_int (G.max_degree g) > 4. *. avg)

let test_ssca_contains_cliques () =
  let g = Gen.ssca ~seed:5 ~n:2000 ~max_clique:10 in
  (* Clique blocks make the degeneracy at least max block size - 1 for
     some block; with 2000 vertices a size-10 block is essentially
     certain. *)
  let d = Dsd_graph.Degeneracy.compute g in
  Alcotest.(check bool) "degeneracy from blocks" true (d.degeneracy >= 8)

let test_barabasi_albert () =
  let g = Gen.barabasi_albert ~seed:6 ~n:3000 ~attach:3 in
  Alcotest.(check int) "n" 3000 (G.n g);
  let d = Dsd_graph.Degeneracy.compute g in
  Alcotest.(check bool) "degeneracy <= attach" true (d.degeneracy <= 3);
  Alcotest.(check bool) "hub exists" true (G.max_degree g > 20);
  let _, cc = Dsd_graph.Traversal.components g in
  Alcotest.(check int) "connected" 1 cc

let test_chung_lu_power_law () =
  let g = Gen.power_law_chung_lu ~seed:7 ~n:5000 ~alpha:2.3 ~avg_deg:6. in
  let avg = 2. *. float_of_int (G.m g) /. float_of_int (G.n g) in
  Alcotest.(check bool) "avg degree in range" true (avg > 2. && avg < 8.);
  let alpha = Dsd_util.Stats.power_law_alpha (G.degrees g) in
  Alcotest.(check bool) "heavy tail estimated" true (alpha > 1.5 && alpha < 4.)

let test_planted_clique_is_densest () =
  let g = Gen.planted_clique ~seed:8 ~n:400 ~p:0.01 ~clique:15 in
  let r = Dsd_core.Core_exact.run g Dsd_pattern.Pattern.edge in
  Alcotest.(check (list int)) "planted block found"
    (List.init 15 Fun.id)
    (Helpers.int_array_as_set r.Dsd_core.Core_exact.subgraph.Dsd_core.Density.vertices)

let test_communities_structure () =
  let g = Gen.communities ~seed:9 ~n:120 ~communities:4 ~p_in:0.5 ~p_out:0.01 in
  (* Intra-block edges dominate. *)
  let intra = ref 0 and inter = ref 0 in
  G.iter_edges g ~f:(fun u v ->
      if u mod 4 = v mod 4 then incr intra else incr inter);
  Alcotest.(check bool) "communities dominate" true (!intra > 4 * !inter)

let test_datasets_registry () =
  Alcotest.(check bool) "yeast exists" true (Dsd_data.Datasets.mem "yeast");
  Alcotest.(check bool) "unknown absent" false (Dsd_data.Datasets.mem "nope");
  Alcotest.(check (list string)) "small group"
    [ "yeast"; "netscience"; "as733"; "ca_hepth"; "as_caida" ]
    (Dsd_data.Datasets.names_of_group Dsd_data.Datasets.Small);
  (* Memoisation returns the same physical graph. *)
  let a = Dsd_data.Datasets.graph "yeast" in
  let b = Dsd_data.Datasets.graph "yeast" in
  Alcotest.(check bool) "memoised" true (a == b);
  Alcotest.(check bool) "plausible size" true
    (G.n a > 500 && G.n a < 2000)

let test_sdblp_case_study_shape () =
  let g = Dsd_data.Datasets.graph "sdblp" in
  Alcotest.(check int) "n" 478 (G.n g);
  (* The planted near-clique should be the triangle-densest subgraph,
     and the hub should dominate 2-star density. *)
  let tri = Dsd_core.Core_exact.run g Dsd_pattern.Pattern.triangle in
  let tri_set =
    Helpers.int_array_as_set tri.Dsd_core.Core_exact.subgraph.Dsd_core.Density.vertices
  in
  Alcotest.(check bool) "triangle PDS hits the near-clique" true
    (List.for_all (fun v -> List.mem v tri_set) [ 3; 4; 5; 6; 7; 8 ]);
  let star = Dsd_core.Core_pexact.run g (Dsd_pattern.Pattern.star 2) in
  let star_set =
    Helpers.int_array_as_set star.Dsd_core.Core_exact.subgraph.Dsd_core.Density.vertices
  in
  Alcotest.(check bool) "2-star PDS contains the big hub" true
    (List.mem 20 star_set);
  Alcotest.(check bool) "the two PDSs differ" true (tri_set <> star_set)

let suite =
  [
    Alcotest.test_case "er gnp determinism" `Quick test_er_gnp_determinism;
    Alcotest.test_case "er gnp edge count" `Quick test_er_gnp_edge_count;
    Alcotest.test_case "er gnp extremes" `Quick test_er_gnp_extremes;
    Alcotest.test_case "er gnm" `Quick test_er_gnm;
    Alcotest.test_case "rmat" `Quick test_rmat;
    Alcotest.test_case "ssca cliques" `Quick test_ssca_contains_cliques;
    Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
    Alcotest.test_case "chung-lu power law" `Quick test_chung_lu_power_law;
    Alcotest.test_case "planted clique densest" `Slow test_planted_clique_is_densest;
    Alcotest.test_case "communities" `Quick test_communities_structure;
    Alcotest.test_case "datasets registry" `Quick test_datasets_registry;
    Alcotest.test_case "sdblp case study shape" `Slow test_sdblp_case_study_shape;
  ]
