(* Properties of the shared domain pool (Dsd_util.Pool) and a
   randomized differential harness for every parallel solver path:
   whatever the pool size, results must be bit-identical to the
   sequential oracle.  This is the determinism contract the library's
   parallel decompositions are built on. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Pool = Dsd_util.Pool
module CC = Dsd_core.Clique_core
module PA = Dsd_core.Peel_app
module D = Dsd_core.Density

(* ---- Pool primitives ---- *)

(* Every index in [0, n) is visited exactly once, whatever the chunk
   size, including chunk sizes that do not divide n and the n = 0 and
   n < chunks cases. *)
let test_covers_exactly_once () =
  Pool.with_pool 4 (fun pool ->
      List.iter
        (fun (n, chunk) ->
          let hits = Array.init n (fun _ -> Atomic.make 0) in
          Pool.parallel_for pool ?chunk ~n (fun lo hi ->
              Alcotest.(check bool) "chunk bounds" true (0 <= lo && lo < hi && hi <= n);
              for i = lo to hi - 1 do
                Atomic.incr hits.(i)
              done);
          Array.iteri
            (fun i c ->
              Alcotest.(check int)
                (Printf.sprintf "n=%d chunk=%s index %d" n
                   (match chunk with Some c -> string_of_int c | None -> "-")
                   i)
                1 (Atomic.get c))
            hits)
        [
          (0, None);
          (1, None);
          (7, Some 1);
          (64, Some 64);
          (65, Some 64);
          (100, Some 3);
          (1000, None);
        ])

(* map_chunks returns ascending contiguous chunks covering [0, n)
   regardless of which domain ran which chunk. *)
let test_map_chunks_order () =
  Pool.with_pool 3 (fun pool ->
      let n = 101 in
      let chunks = Pool.map_chunks pool ~chunk:7 ~n (fun lo hi -> (lo, hi)) in
      let pos = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !pos lo;
          Alcotest.(check bool) "non-empty" true (hi > lo);
          pos := hi)
        chunks;
      Alcotest.(check int) "covers n" n !pos)

(* fold_chunks reduces in chunk order even for a non-commutative
   merge, so the folded value is the same for every pool size. *)
let test_fold_deterministic_order () =
  let n = 257 in
  let digest pool =
    Pool.fold_chunks pool ~chunk:9 ~n ~init:"" ~merge:( ^ ) (fun lo hi ->
        Printf.sprintf "[%d,%d)" lo hi)
  in
  let expected = Pool.with_pool 1 digest in
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "fold order, %d domains" size)
        expected
        (Pool.with_pool size digest))
    [ 2; 3; 4 ]

(* Submitting a job from inside a job body raises Nested instead of
   deadlocking, and the pool stays usable afterwards. *)
let test_nested_raises () =
  List.iter
    (fun size ->
      Pool.with_pool size (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "nested, %d domains" size)
            Pool.Nested
            (fun () ->
              Pool.parallel_for pool ~n:8 (fun _ _ ->
                  Pool.parallel_for pool ~n:2 (fun _ _ -> ())));
          (* Still functional after the failed job. *)
          let total =
            Pool.fold_chunks pool ~n:5 ~init:0 ~merge:( + ) (fun lo hi -> hi - lo)
          in
          Alcotest.(check int) "usable after Nested" 5 total))
    [ 1; 2 ]

(* A body exception is re-raised in the caller once the job drains. *)
let test_body_exception_propagates () =
  Pool.with_pool 2 (fun pool ->
      Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
          Pool.parallel_for pool ~chunk:1 ~n:16 (fun lo _ ->
              if lo = 7 then failwith "boom"));
      let count =
        Pool.fold_chunks pool ~n:10 ~init:0 ~merge:( + ) (fun lo hi -> hi - lo)
      in
      Alcotest.(check int) "usable after failure" 10 count)

(* ---- recommended_domains / DSD_DOMAINS ---- *)

let test_recommended_domains_env () =
  let rd () = Dsd_clique.Parallel.recommended_domains () in
  let fallback = max 1 (Domain.recommended_domain_count ()) in
  (* putenv cannot unset; an empty value takes the fallback path, so
     restoring to "" is equivalent to the variable being absent. *)
  Fun.protect
    ~finally:(fun () -> Unix.putenv "DSD_DOMAINS" "")
    (fun () ->
      Unix.putenv "DSD_DOMAINS" "3";
      Alcotest.(check int) "explicit" 3 (rd ());
      Unix.putenv "DSD_DOMAINS" " 2 ";
      Alcotest.(check int) "whitespace trimmed" 2 (rd ());
      Unix.putenv "DSD_DOMAINS" "0";
      Alcotest.(check int) "nonpositive ignored" fallback (rd ());
      Unix.putenv "DSD_DOMAINS" "-4";
      Alcotest.(check int) "negative ignored" fallback (rd ());
      Unix.putenv "DSD_DOMAINS" "soup";
      Alcotest.(check int) "garbage ignored" fallback (rd ());
      Unix.putenv "DSD_DOMAINS" "";
      Alcotest.(check int) "empty ignored" fallback (rd ()));
  Alcotest.(check bool) "positive without env" true (rd () >= 1)

(* ---- differential: parallel enumeration vs sequential kClist ---- *)

let domain_counts = [ 1; 2; 4 ]

let test_enumeration_differential () =
  let graphs =
    List.init 8 (fun i -> Helpers.random_graph ~seed:(50 + i) ~max_n:25 ~max_m:80 ())
  in
  List.iter
    (fun d ->
      Pool.with_pool d (fun pool ->
          List.iteri
            (fun gi g ->
              List.iter
                (fun h ->
                  let tag = Printf.sprintf "g%d h=%d d=%d" gi h d in
                  Alcotest.(check int) ("count " ^ tag)
                    (Dsd_clique.Kclist.count g ~h)
                    (Dsd_clique.Parallel.count_in pool g ~h);
                  Alcotest.(check (array (array int))) ("list " ^ tag)
                    (Dsd_clique.Kclist.list g ~h)
                    (Dsd_clique.Parallel.list_in pool g ~h);
                  Alcotest.(check (array int)) ("degrees " ^ tag)
                    (Dsd_clique.Clique_count.degrees g ~h)
                    (Dsd_clique.Parallel.degrees_in pool g ~h))
                [ 2; 3; 4 ])
            graphs))
    domain_counts

(* ---- differential: core decomposition across pool sizes ---- *)

(* ~30 random graphs, h in {2, 3}: core numbers, kmax, mu and (in the
   density-tracking mode) the whole peel transcript must be identical
   across domains in {1, 2, 4} and equal to the sequential result. *)
let test_decompose_differential () =
  let graphs =
    List.init 30 (fun i -> Helpers.random_graph ~seed:(i + 1) ~max_n:30 ~max_m:90 ())
  in
  let patterns = [ P.edge; P.triangle ] in
  let seq =
    List.map
      (fun g -> List.map (fun psi -> CC.decompose g psi) patterns)
      graphs
  in
  List.iter
    (fun d ->
      Pool.with_pool d (fun pool ->
          List.iteri
            (fun gi g ->
              List.iteri
                (fun pi psi ->
                  let s = List.nth (List.nth seq gi) pi in
                  let tag = Printf.sprintf "g%d %s d=%d" gi psi.P.name d in
                  (* Frontier-synchronous engine (no density tracking):
                     canonical outputs match exactly. *)
                  let fast = CC.decompose ~pool ~track_density:false g psi in
                  Alcotest.(check (array int)) ("core " ^ tag) s.CC.core fast.CC.core;
                  Alcotest.(check int) ("kmax " ^ tag) s.CC.kmax fast.CC.kmax;
                  Alcotest.(check int) ("mu " ^ tag) s.CC.mu_total fast.CC.mu_total;
                  Alcotest.(check (array int)) ("kmax-core " ^ tag)
                    (CC.kmax_core s) (CC.kmax_core fast);
                  (* Density-tracking mode keeps the sequential peel
                     order, so every field is bit-identical. *)
                  let tracked = CC.decompose ~pool g psi in
                  Alcotest.(check (array int)) ("tracked core " ^ tag)
                    s.CC.core tracked.CC.core;
                  Alcotest.(check (array int)) ("tracked order " ^ tag)
                    s.CC.order tracked.CC.order;
                  Helpers.check_float ("rho' " ^ tag)
                    s.CC.best_residual_density tracked.CC.best_residual_density;
                  Alcotest.(check int) ("rho' start " ^ tag)
                    s.CC.best_residual_start tracked.CC.best_residual_start)
                patterns)
            graphs))
    domain_counts

(* Small graphs also against the fully naive threshold-peeling oracle
   (independent re-derivation, not just seq-vs-parallel agreement). *)
let test_decompose_vs_naive_oracle () =
  for seed = 1 to 6 do
    let g = Helpers.random_graph ~seed:(100 + seed) ~max_n:14 ~max_m:30 () in
    List.iter
      (fun psi ->
        let expected = Helpers.naive_core_numbers g psi in
        List.iter
          (fun d ->
            Pool.with_pool d (fun pool ->
                let got = CC.decompose ~pool ~track_density:false g psi in
                Alcotest.(check (array int))
                  (Printf.sprintf "%s %s d=%d" (Helpers.seed_ctx seed) psi.P.name d)
                  expected got.CC.core))
          domain_counts)
      [ P.edge; P.triangle ]
  done

(* ---- differential: CDS end-to-end across pool sizes ---- *)

let test_cds_differential () =
  let graphs =
    List.init 8 (fun i -> Helpers.random_graph ~seed:(200 + i) ~max_n:20 ~max_m:60 ())
  in
  let patterns = [ P.edge; P.triangle ] in
  List.iteri
    (fun gi g ->
      List.iter
        (fun psi ->
          let peel0 = PA.run g psi in
          let exact0 = Dsd_core.Api.densest_subgraph ~psi ~algorithm:Dsd_core.Api.Core_exact g in
          List.iter
            (fun d ->
              Pool.with_pool d (fun pool ->
                  let tag = Printf.sprintf "g%d %s d=%d" gi psi.P.name d in
                  let peel = PA.run ~pool g psi in
                  Alcotest.(check (array int)) ("peel vertices " ^ tag)
                    peel0.PA.subgraph.D.vertices peel.PA.subgraph.D.vertices;
                  Helpers.check_float ("peel density " ^ tag)
                    peel0.PA.subgraph.D.density peel.PA.subgraph.D.density;
                  let exact =
                    Dsd_core.Api.densest_subgraph ~pool ~psi
                      ~algorithm:Dsd_core.Api.Core_exact g
                  in
                  Alcotest.(check (array int)) ("exact vertices " ^ tag)
                    exact0.D.vertices exact.D.vertices;
                  Helpers.check_float ("exact density " ^ tag)
                    exact0.D.density exact.D.density))
            domain_counts)
        patterns)
    graphs

let suite =
  [
    Alcotest.test_case "pool covers exactly once" `Quick test_covers_exactly_once;
    Alcotest.test_case "map_chunks chunk order" `Quick test_map_chunks_order;
    Alcotest.test_case "fold deterministic order" `Quick test_fold_deterministic_order;
    Alcotest.test_case "nested job raises" `Quick test_nested_raises;
    Alcotest.test_case "body exception propagates" `Quick test_body_exception_propagates;
    Alcotest.test_case "recommended_domains env" `Quick test_recommended_domains_env;
    Alcotest.test_case "enumeration differential" `Slow test_enumeration_differential;
    Alcotest.test_case "decompose differential" `Slow test_decompose_differential;
    Alcotest.test_case "decompose vs naive oracle" `Slow test_decompose_vs_naive_oracle;
    Alcotest.test_case "cds differential" `Slow test_cds_differential;
  ]
