(* Flow-network constructions: Lemma 14 (the min-cut decides "exists a
   subgraph denser than alpha") for all three families, decode
   round-trips, and the Density/Enumerate helpers. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module FB = Dsd_core.Flow_build
module D = Dsd_core.Density

(* Does g contain a subgraph with psi-density strictly above alpha?
   (exhaustive, n <= 12). *)
let exists_denser g psi alpha =
  let n = G.n g in
  let found = ref false in
  for mask = 1 to (1 lsl n) - 1 do
    if not !found then begin
      let vs = ref [] in
      for v = n - 1 downto 0 do
        if mask land (1 lsl v) <> 0 then vs := v :: !vs
      done;
      if Helpers.density_of_subset g psi (Array.of_list !vs) > alpha +. 1e-9
      then found := true
    end
  done;
  !found

let lemma14_family family psi (g, alpha) =
  if G.n g = 0 then true
  else begin
    let instances = Dsd_core.Enumerate.instances g psi in
    let network = FB.build family g psi ~instances ~alpha in
    let s_side = FB.solve network in
    let expect = exists_denser g psi alpha in
    (* Exact boundary (density exactly alpha) may legitimately return a
       non-empty source side of equal density; only the two strict
       directions are required. *)
    if expect then Array.length s_side > 0
    else
      Array.length s_side = 0
      || Helpers.density_of_subset g psi s_side >= alpha -. 1e-9
  end

(* S-side density >= alpha whenever non-empty (the witness-quality
   property CoreExact's convergence rests on). *)
let witness_density_family family psi (g, alpha) =
  if G.n g = 0 then true
  else begin
    let instances = Dsd_core.Enumerate.instances g psi in
    let network = FB.build family g psi ~instances ~alpha in
    let s_side = FB.solve network in
    Array.length s_side = 0
    || Helpers.density_of_subset g psi s_side >= alpha -. 1e-6
  end

let arb_graph_alpha =
  QCheck.make
    ~print:(fun (g, alpha) ->
      Format.asprintf "%a alpha=%.3f" G.pp g alpha)
    QCheck.Gen.(
      pair (Helpers.small_graph_gen ~max_n:9 ~max_m:22 ()) (float_bound_inclusive 3.0))

let test_eds_capacities () =
  (* Goldberg network of a triangle at alpha = 1: s->v arcs carry m,
     v->t arcs carry m + 2 alpha - deg = 3 + 2 - 2 = 3. *)
  let g = G.complete 3 in
  let fb = FB.eds_network g ~alpha:1.0 in
  Alcotest.(check int) "node count" 5 fb.FB.node_count;
  let module F = Dsd_flow.Flow_network in
  Alcotest.(check int) "arcs: 3 s->v, 3 v->t, 6 edge arcs" 12
    (F.edge_count fb.FB.net)

let test_clique_network_shape () =
  (* Figure 2 / Example 1: triangle network on the 4-vertex graph has
     s, 4 vertex nodes, edge nodes for the (h-1)-cliques extendable to
     triangles, t.  Only the triangle (B,C,D) exists, so its 3 edges
     become nodes. *)
  let g = Dsd_data.Paper_graphs.figure2 in
  let fb = FB.clique_network g ~h:3 ~alpha:0.5 in
  Alcotest.(check int) "nodes = 2 + 4 + 3" 9 fb.FB.node_count

let test_solve_decodes_vertices () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:5 ~b:3 ~bridge:false in
  (* K5 has edge density 2; alpha = 1.5 must expose it. *)
  let fb = FB.eds_network g ~alpha:1.5 in
  let side = FB.solve fb in
  Alcotest.(check (list int)) "source side = K5" [ 0; 1; 2; 3; 4 ]
    (Helpers.int_array_as_set side)

let test_density_helpers () =
  Helpers.check_float "min gap" (1. /. 20.) (D.min_gap 5);
  Helpers.check_float "min gap degenerate" 1. (D.min_gap 1);
  let a = { D.vertices = [| 0 |]; density = 1. } in
  let b = { D.vertices = [| 1 |]; density = 2. } in
  Alcotest.(check bool) "better picks denser" true (D.better a b == b);
  Alcotest.(check bool) "ties favour first" true (D.better b b == b);
  Helpers.check_float "empty" 0. D.empty.D.density

let test_density_of_vertices () =
  let g = Dsd_data.Paper_graphs.eds_vs_cds in
  let sg = D.of_vertices g P.triangle [| 7; 8; 9; 10 |] in
  Helpers.check_float "K4 triangle density" 1.0 sg.D.density;
  Alcotest.(check (array int)) "sorted" [| 7; 8; 9; 10 |] sg.D.vertices

let enumerate_dispatch_prop g =
  (* All enumeration paths agree on counts. *)
  List.for_all
    (fun (psi : P.t) ->
      Dsd_core.Enumerate.count g psi = Dsd_pattern.Match.count g psi
      && Array.length (Dsd_core.Enumerate.instances g psi)
         = Dsd_core.Enumerate.count g psi
      && Dsd_core.Enumerate.degrees g psi = Dsd_pattern.Match.degrees g psi)
    [ P.triangle; P.star 2; P.diamond; P.c3_star ]

let test_auto_family () =
  Alcotest.(check bool) "edge -> Eds" true
    (FB.auto_family P.edge ~grouped:false = FB.Eds);
  Alcotest.(check bool) "triangle -> Clique_flow" true
    (FB.auto_family P.triangle ~grouped:false = FB.Clique_flow);
  Alcotest.(check bool) "paw -> Pds" true
    (FB.auto_family P.c3_star ~grouped:false = FB.Pds);
  Alcotest.(check bool) "paw grouped -> Pds_grouped" true
    (FB.auto_family P.c3_star ~grouped:true = FB.Pds_grouped)

let suite =
  [
    Alcotest.test_case "eds network capacities" `Quick test_eds_capacities;
    Alcotest.test_case "clique network shape (fig 2)" `Quick test_clique_network_shape;
    Alcotest.test_case "solve decodes vertices" `Quick test_solve_decodes_vertices;
    Alcotest.test_case "density helpers" `Quick test_density_helpers;
    Alcotest.test_case "density of vertices" `Quick test_density_of_vertices;
    Alcotest.test_case "auto family" `Quick test_auto_family;
    Helpers.qtest ~count:40 "enumerate dispatch agreement"
      (Helpers.small_graph_arb ~max_n:9 ~max_m:22 ())
      enumerate_dispatch_prop;
  ]
  @ List.concat_map
      (fun (fname, family, psi) ->
        [
          Helpers.qtest ~count:40
            (Printf.sprintf "lemma 14 (%s)" fname)
            arb_graph_alpha (lemma14_family family psi);
          Helpers.qtest ~count:40
            (Printf.sprintf "witness density (%s)" fname)
            arb_graph_alpha (witness_density_family family psi);
        ])
      [ ("eds", FB.Eds, P.edge);
        ("clique h=3", FB.Clique_flow, P.triangle);
        ("clique h=2", FB.Clique_flow, P.edge);
        ("pds paw", FB.Pds, P.c3_star);
        ("pds-grouped C4", FB.Pds_grouped, P.diamond) ]
