(* Warm-started retargeting vs reset retargeting.

   The warm path ([Flow_build.retarget ~warm:true]) keeps the previous
   probe's flow across a capacity change: caps are rewritten with
   [set_cap_carry], over-committed sink arcs are repaired by
   [restore_arc] (excess drained back to the source), and the solver
   then augments from that feasible state.  Against the reset path the
   min-cut *value* and the dense-side *vertex set* must be identical —
   the source-reachable set of a residual graph is the same for every
   max flow (the minimal min cut is unique) — for both Dinic and
   Edmonds-Karp, across all four network families, on alpha schedules
   that move in both directions.  Feasibility (capacity bounds +
   conservation) is asserted after every drain, before the solver
   runs.  Plus the warm-start obs accounting contracts. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module F = Dsd_flow.Flow_network
module FB = Dsd_core.Flow_build
module Obs = Dsd_obs.Control
module Counter = Dsd_obs.Counter

let solvers =
  [ ("dinic", Dsd_flow.Dinic.max_flow);
    ("edmonds-karp", Dsd_flow.Edmonds_karp.max_flow) ]

(* One pattern per network family; h = 2 (edge) and h = 3 (triangle)
   cover the clique constructions, diamond/2-star the PDS ones. *)
let cases =
  [ ("edge/Eds", P.edge, FB.Eds);
    ("triangle/Clique", P.triangle, FB.Clique_flow);
    ("2-star/Pds", P.star 2, FB.Pds);
    ("diamond/Grouped", P.diamond, FB.Pds_grouped) ]

let instances_for g psi family =
  match family with
  | FB.Eds -> [||]
  | _ -> Dsd_core.Enumerate.instances g psi

(* Net outflow of node [v] (twins carry negated incoming flow). *)
let excess net v =
  Array.fold_left (fun acc e -> acc +. F.arc_flow net e) 0. (F.arcs_from net v)

(* Full feasibility: flow within capacity on every arc, conservation
   at every non-terminal node. *)
let check_feasible label (t : FB.t) =
  let net = t.FB.net in
  for e = 0 to F.arc_count net - 1 do
    if F.arc_flow net e > F.arc_cap net e +. F.eps then
      Alcotest.failf "%s: arc %d flow %g above cap %g" label e
        (F.arc_flow net e) (F.arc_cap net e)
  done;
  for v = 0 to F.node_count net - 1 do
    if v <> t.FB.source && v <> t.FB.sink then begin
      let ex = excess net v in
      if Float.abs ex > 1e-6 then
        Alcotest.failf "%s: node %d violates conservation (excess %g)" label v
          ex
    end
  done

(* A deliberately non-monotone alpha schedule spanning [0, u]: the
   binary searches only ever halve the interval, so this exercises
   larger cap jumps in both directions than they would. *)
let schedule u =
  [ 0.4 *. u; 0.9 *. u; 0.15 *. u; u; 0.5 *. u; 0.02 *. u; 0.75 *. u;
    0.3 *. u ]

(* Run the schedule once with a given retarget mode, returning the
   per-step (flow value, dense-side vertex list).  The solver is driven
   directly (not via Min_cut.solve) so Edmonds-Karp gets the same
   treatment as Dinic. *)
let drive solver ~warm g psi family alphas =
  let instances = instances_for g psi family in
  let prepared = ref None in
  List.map
    (fun alpha ->
      let t =
        match !prepared with
        | None ->
          let p = FB.prepare family g psi ~instances ~alpha in
          prepared := Some p;
          FB.network p
        | Some p -> FB.retarget ~warm p ~alpha
      in
      if warm then check_feasible "after warm retarget" t;
      let net = t.FB.net in
      ignore (solver net ~s:t.FB.source ~t:t.FB.sink);
      check_feasible "after solve" t;
      let value = F.flow_value net ~s:t.FB.source in
      let side = Dsd_flow.Min_cut.source_side net ~s:t.FB.source in
      let dense = ref [] in
      for v = t.FB.n_vertices - 1 downto 0 do
        if side.(v + 1) then dense := v :: !dense
      done;
      (value, !dense))
    alphas

let max_alpha g psi family =
  match family with
  | FB.Eds -> float_of_int (G.max_degree g)
  | _ ->
    let instances = instances_for g psi family in
    Array.fold_left max 0
      (FB.instance_degrees (G.n g) instances)
    |> float_of_int

let test_warm_vs_reset_differential () =
  List.iter
    (fun (sname, solver) ->
      for seed = 1 to 12 do
        let g = Helpers.random_graph ~seed ~max_n:12 ~max_m:30 () in
        List.iter
          (fun (cname, psi, family) ->
            let u = max_alpha g psi family in
            if u > 0. then begin
              let alphas = schedule u in
              let reset = drive solver ~warm:false g psi family alphas in
              let warm = drive solver ~warm:true g psi family alphas in
              List.iteri
                (fun i ((rv, rside), (wv, wside)) ->
                  let label =
                    Printf.sprintf "%s %s %s step=%d" sname cname (Helpers.seed_ctx seed) i
                  in
                  Alcotest.(check (float 1e-6))
                    (label ^ ": min-cut value") rv wv;
                  Alcotest.(check (list int))
                    (label ^ ": dense side") rside wside)
                (List.combine reset warm)
            end)
          cases
      done)
    solvers

(* Densities through the public entry points must be bit-identical
   warm vs reset (the acceptance criterion): the dense-side sets agree
   exactly, so the reported densities are computed on the same vertex
   sets. *)
let test_entry_point_densities_bit_identical () =
  for seed = 1 to 10 do
    let g = Helpers.random_graph ~seed ~max_n:16 ~max_m:46 () in
    List.iter
      (fun (cname, psi, family) ->
        let w = Dsd_core.Exact.run ~warm:true ~family g psi in
        let c = Dsd_core.Exact.run ~warm:false ~family g psi in
        let label = Printf.sprintf "Exact %s %s" cname (Helpers.seed_ctx seed) in
        Alcotest.(check bool)
          (label ^ ": density bits") true
          (Int64.equal
             (Int64.bits_of_float w.Dsd_core.Exact.subgraph.Dsd_core.Density.density)
             (Int64.bits_of_float c.Dsd_core.Exact.subgraph.Dsd_core.Density.density));
        Alcotest.(check Helpers.sorted_array)
          (label ^ ": vertices")
          c.Dsd_core.Exact.subgraph.Dsd_core.Density.vertices
          w.Dsd_core.Exact.subgraph.Dsd_core.Density.vertices)
      cases;
    let wq = Dsd_core.Core_exact.run ~warm:true g P.triangle in
    let cq = Dsd_core.Core_exact.run ~warm:false g P.triangle in
    Alcotest.(check bool)
      (Printf.sprintf "CoreExact %s: density bits" (Helpers.seed_ctx seed))
      true
      (Int64.equal
         (Int64.bits_of_float wq.Dsd_core.Core_exact.subgraph.Dsd_core.Density.density)
         (Int64.bits_of_float cq.Dsd_core.Core_exact.subgraph.Dsd_core.Density.density))
  done

(* restore_arc unit semantics: lower a saturated sink arc, repair, and
   check the drained flow landed back at the source. *)
let test_restore_arc_drains_excess () =
  (* source -> a -> sink, source -> b -> sink, a -> b cross arc. *)
  let net = F.create 4 in
  let s = 0 and a = 1 and b = 2 and t = 3 in
  ignore (F.add_edge net ~src:s ~dst:a ~cap:10.);
  ignore (F.add_edge net ~src:s ~dst:b ~cap:10.);
  let e_at = F.add_edge net ~src:a ~dst:t ~cap:8. in
  ignore (F.add_edge net ~src:b ~dst:t ~cap:8.);
  ignore (F.add_edge net ~src:a ~dst:b ~cap:5.);
  let pushed = Dsd_flow.Dinic.max_flow net ~s ~t in
  Alcotest.(check (float 1e-9)) "initial max flow" 16. pushed;
  (* Lower a->t below its committed 8 units of flow; the 5-unit excess
     must drain a -> s (possibly via b for the part that arrived on
     s->a but left through the cross arc — here a's inflow is direct). *)
  F.set_cap_carry net e_at 3.;
  let paths = F.restore_arc net ~s e_at in
  Alcotest.(check bool) "used at least one drain path" true (paths > 0);
  Alcotest.(check (float 1e-9)) "arc back at capacity" 3.
    (F.arc_flow net e_at);
  Alcotest.(check (float 1e-9)) "total flow dropped by the excess" 11.
    (F.flow_value net ~s);
  (* Conservation at both interior nodes. *)
  Alcotest.(check (float 1e-9)) "node a conserves" 0. (excess net a);
  Alcotest.(check (float 1e-9)) "node b conserves" 0. (excess net b);
  (* Re-solving from the repaired state restores the new max flow. *)
  let delta = Dsd_flow.Dinic.max_flow net ~s ~t in
  Alcotest.(check (float 1e-9)) "resolve finds the lost capacity" 11.
    (F.flow_value net ~s);
  Alcotest.(check bool) "resume pushed only a delta" true (delta <= 5.)

let test_restore_arc_noop_when_feasible () =
  let net = F.create 3 in
  let e = F.add_edge net ~src:0 ~dst:1 ~cap:4. in
  ignore (F.add_edge net ~src:1 ~dst:2 ~cap:4.);
  ignore (Dsd_flow.Dinic.max_flow net ~s:0 ~t:2);
  F.set_cap_carry net e 6.;   (* cap raised: still feasible *)
  Alcotest.(check int) "no drain paths" 0 (F.restore_arc net ~s:0 e)

(* ---- Obs accounting contracts ---- *)

let warm_starts () = Counter.get Counter.Flow_warm_starts
let built () = Counter.get Counter.Flow_networks_built

let check_warm_accounting label ~iterations ~warm =
  if warm then
    Alcotest.(check int)
      (label ^ ": warm_starts + built = iterations")
      iterations
      (warm_starts () + built ())
  else
    Alcotest.(check int) (label ^ ": no warm starts when off") 0
      (warm_starts ())

let test_warm_accounting_exact () =
  List.iter
    (fun warm ->
      let g = Helpers.random_graph ~seed:11 ~max_n:20 ~max_m:60 () in
      let r =
        Obs.with_recording (fun () -> Dsd_core.Exact.run ~warm g P.triangle)
      in
      let iterations = r.Dsd_core.Exact.stats.Dsd_core.Exact.iterations in
      Alcotest.(check bool) "ran a real search" true (iterations > 1);
      check_warm_accounting "Exact" ~iterations ~warm)
    [ true; false ]

let test_warm_accounting_core_exact () =
  List.iter
    (fun warm ->
      for seed = 1 to 20 do
        let g = Helpers.random_graph ~seed ~max_n:26 ~max_m:90 () in
        let r =
          Obs.with_recording (fun () ->
              Dsd_core.Core_exact.run ~warm g P.triangle)
        in
        let iterations =
          r.Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations
        in
        check_warm_accounting
          (Printf.sprintf "CoreExact %s" (Helpers.seed_ctx seed))
          ~iterations ~warm
      done)
    [ true; false ]

let test_warm_accounting_pexact_variants () =
  let g = Helpers.random_graph ~seed:23 ~max_n:18 ~max_m:60 () in
  List.iter
    (fun warm ->
      let r =
        Obs.with_recording (fun () -> Dsd_core.Pexact.run ~warm g P.triangle)
      in
      check_warm_accounting "PExact"
        ~iterations:r.Dsd_core.Exact.stats.Dsd_core.Exact.iterations ~warm;
      let r =
        Obs.with_recording (fun () ->
            Dsd_core.Core_pexact.run ~warm g P.diamond)
      in
      check_warm_accounting "CorePExact"
        ~iterations:r.Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations
        ~warm)
    [ true; false ]

let test_warm_accounting_query () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:true in
  List.iter
    (fun warm ->
      let r =
        Obs.with_recording (fun () ->
            Dsd_core.Query_dsd.run ~warm g P.triangle ~query:[| G.n g - 1 |])
      in
      check_warm_accounting "Query"
        ~iterations:r.Dsd_core.Query_dsd.iterations ~warm)
    [ true; false ]

(* Warm mode must never need more augmenting paths in total than reset
   mode over an identical schedule: resuming from a feasible flow can
   only reduce the residual work.  (Strict inequality is asserted by
   the bench gate on real datasets; equality happens on tiny graphs
   with 1-iteration searches.) *)
let test_warm_never_more_augmentations () =
  for seed = 1 to 10 do
    let g = Helpers.random_graph ~seed ~max_n:18 ~max_m:56 () in
    let aug warm =
      Obs.with_recording (fun () ->
          ignore (Dsd_core.Exact.run ~warm g P.triangle);
          Counter.get Counter.Flow_augmentations)
    in
    let reset = aug false and warm = aug true in
    Alcotest.(check bool)
      (Printf.sprintf "%s: warm (%d) <= reset (%d)" (Helpers.seed_ctx seed) warm reset)
      true (warm <= reset)
  done

let suite =
  [
    Alcotest.test_case "warm = reset: values + dense sides (all families)"
      `Quick test_warm_vs_reset_differential;
    Alcotest.test_case "warm = reset: entry-point densities bit-identical"
      `Quick test_entry_point_densities_bit_identical;
    Alcotest.test_case "restore_arc drains excess to the source" `Quick
      test_restore_arc_drains_excess;
    Alcotest.test_case "restore_arc is a no-op on feasible arcs" `Quick
      test_restore_arc_noop_when_feasible;
    Alcotest.test_case "obs: Exact warm accounting" `Quick
      test_warm_accounting_exact;
    Alcotest.test_case "obs: CoreExact warm accounting" `Quick
      test_warm_accounting_core_exact;
    Alcotest.test_case "obs: PExact/CorePExact warm accounting" `Quick
      test_warm_accounting_pexact_variants;
    Alcotest.test_case "obs: Query warm accounting" `Quick
      test_warm_accounting_query;
    Alcotest.test_case "warm never needs more augmenting paths" `Quick
      test_warm_never_more_augmentations;
  ]
