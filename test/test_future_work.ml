(* The paper's future-work features: the [49]-style sampled
   approximation with core restriction, and size-constrained
   (at-least-k) DSD. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

(* ---- Sampled_app ---- *)

let test_sampling_p1_equals_peel () =
  (* p = 1 keeps every instance: identical search to PeelApp. *)
  let g = Helpers.random_graph ~seed:61 ~max_n:40 ~max_m:160 () in
  let peel = (Dsd_core.Peel_app.run g P.triangle).Dsd_core.Peel_app.subgraph in
  let sampled =
    Dsd_core.Sampled_app.run ~core_first:false ~seed:1 ~p:1.0 g P.triangle
  in
  Helpers.check_float "same density" peel.D.density
    sampled.Dsd_core.Sampled_app.subgraph.D.density

let sampled_never_beats_optimum_prop psi (g, seed) =
  let opt, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Sampled_app.run ~seed ~p:0.5 g psi in
  r.Dsd_core.Sampled_app.subgraph.D.density <= opt +. 1e-9

let sampled_core_first_no_worse_count_prop psi (g, seed) =
  (* The core restriction only shrinks the instance universe. *)
  let with_core = Dsd_core.Sampled_app.run ~core_first:true ~seed ~p:1.0 g psi in
  let without = Dsd_core.Sampled_app.run ~core_first:false ~seed ~p:1.0 g psi in
  with_core.Dsd_core.Sampled_app.total_instances
  <= without.Dsd_core.Sampled_app.total_instances

let test_sampled_deterministic_in_seed () =
  let g = Helpers.random_graph ~seed:62 ~max_n:30 ~max_m:120 () in
  let a = Dsd_core.Sampled_app.run ~seed:7 ~p:0.4 g P.triangle in
  let b = Dsd_core.Sampled_app.run ~seed:7 ~p:0.4 g P.triangle in
  Alcotest.(check int) "same sample size"
    a.Dsd_core.Sampled_app.sampled_instances
    b.Dsd_core.Sampled_app.sampled_instances;
  Helpers.check_float "same density"
    a.Dsd_core.Sampled_app.subgraph.D.density
    b.Dsd_core.Sampled_app.subgraph.D.density

let test_sampled_finds_planted_clique () =
  (* Even at p = 0.3 the planted clique dominates the sample. *)
  let g = Dsd_data.Gen.planted_clique ~seed:9 ~n:600 ~p:0.005 ~clique:16 in
  let r = Dsd_core.Sampled_app.run ~seed:5 ~p:0.3 g P.triangle in
  let set = Helpers.int_array_as_set r.Dsd_core.Sampled_app.subgraph.D.vertices in
  let planted_found =
    List.length (List.filter (fun v -> v < 16) set)
  in
  Alcotest.(check bool) "most of the clique found" true (planted_found >= 12);
  Alcotest.(check bool) "sampled fewer instances" true
    (r.Dsd_core.Sampled_app.sampled_instances
     < r.Dsd_core.Sampled_app.total_instances)

let test_sampled_validation () =
  Alcotest.check_raises "p range"
    (Invalid_argument "Sampled_app.run: p must be in (0, 1]")
    (fun () ->
      ignore (Dsd_core.Sampled_app.run ~seed:1 ~p:0. (G.complete 3) P.edge))

(* ---- At_least_k ---- *)

let at_least_k_respects_size_prop psi (g, kseed) =
  let n = G.n g in
  let k = 1 + (kseed mod n) in
  let r = Dsd_core.At_least_k.run g psi ~k in
  Array.length r.Dsd_core.At_least_k.subgraph.D.vertices >= k

(* Oracle: densest subset with >= k vertices (exhaustive). *)
let brute_at_least_k g psi k =
  let n = G.n g in
  let best = ref 0. in
  for mask = 1 to (1 lsl n) - 1 do
    let vs = ref [] in
    for v = n - 1 downto 0 do
      if mask land (1 lsl v) <> 0 then vs := v :: !vs
    done;
    let a = Array.of_list !vs in
    if Array.length a >= k then begin
      let d = Helpers.density_of_subset g psi a in
      if d > !best then best := d
    end
  done;
  !best

let at_least_k_half_approx_prop psi (g, kseed) =
  (* The peel-suffix heuristic is a 1/3-approx for edges; we check the
     weaker bound opt / (2 |V_Psi|) for all psi plus never-exceeds. *)
  let n = G.n g in
  let k = 1 + (kseed mod n) in
  let opt = brute_at_least_k g psi k in
  let r = Dsd_core.At_least_k.run g psi ~k in
  let d = r.Dsd_core.At_least_k.subgraph.D.density in
  d <= opt +. 1e-9
  && (opt = 0. || d >= opt /. (2. *. float_of_int psi.P.size) -. 1e-9)

let test_at_least_k_known () =
  (* K6 + K4 (disjoint): unconstrained optimum is the K6 (2.5); asking
     for >= 7 vertices forces a larger, sparser answer. *)
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:false in
  let unconstrained = Dsd_core.At_least_k.run g P.edge ~k:1 in
  Helpers.check_float "k=1 is the EDS" 2.5
    unconstrained.Dsd_core.At_least_k.subgraph.D.density;
  let big = Dsd_core.At_least_k.run g P.edge ~k:7 in
  Alcotest.(check bool) "size respected" true
    (Array.length big.Dsd_core.At_least_k.subgraph.D.vertices >= 7);
  (* Best 10-vertex choice is the whole graph: (15+6)/10. *)
  let all = Dsd_core.At_least_k.run g P.edge ~k:10 in
  Helpers.check_float "k=10 is everything" 2.1
    all.Dsd_core.At_least_k.subgraph.D.density

let test_at_least_k_validation () =
  let g = G.complete 3 in
  Alcotest.check_raises "k range"
    (Invalid_argument "At_least_k.run: k out of range")
    (fun () -> ignore (Dsd_core.At_least_k.run g P.edge ~k:4))

(* residual_densities coherence: entry 0 is the full density and the
   tracked best matches the array max. *)
let residual_density_array_prop psi g =
  let d = Dsd_core.Clique_core.decompose ~track_density:true g psi in
  let arr = d.Dsd_core.Clique_core.residual_densities in
  let n = G.n g in
  if n = 0 then true
  else begin
    let full =
      float_of_int d.Dsd_core.Clique_core.mu_total /. float_of_int n
    in
    Float.abs (arr.(0) -. full) < 1e-9
    && Float.abs
         (Array.fold_left max 0. arr
          -. d.Dsd_core.Clique_core.best_residual_density)
       < 1e-9
  end

let arb_graph_k =
  QCheck.pair (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ()) QCheck.small_int

let suite =
  [
    Alcotest.test_case "sampling p=1 = peel" `Quick test_sampling_p1_equals_peel;
    Alcotest.test_case "sampled deterministic" `Quick test_sampled_deterministic_in_seed;
    Alcotest.test_case "sampled planted clique" `Slow test_sampled_finds_planted_clique;
    Alcotest.test_case "sampled validation" `Quick test_sampled_validation;
    Alcotest.test_case "at-least-k known" `Quick test_at_least_k_known;
    Alcotest.test_case "at-least-k validation" `Quick test_at_least_k_validation;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:20 ("sampled <= optimum: " ^ name)
            arb_graph_k (sampled_never_beats_optimum_prop psi);
          Helpers.qtest ~count:20 ("core-first shrinks universe: " ^ name)
            arb_graph_k (sampled_core_first_no_worse_count_prop psi);
          Helpers.qtest ~count:25 ("at-least-k size: " ^ name)
            arb_graph_k (at_least_k_respects_size_prop psi);
          Helpers.qtest ~count:20 ("at-least-k quality: " ^ name)
            arb_graph_k (at_least_k_half_approx_prop psi);
          Helpers.qtest ~count:20 ("residual density array: " ^ name)
            (Helpers.small_graph_arb ~max_n:12 ~max_m:36 ())
            (residual_density_array_prop psi);
        ])
      [ ("edge", P.edge); ("triangle", P.triangle); ("2-star", P.star 2) ]
