(* Flow-invariant property suite on randomized networks, run for both
   Dinic and Edmonds-Karp: conservation at every non-terminal node,
   max-flow = min-cut capacity, residuals never negative beyond eps,
   and [reset_flow] restoring a bit-identical capacity vector.  Plus
   the pinned [set_cap] semantics: lowering a capacity below committed
   flow is *rejected* (never silently saturated) — the retarget fast
   path resets flow first. *)

module F = Dsd_flow.Flow_network
module Prng = Dsd_util.Prng

let solvers =
  [ ("dinic", Dsd_flow.Dinic.max_flow);
    ("edmonds-karp", Dsd_flow.Edmonds_karp.max_flow) ]

(* Seeded network with mixed integer/fractional capacities. *)
let random_network seed =
  let r = Prng.create seed in
  let n = 2 + Prng.int r 14 in
  let net = F.create n in
  let arcs = 1 + Prng.int r (4 * n) in
  for _ = 1 to arcs do
    let src = Prng.int r n and dst = Prng.int r n in
    if src <> dst then begin
      let cap =
        if Prng.int r 3 = 0 then Prng.float r 10.
        else float_of_int (1 + Prng.int r 20)
      in
      ignore (F.add_edge net ~src ~dst ~cap)
    end
  done;
  (net, n)

(* Net outflow of [v]: out.(v) holds forward arcs (+flow) and residual
   twins of incoming arcs (-flow of the forward arc), so the sum is
   outflow - inflow. *)
let excess net v =
  Array.fold_left
    (fun acc e -> acc +. F.arc_flow net e)
    0. (F.arcs_from net v)

let seeds = List.init 60 Fun.id

let test_conservation (_, max_flow) () =
  List.iter
    (fun seed ->
      let net, n = random_network seed in
      let s = 0 and t = n - 1 in
      let value = max_flow net ~s ~t in
      for v = 0 to n - 1 do
        let e = excess net v in
        let expect = if v = s then value else if v = t then -.value else 0. in
        if Float.abs (e -. expect) > 1e-6 then
          Alcotest.failf "%s node=%d excess %f, expected %f" (Helpers.seed_ctx seed) v e
            expect
      done)
    seeds

let test_flow_equals_cut (_, max_flow) () =
  List.iter
    (fun seed ->
      let net, n = random_network seed in
      let s = 0 and t = n - 1 in
      let value = max_flow net ~s ~t in
      let side = Dsd_flow.Min_cut.source_side net ~s in
      Alcotest.(check bool) "t not on source side" false side.(t);
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%s flow = cut capacity" (Helpers.seed_ctx seed))
        value
        (Dsd_flow.Min_cut.cut_capacity net side))
    seeds

let test_residual_never_negative (_, max_flow) () =
  List.iter
    (fun seed ->
      let net, n = random_network seed in
      ignore (max_flow net ~s:0 ~t:(n - 1));
      for e = 0 to F.arc_count net - 1 do
        if F.residual net e < -.F.eps then
          Alcotest.failf "%s arc=%d residual %g < -eps" (Helpers.seed_ctx seed) e
            (F.residual net e)
      done)
    seeds

let test_reset_flow_bit_identical (_, max_flow) () =
  List.iter
    (fun seed ->
      let net, n = random_network seed in
      let caps0 =
        Array.init (F.arc_count net) (fun e ->
            Int64.bits_of_float (F.arc_cap net e))
      in
      let v1 = max_flow net ~s:0 ~t:(n - 1) in
      F.reset_flow net;
      for e = 0 to F.arc_count net - 1 do
        if Int64.bits_of_float (F.arc_cap net e) <> caps0.(e) then
          Alcotest.failf "%s arc=%d capacity changed" (Helpers.seed_ctx seed) e;
        if F.arc_flow net e <> 0. then
          Alcotest.failf "%s arc=%d flow not zeroed" (Helpers.seed_ctx seed) e
      done;
      let v2 = max_flow net ~s:0 ~t:(n - 1) in
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s re-solve identical" (Helpers.seed_ctx seed))
        v1 v2)
    seeds

(* ---- set_cap / eps audit (pinned behaviour: reject, don't saturate) ---- *)

let test_set_cap_validation () =
  let net = F.create 2 in
  let e = F.add_edge net ~src:0 ~dst:1 ~cap:5. in
  Alcotest.check_raises "arc out of range"
    (Invalid_argument "Flow_network.set_cap: arc out of range")
    (fun () -> F.set_cap net 99 1.);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Flow_network.set_cap: negative capacity")
    (fun () -> F.set_cap net e (-1.));
  Alcotest.check_raises "nan capacity"
    (Invalid_argument "Flow_network.set_cap: negative capacity")
    (fun () -> F.set_cap net e Float.nan)

let test_set_cap_below_committed_flow_rejected () =
  let net = F.create 2 in
  let e = F.add_edge net ~src:0 ~dst:1 ~cap:5. in
  Helpers.check_float "saturating flow" 5. (Dsd_flow.Dinic.max_flow net ~s:0 ~t:1);
  Alcotest.check_raises "lowering under flow rejected"
    (Invalid_argument "Flow_network.set_cap: capacity below committed flow")
    (fun () -> F.set_cap net e 3.);
  (* Exactly the committed flow is allowed: residual goes to ~0 but
     never negative beyond eps. *)
  F.set_cap net e 5.;
  Alcotest.(check bool) "residual >= -eps" true (F.residual net e >= -.F.eps)

let test_set_cap_after_reset_flow () =
  let net = F.create 2 in
  let e = F.add_edge net ~src:0 ~dst:1 ~cap:5. in
  ignore (Dsd_flow.Dinic.max_flow net ~s:0 ~t:1);
  F.reset_flow net;
  F.set_cap net e 3.;
  Helpers.check_float "re-solve at lowered capacity" 3.
    (Dsd_flow.Dinic.max_flow net ~s:0 ~t:1)

let test_set_cap_raise_finds_more_flow () =
  (* Raising above committed flow composes with the residual state: the
     solver finds exactly the extra headroom. *)
  let net = F.create 2 in
  let e = F.add_edge net ~src:0 ~dst:1 ~cap:2. in
  Helpers.check_float "first pass" 2. (Dsd_flow.Dinic.max_flow net ~s:0 ~t:1);
  F.set_cap net e 5.;
  Helpers.check_float "incremental flow" 3. (Dsd_flow.Dinic.max_flow net ~s:0 ~t:1)

let test_set_cap_infinity () =
  let net = F.create 2 in
  let e = F.add_edge net ~src:0 ~dst:1 ~cap:1. in
  F.set_cap net e infinity;
  Helpers.check_float "infinite cap readable" infinity (F.arc_cap net e)

let suite =
  List.concat_map
    (fun ((name, _) as solver) ->
      [ Alcotest.test_case (name ^ ": conservation at non-terminals") `Quick
          (test_conservation solver);
        Alcotest.test_case (name ^ ": max-flow = min-cut capacity") `Quick
          (test_flow_equals_cut solver);
        Alcotest.test_case (name ^ ": residual >= -eps") `Quick
          (test_residual_never_negative solver);
        Alcotest.test_case (name ^ ": reset_flow bit-identical caps") `Quick
          (test_reset_flow_bit_identical solver) ])
    solvers
  @ [
      Alcotest.test_case "set_cap validation" `Quick test_set_cap_validation;
      Alcotest.test_case "set_cap below committed flow rejected" `Quick
        test_set_cap_below_committed_flow_rejected;
      Alcotest.test_case "set_cap after reset_flow" `Quick
        test_set_cap_after_reset_flow;
      Alcotest.test_case "set_cap raise finds more flow" `Quick
        test_set_cap_raise_finds_more_flow;
      Alcotest.test_case "set_cap to infinity" `Quick test_set_cap_infinity;
    ]
