(* Density-friendly decomposition (Dsd_core.Ld_decomposition) against
   the exhaustive union-of-argmax oracle, plus the prepared/fresh and
   pool-width bit-equality the rebuilt probe loop promises.

   Every comparison here is EXACT — marginal densities are quotients of
   small integers, so equal rationals divide to bit-identical floats
   and [Int64.bits_of_float] equality is the right notion of "same
   answer". *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module LD = Dsd_core.Ld_decomposition
module O = Dsd_check.Oracle

let patterns = [ ("edge", P.edge); ("triangle", P.triangle) ]

let show_levels ls =
  String.concat "; "
    (List.map
       (fun (m, vs) ->
         Printf.sprintf "%.6f:[%s]" m
           (String.concat "," (List.map string_of_int (Array.to_list vs))))
       ls)

let pairs_of (d : LD.t) =
  List.map (fun (l : LD.level) -> (l.marginal_density, l.vertices)) d.levels

let same_levels a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ma, va) (mb, vb) ->
         Int64.bits_of_float ma = Int64.bits_of_float mb && va = vb)
       a b

let check_same ~ctx a b =
  if not (same_levels a b) then
    Alcotest.failf "%s:\n  %s\n  <> %s" ctx (show_levels a) (show_levels b)

(* ---- oracle differential ---- *)

(* 30 seeds x h in {2, 3}: the whole chain, bit-for-bit, for the
   default prepared/warm path, the fresh-build escape hatch, and pool
   widths {1, 2, 4}.  The canonicalization cut makes every level set
   the unique union of argmax augmentations, which is exactly what the
   oracle peels — so vertex sets match exactly, not just marginals. *)
let test_oracle_differential () =
  for seed = 0 to 29 do
    let g = Helpers.random_graph ~seed ~max_n:10 ~max_m:24 () in
    List.iter
      (fun (name, psi) ->
        let truth = O.brute_force_ld_decomposition g psi in
        let runs =
          [ ("prepared", fun () -> LD.decompose g psi);
            ("fresh", fun () -> LD.decompose ~prepared:false g psi);
            ( "pool-1",
              fun () ->
                Dsd_util.Pool.with_pool ~sequential_below:0 1 (fun pool ->
                    LD.decompose ~pool g psi) );
            ( "pool-2",
              fun () ->
                Dsd_util.Pool.with_pool ~sequential_below:0 2 (fun pool ->
                    LD.decompose ~pool g psi) );
            ( "pool-4",
              fun () ->
                Dsd_util.Pool.with_pool ~sequential_below:0 4 (fun pool ->
                    LD.decompose ~pool g psi) ) ]
        in
        List.iter
          (fun (label, run) ->
            check_same
              ~ctx:
                (Printf.sprintf "%s %s %s" (Helpers.seed_ctx seed) name label)
              (pairs_of (run ())) truth)
          runs)
      patterns
  done

(* ---- configuration bit-equality on larger graphs ---- *)

(* Beyond the oracle's n <= 12 range: every option combination against
   the default, including the cached-decomp path the serving layer
   uses. *)
let test_modes_bit_identical () =
  for seed = 0 to 9 do
    let g = Helpers.random_graph ~seed:(2000 + seed) ~max_n:40 ~max_m:150 () in
    List.iter
      (fun (name, psi) ->
        let reference = pairs_of (LD.decompose g psi) in
        List.iter
          (fun (label, run) ->
            check_same
              ~ctx:
                (Printf.sprintf "%s %s vs %s" (Helpers.seed_ctx (2000 + seed))
                   name label)
              (pairs_of (run ())) reference)
          [ ("fresh-build", fun () -> LD.decompose ~prepared:false g psi);
            ("cold-flow", fun () -> LD.decompose ~warm:false g psi);
            ( "cached decomp",
              fun () ->
                let decomp =
                  Dsd_core.Clique_core.decompose ~track_density:true g psi
                in
                LD.decompose ~decomp g psi ) ])
      patterns
  done

(* Prepared and fresh must also agree on the probe count: both paths
   pose the identical alpha sequence and differ only in
   build-vs-retarget. *)
let test_probe_counts_agree () =
  for seed = 0 to 9 do
    let g = Helpers.random_graph ~seed:(3000 + seed) ~max_n:20 ~max_m:60 () in
    List.iter
      (fun (name, psi) ->
        let a = LD.decompose g psi in
        let b = LD.decompose ~prepared:false g psi in
        Alcotest.(check int)
          (Printf.sprintf "%s %s probes" (Helpers.seed_ctx (3000 + seed)) name)
          b.LD.iterations a.LD.iterations)
      patterns
  done

(* ---- qcheck: prefix outputs sorted and duplicate-free ---- *)

let prefix_sorted_prop psi g =
  let d = LD.decompose g psi in
  let t = List.length d.LD.levels in
  let ok = ref true in
  for i = 0 to t do
    let p = LD.prefix d i in
    for j = 1 to Array.length p - 1 do
      (* strictly increasing = sorted AND duplicate-free *)
      if p.(j - 1) >= p.(j) then ok := false
    done;
    let expect =
      List.fold_left
        (fun acc (l : LD.level) -> acc + Array.length l.vertices)
        0
        (List.filteri (fun j _ -> j < i) d.LD.levels)
    in
    if Array.length p <> expect then ok := false
  done;
  !ok

let suite =
  [ Alcotest.test_case "oracle differential (30 seeds, prepared/fresh/pools)"
      `Slow test_oracle_differential;
    Alcotest.test_case "prepared/fresh/cold/decomp bit-identical" `Slow
      test_modes_bit_identical;
    Alcotest.test_case "prepared and fresh probe counts agree" `Quick
      test_probe_counts_agree;
    Helpers.qtest ~count:60 "prefix outputs sorted and duplicate-free"
      (Helpers.small_graph_arb ~max_n:12 ~max_m:30 ())
      (prefix_sorted_prop Dsd_pattern.Pattern.triangle);
    Helpers.qtest ~count:60 "prefix outputs sorted and duplicate-free (edge)"
      (Helpers.small_graph_arb ~max_n:12 ~max_m:30 ())
      (prefix_sorted_prop Dsd_pattern.Pattern.edge);
  ]
