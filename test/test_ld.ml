(* Density-friendly (locally-dense) decomposition: chain invariants,
   first level = densest subgraph, exact first-level check against
   brute force, and known shapes. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module LD = Dsd_core.Ld_decomposition

let levels_partition_v_prop psi g =
  let d = LD.decompose g psi in
  let all =
    List.concat_map (fun l -> Array.to_list l.LD.vertices) d.LD.levels
  in
  List.sort compare all = List.init (G.n g) Fun.id

let marginals_strictly_decreasing_prop psi g =
  let d = LD.decompose g psi in
  let rec ok = function
    | a :: (b :: _ as rest) ->
      a.LD.marginal_density > b.LD.marginal_density -. 1e-9 && ok rest
    | _ -> true
  in
  ok d.LD.levels

let first_level_is_densest_prop psi g =
  let opt, _ = Helpers.brute_force_densest g psi in
  let d = LD.decompose g psi in
  match d.LD.levels with
  | [] -> G.n g = 0
  | first :: _ ->
    Float.abs (first.LD.marginal_density -. opt) < 1e-6
    && (opt = 0.
        || Float.abs
             (Helpers.density_of_subset g psi first.LD.vertices -. opt)
           < 1e-6)

(* Every prefix B_i is at least as dense as any further prefix — the
   defining "density-friendly" property. *)
let prefixes_density_monotone_prop psi g =
  let d = LD.decompose g psi in
  let k = List.length d.LD.levels in
  let densities =
    List.init k (fun i ->
        Helpers.density_of_subset g psi (LD.prefix d (i + 1)))
  in
  let rec ok = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && ok rest
    | _ -> true
  in
  ok densities

let test_two_cliques_levels () =
  (* K6 ⊔ K4 ⊔ isolated-ish path: levels must come out K6 (2.5), then
     K4 (1.5 marginal), then the rest. *)
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:false in
  let d = LD.decompose g P.edge in
  (match d.LD.levels with
   | l1 :: l2 :: _ ->
     Alcotest.(check (list int)) "level 1 = K6" [ 0; 1; 2; 3; 4; 5 ]
       (Helpers.int_array_as_set l1.LD.vertices);
     Helpers.check_float "level 1 marginal" 2.5 l1.LD.marginal_density;
     Alcotest.(check (list int)) "level 2 = K4" [ 6; 7; 8; 9 ]
       (Helpers.int_array_as_set l2.LD.vertices);
     Helpers.check_float "level 2 marginal" 1.5 l2.LD.marginal_density
   | _ -> Alcotest.fail "expected at least two levels");
  Alcotest.(check (array int)) "prefix 1"
    [| 0; 1; 2; 3; 4; 5 |] (LD.prefix d 1)

let test_uniform_graph_single_level () =
  (* A clique decomposes into exactly one level. *)
  let d = LD.decompose (G.complete 5) P.edge in
  Alcotest.(check int) "one level" 1 (List.length d.LD.levels);
  Helpers.check_float "its marginal" 2. (List.hd d.LD.levels).LD.marginal_density

let test_no_instances_single_zero_level () =
  let d = LD.decompose (Dsd_data.Paper_graphs.path 4) P.triangle in
  Alcotest.(check int) "one level" 1 (List.length d.LD.levels);
  Helpers.check_float "zero marginal" 0.
    (List.hd d.LD.levels).LD.marginal_density

let test_triangle_ld_on_mixed () =
  (* eds_vs_cds: triangle decomposition must put K4 first (only
     triangle-carrying region). *)
  let d = LD.decompose Dsd_data.Paper_graphs.eds_vs_cds P.triangle in
  match d.LD.levels with
  | first :: _ ->
    Alcotest.(check (list int)) "K4 first" [ 7; 8; 9; 10 ]
      (Helpers.int_array_as_set first.LD.vertices)
  | [] -> Alcotest.fail "no levels"

let test_prefix_boundaries () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:false in
  let d = LD.decompose g P.edge in
  let t = List.length d.LD.levels in
  Alcotest.(check (array int)) "prefix 0 = B_0 = empty" [||] (LD.prefix d 0);
  Alcotest.(check (array int)) "prefix t = V"
    (Array.init 10 Fun.id) (LD.prefix d t);
  List.iter
    (fun i ->
      Alcotest.check_raises
        (Printf.sprintf "prefix %d raises" i)
        (Invalid_argument
           (Printf.sprintf
              "Ld_decomposition.prefix: index %d not in [0, %d]" i t))
        (fun () -> ignore (LD.prefix d i)))
    [ -1; t + 1 ]

(* The chain's defining property, STRICT version — exact rationals, so
   no tolerance — exercised across every fuzz generator (seeded, so
   any failure replays). *)
let test_marginals_strict_across_generators () =
  List.iter
    (fun (gen : Dsd_check.Generator.t) ->
      let rng = Helpers.rng 7001 in
      for round = 1 to 5 do
        let case = gen.Dsd_check.Generator.sample rng in
        let d = LD.decompose case.Dsd_check.Generator.graph
            case.Dsd_check.Generator.psi in
        let rec ok = function
          | a :: (b :: _ as rest) ->
            if a.LD.marginal_density <= b.LD.marginal_density then
              Alcotest.failf
                "%s round %d (%s): marginals not strictly decreasing \
                 (%.17g then %.17g) [%s]"
                gen.Dsd_check.Generator.name round (Helpers.seed_ctx 7001)
                a.LD.marginal_density b.LD.marginal_density
                case.Dsd_check.Generator.label
            else ok rest
          | _ -> ()
        in
        ok d.LD.levels
      done)
    Dsd_check.Generator.all

let suite =
  [
    Alcotest.test_case "two cliques levels" `Quick test_two_cliques_levels;
    Alcotest.test_case "prefix boundaries" `Quick test_prefix_boundaries;
    Alcotest.test_case "marginals strictly decrease (all generators)" `Quick
      test_marginals_strict_across_generators;
    Alcotest.test_case "clique single level" `Quick test_uniform_graph_single_level;
    Alcotest.test_case "no instances" `Quick test_no_instances_single_zero_level;
    Alcotest.test_case "triangle LD on mixed graph" `Quick test_triangle_ld_on_mixed;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:20 ("levels partition V: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (levels_partition_v_prop psi);
          Helpers.qtest ~count:20 ("marginals decreasing: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (marginals_strictly_decreasing_prop psi);
          Helpers.qtest ~count:20 ("first level densest: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (first_level_is_densest_prop psi);
          Helpers.qtest ~count:15 ("prefix densities monotone: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (prefixes_density_monotone_prop psi);
        ])
      [ ("edge", P.edge); ("triangle", P.triangle); ("C4", P.diamond) ]
