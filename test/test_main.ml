let () =
  Alcotest.run "dsd"
    [
      ("util", Test_util.suite);
      ("graph", Test_graph.suite);
      ("io", Test_io.suite);
      ("flow", Test_flow.suite);
      ("flow-invariants", Test_flow_invariants.suite);
      ("flow-retarget", Test_retarget.suite);
      ("flow-warmstart", Test_warmstart.suite);
      ("clique", Test_clique.suite);
      ("pattern", Test_pattern.suite);
      ("core-decomp", Test_core_decomp.suite);
      ("flow-build", Test_flow_build.suite);
      ("exact", Test_exact.suite);
      ("approx", Test_approx.suite);
      ("differential", Test_differential.suite);
      ("approx-bounds", Test_bounds.suite);
      ("obs", Test_obs.suite);
      ("pds", Test_pds.suite);
      ("data", Test_data.suite);
      ("query", Test_query.suite);
      ("extensions", Test_extensions.suite);
      ("parallel", Test_parallel_prop.suite);
      ("parallel-peel", Test_parallel_peel.suite);
      ("future-work", Test_future_work.suite);
      ("metamorphic", Test_metamorphic.suite);
      ("ld-decomposition", Test_ld.suite);
      ("directed", Test_directed.suite);
      ("serve", Test_serve.suite);
      ("incremental", Test_incremental.suite);
      ("topk", Test_topk.suite);
      ("hierarchy", Test_hierarchy.suite);
    ]
