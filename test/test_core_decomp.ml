(* (k, Psi)-core decomposition: against the naive threshold-peeling
   oracle, nestedness/maximality invariants, Theorem 1 bounds, and the
   Nucleus baseline's fixpoint. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module CC = Dsd_core.Clique_core

let test_kcore_figure3 () =
  let kc = Dsd_core.Kcore.decompose Dsd_data.Paper_graphs.figure3_like in
  Alcotest.(check int) "kmax" 3 (Dsd_core.Kcore.kmax kc);
  Alcotest.(check (array int)) "3-core" [| 0; 1; 2; 3 |]
    (Dsd_core.Kcore.kmax_core kc);
  Alcotest.(check (array int)) "2-core" [| 0; 1; 2; 3; 4; 5 |]
    (Dsd_core.Kcore.k_core kc ~k:2);
  Alcotest.(check int) "core of bridge vertex" 2 (Dsd_core.Kcore.core_number kc 4)

let test_triangle_core_figure3 () =
  let d = CC.decompose Dsd_data.Paper_graphs.figure3_like P.triangle in
  Alcotest.(check int) "kmax" 3 d.CC.kmax;
  Alcotest.(check (array int)) "(3,tri)-core" [| 0; 1; 2; 3 |] (CC.kmax_core d);
  (* The pendant triangle vertices participate in 1 triangle. *)
  Alcotest.(check int) "core of 4" 1 d.CC.core.(4);
  Alcotest.(check int) "core of isolated-edge vertex" 0 d.CC.core.(6);
  Alcotest.(check int) "mu" 5 d.CC.mu_total

let test_clique_core_kn () =
  (* In K_n every vertex has clique-core number C(n-1, h-1). *)
  let g = G.complete 6 in
  List.iter
    (fun h ->
      let d = CC.decompose g (P.clique h) in
      let expect = Dsd_util.Binom.choose 5 (h - 1) in
      Alcotest.(check int) (Printf.sprintf "kmax h=%d" h) expect d.CC.kmax;
      Array.iter
        (fun c -> Alcotest.(check int) "uniform" expect c)
        d.CC.core)
    [ 2; 3; 4; 5 ]

let core_numbers_match_oracle_prop psi g =
  let d = CC.decompose g psi in
  d.CC.core = Helpers.naive_core_numbers g psi

(* Theorem 1: for every non-empty (k, Psi)-core,
   k / |V_Psi| <= rho(R_k) <= kmax. *)
let theorem1_bounds_prop psi g =
  let d = CC.decompose g psi in
  let ok = ref true in
  for k = 1 to d.CC.kmax do
    let core = CC.core_vertices d ~k in
    if Array.length core > 0 then begin
      let rho = Helpers.density_of_subset g psi core in
      if rho +. 1e-9 < float_of_int k /. float_of_int psi.P.size then ok := false;
      if rho > float_of_int d.CC.kmax +. 1e-9 then ok := false
    end
  done;
  !ok

(* Each vertex of the (k, Psi)-core has >= k instances inside the
   core (Definition 6), i.e. the peel result is a valid core. *)
let core_internal_degree_prop psi g =
  let d = CC.decompose g psi in
  let ok = ref true in
  for k = 1 to d.CC.kmax do
    let core = CC.core_vertices d ~k in
    if Array.length core > 0 then begin
      let sub, _map = G.induced g core in
      let deg =
        match psi.P.kind with
        | P.Clique -> Dsd_clique.Clique_count.degrees sub ~h:psi.P.size
        | _ -> Dsd_pattern.Match.degrees sub psi
      in
      Array.iter (fun dv -> if dv < k then ok := false) deg
    end
  done;
  !ok

let test_best_residual_tracks_density () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:true in
  let d = CC.decompose ~track_density:true g P.edge in
  (* Densest residual of the edge-peel is the K6 block (density 2.5):
     the bridge and the K4 peel away first. *)
  Helpers.check_float "rho'" 2.5 d.CC.best_residual_density;
  Alcotest.(check (list int)) "residual = K6"
    [ 0; 1; 2; 3; 4; 5 ]
    (Helpers.int_array_as_set (CC.best_residual d))

let test_density_disabled () =
  let g = G.complete 4 in
  let d = CC.decompose ~track_density:false g P.edge in
  Helpers.check_float "no tracking" 0. d.CC.best_residual_density

let test_theorem1_chain_family () =
  (* Figure 4(b): classical kmax stays 2 while the kmax-core density
     approaches the upper bound 2 as the chain grows. *)
  let prev = ref 0. in
  List.iter
    (fun x ->
      let g = Dsd_data.Paper_graphs.theorem1_chain x in
      let d = CC.decompose g P.edge in
      Alcotest.(check int) (Printf.sprintf "kmax x=%d" x) 2 d.CC.kmax;
      let rho = Helpers.density_of_subset g P.edge (CC.kmax_core d) in
      Alcotest.(check bool) "within bounds" true (rho >= 1. && rho <= 2.);
      Alcotest.(check bool) "monotone towards 2" true (rho >= !prev);
      prev := rho)
    [ 2; 4; 8; 16; 64 ];
  Alcotest.(check bool) "approaches 2" true (!prev > 1.9)

let nucleus_matches_decomposition_prop psi g =
  let d = CC.decompose g psi in
  let nucleus = Dsd_core.Nucleus.run g psi in
  nucleus.Dsd_core.Nucleus.core = d.CC.core
  && nucleus.Dsd_core.Nucleus.kmax = d.CC.kmax

let test_emcore_matches_degeneracy () =
  List.iter
    (fun seed ->
      let g = Helpers.random_graph ~seed ~max_n:40 ~max_m:150 () in
      let em = Dsd_core.Emcore.run g in
      let kc = Dsd_core.Kcore.decompose g in
      Alcotest.(check int) "kmax" (Dsd_core.Kcore.kmax kc) em.Dsd_core.Emcore.kmax;
      if Dsd_core.Kcore.kmax kc > 0 then
        Alcotest.(check (list int)) "core set"
          (Helpers.int_array_as_set (Dsd_core.Kcore.kmax_core kc))
          (Helpers.int_array_as_set em.Dsd_core.Emcore.subgraph.Dsd_core.Density.vertices))
    [ 1; 2; 3; 4; 5 ]

let test_empty_graph () =
  let g = G.empty 5 in
  let d = CC.decompose g P.triangle in
  Alcotest.(check int) "kmax" 0 d.CC.kmax;
  Alcotest.(check int) "mu" 0 d.CC.mu_total

let patterns_under_test =
  [ ("edge", P.edge); ("triangle", P.triangle); ("4-clique", P.clique 4);
    ("2-star", P.star 2); ("3-star", P.star 3); ("diamond/C4", P.diamond);
    ("c3-star", P.c3_star); ("2-triangle", P.two_triangle) ]

let suite =
  [
    Alcotest.test_case "k-core figure 3" `Quick test_kcore_figure3;
    Alcotest.test_case "triangle-core figure 3" `Quick test_triangle_core_figure3;
    Alcotest.test_case "clique cores of K6" `Quick test_clique_core_kn;
    Alcotest.test_case "best residual density" `Quick test_best_residual_tracks_density;
    Alcotest.test_case "tracking disabled" `Quick test_density_disabled;
    Alcotest.test_case "theorem 1 chain family" `Quick test_theorem1_chain_family;
    Alcotest.test_case "emcore = degeneracy" `Quick test_emcore_matches_degeneracy;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:30
            ("core numbers vs oracle: " ^ name)
            (Helpers.small_graph_arb ~max_n:9 ~max_m:22 ())
            (core_numbers_match_oracle_prop psi);
          Helpers.qtest ~count:30
            ("theorem 1 bounds: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:25 ())
            (theorem1_bounds_prop psi);
          Helpers.qtest ~count:30
            ("core internal degree: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:25 ())
            (core_internal_degree_prop psi);
          Helpers.qtest ~count:20
            ("nucleus fixpoint: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:25 ())
            (nucleus_matches_decomposition_prop psi);
        ])
      patterns_under_test
