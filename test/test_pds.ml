(* Pattern densest subgraph: PExact and CorePExact against brute
   force, Lemma 11 (construct+ preserves min-cut capacity), and the
   construct+ grouping itself. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density
module FB = Dsd_core.Flow_build

let close a b = Float.abs (a -. b) < 1e-6

let pexact_matches_brute_prop psi g =
  let brute, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Pexact.run g psi in
  close brute r.Dsd_core.Exact.subgraph.D.density

let core_pexact_matches_brute_prop psi g =
  let brute, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Core_pexact.run g psi in
  close brute r.Dsd_core.Core_exact.subgraph.D.density

(* Lemma 11: the PExact network and the construct+ network have the
   same min-cut capacity, for any alpha. *)
let lemma11_prop (psi, g, alpha) =
  let instances = Dsd_core.Enumerate.instances g psi in
  if Array.length instances = 0 then true
  else begin
    let a = FB.pds_network_pre g psi ~instances ~alpha in
    let b = FB.pds_network_grouped_pre g psi ~instances ~alpha in
    let fa = Dsd_flow.Dinic.max_flow a.FB.net ~s:a.FB.source ~t:a.FB.sink in
    let fb = Dsd_flow.Dinic.max_flow b.FB.net ~s:b.FB.source ~t:b.FB.sink in
    Float.abs (fa -. fb) < 1e-6
  end

let test_grouping_shrinks_network () =
  (* Example 6's setting: a K4 carries 3 C4 instances on one vertex
     set, so construct+ uses one group node instead of three. *)
  let g = Dsd_data.Paper_graphs.two_cliques ~a:4 ~b:3 ~bridge:true in
  let instances = Dsd_core.Enumerate.instances g P.diamond in
  Alcotest.(check int) "3 instances" 3 (Array.length instances);
  let plain = FB.pds_network_pre g P.diamond ~instances ~alpha:0.5 in
  let grouped = FB.pds_network_grouped_pre g P.diamond ~instances ~alpha:0.5 in
  Alcotest.(check int) "plain nodes" (7 + 3 + 2) plain.FB.node_count;
  Alcotest.(check int) "grouped nodes" (7 + 1 + 2) grouped.FB.node_count

let test_pds_known_answers () =
  (* In K6 disjoint from sparse stuff, every pattern's PDS is the K6:
     mu(K6, psi)/6. *)
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:3 ~bridge:true in
  List.iter
    (fun psi ->
      let k6 = G.complete 6 in
      let expect =
        float_of_int (Dsd_pattern.Match.count k6 psi) /. 6.
      in
      let r = Dsd_core.Core_pexact.run g psi in
      Alcotest.(check bool)
        (psi.P.name ^ " PDS density")
        true
        (close expect r.Dsd_core.Core_exact.subgraph.D.density))
    [ P.star 2; P.c3_star; P.diamond; P.two_triangle ]

let test_star_pds_prefers_hub () =
  (* A big star beats a small clique on 2-star density. *)
  let edges = ref [] in
  (* Hub 0 with 12 leaves. *)
  for i = 1 to 12 do
    edges := (0, i) :: !edges
  done;
  (* Disjoint K4 on 13..16. *)
  for u = 13 to 16 do
    for v = u + 1 to 16 do
      edges := (u, v) :: !edges
    done
  done;
  let g = G.of_edge_list ~n:17 !edges in
  let r = Dsd_core.Core_pexact.run g (P.star 2) in
  let sg = r.Dsd_core.Core_exact.subgraph in
  (* Hub + all leaves: C(12,2)=66 instances over 13 vertices ~ 5.08;
     K4 has 12/4 = 3. *)
  Helpers.check_float "hub density" (66. /. 13.) sg.D.density;
  Alcotest.(check bool) "contains hub" true (Array.exists (( = ) 0) sg.D.vertices)

let test_pexact_vs_core_pexact_medium () =
  let g = Helpers.random_graph ~seed:55 ~max_n:40 ~max_m:160 () in
  List.iter
    (fun psi ->
      let a = Dsd_core.Pexact.run g psi in
      let b = Dsd_core.Core_pexact.run g psi in
      Alcotest.(check bool) (psi.P.name ^ " agree") true
        (close a.Dsd_core.Exact.subgraph.D.density
           b.Dsd_core.Core_exact.subgraph.D.density))
    [ P.star 2; P.c3_star; P.diamond; P.two_triangle ]

(* Cliques may also be solved through the pattern networks; all
   constructions agree. *)
let clique_through_pds_prop g =
  let psi = P.triangle in
  let a = Dsd_core.Exact.run g psi in
  let b = Dsd_core.Pexact.run g psi in
  close a.Dsd_core.Exact.subgraph.D.density b.Dsd_core.Exact.subgraph.D.density

let arb_pattern_graph_alpha =
  let patterns =
    [| P.star 2; P.c3_star; P.diamond; P.two_triangle; P.three_triangle |]
  in
  QCheck.make
    ~print:(fun (psi, g, alpha) ->
      Printf.sprintf "%s on n=%d m=%d alpha=%.3f" psi.P.name (G.n g) (G.m g) alpha)
    QCheck.Gen.(
      triple
        (map (fun i -> patterns.(i mod Array.length patterns)) small_nat)
        (Helpers.small_graph_gen ~max_n:9 ~max_m:22 ())
        (float_bound_inclusive 4.0))

let patterns_for_pds =
  [ ("2-star", P.star 2); ("3-star", P.star 3); ("c3-star", P.c3_star);
    ("diamond/C4", P.diamond); ("2-triangle", P.two_triangle);
    ("basket", P.basket) ]

let suite =
  [
    Alcotest.test_case "construct+ shrinks network" `Quick test_grouping_shrinks_network;
    Alcotest.test_case "PDS known answers in K6" `Quick test_pds_known_answers;
    Alcotest.test_case "2-star PDS prefers hub" `Quick test_star_pds_prefers_hub;
    Alcotest.test_case "pexact = core-pexact (medium)" `Slow test_pexact_vs_core_pexact_medium;
    Helpers.qtest ~count:60 "lemma 11: capacities equal" arb_pattern_graph_alpha lemma11_prop;
    Helpers.qtest ~count:25 "clique via pds network"
      (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
      clique_through_pds_prop;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:20 ("pexact = brute force: " ^ name)
            (Helpers.small_graph_arb ~max_n:9 ~max_m:22 ())
            (pexact_matches_brute_prop psi);
          Helpers.qtest ~count:20 ("core-pexact = brute force: " ^ name)
            (Helpers.small_graph_arb ~max_n:9 ~max_m:22 ())
            (core_pexact_matches_brute_prop psi);
        ])
      patterns_for_pds
