(* Differential testing: every exact solver configuration must agree
   on the optimal h-clique density, and both max-flow engines must
   agree on the max-flow value.  Seeded Dsd_data.Gen graphs keep every
   run reproducible. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density
module CE = Dsd_core.Core_exact
module F = Dsd_flow.Flow_network

let pruning_combos =
  List.concat_map
    (fun p1 ->
      List.concat_map
        (fun p2 ->
          List.map (fun p3 -> { CE.p1; p2; p3 }) [ false; true ])
        [ false; true ])
    [ false; true ]

let combo_name (p : CE.prunings) =
  Printf.sprintf "p1=%b,p2=%b,p3=%b" p.CE.p1 p.CE.p2 p.CE.p3

let seeded_graphs =
  List.init 20 (fun seed ->
      (seed, Helpers.random_graph ~seed ~max_n:12 ~max_m:28 ()))

(* All Core_exact configurations against the flow-only baseline. *)
let test_exact_solvers_agree () =
  List.iter
    (fun (seed, g) ->
      List.iter
        (fun h ->
          let psi = P.clique h in
          let ctx = Printf.sprintf "%s h=%d" (Helpers.seed_ctx seed) h in
          let reference =
            (Dsd_core.Exact.run g psi).Dsd_core.Exact.subgraph.D.density
          in
          List.iter
            (fun prunings ->
              let r = CE.run ~prunings g psi in
              Helpers.check_float
                (ctx ^ " CoreExact " ^ combo_name prunings)
                reference r.CE.subgraph.D.density)
            pruning_combos;
          let grouped = CE.run ~grouped:true g psi in
          Helpers.check_float (ctx ^ " grouped") reference
            grouped.CE.subgraph.D.density;
          (* The instance-node (PExact) and construct+ (CorePExact)
             networks solve the same clique problem. *)
          let pexact = Dsd_core.Pexact.run g psi in
          Helpers.check_float (ctx ^ " PExact") reference
            pexact.Dsd_core.Exact.subgraph.D.density;
          let corepexact = Dsd_core.Core_pexact.run g psi in
          Helpers.check_float (ctx ^ " CorePExact") reference
            corepexact.CE.subgraph.D.density)
        [ 2; 3 ])
    seeded_graphs

(* Exact solvers also agree with the exhaustive subset oracle. *)
let test_exact_matches_brute_force () =
  List.iter
    (fun (seed, g) ->
      List.iter
        (fun h ->
          let psi = P.clique h in
          let opt, _ = Helpers.brute_force_densest g psi in
          let r = CE.run g psi in
          Helpers.check_float
            (Printf.sprintf "%s h=%d vs brute force" (Helpers.seed_ctx seed) h)
            opt r.CE.subgraph.D.density)
        [ 2; 3 ])
    seeded_graphs

(* Random flow networks: node count, arc density and float capacities
   drawn from a seeded PRNG; Dinic and Edmonds-Karp must compute the
   same max-flow value. *)
let random_network rng =
  let n = 2 + Dsd_util.Prng.int rng 14 in
  let arcs = Dsd_util.Prng.int rng (4 * n) in
  let net = F.create n in
  for _ = 1 to arcs do
    let u, v = Dsd_util.Prng.pair_distinct rng n in
    let cap = Dsd_util.Prng.float rng 10. in
    ignore (F.add_edge net ~src:u ~dst:v ~cap)
  done;
  net

let test_dinic_vs_edmonds_karp () =
  for seed = 0 to 24 do
    (* Two identical copies: max_flow mutates the residual state. *)
    let a = random_network (Helpers.rng seed) in
    let b = random_network (Helpers.rng seed) in
    let n = F.node_count a in
    let s = 0 and t = n - 1 in
    let fa = Dsd_flow.Dinic.max_flow a ~s ~t in
    let fb = Dsd_flow.Edmonds_karp.max_flow b ~s ~t in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "%s max flow" (Helpers.seed_ctx seed))
      fa fb
  done

let suite =
  [
    Alcotest.test_case "exact solver configurations agree (h=2,3)" `Quick
      test_exact_solvers_agree;
    Alcotest.test_case "exact solvers match brute force" `Quick
      test_exact_matches_brute_force;
    Alcotest.test_case "dinic = edmonds-karp on random networks" `Quick
      test_dinic_vs_edmonds_karp;
  ]
