(* Approximation guarantees (Theorems 2-4): PeelApp, IncApp and
   CoreApp return density rho with rho_opt / |V_Psi| <= rho <=
   rho_opt, checked against the exhaustive optimum on small seeded
   graphs and on the degenerate shapes where off-by-one peeling bugs
   hide. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

let approx_algos =
  [ ("PeelApp", fun g psi -> (Dsd_core.Peel_app.run g psi).Dsd_core.Peel_app.subgraph);
    ("IncApp", fun g psi -> (Dsd_core.Inc_app.run g psi).Dsd_core.Inc_app.subgraph);
    ("CoreApp", fun g psi -> (Dsd_core.Core_app.run g psi).Dsd_core.Core_app.subgraph) ]

let check_bounds ~ctx g psi =
  let opt, _ = Helpers.brute_force_densest g psi in
  let lower = opt /. float_of_int psi.P.size in
  List.iter
    (fun (name, run) ->
      let sg = run g psi in
      let ctx = Printf.sprintf "%s %s (opt=%.4f)" ctx name opt in
      Alcotest.(check bool)
        (ctx ^ ": rho >= rho_opt/|V_Psi|")
        true
        (sg.D.density >= lower -. 1e-9);
      Alcotest.(check bool)
        (ctx ^ ": rho <= rho_opt")
        true
        (sg.D.density <= opt +. 1e-9);
      (* The reported density must match the reported vertex set. *)
      Helpers.check_float
        (ctx ^ ": density consistent with vertices")
        (Helpers.density_of_subset g psi sg.D.vertices)
        sg.D.density)
    approx_algos

let patterns = [ P.edge; P.triangle; P.star 2 ]

let test_bounds_on_seeded_graphs () =
  for seed = 0 to 19 do
    let g = Helpers.random_graph ~seed:(100 + seed) ~max_n:11 ~max_m:24 () in
    List.iter
      (fun psi ->
        check_bounds
          ~ctx:(Printf.sprintf "%s psi=%s" (Helpers.seed_ctx seed) psi.P.name)
          g psi)
      patterns
  done

(* ---- corner cases ---- *)

let test_empty_graph () =
  let g = G.empty 0 in
  List.iter
    (fun psi ->
      List.iter
        (fun (name, run) ->
          let sg = run g psi in
          Helpers.check_float (name ^ " empty density") 0. sg.D.density;
          Alcotest.(check int) (name ^ " empty vertices") 0
            (Array.length sg.D.vertices))
        approx_algos)
    patterns

let test_edgeless_graph () =
  let g = G.empty 4 in
  List.iter
    (fun (name, run) ->
      let sg = run g P.edge in
      Helpers.check_float (name ^ " edgeless density") 0. sg.D.density)
    approx_algos

let test_single_edge () =
  let g = G.of_edge_list ~n:2 [ (0, 1) ] in
  check_bounds ~ctx:"single edge" g P.edge;
  (* rho_opt = 1/2 and the peeling algorithms find it exactly. *)
  List.iter
    (fun (name, run) ->
      Helpers.check_float (name ^ " K2 density") 0.5 (run g P.edge).D.density)
    approx_algos

let test_clique () =
  let n = 6 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let g = G.of_edge_list ~n !edges in
  List.iter (fun psi -> check_bounds ~ctx:"K6" g psi) patterns;
  (* A clique is its own densest subgraph under edge density. *)
  List.iter
    (fun (name, run) ->
      let sg = run g P.edge in
      Helpers.check_float (name ^ " K6 density")
        (float_of_int (n * (n - 1) / 2) /. float_of_int n)
        sg.D.density;
      Alcotest.(check int) (name ^ " K6 takes all vertices") n
        (Array.length sg.D.vertices))
    approx_algos

let test_star () =
  (* Star K_{1,6}: edge-densest is the whole star (6/7); triangle
     density is 0 everywhere; 2-star density concentrates on the
     hub. *)
  let g = G.of_edge_list ~n:7 (List.init 6 (fun i -> (0, i + 1))) in
  List.iter (fun psi -> check_bounds ~ctx:"star" g psi) patterns;
  List.iter
    (fun (name, run) ->
      Helpers.check_float
        (name ^ " star edge density")
        (6. /. 7.)
        (run g P.edge).D.density;
      Helpers.check_float (name ^ " star triangle density") 0.
        (run g P.triangle).D.density)
    approx_algos

let suite =
  [
    Alcotest.test_case "bounds on 20 seeded graphs (edge/triangle/2-star)"
      `Quick test_bounds_on_seeded_graphs;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "edgeless graph" `Quick test_edgeless_graph;
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "clique" `Quick test_clique;
    Alcotest.test_case "star" `Quick test_star;
  ]
