(* Approximation algorithms: PeelApp, IncApp, CoreApp.  Checks the
   1/|V_Psi| guarantee against exact optima, the Lemma 8 core identity,
   and cross-algorithm agreement (IncApp, CoreApp and Nucleus must all
   return the same (kmax, Psi)-core). *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

let approx_ratio_prop run psi g =
  let opt, _ = Helpers.brute_force_densest g psi in
  if opt = 0. then true
  else begin
    let approx = run g psi in
    approx.D.density >= (opt /. float_of_int psi.P.size) -. 1e-9
    && approx.D.density <= opt +. 1e-9
  end

let peel = fun g psi -> (Dsd_core.Peel_app.run g psi).Dsd_core.Peel_app.subgraph
let inc = fun g psi -> (Dsd_core.Inc_app.run g psi).Dsd_core.Inc_app.subgraph
let capp = fun g psi -> (Dsd_core.Core_app.run g psi).Dsd_core.Core_app.subgraph

(* IncApp and CoreApp return the identical (kmax, Psi)-core. *)
let incapp_coreapp_same_core_prop psi g =
  let a = Dsd_core.Inc_app.run g psi in
  let b = Dsd_core.Core_app.run g psi in
  a.Dsd_core.Inc_app.kmax = b.Dsd_core.Core_app.kmax
  && Helpers.int_array_as_set a.Dsd_core.Inc_app.subgraph.D.vertices
     = Helpers.int_array_as_set b.Dsd_core.Core_app.subgraph.D.vertices

(* PeelApp's result is at least as dense as the (kmax, Psi)-core: the
   core is one of the residual graphs of the peel. *)
let peel_at_least_core_prop psi g =
  let p = Dsd_core.Peel_app.run g psi in
  let i = Dsd_core.Inc_app.run g psi in
  p.Dsd_core.Peel_app.subgraph.D.density
  >= i.Dsd_core.Inc_app.subgraph.D.density -. 1e-9

(* Greedy++'s best-so-far curve never regresses, starts at PeelApp
   (round 1 is PeelApp by construction: all loads are zero), and ends
   at the returned subgraph's density. *)
let greedy_pp_monotone_prop psi g =
  let r = Dsd_core.Greedy_pp.run ~rounds:6 g psi in
  let d = r.Dsd_core.Greedy_pp.densities in
  let monotone = ref (Array.length d > 0) in
  for i = 1 to Array.length d - 1 do
    if d.(i) < d.(i - 1) then monotone := false
  done;
  let p = Dsd_core.Peel_app.run g psi in
  !monotone
  && d.(0) = p.Dsd_core.Peel_app.subgraph.D.density
  && d.(Array.length d - 1) = r.Dsd_core.Greedy_pp.subgraph.D.density

(* Streaming meets its 1/(|V_Psi|(1+eps)) guarantee against the
   brute-force oracle and never overshoots the optimum. *)
let streaming_bound_prop ~eps psi g =
  let opt, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Streaming.run ~eps g psi in
  let d = r.Dsd_core.Streaming.subgraph.D.density in
  d >= (opt /. (float_of_int psi.P.size *. (1. +. eps))) -. 1e-9
  && d <= opt +. 1e-9

let test_streaming_rejects_bad_eps () =
  let g = Dsd_data.Paper_graphs.path 4 in
  List.iter
    (fun eps ->
      match Dsd_core.Streaming.run ~eps g P.edge with
      | _ -> Alcotest.failf "eps = %g was accepted" eps
      | exception Invalid_argument _ -> ())
    [ 0.; -0.5; -1e9 ]

let test_core_app_finds_hidden_core () =
  (* The kmax-core is a moderately-sized planted block; CoreApp should
     find it while examining a fraction of the graph. *)
  let g = Dsd_data.Gen.planted_clique ~seed:5 ~n:2000 ~p:0.002 ~clique:20 in
  let r = Dsd_core.Core_app.run g P.edge in
  Alcotest.(check int) "kmax" 19 r.Dsd_core.Core_app.kmax;
  Alcotest.(check (list int)) "core = planted clique"
    (List.init 20 Fun.id)
    (Helpers.int_array_as_set r.Dsd_core.Core_app.subgraph.D.vertices);
  Alcotest.(check bool) "window stayed small" true
    (r.Dsd_core.Core_app.final_window < 2000)

let test_core_app_triangle_on_planted () =
  let g = Dsd_data.Gen.planted_clique ~seed:6 ~n:800 ~p:0.004 ~clique:12 in
  let r = Dsd_core.Core_app.run g P.triangle in
  let i = Dsd_core.Inc_app.run g P.triangle in
  Alcotest.(check int) "kmax agree" i.Dsd_core.Inc_app.kmax r.Dsd_core.Core_app.kmax;
  Alcotest.(check (list int)) "cores agree"
    (Helpers.int_array_as_set i.Dsd_core.Inc_app.subgraph.D.vertices)
    (Helpers.int_array_as_set r.Dsd_core.Core_app.subgraph.D.vertices)

let test_lemma8_bound () =
  (* Lemma 8: the (kmax, Psi)-core has density >= kmax / |V_Psi|. *)
  List.iter
    (fun seed ->
      let g = Helpers.random_graph ~seed ~max_n:30 ~max_m:120 () in
      List.iter
        (fun psi ->
          let r = Dsd_core.Inc_app.run g psi in
          if r.Dsd_core.Inc_app.kmax > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "bound %s %s" (Helpers.seed_ctx seed) psi.P.name)
              true
              (r.Dsd_core.Inc_app.subgraph.D.density
               >= (float_of_int r.Dsd_core.Inc_app.kmax /. float_of_int psi.P.size)
                  -. 1e-9))
        [ P.edge; P.triangle; P.star 2; P.diamond ])
    [ 10; 11; 12 ]

let test_empty_results () =
  let g = Dsd_data.Paper_graphs.path 5 in
  let r = Dsd_core.Peel_app.run g P.triangle in
  Alcotest.(check int) "peel empty" 0 (Array.length r.Dsd_core.Peel_app.subgraph.D.vertices);
  let r2 = Dsd_core.Core_app.run g P.triangle in
  Alcotest.(check int) "coreapp kmax" 0 r2.Dsd_core.Core_app.kmax

let test_initial_window_override () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:8 ~b:5 ~bridge:true in
  (* A deliberately tiny initial window still converges to the kmax
     core by doubling. *)
  let r = Dsd_core.Core_app.run ~initial_window:1 g P.edge in
  Alcotest.(check int) "kmax" 7 r.Dsd_core.Core_app.kmax;
  Alcotest.(check bool) "multiple rounds" true (r.Dsd_core.Core_app.rounds > 1)

let test_api_layer () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:false in
  List.iter
    (fun algo ->
      let sg = Dsd_core.Api.densest_subgraph ~algorithm:algo g in
      Alcotest.(check bool)
        (Dsd_core.Api.algorithm_name algo ^ " finds a dense subgraph")
        true
        (sg.D.density >= 1.25))
    Dsd_core.Api.[ Exact_flow; Core_exact; Peel; Inc_app; Core_app ];
  let exact = Dsd_core.Api.densest_subgraph g in
  Helpers.check_float "default is exact" 2.5 exact.D.density;
  let cn = Dsd_core.Api.core_numbers g P.edge in
  Alcotest.(check int) "core numbers" 5 cn.(0);
  let core = Dsd_core.Api.kmax_core g P.edge in
  Alcotest.(check (list int)) "kmax core" [ 0; 1; 2; 3; 4; 5 ]
    (Helpers.int_array_as_set core.D.vertices)

let patterns_for_approx =
  [ ("edge", P.edge); ("triangle", P.triangle); ("4-clique", P.clique 4);
    ("2-star", P.star 2); ("diamond/C4", P.diamond); ("c3-star", P.c3_star) ]

let suite =
  [
    Alcotest.test_case "core app planted clique" `Slow test_core_app_finds_hidden_core;
    Alcotest.test_case "core app triangle planted" `Slow test_core_app_triangle_on_planted;
    Alcotest.test_case "lemma 8 bound" `Quick test_lemma8_bound;
    Alcotest.test_case "empty results" `Quick test_empty_results;
    Alcotest.test_case "initial window override" `Quick test_initial_window_override;
    Alcotest.test_case "api layer" `Quick test_api_layer;
    Alcotest.test_case "streaming rejects eps <= 0" `Quick
      test_streaming_rejects_bad_eps;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:25 ("greedy++ monotone, round 1 = peel: " ^ name)
            (Helpers.small_graph_arb ~max_n:12 ~max_m:36 ())
            (greedy_pp_monotone_prop psi);
          Helpers.qtest ~count:20 ("streaming bound eps=0.1: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (streaming_bound_prop ~eps:0.1 psi);
          Helpers.qtest ~count:20 ("streaming bound eps=0.5: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (streaming_bound_prop ~eps:0.5 psi);
        ])
      [ ("edge", P.edge); ("triangle", P.triangle) ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:20 ("peel ratio: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (approx_ratio_prop peel psi);
          Helpers.qtest ~count:20 ("incapp ratio: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (approx_ratio_prop inc psi);
          Helpers.qtest ~count:20 ("coreapp ratio: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (approx_ratio_prop capp psi);
          Helpers.qtest ~count:20 ("incapp = coreapp: " ^ name)
            (Helpers.small_graph_arb ~max_n:12 ~max_m:36 ())
            (incapp_coreapp_same_core_prop psi);
          Helpers.qtest ~count:20 ("peel >= core: " ^ name)
            (Helpers.small_graph_arb ~max_n:12 ~max_m:36 ())
            (peel_at_least_core_prop psi);
        ])
      patterns_for_approx
