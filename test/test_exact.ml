(* Exact algorithms: Exact (Algorithm 1) and CoreExact (Algorithm 4)
   against the exhaustive brute-force oracle, against each other,
   across flow-network constructions and pruning configurations, plus
   Lemma 7 (CDS location). *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

let close a b = Float.abs (a -. b) < 1e-6

let exact_matches_brute_prop psi g =
  let brute_density, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Exact.run g psi in
  close brute_density r.Dsd_core.Exact.subgraph.D.density

let core_exact_matches_brute_prop psi g =
  let brute_density, _ = Helpers.brute_force_densest g psi in
  let r = Dsd_core.Core_exact.run g psi in
  close brute_density r.Dsd_core.Core_exact.subgraph.D.density

(* The returned vertex set's density must equal the reported density
   (the subgraph really is that dense, not just the scalar). *)
let core_exact_witness_prop psi g =
  let r = Dsd_core.Core_exact.run g psi in
  let sg = r.Dsd_core.Core_exact.subgraph in
  close sg.D.density (Helpers.density_of_subset g psi sg.D.vertices)

let prunings_equivalent_prop psi g =
  let reference = (Dsd_core.Core_exact.run g psi).Dsd_core.Core_exact.subgraph in
  List.for_all
    (fun prunings ->
      let r = Dsd_core.Core_exact.run ~prunings g psi in
      close reference.D.density r.Dsd_core.Core_exact.subgraph.D.density)
    Dsd_core.Core_exact.
      [ no_prunings;
        { p1 = true; p2 = false; p3 = false };
        { p1 = false; p2 = true; p3 = false };
        { p1 = false; p2 = false; p3 = true } ]

(* The EDS-specialised Goldberg network and the generic h=2 clique
   network must agree. *)
let eds_network_vs_clique_network_prop g =
  let a = Dsd_core.Exact.run ~family:Dsd_core.Flow_build.Eds g P.edge in
  let b = Dsd_core.Exact.run ~family:Dsd_core.Flow_build.Clique_flow g P.edge in
  close a.Dsd_core.Exact.subgraph.D.density b.Dsd_core.Exact.subgraph.D.density

(* Lemma 7: the CDS is contained in the (ceil(rho_opt), Psi)-core. *)
let lemma7_prop psi g =
  let r = Dsd_core.Core_exact.run g psi in
  let sg = r.Dsd_core.Core_exact.subgraph in
  if Array.length sg.D.vertices = 0 then true
  else begin
    let k = int_of_float (Float.ceil (sg.D.density -. 1e-9)) in
    let decomp = Dsd_core.Clique_core.decompose g psi in
    let core = Helpers.int_array_as_set (Dsd_core.Clique_core.core_vertices decomp ~k) in
    List.for_all (fun v -> List.mem v core)
      (Array.to_list sg.D.vertices)
  end

let test_two_cliques_eds () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:true in
  let r = Dsd_core.Core_exact.run g P.edge in
  Helpers.check_float "density of K6" 2.5 r.Dsd_core.Core_exact.subgraph.D.density;
  Alcotest.(check (list int)) "vertices"
    [ 0; 1; 2; 3; 4; 5 ]
    (Helpers.int_array_as_set r.Dsd_core.Core_exact.subgraph.D.vertices)

let test_two_cliques_triangle () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:false in
  let r = Dsd_core.Core_exact.run g P.triangle in
  (* K6: C(6,3)/6 = 20/6. *)
  Helpers.check_float "triangle density" (20. /. 6.)
    r.Dsd_core.Core_exact.subgraph.D.density

let test_eds_vs_cds_differ () =
  (* Figure 1's phenomenon: EDS = K3,4, triangle-CDS = K4. *)
  let g = Dsd_data.Paper_graphs.eds_vs_cds in
  let eds = Dsd_core.Core_exact.run g P.edge in
  Helpers.check_float "EDS density" (12. /. 7.) eds.Dsd_core.Core_exact.subgraph.D.density;
  Alcotest.(check (list int)) "EDS = K3,4" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Helpers.int_array_as_set eds.Dsd_core.Core_exact.subgraph.D.vertices);
  let cds = Dsd_core.Core_exact.run g P.triangle in
  Helpers.check_float "CDS density" 1.0 cds.Dsd_core.Core_exact.subgraph.D.density;
  Alcotest.(check (list int)) "CDS = K4" [ 7; 8; 9; 10 ]
    (Helpers.int_array_as_set cds.Dsd_core.Core_exact.subgraph.D.vertices)

let test_exact_on_figure2 () =
  let g = Dsd_data.Paper_graphs.figure2 in
  let r = Dsd_core.Exact.run g P.triangle in
  (* One triangle on {B,C,D}: density 1/3. *)
  Helpers.check_float "density" (1. /. 3.) r.Dsd_core.Exact.subgraph.D.density;
  Alcotest.(check (list int)) "triangle vertices" [ 1; 2; 3 ]
    (Helpers.int_array_as_set r.Dsd_core.Exact.subgraph.D.vertices)

let test_no_instances () =
  let g = Dsd_data.Paper_graphs.path 6 in
  let r = Dsd_core.Exact.run g P.triangle in
  Helpers.check_float "no triangles" 0. r.Dsd_core.Exact.subgraph.D.density;
  let rc = Dsd_core.Core_exact.run g P.triangle in
  Helpers.check_float "core exact agrees" 0. rc.Dsd_core.Core_exact.subgraph.D.density

let test_exact_equals_core_exact_medium () =
  (* Beyond brute-force scale: the two exact algorithms agree on a
     denser random graph, for every h. *)
  let g = Helpers.random_graph ~seed:77 ~max_n:60 ~max_m:400 () in
  List.iter
    (fun h ->
      let a = Dsd_core.Exact.run g (P.clique h) in
      let b = Dsd_core.Core_exact.run g (P.clique h) in
      Alcotest.(check bool)
        (Printf.sprintf "h=%d agree" h)
        true
        (close a.Dsd_core.Exact.subgraph.D.density
           b.Dsd_core.Core_exact.subgraph.D.density))
    [ 2; 3; 4 ]

let test_core_exact_network_shrinks () =
  let g = Dsd_data.Gen.planted_clique ~seed:3 ~n:300 ~p:0.02 ~clique:12 in
  let exact = Dsd_core.Exact.run g P.triangle in
  let core = Dsd_core.Core_exact.run g P.triangle in
  Alcotest.(check bool) "same answer" true
    (close exact.Dsd_core.Exact.subgraph.D.density
       core.Dsd_core.Core_exact.subgraph.D.density);
  (* CoreExact's largest network must be smaller than Exact's (that is
     the whole point of the paper). *)
  let core_max =
    List.fold_left max 0 core.Dsd_core.Core_exact.stats.network_nodes
  in
  Alcotest.(check bool) "network smaller" true
    (core_max < exact.Dsd_core.Exact.stats.last_network_nodes);
  (* And the planted clique is found. *)
  Alcotest.(check (list int)) "planted clique found"
    (List.init 12 Fun.id)
    (Helpers.int_array_as_set core.Dsd_core.Core_exact.subgraph.D.vertices)

let test_stats_populated () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:5 ~b:3 ~bridge:true in
  let r = Dsd_core.Core_exact.run g P.edge in
  let s = r.Dsd_core.Core_exact.stats in
  Alcotest.(check bool) "kmax" true (s.Dsd_core.Core_exact.kmax = 4);
  Alcotest.(check bool) "timings nonneg" true
    (s.Dsd_core.Core_exact.decompose_s >= 0. && s.Dsd_core.Core_exact.flow_s >= 0.);
  Alcotest.(check int) "network sizes recorded"
    s.Dsd_core.Core_exact.iterations
    (List.length s.Dsd_core.Core_exact.network_nodes)

let patterns_for_exact =
  [ ("edge", P.edge); ("triangle", P.triangle); ("4-clique", P.clique 4) ]

let suite =
  [
    Alcotest.test_case "two cliques EDS" `Quick test_two_cliques_eds;
    Alcotest.test_case "two cliques triangle" `Quick test_two_cliques_triangle;
    Alcotest.test_case "EDS vs CDS differ (fig 1)" `Quick test_eds_vs_cds_differ;
    Alcotest.test_case "exact on figure 2" `Quick test_exact_on_figure2;
    Alcotest.test_case "no instances" `Quick test_no_instances;
    Alcotest.test_case "exact = core-exact (medium)" `Slow test_exact_equals_core_exact_medium;
    Alcotest.test_case "networks shrink + planted clique" `Slow test_core_exact_network_shrinks;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
    Helpers.qtest ~count:40 "eds net = clique net (h=2)"
      (Helpers.small_graph_arb ~max_n:12 ~max_m:30 ())
      eds_network_vs_clique_network_prop;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:25 ("exact = brute force: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (exact_matches_brute_prop psi);
          Helpers.qtest ~count:25 ("core-exact = brute force: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (core_exact_matches_brute_prop psi);
          Helpers.qtest ~count:25 ("core-exact witness density: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (core_exact_witness_prop psi);
          Helpers.qtest ~count:15 ("prunings equivalent: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (prunings_equivalent_prop psi);
          Helpers.qtest ~count:15 ("lemma 7: " ^ name)
            (Helpers.small_graph_arb ~max_n:10 ~max_m:28 ())
            (lemma7_prop psi);
        ])
      patterns_for_exact
