(* Top-k locally densest subgraphs (Dsd_core.Topk_lds) against the
   exhaustive oracle, plus the pruning/warm-start bit-equality the
   canonical-region construction promises.

   Every comparison here is EXACT — densities are quotients of small
   integers, so equal rationals divide to bit-identical floats and
   [Int64.bits_of_float] equality is the right notion of "same
   answer". *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density
module T = Dsd_core.Topk_lds
module O = Dsd_check.Oracle

let patterns = [ ("edge", P.edge); ("triangle", P.triangle) ]

let show_regions rs =
  String.concat "; "
    (List.map
       (fun (d, vs) ->
         Printf.sprintf "%.6f:[%s]" d
           (String.concat "," (List.map string_of_int (Array.to_list vs))))
       rs)

let pairs_of result =
  List.map
    (fun (sg : D.subgraph) -> (sg.D.density, sg.D.vertices))
    result.T.regions

(* Bitwise equality of two region lists: same length, bit-identical
   densities, identical (sorted) vertex arrays. *)
let same_regions a b =
  List.length a = List.length b
  && List.for_all2
       (fun (da, va) (db, vb) ->
         Int64.bits_of_float da = Int64.bits_of_float db && va = vb)
       a b

let check_same ~ctx a b =
  if not (same_regions a b) then
    Alcotest.failf "%s:\n  %s\n  <> %s" ctx (show_regions a) (show_regions b)

(* ---- fixed fixtures ---- *)

let test_two_cliques () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:true in
  let r = T.run ~k:2 g P.edge in
  check_same ~ctx:"two_cliques k=2" (pairs_of r)
    [ (2.5, Array.init 6 Fun.id); (1.5, Array.init 4 (fun i -> 6 + i)) ]

let test_k_exhausts_regions () =
  (* k far beyond the supply of dense regions: extraction stops when
     the remaining graph holds no instance at all. *)
  let g = Dsd_data.Paper_graphs.two_cliques ~a:5 ~b:3 ~bridge:false in
  let r = T.run ~k:10 g P.triangle in
  Alcotest.(check int) "regions" 2 (List.length r.T.regions);
  Alcotest.(check bool) "rounds cover the dry round" true (r.T.stats.T.rounds >= 2)

let test_invalid_k () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:4 ~b:3 ~bridge:false in
  List.iter
    (fun k ->
      Alcotest.check_raises
        (Printf.sprintf "k=%d" k)
        (Invalid_argument "Topk_lds: k must be >= 1")
        (fun () -> ignore (T.run ~k g P.edge)))
    [ 0; -1 ]

let test_empty_graph () =
  let r = T.run ~k:3 (G.empty 0) P.edge in
  Alcotest.(check int) "regions" 0 (List.length r.T.regions);
  Alcotest.(check int) "rounds" 0 r.T.stats.T.rounds

let test_top1_matches_exact () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:true in
  List.iter
    (fun (name, psi) ->
      let top = (T.run ~k:1 g psi).T.regions in
      let exact = (Dsd_core.Exact.run g psi).Dsd_core.Exact.subgraph in
      match top with
      | [ sg ] ->
        Alcotest.(check bool)
          (name ^ " top-1 density = Exact density, bitwise") true
          (Int64.bits_of_float sg.D.density
          = Int64.bits_of_float exact.D.density)
      | _ -> Alcotest.failf "%s: expected exactly one region" name)
    patterns

(* ---- oracle differential ---- *)

(* Iterated extraction is prefix-stable by construction on both sides,
   so one oracle run at k = 3 checks every k in {1, 2, 3} against its
   prefix. *)
let test_oracle_differential () =
  for seed = 0 to 29 do
    let g = Helpers.random_graph ~seed ~max_n:10 ~max_m:24 () in
    List.iter
      (fun (name, psi) ->
        let truth = O.brute_force_topk ~k:3 g psi in
        List.iter
          (fun k ->
            let want =
              List.filteri (fun i _ -> i < k) truth
            in
            List.iter
              (fun prune ->
                let got = pairs_of (T.run ~prune ~k g psi) in
                check_same
                  ~ctx:
                    (Printf.sprintf "%s %s k=%d prune=%b" (Helpers.seed_ctx seed)
                       name k prune)
                  got want)
              [ true; false ])
          [ 1; 2; 3 ])
      patterns
  done

(* ---- configuration bit-equality on larger graphs ---- *)

let test_modes_bit_identical () =
  for seed = 0 to 9 do
    let g = Helpers.random_graph ~seed:(1000 + seed) ~max_n:40 ~max_m:150 () in
    List.iter
      (fun (name, psi) ->
        let reference = pairs_of (T.run ~k:3 g psi) in
        List.iter
          (fun (label, run) ->
            check_same
              ~ctx:
                (Printf.sprintf "%s %s vs %s" (Helpers.seed_ctx (1000 + seed))
                   name label)
              (pairs_of (run ())) reference)
          [ ("no-prune", fun () -> T.run ~prune:false ~k:3 g psi);
            ("no-warm", fun () -> T.run ~warm:false ~k:3 g psi);
            ( "cached decomp",
              fun () ->
                let decomp =
                  Dsd_core.Clique_core.decompose ~track_density:true g psi
                in
                T.run ~decomp ~k:3 g psi ) ])
      patterns
  done

(* ---- structural invariants on random graphs ---- *)

let disjoint_and_sorted_prop psi g =
  let r = T.run ~k:4 g psi in
  let seen = Hashtbl.create 16 in
  let last = ref infinity in
  List.for_all
    (fun (sg : D.subgraph) ->
      let ok =
        Array.length sg.D.vertices > 0
        && sg.D.density > 0.
        && sg.D.density <= !last
        && Array.for_all (fun v -> not (Hashtbl.mem seen v)) sg.D.vertices
      in
      Array.iter (fun v -> Hashtbl.replace seen v ()) sg.D.vertices;
      last := sg.D.density;
      ok)
    r.T.regions

let suite =
  [ Alcotest.test_case "two cliques, k=2" `Quick test_two_cliques;
    Alcotest.test_case "k exhausts regions" `Quick test_k_exhausts_regions;
    Alcotest.test_case "invalid k" `Quick test_invalid_k;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "top-1 = Exact" `Quick test_top1_matches_exact;
    Alcotest.test_case "oracle differential (30 seeds)" `Slow
      test_oracle_differential;
    Alcotest.test_case "prune/warm/decomp bit-identical" `Slow
      test_modes_bit_identical;
    Helpers.qtest ~count:60 "regions disjoint, densities non-increasing"
      (Helpers.small_graph_arb ~max_n:12 ~max_m:30 ())
      (disjoint_and_sorted_prop Dsd_pattern.Pattern.triangle);
  ]
