(* Determinism battery for the bucket-free parallel peel and the
   domain-striped flow probes: at every pool width — including widths
   far beyond this machine's cores — every solver built on the shared
   round-synchronous engine must reproduce the sequential run
   bit-for-bit.  [~sequential_below:0] strips the pool's inline
   fallback so even these small fixtures exercise the real worker
   fan-out, chunk claiming and merge paths. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Pool = Dsd_util.Pool
module CC = Dsd_core.Clique_core
module GP = Dsd_core.Greedy_pp
module CE = Dsd_core.Core_exact
module TK = Dsd_core.Topk_lds
module D = Dsd_core.Density

let domain_counts = [ 1; 2; 4; 8 ]
let patterns = [ P.edge; P.triangle ]

let check_floats tag a b =
  Alcotest.(check (list (float 0.)))
    tag
    (Array.to_list a)
    (Array.to_list b)

(* ---- 30-seed transcript differential: decompose ---- *)

(* The full density-tracked transcript — core numbers, the linearised
   peel order, kmax, every residual density and the best suffix — is
   the strongest statement of the engine's determinism contract: any
   scheduling leak shows up here before it shows up in an answer. *)
let test_transcript_differential () =
  for seed = 1 to 30 do
    let g = Helpers.random_graph ~seed:(300 + seed) ~max_n:28 ~max_m:90 () in
    List.iter
      (fun psi ->
        let s = CC.decompose ~track_density:true g psi in
        List.iter
          (fun d ->
            Pool.with_pool ~sequential_below:0 d (fun pool ->
                let p = CC.decompose ~pool ~track_density:true g psi in
                let tag =
                  Printf.sprintf "%s %s d=%d" (Helpers.seed_ctx seed)
                    psi.P.name d
                in
                Alcotest.(check (array int)) ("core " ^ tag) s.CC.core p.CC.core;
                Alcotest.(check (array int)) ("order " ^ tag) s.CC.order p.CC.order;
                Alcotest.(check int) ("kmax " ^ tag) s.CC.kmax p.CC.kmax;
                Alcotest.(check int) ("mu " ^ tag) s.CC.mu_total p.CC.mu_total;
                check_floats ("residuals " ^ tag) s.CC.residual_densities
                  p.CC.residual_densities;
                Alcotest.(check (float 0.)) ("rho' " ^ tag)
                  s.CC.best_residual_density p.CC.best_residual_density;
                Alcotest.(check int) ("rho' start " ^ tag)
                  s.CC.best_residual_start p.CC.best_residual_start))
          domain_counts)
      patterns
  done

(* ---- Greedy++ rides the shared engine for round 0 ---- *)

(* Round 0's loads feed every later round, so a single mis-charged
   owned-count would cascade into a different best subgraph; the whole
   densities trace must therefore match, not just the final answer. *)
let test_greedy_pp_differential () =
  for seed = 1 to 10 do
    let g = Helpers.random_graph ~seed:(340 + seed) ~max_n:24 ~max_m:70 () in
    List.iter
      (fun psi ->
        let s = GP.run ~rounds:4 g psi in
        List.iter
          (fun d ->
            Pool.with_pool ~sequential_below:0 d (fun pool ->
                let p = GP.run ~pool ~rounds:4 g psi in
                let tag =
                  Printf.sprintf "%s %s d=%d" (Helpers.seed_ctx seed)
                    psi.P.name d
                in
                Alcotest.(check (array int)) ("vertices " ^ tag)
                  s.GP.subgraph.D.vertices p.GP.subgraph.D.vertices;
                Alcotest.(check (float 0.)) ("density " ^ tag)
                  s.GP.subgraph.D.density p.GP.subgraph.D.density;
                check_floats ("densities " ^ tag) s.GP.densities p.GP.densities))
          domain_counts)
      patterns
  done

(* ---- striped CoreExact probes ---- *)

(* Disjoint unions of random blobs give the candidate core several
   components, so the striped per-component binary searches (and the
   shared atomic bound's strict skip) actually engage. *)
let multi_component_graph seed =
  let a = Helpers.random_graph ~seed:(400 + seed) ~max_n:14 ~max_m:40 () in
  let b = Helpers.random_graph ~seed:(430 + seed) ~max_n:14 ~max_m:40 () in
  let c = Helpers.random_graph ~seed:(460 + seed) ~max_n:10 ~max_m:30 () in
  Dsd_data.Gen.disjoint_union (Dsd_data.Gen.disjoint_union a b) c

let test_core_exact_striped_differential () =
  for seed = 1 to 10 do
    let g = multi_component_graph seed in
    List.iter
      (fun psi ->
        let s = CE.run g psi in
        List.iter
          (fun d ->
            Pool.with_pool ~sequential_below:0 d (fun pool ->
                let p = CE.run ~pool g psi in
                let tag =
                  Printf.sprintf "%s %s d=%d" (Helpers.seed_ctx seed)
                    psi.P.name d
                in
                Alcotest.(check (array int)) ("vertices " ^ tag)
                  s.CE.subgraph.D.vertices p.CE.subgraph.D.vertices;
                Alcotest.(check (float 0.)) ("density " ^ tag)
                  s.CE.subgraph.D.density p.CE.subgraph.D.density))
          domain_counts)
      patterns
  done

(* ---- qcheck: Topk_lds is pool-invariant ---- *)

(* Regions (vertex sets AND densities, in extraction order) must be
   bit-identical whatever the pool: the striped component solves only
   skip work the merge could never use. *)
let topk_pool_invariant =
  Helpers.qtest ~count:40 "topk invariant under striped pools"
    (Helpers.small_graph_arb ~max_n:14 ~max_m:40 ())
    (fun g ->
      let same (a : D.subgraph) (b : D.subgraph) =
        a.D.vertices = b.D.vertices
        && Int64.bits_of_float a.D.density = Int64.bits_of_float b.D.density
      in
      List.for_all
        (fun psi ->
          let s = (TK.run ~k:3 g psi).TK.regions in
          List.for_all
            (fun d ->
              Pool.with_pool ~sequential_below:0 d (fun pool ->
                  let p = (TK.run ~pool ~k:3 g psi).TK.regions in
                  List.length s = List.length p
                  && List.for_all2 same s p))
            [ 2; 4 ])
        patterns)

let suite =
  [
    Alcotest.test_case "peel transcript differential (30 seeds)" `Slow
      test_transcript_differential;
    Alcotest.test_case "greedy++ differential" `Slow
      test_greedy_pp_differential;
    Alcotest.test_case "coreexact striped differential" `Slow
      test_core_exact_striped_differential;
    topk_pool_invariant;
  ]
