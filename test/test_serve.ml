(* The serving subsystem, end to end.

   Four layers, in increasing depth of integration:

   - the LRU and the snapshot codec as pure data structures (qcheck
     properties against tiny reference models);
   - State.handle request streams: cache accounting contracts
     (hits + misses = requests, entries <= capacity);
   - a real in-process server over a Unix-domain socket: every
     endpoint, over a corpus from the metamorphic generator, answered
     bit-identically to direct Api calls — cold, and again warm from
     the result cache;
   - fault injection over the same socket: malformed frames from
     Dsd_check.Generator.malformed_frame plus hand-written mid-request
     disconnects must produce a structured error or a clean close, and
     must leave the server answering the next well-formed request. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Api = Dsd_core.Api
module Prng = Dsd_util.Prng
module Snapshot = Dsd_serve.Snapshot
module Lru = Dsd_serve.Lru
module Pr = Dsd_serve.Protocol
module Sv_state = Dsd_serve.State
module Server = Dsd_serve.Server
module Client = Dsd_serve.Client

let graph_eq a b = G.n a = G.n b && G.edges a = G.edges b

let subgraph : Dsd_core.Density.subgraph Alcotest.testable =
  Alcotest.testable
    (fun fmt (s : Dsd_core.Density.subgraph) ->
      Format.fprintf fmt "density=%.17g |V|=%d" s.density
        (Array.length s.vertices))
    (fun a b -> a.density = b.density && a.vertices = b.vertices)

(* ---- temp files and sockets ---- *)

let temp_path suffix =
  let path =
    Filename.temp_file "dsd_serve_test" suffix
  in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* Unix-domain socket paths are length-limited (~108 bytes), so build
   short ones in the temp dir rather than via temp_file's long names. *)
let socket_counter = ref 0
let fresh_socket () =
  incr socket_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsd-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  (try Sys.remove path with Sys_error _ -> ());
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let with_server ?receive_timeout_s ?(max_cached = 64) graphs f =
  let addr = Server.Unix_domain (fresh_socket ()) in
  let state = Sv_state.create ~max_cached graphs in
  let server = Server.start ?receive_timeout_s ~state addr in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Client.once addr Pr.Shutdown) with _ -> ());
      Server.join server)
    (fun () -> f addr state)

(* ---- snapshot round trip ---- *)

let test_snapshot_roundtrip () =
  Helpers.qtest ~count:60 "write/load is the identity on graphs"
    (Helpers.small_graph_arb ~max_n:40 ~max_m:120 ())
    (fun g ->
      let path = temp_path ".snap" in
      let bytes = Snapshot.write path g in
      let g' = Snapshot.load path in
      let i = Snapshot.info path in
      bytes = (Unix.stat path).Unix.st_size
      && graph_eq g g'
      && i.Snapshot.n = G.n g
      && i.Snapshot.m = G.m g
      && i.Snapshot.bytes = bytes
      && Snapshot.is_snapshot path)

let test_snapshot_empty () =
  let path = temp_path ".snap" in
  let g = G.of_edges ~n:0 [||] in
  ignore (Snapshot.write path g);
  Alcotest.(check bool) "empty graph round-trips" true
    (graph_eq g (Snapshot.load path))

let expect_load_failure what path =
  match Snapshot.load path with
  | _ -> Alcotest.failf "%s: corrupted snapshot loaded successfully" what
  | exception Failure _ -> ()

let test_snapshot_corruption () =
  let g = Helpers.random_graph ~seed:11 ~max_n:20 ~max_m:60 () in
  let path = temp_path ".snap" in
  let bytes = Snapshot.write path g in
  let original = In_channel.with_open_bin path In_channel.input_all in
  let write_raw s = Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc s)
  in
  let flip pos =
    let b = Bytes.of_string original in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
    write_raw (Bytes.to_string b)
  in
  (* magic *)
  flip 0;
  expect_load_failure "magic" path;
  Alcotest.(check bool) "corrupt magic fails the sniff too" false
    (Snapshot.is_snapshot path);
  (* version *)
  flip 9;
  expect_load_failure "version" path;
  (* header (n), caught by length accounting or checksum *)
  flip 13;
  expect_load_failure "header" path;
  (* payload byte (just past the 28-byte header), caught by the checksum *)
  flip 31;
  expect_load_failure "payload" path;
  (* checksum byte itself *)
  flip (bytes - 1);
  expect_load_failure "checksum" path;
  (* truncations at every interesting boundary *)
  List.iter
    (fun keep ->
      write_raw (String.sub original 0 keep);
      expect_load_failure (Printf.sprintf "truncated-to-%d" keep) path)
    [ 0; 4; 12; 27; bytes - 9; bytes - 1 ];
  (* trailing garbage *)
  write_raw (original ^ "x");
  expect_load_failure "trailing-garbage" path;
  (* and the pristine bytes still load *)
  write_raw original;
  Alcotest.(check bool) "pristine bytes still load" true
    (graph_eq g (Snapshot.load path))

let test_snapshot_not_a_snapshot () =
  let path = temp_path ".edges" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "0 1\n1 2\n");
  Alcotest.(check bool) "edge list is not sniffed as a snapshot" false
    (Snapshot.is_snapshot path);
  expect_load_failure "edge list" path

(* ---- LRU vs a reference model ---- *)

(* The model is an association list, most recently used first. *)
type model_op = Find of int | Add of int

let lru_ops_arb =
  let open QCheck in
  let op =
    Gen.(
      oneof
        [ (int_range 0 12 >|= fun k -> Find k);
          (int_range 0 12 >|= fun k -> Add k) ])
  in
  make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "capacity=%d ops=[%s]" cap
        (String.concat "; "
           (List.map
              (function
                | Find k -> Printf.sprintf "find %d" k
                | Add k -> Printf.sprintf "add %d" k)
              ops)))
    Gen.(pair (int_range 0 6) (list_size (int_range 0 80) op))

let test_lru_model () =
  Helpers.qtest ~count:200 "LRU agrees with the reference model"
    lru_ops_arb
    (fun (capacity, ops) ->
      let t = Lru.create ~capacity in
      let model = ref [] in
      let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          let key k = string_of_int k in
          (match op with
          | Find k -> (
            let expected = List.assoc_opt (key k) !model in
            (match expected with
            | Some _ ->
              incr hits;
              model :=
                (key k, Option.get expected)
                :: List.remove_assoc (key k) !model
            | None -> incr misses);
            match (Lru.find t (key k), expected) with
            | Some v, Some v' when v = v' -> ()
            | None, None -> ()
            | _ -> ok := false)
          | Add k ->
            let v = k * 10 in
            let had = List.mem_assoc (key k) !model in
            model := (key k, v) :: List.remove_assoc (key k) !model;
            let expected_evicted =
              if capacity = 0 then begin
                (* nothing is ever resident: the add is dropped outright
                   and does not count as an eviction *)
                model := [];
                None
              end
              else if (not had) && List.length !model > capacity then begin
                let rec split = function
                  | [] -> assert false
                  | [ (lru_key, _) ] -> (lru_key, [])
                  | x :: rest ->
                    let lru_key, kept = split rest in
                    (lru_key, x :: kept)
                in
                let lru_key, kept = split !model in
                model := kept;
                incr evictions;
                Some lru_key
              end
              else None
            in
            if Lru.add t (key k) v <> expected_evicted then ok := false);
          if Lru.length t > capacity then ok := false;
          if Lru.keys_by_recency t <> List.map fst !model then ok := false)
        ops;
      !ok
      && Lru.hits t = !hits
      && Lru.misses t = !misses
      && Lru.evictions t = !evictions
      && Lru.hits t + Lru.misses t
         = List.length (List.filter (function Find _ -> true | _ -> false) ops))

let test_lru_basics () =
  (match Lru.create ~capacity:(-1) with
  | _ -> Alcotest.fail "negative capacity accepted"
  | exception Invalid_argument _ -> ());
  let t = Lru.create ~capacity:2 in
  Alcotest.(check (option string)) "add a" None (Lru.add t "a" 1);
  Alcotest.(check (option string)) "add b" None (Lru.add t "b" 2);
  Alcotest.(check (option int)) "a hits" (Some 1) (Lru.find t "a");
  (* b is now least recently used *)
  Alcotest.(check (option string)) "c evicts b" (Some "b") (Lru.add t "c" 3);
  Alcotest.(check (list string)) "recency order" [ "c"; "a" ]
    (Lru.keys_by_recency t);
  Lru.clear t;
  Alcotest.(check int) "clear empties" 0 (Lru.length t);
  Alcotest.(check int) "tallies survive clear" 1 (Lru.hits t)

(* ---- State.handle: cache accounting ---- *)

let stats_field state name =
  match List.assoc_opt name (Sv_state.cache_stats state) with
  | Some v -> v
  | None -> Alcotest.failf "cache_stats has no %s field" name

let random_request rng graphs =
  let graph = List.nth graphs (Prng.int rng (List.length graphs)) in
  let psi = if Prng.int rng 2 = 0 then "edge" else "triangle" in
  match Prng.int rng 5 with
  | 0 -> Pr.Density { graph; psi; algorithm = "coreexact" }
  | 1 -> Pr.Density { graph; psi; algorithm = "peel" }
  | 2 -> Pr.Cds { graph; psi; algorithm = "incapp" }
  | 3 -> Pr.Decompose { graph; psi }
  | _ -> Pr.Query { graph; psi; vertices = [| Prng.int rng 6 |] }

let test_state_accounting () =
  let rng = Helpers.rng 2024 in
  let graphs =
    [ ("a", Helpers.random_graph ~seed:1 ~max_n:10 ~max_m:25 ());
      ("b", Helpers.random_graph ~seed:2 ~max_n:8 ~max_m:20 ()) ]
  in
  List.iter
    (fun capacity ->
      let state = Sv_state.create ~max_cached:capacity graphs in
      let total = 120 in
      for _ = 1 to total do
        (* control requests must not perturb the cache accounting *)
        if Prng.int rng 10 = 0 then ignore (Sv_state.handle state Pr.Ping);
        ignore (Sv_state.handle state (random_request rng [ "a"; "b" ]))
      done;
      let requests = stats_field state "requests" in
      let hits = stats_field state "hits" in
      let misses = stats_field state "misses" in
      Alcotest.(check int)
        (Printf.sprintf "cap=%d: every cacheable request counted" capacity)
        total requests;
      Alcotest.(check int)
        (Printf.sprintf "cap=%d: hits + misses = requests" capacity)
        requests (hits + misses);
      Alcotest.(check bool)
        (Printf.sprintf "cap=%d: entries bounded" capacity)
        true
        (stats_field state "entries" <= capacity);
      if capacity = 0 then
        Alcotest.(check int) "cap=0 never hits" 0 hits
      else
        Alcotest.(check bool)
          (Printf.sprintf "cap=%d: repeats do hit" capacity)
          true (hits > 0))
    [ 0; 3; 64 ]

let test_state_errors_not_cached () =
  let state =
    Sv_state.create ~max_cached:8
      [ ("g", Helpers.random_graph ~seed:3 ~max_n:8 ~max_m:16 ()) ]
  in
  let bad = Pr.Density { graph = "nope"; psi = "edge"; algorithm = "peel" } in
  (match Sv_state.handle state bad with
  | Pr.Error_r _ -> ()
  | _ -> Alcotest.fail "unknown graph should be an error");
  (match Sv_state.handle state bad with
  | Pr.Error_r _ -> ()
  | _ -> Alcotest.fail "unknown graph should stay an error");
  Alcotest.(check int) "errors never enter the cache" 0
    (stats_field state "entries");
  Alcotest.(check int) "both error answers were misses" 2
    (stats_field state "misses");
  List.iter
    (fun req ->
      match Sv_state.handle state req with
      | Pr.Error_r _ -> ()
      | _ -> Alcotest.fail "invalid request should be an error")
    [ Pr.Density { graph = "g"; psi = "heptagon"; algorithm = "peel" };
      Pr.Density { graph = "g"; psi = "edge"; algorithm = "quantum" };
      Pr.Query { graph = "g"; psi = "edge"; vertices = [||] };
      Pr.Query { graph = "g"; psi = "edge"; vertices = [| 999 |] };
      Pr.Query { graph = "g"; psi = "edge"; vertices = [| -1 |] };
    ]

(* ---- the differential corpus over a live socket ---- *)

(* Direct library answer for an endpoint, for comparison. *)
let api_subgraph g psi algorithm =
  let algorithm =
    match algorithm with
    | "exact" -> Api.Exact_flow
    | "coreexact" -> Api.Core_exact
    | "peel" -> Api.Peel
    | "incapp" -> Api.Inc_app
    | "coreapp" -> Api.Core_app
    | other -> Alcotest.failf "unknown algorithm %s" other
  in
  Api.densest_subgraph ~psi ~algorithm g

let corpus seed count =
  let rng = Helpers.rng seed in
  List.init count (fun i ->
      (Printf.sprintf "g%d" i, (Dsd_check.Generator.sample rng).graph))

let test_differential_corpus () =
  let graphs = corpus 701 5 in
  with_server ~max_cached:256 graphs (fun addr _state ->
      let client = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      let ask req = Client.call client req in
      List.iter
        (fun (name, g) ->
          (* h = 2 and h = 3: edge density and triangle density *)
          List.iter
            (fun (psi : P.t) ->
              let check_round label req expect =
                (* cold: first time this request is ever seen *)
                (match ask req with
                | resp -> expect (label ^ " (cold)") resp
                | exception Pr.Error msg ->
                  Alcotest.failf "%s: protocol error %s" label msg);
                (* warm: bit-identical answer straight from the LRU *)
                match ask req with
                | resp -> expect (label ^ " (warm)") resp
                | exception Pr.Error msg ->
                  Alcotest.failf "%s (warm): protocol error %s" label msg
              in
              List.iter
                (fun algorithm ->
                  let expected = api_subgraph g psi algorithm in
                  check_round
                    (Printf.sprintf "density %s %s %s" name psi.P.name
                       algorithm)
                    (Pr.Density { graph = name; psi = psi.P.name; algorithm })
                    (fun label resp ->
                      match resp with
                      | Pr.Density_r d ->
                        if d <> expected.density then
                          Alcotest.failf "%s: %.17g <> api %.17g" label d
                            expected.density
                      | _ -> Alcotest.failf "%s: wrong response kind" label);
                  check_round
                    (Printf.sprintf "cds %s %s %s" name psi.P.name algorithm)
                    (Pr.Cds { graph = name; psi = psi.P.name; algorithm })
                    (fun label resp ->
                      match resp with
                      | Pr.Cds_r { density; vertices } ->
                        Alcotest.check subgraph label expected
                          { density; vertices }
                      | _ -> Alcotest.failf "%s: wrong response kind" label))
                [ "exact"; "coreexact"; "peel"; "incapp"; "coreapp" ];
              let core = Api.core_numbers g psi in
              let kmax = Array.fold_left max 0 core in
              check_round
                (Printf.sprintf "decompose %s %s" name psi.P.name)
                (Pr.Decompose { graph = name; psi = psi.P.name })
                (fun label resp ->
                  match resp with
                  | Pr.Decompose_r r ->
                    if r.kmax <> kmax then
                      Alcotest.failf "%s: kmax %d <> api %d" label r.kmax kmax;
                    Alcotest.check Helpers.sorted_array label core r.core
                  | _ -> Alcotest.failf "%s: wrong response kind" label);
              if G.n g > 0 then begin
                let q = [| G.n g / 2 |] in
                let expected =
                  (Dsd_core.Query_dsd.run g psi ~query:q)
                    .Dsd_core.Query_dsd.subgraph
                in
                check_round
                  (Printf.sprintf "query %s %s" name psi.P.name)
                  (Pr.Query { graph = name; psi = psi.P.name; vertices = q })
                  (fun label resp ->
                    match resp with
                    | Pr.Query_r { density; vertices } ->
                      Alcotest.check subgraph label expected
                        { density; vertices }
                    | _ -> Alcotest.failf "%s: wrong response kind" label)
              end;
              let expected =
                List.map
                  (fun (sg : Dsd_core.Density.subgraph) ->
                    (sg.density, sg.vertices))
                  (Dsd_core.Topk_lds.run ~k:2 g psi).Dsd_core.Topk_lds.regions
              in
              check_round
                (Printf.sprintf "topk %s %s" name psi.P.name)
                (Pr.Topk { graph = name; psi = psi.P.name; k = 2 })
                (fun label resp ->
                  match resp with
                  | Pr.Topk_r { regions } ->
                    if regions <> expected then
                      Alcotest.failf "%s: served regions differ from api"
                        label
                  | _ -> Alcotest.failf "%s: wrong response kind" label);
              let expected_all =
                List.map
                  (fun (lvl : Dsd_core.Ld_decomposition.level) ->
                    (lvl.marginal_density, lvl.vertices))
                  (Dsd_core.Ld_decomposition.decompose g psi)
                    .Dsd_core.Ld_decomposition.levels
              in
              (* full chain and a truncated variant: distinct LRU keys *)
              List.iter
                (fun lv ->
                  let expected =
                    if lv = 0 then expected_all
                    else List.filteri (fun i _ -> i < lv) expected_all
                  in
                  check_round
                    (Printf.sprintf "hierarchy %s %s levels=%d" name
                       psi.P.name lv)
                    (Pr.Hierarchy
                       { graph = name; psi = psi.P.name; levels = lv })
                    (fun label resp ->
                      match resp with
                      | Pr.Hierarchy_r { levels } ->
                        if levels <> expected then
                          Alcotest.failf "%s: served levels differ from api"
                            label
                      | _ -> Alcotest.failf "%s: wrong response kind" label))
                [ 0; 1 ])
            [ P.edge; P.triangle ])
        graphs;
      (* the warm half of every round must have come from the cache *)
      match ask Pr.Stats with
      | Pr.Stats_r { cache; _ } ->
        let get k = Option.get (List.assoc_opt k cache) in
        Alcotest.(check int) "hits + misses = requests" (get "requests")
          (get "hits" + get "misses");
        Alcotest.(check bool) "roughly half the rounds hit" true
          (get "hits" >= get "requests" / 2)
      | _ -> Alcotest.fail "stats: wrong response kind")

let test_tcp_transport () =
  (* Same protocol over TCP; one round trip is enough to cover the
     address family.  The port is derived from the pid to keep parallel
     test runs off each other's toes. *)
  let port = 20000 + (Unix.getpid () mod 20000) in
  let g = Helpers.random_graph ~seed:5 ~max_n:10 ~max_m:25 () in
  let addr = Server.Tcp { host = "127.0.0.1"; port } in
  let state = Sv_state.create ~max_cached:4 [ ("g", g) ] in
  match Server.start ~state addr with
  | exception Unix.Unix_error (EADDRINUSE, _, _) ->
    (* someone else owns the port: the Unix-socket tests cover the rest *)
    ()
  | server ->
    Fun.protect
      ~finally:(fun () ->
        (try ignore (Client.once addr Pr.Shutdown) with _ -> ());
        Server.join server)
      (fun () ->
        match
          Client.once addr
            (Pr.Density { graph = "g"; psi = "edge"; algorithm = "peel" })
        with
        | Pr.Density_r d ->
          let expected = (api_subgraph g P.edge "peel").density in
          Alcotest.(check bool) "tcp answer is bit-identical" true
            (d = expected)
        | _ -> Alcotest.fail "tcp: wrong response kind")

(* ---- fault injection ---- *)

let connect_raw addr =
  match addr with
  | Server.Unix_domain path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | Server.Tcp _ -> assert false

let send_all fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  go 0

(* What may happen after feeding the server garbage: a structured
   error frame, or a closed/reset connection.  Anything else — a
   non-error response, a hang past the deadline — is a failure. *)
let expect_error_or_close ~label fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
  match Pr.read_frame fd with
  | Some (tag, body) -> (
    match Pr.decode_response tag body with
    | Pr.Error_r _ -> ()
    | _ -> Alcotest.failf "%s: server answered garbage with success" label
    | exception Pr.Error _ ->
      Alcotest.failf "%s: server answered garbage with garbage" label)
  | None -> ()
  | exception Pr.Error _ -> ()
  | exception End_of_file -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
    Alcotest.failf "%s: server hung instead of erroring or closing" label

let alive addr =
  match Client.once addr Pr.Ping with
  | Pr.Pong -> true
  | _ -> false
  | exception _ -> false

let test_fault_injection () =
  let g = Helpers.random_graph ~seed:7 ~max_n:10 ~max_m:25 () in
  with_server ~receive_timeout_s:0.4 [ ("g", g) ] (fun addr _state ->
      let rng = Helpers.rng 4242 in
      for i = 1 to 40 do
        let label, bytes = Dsd_check.Generator.malformed_frame rng in
        let label = Printf.sprintf "case %d (%s)" i label in
        let fd = connect_raw addr in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (try send_all fd bytes
             with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
               (* server already rejected and closed: that is a pass *)
               ());
            expect_error_or_close ~label fd);
        (* whatever just happened must not have taken the server down *)
        if not (alive addr) then
          Alcotest.failf "%s: server no longer answers ping" label
      done)

let test_disconnect_mid_request () =
  let g = Helpers.random_graph ~seed:9 ~max_n:8 ~max_m:16 () in
  with_server ~receive_timeout_s:0.4 [ ("g", g) ] (fun addr _state ->
      (* announce a 64-byte request, send 3 bytes, vanish *)
      let fd = connect_raw addr in
      send_all fd "\x00\x00\x00\x40\x01\x03\x00";
      Unix.close fd;
      Alcotest.(check bool) "server survives a mid-request disconnect" true
        (alive addr);
      (* same, but the client lingers silently: the receive timeout
         must reclaim the connection rather than starve the accept
         loop *)
      let fd = connect_raw addr in
      send_all fd "\x00\x00\x00\x40\x01\x03\x00";
      Unix.sleepf 0.7;
      Alcotest.(check bool) "server reclaims a silent connection" true
        (alive addr);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* an instantly-closed connection is not an error either *)
      let fd = connect_raw addr in
      Unix.close fd;
      Alcotest.(check bool) "server survives connect-then-close" true
        (alive addr))

(* Targeted tag-0x0a (hierarchy) frame faults: a well-formed request
   must answer, and truncated / oversized / lying-body variants of the
   same frame must produce a structured error or a clean close, never a
   hang or a crash. *)
let test_hierarchy_frame_faults () =
  let g = Helpers.random_graph ~seed:11 ~max_n:8 ~max_m:16 () in
  with_server ~receive_timeout_s:0.4 [ ("g", g) ] (fun addr _state ->
      let frame_of ~len payload =
        let b = Bytes.create (4 + String.length payload) in
        Bytes.set_int32_be b 0 (Int32.of_int len);
        Bytes.blit_string payload 0 b 4 (String.length payload);
        Bytes.to_string b
      in
      let tag, body =
        Pr.encode_request (Pr.Hierarchy { graph = "g"; psi = "edge"; levels = 0 })
      in
      let payload = Printf.sprintf "\x01%c%s" (Char.chr tag) body in
      (* sanity anchor: the well-formed frame gets a real answer *)
      let fd = connect_raw addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send_all fd (frame_of ~len:(String.length payload) payload);
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
          match Pr.read_frame fd with
          | Some (tag, body) -> (
            match Pr.decode_response tag body with
            | Pr.Hierarchy_r { levels } ->
              Alcotest.(check bool) "well-formed 0x0a answers levels" true
                (List.length levels > 0)
            | _ -> Alcotest.fail "well-formed 0x0a: wrong response kind")
          | None -> Alcotest.fail "well-formed 0x0a: connection closed");
      let faults =
        [ (* body cut short of its own declared frame length: the read
             side times out waiting for bytes that never come *)
          ( "truncated 0x0a body",
            frame_of
              ~len:(String.length payload)
              (String.sub payload 0 (String.length payload - 5)) );
          (* length prefix beyond max_frame: rejected before allocation *)
          ("oversized 0x0a frame", frame_of ~len:(Pr.max_frame + 3) payload);
          (* well-sized frame whose body lies about its string length *)
          ( "corrupt 0x0a string length",
            (* smash the graph string's 8-byte length prefix (body
               starts after version + tag) so decode reads an absurd
               string length against a tiny body *)
            let b = Bytes.of_string payload in
            Bytes.fill b 2 8 '\xff';
            let smashed = Bytes.to_string b in
            frame_of ~len:(String.length smashed) smashed );
          (* trailing garbage after a complete body *)
          ( "trailing bytes after 0x0a body",
            let padded = payload ^ "\x00\x00" in
            frame_of ~len:(String.length padded) padded ) ]
      in
      List.iter
        (fun (label, bytes) ->
          let fd = connect_raw addr in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (try send_all fd bytes
               with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ());
              expect_error_or_close ~label fd);
          if not (alive addr) then
            Alcotest.failf "%s: server no longer answers ping" label)
        faults)

let test_request_codec_roundtrip () =
  let reqs =
    [ Pr.Ping;
      Pr.Stats;
      Pr.Shutdown;
      Pr.Density { graph = "g"; psi = "triangle"; algorithm = "exact" };
      Pr.Cds { graph = ""; psi = "edge"; algorithm = "coreapp" };
      Pr.Decompose { graph = "a b"; psi = "diamond" };
      Pr.Query { graph = "g"; psi = "edge"; vertices = [| 0; 5; 1_000_000 |] };
      Pr.Query { graph = "g"; psi = "edge"; vertices = [||] };
      Pr.Topk { graph = "g"; psi = "triangle"; k = 3 };
      Pr.Topk { graph = ""; psi = "edge"; k = -1 };
      Pr.Hierarchy { graph = "g"; psi = "triangle"; levels = 2 };
      Pr.Hierarchy { graph = ""; psi = "edge"; levels = 0 };
    ]
  in
  List.iter
    (fun req ->
      let tag, body = Pr.encode_request req in
      Alcotest.(check bool) "request round-trips" true
        (Pr.decode_request tag body = req))
    reqs;
  let resps =
    [ Pr.Pong;
      Pr.Shutdown_r;
      Pr.Density_r 2.6349206349206349;
      Pr.Density_r 0.1;  (* not representable exactly: bits must survive *)
      Pr.Density_r 0.;
      Pr.Cds_r { density = 1.5; vertices = [| 1; 2; 3 |] };
      Pr.Decompose_r { kmax = 3; core = [| 0; 1; 2; 3 |] };
      Pr.Query_r { density = 7.25; vertices = [||] };
      Pr.Topk_r { regions = [] };
      Pr.Topk_r
        { regions = [ (2.5, [| 0; 1; 2 |]); (0.1, [||]) ] };
      Pr.Hierarchy_r { levels = [] };
      Pr.Hierarchy_r
        { levels = [ (2.5, [| 0; 1; 2 |]); (0., [| 7 |]) ] };
      Pr.Error_r "nope";
      Pr.Stats_r
        { counters = [ ("a", 1); ("b", 0) ];
          cache = [ ("requests", 3) ];
          graphs = [ "g n=4 m=3" ] };
    ]
  in
  List.iter
    (fun resp ->
      let tag, body = Pr.encode_response resp in
      Alcotest.(check bool) "response round-trips" true
        (Pr.decode_response tag body = resp))
    resps

let suite =
  [ Alcotest.test_case "snapshot: empty graph" `Quick test_snapshot_empty;
    test_snapshot_roundtrip ();
    Alcotest.test_case "snapshot: corruption is rejected" `Quick
      test_snapshot_corruption;
    Alcotest.test_case "snapshot: non-snapshot files" `Quick
      test_snapshot_not_a_snapshot;
    Alcotest.test_case "lru: basics and eviction order" `Quick test_lru_basics;
    test_lru_model ();
    Alcotest.test_case "state: hits + misses = requests" `Quick
      test_state_accounting;
    Alcotest.test_case "state: errors are never cached" `Quick
      test_state_errors_not_cached;
    Alcotest.test_case "codec: request/response round trip" `Quick
      test_request_codec_roundtrip;
    Alcotest.test_case "socket: differential corpus, cold and warm" `Slow
      test_differential_corpus;
    Alcotest.test_case "socket: tcp transport" `Quick test_tcp_transport;
    Alcotest.test_case "socket: malformed frames" `Quick test_fault_injection;
    Alcotest.test_case "socket: hierarchy (0x0a) frame faults" `Quick
      test_hierarchy_frame_faults;
    Alcotest.test_case "socket: mid-request disconnects" `Quick
      test_disconnect_mid_request;
  ]
