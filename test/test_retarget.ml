(* The retarget fast path vs fresh per-alpha builds: a mode-switchable
   binary-search driver runs the *same* alpha schedule both ways and
   must see identical cut vertex sets, densities and iteration counts
   on every graph/pattern combination — sequentially and on a 2-domain
   pool.  Plus the ISSUE acceptance contract on the obs counters:
   builds + retargets = iterations, with at most one build per
   component arena (rebuilds only on Pruning-3 shrinks). *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module FB = Dsd_core.Flow_build
module Obs = Dsd_obs.Control
module Counter = Dsd_obs.Counter

type trace = {
  iterations : int;
  cuts : int list list;   (* per-iteration source-side vertex sets *)
  density : float;
}

(* Algorithm 1's binary search, parameterised over how each iteration
   obtains its network.  Both modes compute identical alphas because
   the cut-emptiness decisions (which steer l/u) must agree. *)
let binary_search ?pool mode g psi =
  let family = FB.auto_family psi ~grouped:false in
  let instances =
    match family with
    | FB.Eds -> [||]
    | _ -> Dsd_core.Enumerate.instances ?pool g psi
  in
  let max_deg =
    match family with
    | FB.Eds -> G.max_degree g
    | _ -> Array.fold_left max 0 (FB.instance_degrees ?pool (G.n g) instances)
  in
  if G.n g = 0 || max_deg = 0 then { iterations = 0; cuts = []; density = 0. }
  else begin
    let l = ref 0. and u = ref (float_of_int max_deg) in
    let gap = Dsd_core.Density.stop_gap (G.n g) in
    let prepared = ref None in
    let cuts = ref [] in
    let iterations = ref 0 in
    let best = ref [||] in
    while !u -. !l >= gap do
      incr iterations;
      let alpha = (!l +. !u) /. 2. in
      let network =
        match mode with
        | `Fresh -> FB.build ?pool family g psi ~instances ~alpha
        | `Retarget -> (
          match !prepared with
          | Some p -> FB.retarget p ~alpha
          | None ->
            let p = FB.prepare ?pool family g psi ~instances ~alpha in
            prepared := Some p;
            FB.network p)
      in
      let side = FB.solve network in
      cuts := Helpers.int_array_as_set side :: !cuts;
      if Array.length side = 0 then u := alpha
      else begin
        l := alpha;
        best := side
      end
    done;
    let density =
      if Array.length !best = 0 then 0.
      else (Dsd_core.Density.of_vertices g psi !best).Dsd_core.Density.density
    in
    { iterations = !iterations; cuts = List.rev !cuts; density }
  end

let patterns =
  [ ("edge", P.edge); ("triangle", P.triangle); ("diamond", P.diamond);
    ("2-star", P.star 2) ]

let check_same_trace label fresh retarget =
  Alcotest.(check int) (label ^ ": iterations") fresh.iterations
    retarget.iterations;
  Alcotest.(check (list (list int))) (label ^ ": per-iteration cuts")
    fresh.cuts retarget.cuts;
  Alcotest.(check bool) (label ^ ": density") true
    (Float.equal fresh.density retarget.density)

let test_differential_sequential () =
  for seed = 1 to 30 do
    let g = Helpers.random_graph ~seed ~max_n:12 ~max_m:28 () in
    List.iter
      (fun (pname, psi) ->
        let label = Printf.sprintf "%s psi=%s" (Helpers.seed_ctx seed) pname in
        let fresh = binary_search `Fresh g psi in
        let retarget = binary_search `Retarget g psi in
        check_same_trace label fresh retarget)
      patterns
  done

let test_differential_pooled () =
  Dsd_util.Pool.with_pool 2 @@ fun pool ->
  for seed = 1 to 15 do
    let g = Helpers.random_graph ~seed ~max_n:12 ~max_m:28 () in
    List.iter
      (fun (pname, psi) ->
        let label = Printf.sprintf "pooled %s psi=%s" (Helpers.seed_ctx seed) pname in
        (* Pooled retarget vs sequential fresh: the pool striping must
           not perturb the prepared arena either. *)
        let fresh = binary_search `Fresh g psi in
        let retarget = binary_search ~pool `Retarget g psi in
        check_same_trace label fresh retarget)
      patterns
  done

(* Reset-retargeting a dirty network to a new alpha must yield a
   network arc-for-arc bit-identical (dst, capacity) to a fresh build
   at that alpha, with all flow zeroed.  (The warm mode keeps flow by
   design; its equivalences live in test_warmstart.ml.) *)
let test_retarget_matches_fresh_arcs () =
  let g = Helpers.random_graph ~seed:7 ~max_n:14 ~max_m:40 () in
  List.iter
    (fun family ->
      let psi = match family with FB.Eds -> P.edge | _ -> P.triangle in
      let instances =
        match family with
        | FB.Eds -> [||]
        | _ -> Dsd_core.Enumerate.instances g psi
      in
      let p = FB.prepare family g psi ~instances ~alpha:1.0 in
      ignore (FB.solve (FB.network p));
      (* dirty the flow state *)
      let rt = FB.retarget ~warm:false p ~alpha:2.5 in
      let fresh = FB.build family g psi ~instances ~alpha:2.5 in
      let module F = Dsd_flow.Flow_network in
      Alcotest.(check int) "arc count" (F.arc_count fresh.FB.net)
        (F.arc_count rt.FB.net);
      for e = 0 to F.arc_count fresh.FB.net - 1 do
        if F.arc_dst fresh.FB.net e <> F.arc_dst rt.FB.net e then
          Alcotest.failf "arc %d: dst differs" e;
        if
          Int64.bits_of_float (F.arc_cap fresh.FB.net e)
          <> Int64.bits_of_float (F.arc_cap rt.FB.net e)
        then
          Alcotest.failf "arc %d: cap %g vs %g" e (F.arc_cap fresh.FB.net e)
            (F.arc_cap rt.FB.net e);
        if F.arc_flow rt.FB.net e <> 0. then
          Alcotest.failf "arc %d: flow not reset" e
      done)
    [ FB.Eds; FB.Clique_flow; FB.Pds; FB.Pds_grouped ]

(* ---- Obs accounting contracts (ISSUE acceptance criteria) ---- *)

let builds () = Counter.get Counter.Flow_networks_built
let retargets () = Counter.get Counter.Flow_retargets

let test_exact_builds_once () =
  let g = Helpers.random_graph ~seed:11 ~max_n:20 ~max_m:60 () in
  let r =
    Obs.with_recording (fun () -> Dsd_core.Exact.run g P.triangle)
  in
  let iters = r.Dsd_core.Exact.stats.Dsd_core.Exact.iterations in
  Alcotest.(check bool) "ran a real search" true (iters > 1);
  Alcotest.(check int) "exactly one network built" 1 (builds ());
  Alcotest.(check int) "every other iteration retargets" (iters - 1)
    (retargets ())

let test_core_exact_accounting () =
  (* builds <= 1 + shrink count per component and builds + retargets =
     iterations exactly: prepare counts a build (never a retarget),
     every later probe on the same arena counts a retarget.  The
     peeling witness (Pruning 1) often seeds the exact optimum on small
     graphs, collapsing the search to a single probe — so scan seeds,
     assert the accounting identity on every run, and require that the
     range contains at least one genuinely multi-iteration search where
     the retarget path engages. *)
  let multi_iter = ref 0 in
  for seed = 1 to 60 do
    let g = Helpers.random_graph ~seed ~max_n:26 ~max_m:90 () in
    let r =
      Obs.with_recording (fun () -> Dsd_core.Core_exact.run g P.triangle)
    in
    let iters = r.Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations in
    Alcotest.(check int)
      (Printf.sprintf "%s: builds + retargets = iterations" (Helpers.seed_ctx seed))
      iters
      (builds () + retargets ());
    if iters > 1 then begin
      incr multi_iter;
      Alcotest.(check bool)
        (Printf.sprintf "%s: retargeting engaged" (Helpers.seed_ctx seed))
        true (retargets () > 0)
    end
  done;
  Alcotest.(check bool) "some search was multi-iteration" true (!multi_iter > 0)

let test_core_exact_accounting_all_pruning_combos () =
  let g = Helpers.random_graph ~seed:31 ~max_n:22 ~max_m:70 () in
  List.iter
    (fun (p1, p2, p3) ->
      let prunings = Dsd_core.Core_exact.{ p1; p2; p3 } in
      let r =
        Obs.with_recording (fun () ->
            Dsd_core.Core_exact.run ~prunings g P.triangle)
      in
      let iters = r.Dsd_core.Core_exact.stats.Dsd_core.Core_exact.iterations in
      Alcotest.(check int)
        (Printf.sprintf "p1=%b p2=%b p3=%b: builds + retargets" p1 p2 p3)
        iters
        (builds () + retargets ()))
    [ (false, false, false); (true, false, false); (true, true, false);
      (true, true, true); (false, false, true) ]

let test_query_accounting () =
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:true in
  let r =
    Obs.with_recording (fun () ->
        Dsd_core.Query_dsd.run g P.triangle ~query:[| G.n g - 1 |])
  in
  let iters = r.Dsd_core.Query_dsd.iterations in
  Alcotest.(check int) "builds + retargets = iterations" iters
    (builds () + retargets ());
  Alcotest.(check bool) "at most one build" true (builds () <= 1)

let suite =
  [
    Alcotest.test_case "differential: retarget = fresh (sequential)" `Quick
      test_differential_sequential;
    Alcotest.test_case "differential: retarget = fresh (2 domains)" `Quick
      test_differential_pooled;
    Alcotest.test_case "retarget matches fresh build arc-for-arc" `Quick
      test_retarget_matches_fresh_arcs;
    Alcotest.test_case "obs: Exact builds once, retargets rest" `Quick
      test_exact_builds_once;
    Alcotest.test_case "obs: CoreExact builds + retargets = iterations" `Quick
      test_core_exact_accounting;
    Alcotest.test_case "obs: accounting holds under all pruning combos" `Quick
      test_core_exact_accounting_all_pruning_combos;
    Alcotest.test_case "obs: Query builds at most once" `Quick
      test_query_accounting;
  ]
