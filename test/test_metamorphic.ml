(* The metamorphic fuzzing subsystem, tested deterministically — and
   the harness harnessed: a mutation self-test injects deliberately
   broken algorithms and requires the engine to catch, shrink, and
   replay them. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module Check = Dsd_check
module Engine = Dsd_check.Engine
module Relation = Dsd_check.Relation
module Subject = Dsd_check.Subject
module Generator = Dsd_check.Generator

let base_seed = Helpers.effective_seed 2024

(* ---- the real library survives the fuzzer ---- *)

let test_default_subject_passes () =
  let s = Engine.run ~cases:60 ~seed:base_seed () in
  (match s.Engine.failure with
  | None -> ()
  | Some f ->
    Alcotest.failf "relation %s violated (%s, case %d): %s" f.relation
      (Helpers.seed_ctx f.case_seed) f.case_index f.message);
  Alcotest.(check int) "all cases ran" 60 s.Engine.cases_run;
  (* Every relation must actually engage — a registry entry that only
     ever skips would be dead weight giving false confidence. *)
  List.iter
    (fun (st : Engine.relation_stats) ->
      if st.checked = 0 then
        Alcotest.failf "relation %s never applied in 60 cases" st.relation)
    s.Engine.stats

let test_engine_deterministic () =
  let a = Engine.run ~cases:30 ~seed:base_seed () in
  let b = Engine.run ~cases:30 ~seed:base_seed () in
  Alcotest.(check string)
    "same seed, same summary"
    (Engine.summary_to_string a)
    (Engine.summary_to_string b)

let test_time_budget () =
  let s = Engine.run ~time_budget_s:0. ~cases:50 ~seed:base_seed () in
  Alcotest.(check bool) "stopped on budget" true s.Engine.out_of_time;
  Alcotest.(check int) "no case started" 0 s.Engine.cases_run

let test_unknown_relation_rejected () =
  match Engine.run ~relation:"no-such-relation" ~cases:1 ~seed:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown relation accepted"

(* Reproducer seeds must survive refactors: the hash is pinned, not
   just self-consistent. *)
let test_stable_hash_pinned () =
  Alcotest.(check int) "theorem1-bounds" 202694906
    (Engine.stable_hash "theorem1-bounds");
  Alcotest.(check int) "approx-ratio" 275443683
    (Engine.stable_hash "approx-ratio")

(* ---- generators ---- *)

let test_generators_deterministic () =
  List.iter
    (fun (gen : Generator.t) ->
      let c1 = gen.sample (Helpers.rng 7) in
      let c2 = gen.sample (Helpers.rng 7) in
      Alcotest.(check bool)
        (gen.name ^ ": same prng state, same graph")
        true
        (G.equal c1.graph c2.graph && c1.psi.P.name = c2.psi.P.name))
    Generator.all

let test_planted_certificate_is_sound () =
  (* The planted block really is a lower bound: compare against brute
     force on small instances. *)
  for seed = 0 to 9 do
    let case = Generator.planted_block.sample (Helpers.rng seed) in
    match case.cert with
    | None -> Alcotest.fail "planted generator lost its certificate"
    | Some vs ->
      let witness = Check.Oracle.density_of_subset case.graph case.psi vs in
      let h = case.psi.P.size in
      let b = Array.length vs in
      Alcotest.(check bool)
        (Printf.sprintf "%s: planted density >= C(%d,%d)/%d"
           (Helpers.seed_ctx seed) b h b)
        true
        (witness
         >= (Dsd_util.Binom.choose_float b h /. float_of_int b) -. 1e-9);
      if G.n case.graph <= 14 then begin
        let opt, _ = Check.Oracle.brute_force_densest case.graph case.psi in
        Alcotest.(check bool)
          (Printf.sprintf "%s: witness below optimum" (Helpers.seed_ctx seed))
          true
          (witness <= opt +. 1e-9)
      end
  done

(* ---- the shrinker on a relation-free predicate ---- *)

let test_shrinker_minimises_triangle () =
  (* "Contains a triangle" shrinks to exactly K3. *)
  let graph, _ =
    Dsd_data.Gen.planted_clique_subset ~seed:5 ~n:14 ~p:0.3 ~block:5
  in
  let case =
    { Generator.graph; psi = P.triangle; cert = None; label = "shrink-test" }
  in
  let still_fails (c : Generator.case) =
    Dsd_clique.Naive.count c.graph ~h:3 > 0
  in
  let shrunk, steps = Check.Shrink.run ~still_fails case in
  Alcotest.(check int) "three vertices" 3 (G.n shrunk.graph);
  Alcotest.(check int) "three edges" 3 (G.m shrunk.graph);
  Alcotest.(check bool) "made progress" true (steps > 0)

let test_shrinker_remaps_certificates () =
  let case =
    {
      Generator.graph = G.of_edge_list ~n:5 [ (0, 1); (1, 4); (2, 3) ];
      psi = P.edge;
      cert = Some [| 1; 2; 4 |];
      label = "cert-remap";
    }
  in
  let shrunk = Check.Shrink.remove_vertex case 2 in
  Alcotest.(check int) "n down by one" 4 (G.n shrunk.graph);
  Alcotest.(check Helpers.sorted_array)
    "cert drops 2, shifts 4 down"
    [| 1; 3 |]
    (Option.get shrunk.cert)

(* ---- mutation self-test: broken implementations are caught ---- *)

let broken_peel =
  let d = Subject.default in
  {
    d with
    Subject.name = "broken-peel";
    peel =
      (fun ?pool g psi ->
        let r = d.Subject.peel ?pool g psi in
        { r with Dsd_core.Density.density = (r.density *. 1.5) +. 0.1 });
  }

let broken_cores =
  let d = Subject.default in
  {
    d with
    Subject.name = "broken-cores";
    core_numbers =
      (fun ?pool g psi ->
        Array.map (fun c -> c + 1) (d.Subject.core_numbers ?pool g psi));
  }

let find_violation subject =
  let s = Engine.run ~subject ~cases:200 ~seed:base_seed () in
  match s.Engine.failure with
  | None ->
    Alcotest.failf "%s not caught within 200 cases" subject.Subject.name
  | Some f -> f

let test_mutation_broken_peel_caught () =
  let f = find_violation broken_peel in
  Alcotest.(check string) "caught by the approximation-ratio oracle"
    "approx-ratio" f.Engine.relation;
  Alcotest.(check bool)
    (Printf.sprintf "witness shrunk to <= 12 vertices (got %d)"
       (G.n f.Engine.shrunk.graph))
    true
    (G.n f.Engine.shrunk.graph <= 12)

let test_mutation_broken_cores_caught () =
  let f = find_violation broken_cores in
  Alcotest.(check string) "caught by the Theorem 1 oracle"
    "theorem1-bounds" f.Engine.relation;
  Alcotest.(check bool) "witness shrunk to <= 12 vertices" true
    (G.n f.Engine.shrunk.graph <= 12)

(* The emitted reproducer must replay the identical failure through a
   real file on disk. *)
let test_reproducer_replays_bit_identically () =
  let f = find_violation broken_peel in
  let path = Filename.temp_file "dsd_fuzz" ".repro" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Check.Repro.write path (Engine.to_repro f);
      let repro = Check.Repro.read path in
      Alcotest.(check string) "relation survives the file" f.Engine.relation
        repro.Check.Repro.relation;
      Alcotest.(check int) "aux seed survives the file" f.Engine.aux_seed
        repro.Check.Repro.seed;
      match Engine.replay ~subject:broken_peel repro with
      | Relation.Fail msg ->
        Alcotest.(check string) "bit-identical violation message"
          f.Engine.message msg
      | Relation.Pass | Relation.Skip _ ->
        Alcotest.fail "reproducer no longer fails");
  (* And the fixed library passes the same reproducer. *)
  let repro = Engine.to_repro f in
  match Engine.replay repro with
  | Relation.Pass | Relation.Skip _ -> ()
  | Relation.Fail msg ->
    Alcotest.failf "real library fails the broken-peel witness: %s" msg

let test_repro_roundtrip () =
  for seed = 0 to 4 do
    let case = Generator.sample (Helpers.rng (300 + seed)) in
    let t = Check.Repro.of_case ~relation:"theorem1-bounds" ~seed case in
    let path = Filename.temp_file "dsd_fuzz" ".repro" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Check.Repro.write path t;
        let back = Check.Repro.to_case (Check.Repro.read path) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: graph survives write/read"
             (Helpers.seed_ctx seed))
          true
          (G.equal case.graph back.Generator.graph);
        Alcotest.(check string) "psi survives" case.psi.P.name
          back.Generator.psi.P.name;
        Alcotest.(check bool) "cert survives" true
          (case.cert = back.Generator.cert))
  done

(* ---- individual relations on crafted inputs ---- *)

let run_relation name case =
  match Relation.find name with
  | None -> Alcotest.failf "relation %s missing from registry" name
  | Some rel ->
    rel.Relation.check Subject.default ~rng:(Helpers.rng 11) case

let crafted =
  {
    Generator.graph =
      fst (Dsd_data.Gen.planted_clique_subset ~seed:9 ~n:12 ~p:0.15 ~block:4);
    psi = P.triangle;
    cert = None;
    label = "crafted";
  }

let test_each_relation_passes_on_crafted () =
  List.iter
    (fun name ->
      match run_relation name crafted with
      | Relation.Fail msg -> Alcotest.failf "%s failed: %s" name msg
      | Relation.Pass | Relation.Skip _ -> ())
    Relation.names

let test_relation_verdicts () =
  (* Complete graph: edge-monotonicity must skip, everything else must
     still pass. *)
  let complete =
    { Generator.graph = G.complete 6; psi = P.edge; cert = None;
      label = "K6" }
  in
  (match run_relation "edge-monotonicity" complete with
  | Relation.Skip _ -> ()
  | Relation.Pass -> Alcotest.fail "edge-monotonicity should skip on K6"
  | Relation.Fail m -> Alcotest.failf "edge-monotonicity failed on K6: %s" m);
  (* A certificate subset is honoured even when handed in manually. *)
  let with_cert =
    { crafted with cert = Some [| 0; 1; 2 |] }
  in
  match run_relation "planted-certificate" with_cert with
  | Relation.Pass -> ()
  | Relation.Skip why -> Alcotest.failf "certificate skipped: %s" why
  | Relation.Fail m -> Alcotest.failf "certificate relation failed: %s" m

let suite =
  [
    Alcotest.test_case "default subject survives 60 cases" `Quick
      test_default_subject_passes;
    Alcotest.test_case "engine is deterministic in the seed" `Quick
      test_engine_deterministic;
    Alcotest.test_case "time budget stops case generation" `Quick
      test_time_budget;
    Alcotest.test_case "unknown relation rejected" `Quick
      test_unknown_relation_rejected;
    Alcotest.test_case "aux-seed hash pinned" `Quick test_stable_hash_pinned;
    Alcotest.test_case "generators are deterministic" `Quick
      test_generators_deterministic;
    Alcotest.test_case "planted certificates are sound" `Quick
      test_planted_certificate_is_sound;
    Alcotest.test_case "shrinker minimises a triangle witness" `Quick
      test_shrinker_minimises_triangle;
    Alcotest.test_case "shrinker remaps certificates" `Quick
      test_shrinker_remaps_certificates;
    Alcotest.test_case "mutation: inflated peel density caught" `Quick
      test_mutation_broken_peel_caught;
    Alcotest.test_case "mutation: shifted core numbers caught" `Quick
      test_mutation_broken_cores_caught;
    Alcotest.test_case "reproducer replays bit-identically" `Quick
      test_reproducer_replays_bit_identically;
    Alcotest.test_case "reproducer files round-trip" `Quick
      test_repro_roundtrip;
    Alcotest.test_case "every relation passes on a crafted case" `Quick
      test_each_relation_passes_on_crafted;
    Alcotest.test_case "relation verdict corners" `Quick
      test_relation_verdicts;
  ]
