(* Query-vertex CDS variant (Section 6.3): core-accelerated and naive
   searches against an exhaustive oracle restricted to supersets of the
   query. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

let brute_force_with_query g psi query =
  let n = G.n g in
  assert (n <= 14);
  let qmask = Array.fold_left (fun acc q -> acc lor (1 lsl q)) 0 query in
  let best = ref 0. in
  for mask = 1 to (1 lsl n) - 1 do
    if mask land qmask = qmask then begin
      let vs = ref [] in
      for v = n - 1 downto 0 do
        if mask land (1 lsl v) <> 0 then vs := v :: !vs
      done;
      let d = Helpers.density_of_subset g psi (Array.of_list !vs) in
      if d > !best then best := d
    end
  done;
  !best

let arb_graph_query =
  QCheck.make
    ~print:(fun (g, q) ->
      Format.asprintf "%a q=%d" G.pp g q)
    QCheck.Gen.(pair (Helpers.small_graph_gen ~max_n:9 ~max_m:22 ()) small_nat)

let query_matches_brute_prop psi (g, qseed) =
  let q = qseed mod G.n g in
  let query = [| q |] in
  let expect = brute_force_with_query g psi query in
  let r = Dsd_core.Query_dsd.run g psi ~query in
  let naive = Dsd_core.Query_dsd.run_naive g psi ~query in
  Float.abs (r.Dsd_core.Query_dsd.subgraph.D.density -. expect) < 1e-6
  && Float.abs (naive.Dsd_core.Query_dsd.subgraph.D.density -. expect) < 1e-6

let query_two_vertices_prop psi (g, qseed) =
  if G.n g < 2 then true
  else begin
    let q1 = qseed mod G.n g in
    let q2 = (qseed * 7 + 3) mod G.n g in
    let query = if q1 = q2 then [| q1 |] else [| q1; q2 |] in
    let expect = brute_force_with_query g psi query in
    let r = Dsd_core.Query_dsd.run g psi ~query in
    Float.abs (r.Dsd_core.Query_dsd.subgraph.D.density -. expect) < 1e-6
  end

let result_contains_query_prop psi (g, qseed) =
  let q = qseed mod G.n g in
  let r = Dsd_core.Query_dsd.run g psi ~query:[| q |] in
  Array.exists (( = ) q) r.Dsd_core.Query_dsd.subgraph.D.vertices

let test_query_pulls_in_dense_region () =
  (* Query a vertex of the K4 side: the answer must contain the K4 and
     may not be the global EDS (the K6). *)
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:true in
  let r = Dsd_core.Query_dsd.run g P.edge ~query:[| 6 |] in
  let set = Helpers.int_array_as_set r.Dsd_core.Query_dsd.subgraph.D.vertices in
  Alcotest.(check bool) "contains query" true (List.mem 6 set);
  (* Best superset of vertex 6: the whole graph beats K4 alone here
     (bridged), so just check density is the brute-force optimum. *)
  Helpers.check_float "density"
    (brute_force_with_query g P.edge [| 6 |])
    r.Dsd_core.Query_dsd.subgraph.D.density

let test_query_on_global_optimum () =
  (* Querying inside the global EDS gives exactly the global EDS
     density. *)
  let g = Dsd_data.Paper_graphs.two_cliques ~a:6 ~b:4 ~bridge:false in
  let r = Dsd_core.Query_dsd.run g P.edge ~query:[| 0 |] in
  Helpers.check_float "global optimum" 2.5 r.Dsd_core.Query_dsd.subgraph.D.density

let test_query_validation () =
  let g = G.complete 3 in
  Alcotest.check_raises "empty query"
    (Invalid_argument "Query_dsd: empty query")
    (fun () -> ignore (Dsd_core.Query_dsd.run g P.edge ~query:[||]));
  Alcotest.check_raises "range"
    (Invalid_argument "Query_dsd: query vertex out of range")
    (fun () -> ignore (Dsd_core.Query_dsd.run g P.edge ~query:[| 9 |]))

let test_query_no_instances () =
  let g = Dsd_data.Paper_graphs.path 5 in
  let r = Dsd_core.Query_dsd.run g P.triangle ~query:[| 2 |] in
  Helpers.check_float "zero density" 0. r.Dsd_core.Query_dsd.subgraph.D.density;
  Alcotest.(check bool) "still contains query" true
    (Array.exists (( = ) 2) r.Dsd_core.Query_dsd.subgraph.D.vertices)

let suite =
  [
    Alcotest.test_case "query pulls dense region" `Quick test_query_pulls_in_dense_region;
    Alcotest.test_case "query on global optimum" `Quick test_query_on_global_optimum;
    Alcotest.test_case "query validation" `Quick test_query_validation;
    Alcotest.test_case "query with no instances" `Quick test_query_no_instances;
  ]
  @ List.concat_map
      (fun (name, psi) ->
        [
          Helpers.qtest ~count:25 ("query = brute force: " ^ name)
            arb_graph_query (query_matches_brute_prop psi);
          Helpers.qtest ~count:20 ("query pair = brute force: " ^ name)
            arb_graph_query (query_two_vertices_prop psi);
          Helpers.qtest ~count:25 ("result contains query: " ^ name)
            arb_graph_query (result_contains_query_prop psi);
        ])
      [ ("edge", P.edge); ("triangle", P.triangle); ("C4", P.diamond) ]
