(* Unit and property tests for dsd_util: PRNG, bucket queue, lazy heap,
   binomials, union-find, vectors, stats. *)

module Prng = Dsd_util.Prng
module BQ = Dsd_util.Bucket_queue
module LH = Dsd_util.Lazy_heap
module Binom = Dsd_util.Binom

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_bounds () =
  let r = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Prng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5)
  done

let test_prng_pair_distinct () =
  let r = Prng.create 2 in
  for _ = 1 to 500 do
    let a, b = Prng.pair_distinct r 5 in
    Alcotest.(check bool) "distinct" true (a <> b && a >= 0 && a < 5 && b >= 0 && b < 5)
  done

let test_prng_split_independent () =
  let a = Prng.create 3 in
  let b = Prng.split a in
  (* Streams should differ (overwhelmingly likely for a good mix). *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split decorrelates" true (!same < 4)

let test_prng_shuffle_permutation () =
  let r = Prng.create 4 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_geometric () =
  let r = Prng.create 5 in
  Alcotest.(check int) "p=1 gives 0" 0 (Prng.geometric r 1.0);
  let total = ref 0 in
  for _ = 1 to 10_000 do
    total := !total + Prng.geometric r 0.5
  done;
  (* Mean of geometric(0.5) failures-before-success is 1. *)
  let mean = float_of_int !total /. 10_000. in
  Alcotest.(check bool) "mean near 1" true (mean > 0.9 && mean < 1.1)

let test_bucket_queue_basic () =
  let q = BQ.create ~n:5 ~max_key:10 in
  BQ.add q ~item:0 ~key:3;
  BQ.add q ~item:1 ~key:1;
  BQ.add q ~item:2 ~key:7;
  Alcotest.(check int) "cardinal" 3 (BQ.cardinal q);
  Alcotest.(check bool) "mem" true (BQ.mem q 1);
  Alcotest.(check int) "key" 7 (BQ.key q 2);
  (match BQ.pop_min q with
   | Some (item, key) ->
     Alcotest.(check int) "min item" 1 item;
     Alcotest.(check int) "min key" 1 key
   | None -> Alcotest.fail "expected pop");
  BQ.update q ~item:2 ~key:0;
  (match BQ.pop_min q with
   | Some (item, key) ->
     Alcotest.(check int) "updated min" 2 item;
     Alcotest.(check int) "updated key" 0 key
   | None -> Alcotest.fail "expected pop");
  BQ.remove q 0;
  Alcotest.(check bool) "empty" true (BQ.pop_min q = None)

let test_bucket_queue_duplicate_add () =
  let q = BQ.create ~n:2 ~max_key:3 in
  BQ.add q ~item:0 ~key:1;
  Alcotest.check_raises "duplicate add rejected"
    (Invalid_argument "Bucket_queue.add: duplicate item")
    (fun () -> BQ.add q ~item:0 ~key:2)

(* Model-based: against a reference implementation using sorted lists. *)
let bucket_queue_model_prop seed =
  let r = Prng.create seed in
  let n = 30 and max_key = 20 in
  let q = BQ.create ~n ~max_key in
  let model = Hashtbl.create 16 in
  let ok = ref true in
  for _ = 1 to 300 do
    match Prng.int r 4 with
    | 0 ->
      let item = Prng.int r n in
      if not (Hashtbl.mem model item) then begin
        let key = Prng.int r (max_key + 1) in
        BQ.add q ~item ~key;
        Hashtbl.add model item key
      end
    | 1 ->
      let item = Prng.int r n in
      if Hashtbl.mem model item then begin
        let key = Prng.int r (max_key + 1) in
        BQ.update q ~item ~key;
        Hashtbl.replace model item key
      end
    | 2 ->
      let item = Prng.int r n in
      if Hashtbl.mem model item then begin
        BQ.remove q item;
        Hashtbl.remove model item
      end
    | _ ->
      (match BQ.pop_min q with
       | None -> if Hashtbl.length model <> 0 then ok := false
       | Some (item, key) ->
         let model_min =
           Hashtbl.fold (fun _ k acc -> min k acc) model max_int
         in
         if key <> model_min || Hashtbl.find_opt model item <> Some key then
           ok := false;
         Hashtbl.remove model item)
  done;
  !ok

let test_lazy_heap_basic () =
  let h = LH.create ~n:4 in
  LH.add h ~item:0 ~key:100_000_000;
  LH.add h ~item:1 ~key:5;
  LH.add h ~item:2 ~key:50;
  LH.update h ~item:0 ~key:1;
  (match LH.pop_min h with
   | Some (item, key) ->
     Alcotest.(check int) "item" 0 item;
     Alcotest.(check int) "key" 1 key
   | None -> Alcotest.fail "expected pop");
  LH.remove h 2;
  (match LH.pop_min h with
   | Some (item, _) -> Alcotest.(check int) "next" 1 item
   | None -> Alcotest.fail "expected pop");
  Alcotest.(check bool) "drained" true (LH.pop_min h = None)

let lazy_heap_model_prop seed =
  let r = Prng.create seed in
  let n = 25 in
  let h = LH.create ~n in
  let model = Hashtbl.create 16 in
  let ok = ref true in
  for _ = 1 to 300 do
    match Prng.int r 4 with
    | 0 ->
      let item = Prng.int r n in
      if not (Hashtbl.mem model item) then begin
        let key = Prng.int r 1_000_000 in
        LH.add h ~item ~key;
        Hashtbl.add model item key
      end
    | 1 ->
      let item = Prng.int r n in
      if Hashtbl.mem model item then begin
        let key = Prng.int r 1_000_000 in
        LH.update h ~item ~key;
        Hashtbl.replace model item key
      end
    | 2 ->
      let item = Prng.int r n in
      if Hashtbl.mem model item then begin
        LH.remove h item;
        Hashtbl.remove model item
      end
    | _ ->
      (match LH.pop_min h with
       | None -> if Hashtbl.length model <> 0 then ok := false
       | Some (item, key) ->
         let model_min =
           Hashtbl.fold (fun _ k acc -> min k acc) model max_int
         in
         if key <> model_min || Hashtbl.find_opt model item <> Some key then
           ok := false;
         Hashtbl.remove model item)
  done;
  !ok

let test_binom_small () =
  Alcotest.(check int) "C(5,2)" 10 (Binom.choose 5 2);
  Alcotest.(check int) "C(10,0)" 1 (Binom.choose 10 0);
  Alcotest.(check int) "C(10,10)" 1 (Binom.choose 10 10);
  Alcotest.(check int) "C(4,7)=0" 0 (Binom.choose 4 7);
  Alcotest.(check int) "C(n,-1)=0" 0 (Binom.choose 4 (-1));
  Alcotest.(check int) "C(52,5)" 2_598_960 (Binom.choose 52 5)

let test_binom_pascal () =
  for n = 1 to 30 do
    for k = 1 to n - 1 do
      Alcotest.(check int)
        (Printf.sprintf "pascal C(%d,%d)" n k)
        (Binom.choose (n - 1) (k - 1) + Binom.choose (n - 1) k)
        (Binom.choose n k)
    done
  done

let test_binom_saturates () =
  (* C(200, 100) overflows 63 bits massively; must clamp, not wrap. *)
  Alcotest.(check int) "saturated" max_int (Binom.choose 200 100);
  Alcotest.(check bool) "monotone near saturation" true
    (Binom.choose 100 50 > 0)

let test_union_find () =
  let uf = Dsd_util.Union_find.create 6 in
  Alcotest.(check int) "initial sets" 6 (Dsd_util.Union_find.count uf);
  Alcotest.(check bool) "union" true (Dsd_util.Union_find.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Dsd_util.Union_find.union uf 1 0);
  ignore (Dsd_util.Union_find.union uf 2 3);
  ignore (Dsd_util.Union_find.union uf 0 3);
  Alcotest.(check bool) "same" true (Dsd_util.Union_find.same uf 1 2);
  Alcotest.(check bool) "not same" false (Dsd_util.Union_find.same uf 1 4);
  Alcotest.(check int) "sets" 3 (Dsd_util.Union_find.count uf)

let test_vec_int () =
  let v = Dsd_util.Vec.Int.create () in
  for i = 0 to 99 do
    Dsd_util.Vec.Int.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Dsd_util.Vec.Int.length v);
  Alcotest.(check int) "get" 49 (Dsd_util.Vec.Int.get v 7);
  Dsd_util.Vec.Int.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Dsd_util.Vec.Int.get v 7);
  Alcotest.(check int) "pop" 9801 (Dsd_util.Vec.Int.pop v);
  Alcotest.(check int) "fold" (Array.fold_left ( + ) 0 (Dsd_util.Vec.Int.to_array v))
    (Dsd_util.Vec.Int.fold ( + ) 0 v);
  Dsd_util.Vec.Int.clear v;
  Alcotest.(check int) "cleared" 0 (Dsd_util.Vec.Int.length v)

let test_stats () =
  Helpers.check_float "mean" 2.5 (Dsd_util.Stats.mean [| 1.; 2.; 3.; 4. |]);
  Helpers.check_float "median odd" 2. (Dsd_util.Stats.median [| 3.; 1.; 2. |]);
  Helpers.check_float "median even" 2.5 (Dsd_util.Stats.median [| 4.; 1.; 2.; 3. |]);
  Alcotest.(check (list (pair int int))) "histogram"
    [ (1, 2); (2, 1) ]
    (Dsd_util.Stats.histogram [| 1; 2; 1 |]);
  let alpha = Dsd_util.Stats.power_law_alpha [| 1; 1; 1; 1 |] in
  Alcotest.(check bool) "alpha of constant-1 degrees is infinite" true
    (alpha = infinity)

let test_float_guard_boundaries () =
  let module FG = Dsd_util.Float_guard in
  (* Exact integers stay put. *)
  Alcotest.(check int) "ceil 2.0" 2 (FG.safe_ceil 2.0);
  Alcotest.(check int) "ceil 0.0" 0 (FG.safe_ceil 0.0);
  Alcotest.(check int) "floor 2.0" 2 (FG.safe_floor 2.0);
  (* Float noise within eps is absorbed in the safe direction. *)
  Alcotest.(check int) "ceil 2.0 + ulps" 2 (FG.safe_ceil (2.0 +. 1e-12));
  Alcotest.(check int) "ceil 2.0 - ulps" 2 (FG.safe_ceil (2.0 -. 1e-12));
  Alcotest.(check int) "floor 2.0 - ulps" 2 (FG.safe_floor (2.0 -. 1e-12));
  (* Genuine fractions still round outward. *)
  Alcotest.(check int) "ceil 2.1" 3 (FG.safe_ceil 2.1);
  Alcotest.(check int) "ceil 2 + 2eps" 3 (FG.safe_ceil (2.0 +. (2. *. FG.eps)));
  Alcotest.(check int) "floor 1.9" 1 (FG.safe_floor 1.9);
  (* Negative values: same absorption, same direction. *)
  Alcotest.(check int) "ceil -1.5" (-1) (FG.safe_ceil (-1.5));
  Alcotest.(check int) "ceil -2.0 + ulps" (-2) (FG.safe_ceil (-2.0 +. 1e-12));
  (* Density-style ratios: k/p recovered through floats maps to k for
     every small numerator/denominator pair. *)
  for p = 1 to 12 do
    for k = 0 to 48 do
      let x = float_of_int k /. float_of_int p *. float_of_int p in
      Alcotest.(check int)
        (Printf.sprintf "ceil of %d/%d*%d" k p p)
        k (FG.safe_ceil x)
    done
  done;
  (* The flow library shares the same eps. *)
  Helpers.check_float "shared eps" FG.eps Dsd_flow.Flow_network.eps

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng pair distinct" `Quick test_prng_pair_distinct;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng geometric" `Quick test_prng_geometric;
    Alcotest.test_case "bucket queue basic" `Quick test_bucket_queue_basic;
    Alcotest.test_case "bucket queue duplicate" `Quick test_bucket_queue_duplicate_add;
    Helpers.qtest "bucket queue vs model" QCheck.small_int bucket_queue_model_prop;
    Alcotest.test_case "lazy heap basic" `Quick test_lazy_heap_basic;
    Helpers.qtest "lazy heap vs model" QCheck.small_int lazy_heap_model_prop;
    Alcotest.test_case "binom small" `Quick test_binom_small;
    Alcotest.test_case "binom pascal" `Quick test_binom_pascal;
    Alcotest.test_case "binom saturates" `Quick test_binom_saturates;
    Alcotest.test_case "union find" `Quick test_union_find;
    Alcotest.test_case "vec int" `Quick test_vec_int;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "float guard boundaries" `Quick
      test_float_guard_boundaries;
  ]
