(* dsd — command-line front end for densest subgraph discovery.

   Subcommands:
     generate    write a synthetic graph to an edge-list file
     stats       print dataset characteristics (Table 2 columns)
     decompose   (k, Psi)-core numbers / the kmax core
     cds         find the densest subgraph (exact or approximate)
     query       densest subgraph containing given vertices (Sec 6.3)
     watch       re-answer density/cds over an edge-delta stream
     truss       k-truss decomposition (comparison model)
     patterns    list the built-in patterns

   Graphs are read from edge-list files ('u v' per line, '#' comments)
   or taken from the built-in named datasets with --dataset. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module C = Cmdliner

(* User-facing failures (bad files, bad arguments to the library)
   should print one line and exit 2, not cmdliner's "internal error"
   banner. *)
let or_die f =
  try f () with
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Printf.eprintf "dsd: %s\n" msg;
    exit 2

(* --input accepts both formats transparently: binary CSR snapshots
   (sniffed by magic, loaded without re-parsing) and text edge lists. *)
let read_graph_file path =
  if Dsd_serve.Snapshot.is_snapshot path then Dsd_serve.Snapshot.load path
  else fst (Dsd_graph.Io.read path)

let load_graph file dataset =
  match (file, dataset) with
  | Some path, None -> read_graph_file path
  | None, Some name ->
    if not (Dsd_data.Datasets.mem name) then begin
      Printf.eprintf "unknown dataset %s; known: %s\n" name
        (String.concat ", "
           (List.map (fun s -> s.Dsd_data.Datasets.name) Dsd_data.Datasets.all));
      exit 2
    end
    else Dsd_data.Datasets.graph name
  | _ ->
    prerr_endline "exactly one of --input or --dataset is required";
    exit 2

let pattern_of_string s =
  match P.of_string s with
  | Some psi -> psi
  | None ->
    Printf.eprintf "unknown pattern %s (see 'dsd patterns')\n" s;
    exit 2

(* ---- common options ---- *)

let input_arg =
  C.Arg.(value & opt (some string) None
         & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Edge-list input file.")

let dataset_arg =
  C.Arg.(value & opt (some string) None
         & info [ "d"; "dataset" ] ~docv:"NAME" ~doc:"Built-in synthetic dataset.")

let pattern_arg =
  C.Arg.(value & opt string "edge"
         & info [ "p"; "pattern" ] ~docv:"PSI"
             ~doc:"Density pattern: edge, triangle, 4/5/6-clique, 2/3-star, \
                   c3-star, diamond, 2-triangle, 3-triangle, basket.")

let domains_arg =
  C.Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domains for the parallel phases (enumeration, round-\
                   synchronous peeling, flow-network construction, striped \
                   component probes).  Defaults to $(b,DSD_DOMAINS) when \
                   set, otherwise min(hardware recommendation, 4).  Results \
                   are identical for every value; $(b,--domains 1) is the \
                   escape hatch that keeps everything on the calling \
                   domain.")

(* Run [f] with a shared domain pool sized by --domains (or the capped
   default).  All solvers are bit-identical across pool sizes, so this
   only changes how fast the answer arrives. *)
let with_domains domains f =
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ ->
      prerr_endline "dsd: --domains must be >= 1";
      exit 2
    | None -> Dsd_clique.Parallel.default_domains ()
  in
  Dsd_util.Pool.with_pool domains (fun pool -> f pool)

let no_warm_arg =
  C.Arg.(value & flag
         & info [ "no-warm-flow" ]
             ~doc:"Zero the committed flow at every binary-search \
                   probe instead of warm-starting the max-flow solver \
                   from the previous probe's flow.  Exact algorithms \
                   only; results are identical either way.")

(* ---- observability options ---- *)

let stats_arg =
  C.Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the per-phase span/counter breakdown (core \
                   decomposition vs. flow vs. clique enumeration) after \
                   the result.")

let trace_arg =
  C.Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write structured trace events (one JSON object per \
                   line) to $(docv).")

(* Run [f] with recording turned on when --stats/--trace ask for it;
   otherwise leave the no-op sink in place so the solvers run exactly
   as unintrumented code. *)
let with_obs ~stats ~trace f =
  if not (stats || Option.is_some trace) then f ()
  else begin
    let chan = Option.map open_out trace in
    let sink =
      match chan with
      | Some c -> Dsd_obs.Trace.jsonl c
      | None -> Dsd_obs.Trace.null
    in
    let r = Dsd_obs.Control.with_recording ~sink f in
    Option.iter close_out chan;
    Option.iter (Printf.printf "trace      %s\n") trace;
    if stats then print_string (Dsd_obs.Report.to_string ());
    r
  end

(* ---- generate ---- *)

let generate =
  let model =
    C.Arg.(required & pos 0 (some string) None
           & info [] ~docv:"MODEL" ~doc:"er | rmat | ssca | ba | chunglu")
  in
  let n = C.Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Vertices.") in
  let seed = C.Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let param =
    C.Arg.(value & opt float 0.01
           & info [ "param" ]
               ~doc:"Model parameter: ER edge probability, BA attach count, \
                     SSCA max clique, R-MAT edge factor, Chung-Lu average degree.")
  in
  let output =
    C.Arg.(required & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output edge-list file.")
  in
  let run model n seed param output =
    let g =
      match model with
      | "er" -> Dsd_data.Gen.er_gnp ~seed ~n ~p:param
      | "rmat" ->
        let scale =
          int_of_float (Float.ceil (Float.log2 (float_of_int (max 2 n))))
        in
        Dsd_data.Gen.rmat ~seed ~scale ~edge_factor:(int_of_float param) ()
      | "ssca" -> Dsd_data.Gen.ssca ~seed ~n ~max_clique:(int_of_float param)
      | "ba" -> Dsd_data.Gen.barabasi_albert ~seed ~n ~attach:(int_of_float param)
      | "chunglu" ->
        Dsd_data.Gen.power_law_chung_lu ~seed ~n ~alpha:2.3 ~avg_deg:param
      | other ->
        Printf.eprintf "unknown model %s\n" other;
        exit 2
    in
    Dsd_graph.Io.write output g;
    Printf.printf "wrote %s: %d vertices, %d edges\n" output (G.n g) (G.m g)
  in
  let run a b c d e = or_die (fun () -> run a b c d e) in
  C.Cmd.v (C.Cmd.info "generate" ~doc:"Generate a synthetic graph.")
    C.Term.(const run $ model $ n $ seed $ param $ output)

(* ---- stats ---- *)

let stats =
  let run input dataset pattern domains =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let _, cc = Dsd_graph.Traversal.components g in
    let alpha = Dsd_util.Stats.power_law_alpha (G.degrees g) in
    let decomp =
      with_domains domains (fun pool ->
          Dsd_core.Clique_core.decompose ~pool ~track_density:false g psi)
    in
    let core = Dsd_core.Clique_core.kmax_core decomp in
    Printf.printf "vertices            %d\n" (G.n g);
    Printf.printf "edges               %d\n" (G.m g);
    Printf.printf "connected comps     %d\n" cc;
    Printf.printf "pseudo-diameter     %d\n" (Dsd_graph.Traversal.pseudo_diameter g);
    Printf.printf "power-law alpha     %.4f\n" alpha;
    Printf.printf "pattern             %s\n" psi.P.name;
    Printf.printf "mu(G, Psi)          %d\n" decomp.Dsd_core.Clique_core.mu_total;
    Printf.printf "kmax                %d\n" decomp.Dsd_core.Clique_core.kmax;
    Printf.printf "(kmax, Psi)-core    %d vertices\n" (Array.length core)
  in
  let run a b c d = or_die (fun () -> run a b c d) in
  C.Cmd.v (C.Cmd.info "stats" ~doc:"Print dataset characteristics.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg)

(* ---- decompose ---- *)

let decompose =
  let show_all =
    C.Arg.(value & flag & info [ "all" ] ~doc:"Print every vertex's core number.")
  in
  let run input dataset pattern domains show_all stats trace =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let decomp =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_core.Clique_core.decompose ~pool ~track_density:false g psi))
    in
    Printf.printf "kmax = %d\n" decomp.Dsd_core.Clique_core.kmax;
    if show_all then
      Array.iteri
        (fun v c -> Printf.printf "%d %d\n" v c)
        decomp.Dsd_core.Clique_core.core
    else begin
      let core = Dsd_core.Clique_core.kmax_core decomp in
      Printf.printf "(kmax, %s)-core: %d vertices\n" psi.P.name (Array.length core);
      Array.iter (Printf.printf "%d ") core;
      print_newline ()
    end
  in
  let run a b c d e f g = or_die (fun () -> run a b c d e f g) in
  C.Cmd.v (C.Cmd.info "decompose" ~doc:"(k, Psi)-core decomposition.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ show_all $ stats_arg $ trace_arg)

(* ---- cds ---- *)

let cds =
  let algo =
    C.Arg.(value & opt string "coreexact"
           & info [ "a"; "algorithm" ]
               ~doc:"exact | coreexact | peel | incapp | coreapp | \
                     greedy++ | streaming")
  in
  let dot =
    C.Arg.(value & opt (some string) None
           & info [ "dot" ] ~docv:"FILE"
               ~doc:"Also write the graph as Graphviz DOT with the found \
                     subgraph highlighted.")
  in
  let run input dataset pattern domains algo dot stats trace no_warm =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let warm = not no_warm in
    let api algorithm pool =
      Dsd_core.Api.densest_subgraph ~pool ~warm ~psi ~algorithm g
    in
    let name, solve =
      match String.lowercase_ascii algo with
      | "exact" -> ("Exact", fun pool -> api Dsd_core.Api.Exact_flow pool)
      | "coreexact" -> ("CoreExact", fun pool -> api Dsd_core.Api.Core_exact pool)
      | "peel" -> ("PeelApp", fun pool -> api Dsd_core.Api.Peel pool)
      | "incapp" -> ("IncApp", fun pool -> api Dsd_core.Api.Inc_app pool)
      | "coreapp" -> ("CoreApp", fun pool -> api Dsd_core.Api.Core_app pool)
      | "greedy++" | "greedypp" ->
        ("Greedy++", fun _pool -> (Dsd_core.Greedy_pp.run g psi).Dsd_core.Greedy_pp.subgraph)
      | "streaming" ->
        ("Streaming", fun _pool -> (Dsd_core.Streaming.run g psi).Dsd_core.Streaming.subgraph)
      | other ->
        Printf.eprintf "unknown algorithm %s\n" other;
        exit 2
    in
    let (sg : Dsd_core.Density.subgraph), elapsed =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_util.Timer.time (fun () -> solve pool)))
    in
    Printf.printf "algorithm  %s\n" name;
    Printf.printf "pattern    %s\n" psi.P.name;
    Printf.printf "density    %.6f\n" sg.density;
    Printf.printf "vertices   %d\n" (Array.length sg.vertices);
    Printf.printf "time       %.3fs\n" elapsed;
    Array.iter (Printf.printf "%d ") sg.vertices;
    print_newline ();
    Option.iter
      (fun path ->
        Dsd_graph.Io.write_dot path g ~highlight:sg.vertices;
        Printf.printf "wrote %s\n" path)
      dot
  in
  let run a b c d e f g h i = or_die (fun () -> run a b c d e f g h i) in
  C.Cmd.v
    (C.Cmd.info "cds" ~doc:"Find the (approximately) densest subgraph.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ algo $ dot $ stats_arg $ trace_arg $ no_warm_arg)

(* ---- query (Section 6.3 variant) ---- *)

let query =
  let vertices =
    C.Arg.(non_empty & pos_all int []
           & info [] ~docv:"VERTEX" ~doc:"Query vertices the subgraph must contain.")
  in
  let run input dataset pattern domains vertices stats trace no_warm =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let warm = not no_warm in
    let r =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_core.Query_dsd.run ~pool ~warm g psi
                ~query:(Array.of_list vertices)))
    in
    let sg = r.Dsd_core.Query_dsd.subgraph in
    Printf.printf "pattern    %s\n" psi.P.name;
    Printf.printf "density    %.6f\n" sg.Dsd_core.Density.density;
    Printf.printf "vertices   %d\n" (Array.length sg.Dsd_core.Density.vertices);
    Printf.printf "time       %.3fs (%d min-cuts)\n" r.Dsd_core.Query_dsd.elapsed_s
      r.Dsd_core.Query_dsd.iterations;
    Array.iter (Printf.printf "%d ") sg.Dsd_core.Density.vertices;
    print_newline ()
  in
  let run a b c d e f g h = or_die (fun () -> run a b c d e f g h) in
  C.Cmd.v
    (C.Cmd.info "query"
       ~doc:"Densest subgraph containing given query vertices (Section 6.3).")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ vertices $ stats_arg $ trace_arg $ no_warm_arg)

(* ---- topk: disjoint locally densest regions ---- *)

let topk =
  let k_arg =
    C.Arg.(value & opt int 3
           & info [ "k" ] ~docv:"K"
               ~doc:"How many disjoint regions to extract.")
  in
  let no_prune_arg =
    C.Arg.(value & flag
           & info [ "no-prune" ]
               ~doc:"Disable core-based candidate pruning (whole-graph \
                     binary search every round; same answer, more work).")
  in
  let run input dataset pattern domains k no_prune stats trace no_warm =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let r =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_core.Topk_lds.run ~pool ~warm:(not no_warm)
                ~prune:(not no_prune) ~k g psi))
    in
    Printf.printf "pattern    %s\n" psi.P.name;
    Printf.printf "regions    %d\n" (List.length r.Dsd_core.Topk_lds.regions);
    Printf.printf "time       %.3fs (%d rounds, %d min-cuts, %d pruned)\n"
      r.Dsd_core.Topk_lds.stats.elapsed_s r.Dsd_core.Topk_lds.stats.rounds
      r.Dsd_core.Topk_lds.stats.iterations
      r.Dsd_core.Topk_lds.stats.components_pruned;
    List.iteri
      (fun i (sg : Dsd_core.Density.subgraph) ->
        Printf.printf "region %d   density %.6f, %d vertices\n" (i + 1)
          sg.density (Array.length sg.vertices);
        Array.iter (Printf.printf "%d ") sg.vertices;
        print_newline ())
      r.Dsd_core.Topk_lds.regions
  in
  let run a b c d e f g h i = or_die (fun () -> run a b c d e f g h i) in
  C.Cmd.v
    (C.Cmd.info "topk"
       ~doc:"Top-k pairwise-disjoint locally densest subgraphs.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ k_arg $ no_prune_arg $ stats_arg $ trace_arg $ no_warm_arg)

(* ---- hierarchy: the density-friendly decomposition ---- *)

let hierarchy =
  let levels_arg =
    C.Arg.(value & opt int 0
           & info [ "levels" ] ~docv:"N"
               ~doc:"Print only the first $(docv) levels (0 = the whole \
                     chain).  The full decomposition is computed either way.")
  in
  let fresh_build_arg =
    C.Arg.(value & flag
           & info [ "fresh-build" ]
               ~doc:"Escape hatch: rebuild the flow network from scratch on \
                     every probe instead of retargeting a per-level prepared \
                     arena (same answer, more work).")
  in
  let run input dataset pattern domains levels fresh_build stats trace no_warm =
    if levels < 0 then begin
      prerr_endline "dsd: --levels must be >= 0";
      exit 2
    end;
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let d =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_core.Ld_decomposition.decompose ~pool
                ~prepared:(not fresh_build) ~warm:(not no_warm) g psi))
    in
    let all = d.Dsd_core.Ld_decomposition.levels in
    Printf.printf "pattern    %s\n" psi.P.name;
    Printf.printf "levels     %d\n" (List.length all);
    Printf.printf "time       %.3fs (%d min-cuts)\n"
      d.Dsd_core.Ld_decomposition.elapsed_s
      d.Dsd_core.Ld_decomposition.iterations;
    List.iteri
      (fun i (lvl : Dsd_core.Ld_decomposition.level) ->
        if levels = 0 || i < levels then begin
          Printf.printf "level %d    marginal %.6f, %d vertices (prefix %d)\n"
            (i + 1) lvl.marginal_density
            (Array.length lvl.vertices)
            lvl.prefix_size;
          Array.iter (Printf.printf "%d ") lvl.vertices;
          print_newline ()
        end)
      all
  in
  let run a b c d e f g h i = or_die (fun () -> run a b c d e f g h i) in
  C.Cmd.v
    (C.Cmd.info "hierarchy"
       ~doc:"Density-friendly decomposition: the full chain of \
             locally-densest prefixes (level 1 is the CDS).")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ levels_arg $ fresh_build_arg $ stats_arg $ trace_arg
            $ no_warm_arg)

(* ---- watch: re-answer the CDS over an edge-delta stream ---- *)

let watch =
  let deltas_arg =
    C.Arg.(required & opt (some string) None
           & info [ "deltas" ] ~docv:"FILE"
               ~doc:"Delta stream: lines $(b,+ U V) (insert) and $(b,- U V) \
                     (delete); a blank line or $(b,--) ends a batch; \
                     $(b,#) starts a comment.")
  in
  let mode_arg =
    C.Arg.(value & opt string "incremental"
           & info [ "mode" ]
               ~doc:"incremental (patch the core numbers, instance store and \
                     flow arena in place) | rebuild (recompute from scratch \
                     after every batch).  Answers are bit-identical.")
  in
  let read_deltas path =
    let ic = open_in path in
    let batches = ref [] in
    let cur = ref [] in
    let flush () =
      if !cur <> [] then begin
        batches := Array.of_list (List.rev !cur) :: !batches;
        cur := []
      end
    in
    let bad line =
      Printf.eprintf "dsd watch: bad delta line '%s'\n" line;
      exit 2
    in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line = "" || line = "--" then flush ()
         else if line.[0] = '#' then ()
         else
           match
             List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
           with
           | [ op; u; v ] -> (
             match (op, int_of_string_opt u, int_of_string_opt v) with
             | "+", Some u, Some v ->
               cur := Dsd_graph.Dynamic.Add (u, v) :: !cur
             | "-", Some u, Some v ->
               cur := Dsd_graph.Dynamic.Remove (u, v) :: !cur
             | _ -> bad line)
           | _ -> bad line
       done
     with End_of_file -> ());
    close_in ic;
    flush ();
    Array.of_list (List.rev !batches)
  in
  let run input dataset pattern deltas mode stats trace =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let batches = read_deltas deltas in
    let incremental =
      match String.lowercase_ascii mode with
      | "incremental" -> true
      | "rebuild" -> false
      | other ->
        Printf.eprintf "dsd watch: unknown mode %s\n" other;
        exit 2
    in
    with_obs ~stats ~trace (fun () ->
        (* In incremental mode one session is patched across batches; in
           rebuild mode the same Dynamic handle tracks the graph but each
           answer comes from a fresh from-scratch session. *)
        let session =
          if incremental then Some (Dsd_core.Inc_dsd.create g psi) else None
        in
        let dyn =
          match session with
          | Some s -> Dsd_core.Inc_dsd.dynamic s
          | None -> Dsd_graph.Dynamic.of_graph g
        in
        Printf.printf "pattern    %s\n" psi.P.name;
        Printf.printf "mode       %s\n"
          (if incremental then "incremental" else "rebuild");
        Printf.printf "batches    %d\n" (Array.length batches);
        let answer tag (sg : Dsd_core.Density.subgraph) =
          print_endline tag;
          Printf.printf "density    %.6f\n" sg.density;
          Printf.printf "vertices   %d\n" (Array.length sg.vertices);
          Array.iter (Printf.printf "%d ") sg.vertices;
          print_newline ()
        in
        let query () =
          match session with
          | Some s -> Dsd_core.Inc_dsd.query s
          | None ->
            Dsd_core.Inc_dsd.query
              (Dsd_core.Inc_dsd.create (Dsd_graph.Dynamic.snapshot dyn) psi)
        in
        answer "initial" (query ());
        Array.iteri
          (fun i batch ->
            let applied =
              match session with
              | Some s -> Dsd_core.Inc_dsd.apply s batch
              | None -> Dsd_graph.Dynamic.apply dyn batch
            in
            answer
              (Printf.sprintf "batch      %d (%d/%d ops, m=%d)" (i + 1)
                 applied (Array.length batch) (Dsd_graph.Dynamic.m dyn))
              (query ()))
          batches)
  in
  let run a b c d e f g = or_die (fun () -> run a b c d e f g) in
  C.Cmd.v
    (C.Cmd.info "watch"
       ~doc:"Stream edge inserts/deletes from a delta file and re-answer \
             the densest subgraph after every batch.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ deltas_arg
            $ mode_arg $ stats_arg $ trace_arg)

(* ---- fuzz ---- *)

let fuzz =
  let cases =
    C.Arg.(value & opt int 100
           & info [ "cases" ] ~docv:"N" ~doc:"Cases to generate.")
  in
  let seed =
    C.Arg.(value & opt int 42
           & info [ "seed" ] ~docv:"S" ~doc:"Root PRNG seed.")
  in
  let budget =
    C.Arg.(value & opt (some float) None
           & info [ "time-budget" ] ~docv:"T"
               ~doc:"Stop generating new cases after $(docv) seconds.")
  in
  let relation =
    C.Arg.(value & opt (some string) None
           & info [ "relation" ] ~docv:"R"
               ~doc:"Check only this metamorphic relation (see \
                     'dsd fuzz --list-relations').")
  in
  let list_relations =
    C.Arg.(value & flag
           & info [ "list-relations" ] ~doc:"List the relation registry and exit.")
  in
  let out =
    C.Arg.(value & opt string "."
           & info [ "out" ] ~docv:"DIR"
               ~doc:"Directory for the reproducer file written on failure.")
  in
  let replay =
    C.Arg.(value & opt (some string) None
           & info [ "replay" ] ~docv:"FILE"
               ~doc:"Re-run the single check recorded in a reproducer \
                     file instead of fuzzing.")
  in
  let run cases seed budget relation list_relations out replay =
    if list_relations then
      List.iter print_endline Dsd_check.Relation.names
    else
      match replay with
      | Some path ->
        let repro = Dsd_check.Repro.read path in
        Printf.printf "replay     %s relation=%s psi=%s seed=%d\n" path
          repro.Dsd_check.Repro.relation repro.Dsd_check.Repro.psi
          repro.Dsd_check.Repro.seed;
        (match Dsd_check.Engine.replay repro with
        | Dsd_check.Relation.Pass ->
          print_endline "verdict    PASS (violation no longer reproduces)"
        | Dsd_check.Relation.Skip why ->
          Printf.printf "verdict    SKIP (%s)\n" why
        | Dsd_check.Relation.Fail msg ->
          print_endline "verdict    FAIL";
          Printf.printf "violation  %s\n" msg;
          exit 1)
      | None ->
        let summary =
          Dsd_check.Engine.run ?relation ?time_budget_s:budget ~cases ~seed ()
        in
        Printf.printf "fuzz       seed=%d cases=%d\n" seed cases;
        print_string (Dsd_check.Engine.summary_to_string summary);
        (match summary.Dsd_check.Engine.failure with
        | None -> ()
        | Some f ->
          let path =
            Filename.concat out
              (Printf.sprintf "dsd-fuzz-%s-%d.repro" f.relation f.case_seed)
          in
          Dsd_check.Repro.write path (Dsd_check.Engine.to_repro f);
          Printf.printf "reproducer %s\n" path;
          Printf.printf "replay     dsd fuzz --replay %s\n" path;
          exit 1)
  in
  let run a b c d e f g = or_die (fun () -> run a b c d e f g) in
  C.Cmd.v
    (C.Cmd.info "fuzz"
       ~doc:"Metamorphic fuzzing: random graphs checked against the \
             paper's theorems as executable relations.")
    C.Term.(const run $ cases $ seed $ budget $ relation $ list_relations
            $ out $ replay)

(* ---- snapshot ---- *)

let snapshot =
  let build =
    let output =
      C.Arg.(required & pos 0 (some string) None
             & info [] ~docv:"OUT" ~doc:"Snapshot file to write.")
    in
    let run input dataset output =
      let g = load_graph input dataset in
      let bytes = Dsd_serve.Snapshot.write output g in
      Printf.printf "wrote %s: %d vertices, %d edges, %d bytes\n" output
        (G.n g) (G.m g) bytes
    in
    let run a b c = or_die (fun () -> run a b c) in
    C.Cmd.v
      (C.Cmd.info "build"
         ~doc:"Convert a graph to a binary CSR snapshot (instant loads).")
      C.Term.(const run $ input_arg $ dataset_arg $ output)
  in
  let info_cmd =
    let file =
      C.Arg.(required & pos 0 (some string) None
             & info [] ~docv:"FILE" ~doc:"Snapshot file to inspect.")
    in
    let run file =
      let i = Dsd_serve.Snapshot.info file in
      Printf.printf "version    %d\n" i.Dsd_serve.Snapshot.info_version;
      Printf.printf "vertices   %d\n" i.Dsd_serve.Snapshot.n;
      Printf.printf "edges      %d\n" i.Dsd_serve.Snapshot.m;
      Printf.printf "bytes      %d\n" i.Dsd_serve.Snapshot.bytes
    in
    let run a = or_die (fun () -> run a) in
    C.Cmd.v
      (C.Cmd.info "info" ~doc:"Print a snapshot's header.")
      C.Term.(const run $ file)
  in
  C.Cmd.group
    (C.Cmd.info "snapshot" ~doc:"Binary CSR snapshots for the serving layer.")
    [ build; info_cmd ]

(* ---- serve / client ---- *)

let socket_arg =
  C.Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  C.Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT" ~doc:"TCP port.")

let host_arg =
  C.Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST"
             ~doc:"TCP host to bind/connect (with --port).")

let address socket port host =
  match (socket, port) with
  | Some path, None -> Dsd_serve.Server.Unix_domain path
  | None, Some port -> Dsd_serve.Server.Tcp { host; port }
  | _ ->
    prerr_endline "exactly one of --socket or --port is required";
    exit 2

let serve =
  let graphs =
    C.Arg.(value & opt_all string []
           & info [ "g"; "graph" ] ~docv:"NAME=FILE"
               ~doc:"Serve graph $(b,FILE) (edge list or snapshot) under \
                     $(b,NAME).  Repeatable.")
  in
  let datasets =
    C.Arg.(value & opt_all string []
           & info [ "dataset" ] ~docv:"NAME"
               ~doc:"Also serve a built-in synthetic dataset.  Repeatable.")
  in
  let max_cached =
    C.Arg.(value & opt int 64
           & info [ "max-cached" ] ~docv:"N"
               ~doc:"Result-LRU capacity: hot (graph, psi, algorithm, query) \
                     responses answered without touching a solver.")
  in
  let timeout =
    C.Arg.(value & opt float 30.
           & info [ "receive-timeout" ] ~docv:"SECS"
               ~doc:"Disconnect a peer that sends nothing for $(docv).")
  in
  let run socket port host graphs datasets max_cached timeout domains =
    if max_cached < 0 then begin
      prerr_endline "dsd: --max-cached must be >= 0";
      exit 2
    end;
    let named =
      List.map
        (fun spec ->
          match String.index_opt spec '=' with
          | Some i ->
            let name = String.sub spec 0 i in
            let path = String.sub spec (i + 1) (String.length spec - i - 1) in
            if name = "" || path = "" then begin
              Printf.eprintf "dsd: --graph expects NAME=FILE, got %s\n" spec;
              exit 2
            end;
            (name, read_graph_file path)
          | None ->
            Printf.eprintf "dsd: --graph expects NAME=FILE, got %s\n" spec;
            exit 2)
        graphs
      @ List.map
          (fun name ->
            if not (Dsd_data.Datasets.mem name) then begin
              Printf.eprintf "unknown dataset %s\n" name;
              exit 2
            end;
            (name, Dsd_data.Datasets.graph name))
          datasets
    in
    if named = [] then begin
      prerr_endline "dsd serve: at least one --graph or --dataset is required";
      exit 2
    end;
    let addr = address socket port host in
    (* Counters (serve_* and solver) accumulate for the stats endpoint
       for as long as the daemon lives. *)
    Dsd_obs.Control.enable ();
    with_domains domains (fun pool ->
        let state =
          Dsd_serve.State.create ~pool ~max_cached:max_cached named
        in
        List.iter
          (fun (name, g) ->
            Printf.printf "serving %-12s n=%d m=%d\n%!" name (G.n g) (G.m g))
          (Dsd_serve.State.graphs state);
        Dsd_serve.Server.run ~receive_timeout_s:timeout ~state addr)
  in
  let run a b c d e f g h = or_die (fun () -> run a b c d e f g h) in
  C.Cmd.v
    (C.Cmd.info "serve"
       ~doc:"Long-lived serving daemon: graphs loaded once, prepared state \
             and hot results cached, requests over a Unix/TCP socket.")
    C.Term.(const run $ socket_arg $ port_arg $ host_arg $ graphs $ datasets
            $ max_cached $ timeout $ domains_arg)

let client =
  let words =
    C.Arg.(non_empty & pos_all string []
           & info [] ~docv:"COMMAND"
               ~doc:"ping | stats | density GRAPH PSI [ALGO] | cds GRAPH PSI \
                     [ALGO] | decompose GRAPH PSI | query GRAPH PSI VERTEX... \
                     | topk GRAPH PSI K | hierarchy GRAPH PSI [LEVELS] \
                     | delta GRAPH +U,V... -U,V... | shutdown")
  in
  let parse_vertices vs =
    List.map
      (fun s ->
        match int_of_string_opt s with
        | Some v -> v
        | None ->
          Printf.eprintf "dsd client: bad vertex %s\n" s;
          exit 2)
      vs
  in
  let request_of_words = function
    | [ "ping" ] -> Dsd_serve.Protocol.Ping
    | [ "stats" ] -> Dsd_serve.Protocol.Stats
    | [ "shutdown" ] -> Dsd_serve.Protocol.Shutdown
    | [ "density"; graph; psi ] ->
      Dsd_serve.Protocol.Density { graph; psi; algorithm = "coreexact" }
    | [ "density"; graph; psi; algorithm ] ->
      Dsd_serve.Protocol.Density { graph; psi; algorithm }
    | [ "cds"; graph; psi ] ->
      Dsd_serve.Protocol.Cds { graph; psi; algorithm = "coreexact" }
    | [ "cds"; graph; psi; algorithm ] ->
      Dsd_serve.Protocol.Cds { graph; psi; algorithm }
    | [ "decompose"; graph; psi ] -> Dsd_serve.Protocol.Decompose { graph; psi }
    | [ "topk"; graph; psi; k ] -> (
      match int_of_string_opt k with
      | Some k -> Dsd_serve.Protocol.Topk { graph; psi; k }
      | None ->
        Printf.eprintf "dsd client: bad k %s\n" k;
        exit 2)
    | [ "hierarchy"; graph; psi ] ->
      Dsd_serve.Protocol.Hierarchy { graph; psi; levels = 0 }
    | [ "hierarchy"; graph; psi; levels ] -> (
      match int_of_string_opt levels with
      | Some levels -> Dsd_serve.Protocol.Hierarchy { graph; psi; levels }
      | None ->
        Printf.eprintf "dsd client: bad level count %s\n" levels;
        exit 2)
    | "query" :: graph :: psi :: (_ :: _ as vs) ->
      Dsd_serve.Protocol.Query
        { graph; psi; vertices = Array.of_list (parse_vertices vs) }
    | "delta" :: graph :: (_ :: _ as ops) ->
      let adds = ref [] and removes = ref [] in
      List.iter
        (fun w ->
          let bad () =
            Printf.eprintf
              "dsd client: bad delta op '%s' (want +U,V or -U,V)\n" w;
            exit 2
          in
          if String.length w < 2 then bad ()
          else
            match
              String.split_on_char ','
                (String.sub w 1 (String.length w - 1))
            with
            | [ u; v ] -> (
              match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v -> (
                match w.[0] with
                | '+' -> adds := (u, v) :: !adds
                | '-' -> removes := (u, v) :: !removes
                | _ -> bad ())
              | _ -> bad ())
            | _ -> bad ())
        ops;
      Dsd_serve.Protocol.Apply_delta
        { graph;
          adds = Array.of_list (List.rev !adds);
          removes = Array.of_list (List.rev !removes) }
    | words ->
      Printf.eprintf "dsd client: bad command '%s'\n" (String.concat " " words);
      exit 2
  in
  let print_response (resp : Dsd_serve.Protocol.response) =
    match resp with
    | Pong -> print_endline "pong"
    | Shutdown_r -> print_endline "shutting down"
    | Density_r rho -> Printf.printf "density    %.6f\n" rho
    | Cds_r { density; vertices } | Query_r { density; vertices } ->
      Printf.printf "density    %.6f\n" density;
      Printf.printf "vertices   %d\n" (Array.length vertices);
      Array.iter (Printf.printf "%d ") vertices;
      print_newline ()
    | Decompose_r { kmax; core } ->
      Printf.printf "kmax = %d\n" kmax;
      Printf.printf "vertices   %d\n" (Array.length core)
    | Topk_r { regions } ->
      Printf.printf "regions    %d\n" (List.length regions);
      List.iteri
        (fun i (density, vertices) ->
          Printf.printf "region %d   density %.6f, %d vertices\n" (i + 1)
            density (Array.length vertices);
          Array.iter (Printf.printf "%d ") vertices;
          print_newline ())
        regions
    | Hierarchy_r { levels } ->
      Printf.printf "levels     %d\n" (List.length levels);
      List.iteri
        (fun i (marginal, vertices) ->
          Printf.printf "level %d    marginal %.6f, %d vertices\n" (i + 1)
            marginal (Array.length vertices);
          Array.iter (Printf.printf "%d ") vertices;
          print_newline ())
        levels
    | Apply_delta_r { n; m; added; removed } ->
      Printf.printf "graph      n=%d m=%d\n" n m;
      Printf.printf "applied    +%d -%d\n" added removed
    | Stats_r { counters; cache; graphs } ->
      List.iter (fun line -> Printf.printf "graph      %s\n" line) graphs;
      List.iter (fun (k, v) -> Printf.printf "cache.%-20s %8d\n" k v) cache;
      List.iter
        (fun (k, v) -> if v <> 0 then Printf.printf "%-26s %8d\n" k v)
        counters
    | Error_r msg ->
      Printf.eprintf "dsd client: server error: %s\n" msg;
      exit 1
  in
  let run socket port host words =
    let addr = address socket port host in
    let req = request_of_words words in
    match Dsd_serve.Client.once addr req with
    | resp -> print_response resp
    | exception Dsd_serve.Protocol.Error msg ->
      Printf.eprintf "dsd client: %s\n" msg;
      exit 1
  in
  let run a b c d = or_die (fun () -> run a b c d) in
  C.Cmd.v
    (C.Cmd.info "client"
       ~doc:"Send one request to a running `dsd serve` daemon.")
    C.Term.(const run $ socket_arg $ port_arg $ host_arg $ words)

(* ---- truss ---- *)

let truss =
  let k = C.Arg.(value & opt (some int) None
                 & info [ "k" ] ~doc:"Print the edges of the k-truss.") in
  let run input dataset k =
    let g = load_graph input dataset in
    let t = Dsd_core.Truss.decompose g in
    Printf.printf "max truss  %d\n" (Dsd_core.Truss.kmax t);
    let sg = Dsd_core.Truss.max_truss_subgraph g t in
    Printf.printf "kmax-truss %d vertices, edge density %.4f\n"
      (Array.length sg.Dsd_core.Density.vertices) sg.Dsd_core.Density.density;
    Option.iter
      (fun k ->
        let edges = Dsd_core.Truss.k_truss t ~k in
        Printf.printf "%d-truss: %d edges\n" k (Array.length edges);
        Array.iter (fun (u, v) -> Printf.printf "%d %d\n" u v) edges)
      k
  in
  let run a b c = or_die (fun () -> run a b c) in
  C.Cmd.v
    (C.Cmd.info "truss" ~doc:"k-truss decomposition (comparison model).")
    C.Term.(const run $ input_arg $ dataset_arg $ k)

(* ---- patterns ---- *)

let patterns =
  let run () =
    List.iter
      (fun (psi : P.t) ->
        Printf.printf "%-12s |V|=%d |E|=%d  %s\n" psi.name psi.size
          (P.edge_count psi)
          (String.concat " "
             (List.map
                (fun (u, v) -> Printf.sprintf "%d-%d" u v)
                (Array.to_list psi.edges))))
      ([ P.edge; P.triangle; P.clique 4; P.clique 5; P.clique 6 ] @ P.figure7)
  in
  C.Cmd.v (C.Cmd.info "patterns" ~doc:"List built-in patterns.")
    C.Term.(const run $ const ())

let () =
  let info =
    C.Cmd.info "dsd" ~version:"1.0.0"
      ~doc:"Core-based densest subgraph discovery (VLDB'19 reproduction)."
  in
  exit
    (C.Cmd.eval
       (C.Cmd.group info
          [ generate; stats; decompose; cds; query; topk; hierarchy; watch;
            fuzz; truss; patterns; snapshot; serve; client ]))
