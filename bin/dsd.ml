(* dsd — command-line front end for densest subgraph discovery.

   Subcommands:
     generate    write a synthetic graph to an edge-list file
     stats       print dataset characteristics (Table 2 columns)
     decompose   (k, Psi)-core numbers / the kmax core
     cds         find the densest subgraph (exact or approximate)
     query       densest subgraph containing given vertices (Sec 6.3)
     truss       k-truss decomposition (comparison model)
     patterns    list the built-in patterns

   Graphs are read from edge-list files ('u v' per line, '#' comments)
   or taken from the built-in named datasets with --dataset. *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module C = Cmdliner

(* User-facing failures (bad files, bad arguments to the library)
   should print one line and exit 2, not cmdliner's "internal error"
   banner. *)
let or_die f =
  try f () with
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Printf.eprintf "dsd: %s\n" msg;
    exit 2

let load_graph file dataset =
  match (file, dataset) with
  | Some path, None -> fst (Dsd_graph.Io.read path)
  | None, Some name ->
    if not (Dsd_data.Datasets.mem name) then begin
      Printf.eprintf "unknown dataset %s; known: %s\n" name
        (String.concat ", "
           (List.map (fun s -> s.Dsd_data.Datasets.name) Dsd_data.Datasets.all));
      exit 2
    end
    else Dsd_data.Datasets.graph name
  | _ ->
    prerr_endline "exactly one of --input or --dataset is required";
    exit 2

let pattern_of_string s =
  match String.lowercase_ascii s with
  | "edge" | "2-clique" -> P.edge
  | "triangle" | "3-clique" -> P.triangle
  | "4-clique" -> P.clique 4
  | "5-clique" -> P.clique 5
  | "6-clique" -> P.clique 6
  | "2-star" -> P.star 2
  | "3-star" -> P.star 3
  | "c3-star" | "paw" -> P.c3_star
  | "diamond" | "c4" -> P.diamond
  | "2-triangle" -> P.two_triangle
  | "3-triangle" -> P.three_triangle
  | "basket" | "house" -> P.basket
  | other ->
    Printf.eprintf "unknown pattern %s (see 'dsd patterns')\n" other;
    exit 2

(* ---- common options ---- *)

let input_arg =
  C.Arg.(value & opt (some string) None
         & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Edge-list input file.")

let dataset_arg =
  C.Arg.(value & opt (some string) None
         & info [ "d"; "dataset" ] ~docv:"NAME" ~doc:"Built-in synthetic dataset.")

let pattern_arg =
  C.Arg.(value & opt string "edge"
         & info [ "p"; "pattern" ] ~docv:"PSI"
             ~doc:"Density pattern: edge, triangle, 4/5/6-clique, 2/3-star, \
                   c3-star, diamond, 2-triangle, 3-triangle, basket.")

let domains_arg =
  C.Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domains for the parallel phases (enumeration, core \
                   decomposition, flow-network construction).  Defaults to \
                   $(b,DSD_DOMAINS) or the hardware recommendation.  \
                   Results are identical for every value.")

(* Run [f] with a shared domain pool sized by --domains (or the
   recommendation).  All solvers are bit-identical across pool sizes,
   so this only changes how fast the answer arrives. *)
let with_domains domains f =
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ ->
      prerr_endline "dsd: --domains must be >= 1";
      exit 2
    | None -> Dsd_clique.Parallel.recommended_domains ()
  in
  Dsd_util.Pool.with_pool domains (fun pool -> f pool)

let no_warm_arg =
  C.Arg.(value & flag
         & info [ "no-warm-flow" ]
             ~doc:"Zero the committed flow at every binary-search \
                   probe instead of warm-starting the max-flow solver \
                   from the previous probe's flow.  Exact algorithms \
                   only; results are identical either way.")

(* ---- observability options ---- *)

let stats_arg =
  C.Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the per-phase span/counter breakdown (core \
                   decomposition vs. flow vs. clique enumeration) after \
                   the result.")

let trace_arg =
  C.Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write structured trace events (one JSON object per \
                   line) to $(docv).")

(* Run [f] with recording turned on when --stats/--trace ask for it;
   otherwise leave the no-op sink in place so the solvers run exactly
   as unintrumented code. *)
let with_obs ~stats ~trace f =
  if not (stats || Option.is_some trace) then f ()
  else begin
    let chan = Option.map open_out trace in
    let sink =
      match chan with
      | Some c -> Dsd_obs.Trace.jsonl c
      | None -> Dsd_obs.Trace.null
    in
    let r = Dsd_obs.Control.with_recording ~sink f in
    Option.iter close_out chan;
    Option.iter (Printf.printf "trace      %s\n") trace;
    if stats then print_string (Dsd_obs.Report.to_string ());
    r
  end

(* ---- generate ---- *)

let generate =
  let model =
    C.Arg.(required & pos 0 (some string) None
           & info [] ~docv:"MODEL" ~doc:"er | rmat | ssca | ba | chunglu")
  in
  let n = C.Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Vertices.") in
  let seed = C.Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let param =
    C.Arg.(value & opt float 0.01
           & info [ "param" ]
               ~doc:"Model parameter: ER edge probability, BA attach count, \
                     SSCA max clique, R-MAT edge factor, Chung-Lu average degree.")
  in
  let output =
    C.Arg.(required & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output edge-list file.")
  in
  let run model n seed param output =
    let g =
      match model with
      | "er" -> Dsd_data.Gen.er_gnp ~seed ~n ~p:param
      | "rmat" ->
        let scale =
          int_of_float (Float.ceil (Float.log2 (float_of_int (max 2 n))))
        in
        Dsd_data.Gen.rmat ~seed ~scale ~edge_factor:(int_of_float param) ()
      | "ssca" -> Dsd_data.Gen.ssca ~seed ~n ~max_clique:(int_of_float param)
      | "ba" -> Dsd_data.Gen.barabasi_albert ~seed ~n ~attach:(int_of_float param)
      | "chunglu" ->
        Dsd_data.Gen.power_law_chung_lu ~seed ~n ~alpha:2.3 ~avg_deg:param
      | other ->
        Printf.eprintf "unknown model %s\n" other;
        exit 2
    in
    Dsd_graph.Io.write output g;
    Printf.printf "wrote %s: %d vertices, %d edges\n" output (G.n g) (G.m g)
  in
  let run a b c d e = or_die (fun () -> run a b c d e) in
  C.Cmd.v (C.Cmd.info "generate" ~doc:"Generate a synthetic graph.")
    C.Term.(const run $ model $ n $ seed $ param $ output)

(* ---- stats ---- *)

let stats =
  let run input dataset pattern domains =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let _, cc = Dsd_graph.Traversal.components g in
    let alpha = Dsd_util.Stats.power_law_alpha (G.degrees g) in
    let decomp =
      with_domains domains (fun pool ->
          Dsd_core.Clique_core.decompose ~pool ~track_density:false g psi)
    in
    let core = Dsd_core.Clique_core.kmax_core decomp in
    Printf.printf "vertices            %d\n" (G.n g);
    Printf.printf "edges               %d\n" (G.m g);
    Printf.printf "connected comps     %d\n" cc;
    Printf.printf "pseudo-diameter     %d\n" (Dsd_graph.Traversal.pseudo_diameter g);
    Printf.printf "power-law alpha     %.4f\n" alpha;
    Printf.printf "pattern             %s\n" psi.P.name;
    Printf.printf "mu(G, Psi)          %d\n" decomp.Dsd_core.Clique_core.mu_total;
    Printf.printf "kmax                %d\n" decomp.Dsd_core.Clique_core.kmax;
    Printf.printf "(kmax, Psi)-core    %d vertices\n" (Array.length core)
  in
  let run a b c d = or_die (fun () -> run a b c d) in
  C.Cmd.v (C.Cmd.info "stats" ~doc:"Print dataset characteristics.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg)

(* ---- decompose ---- *)

let decompose =
  let show_all =
    C.Arg.(value & flag & info [ "all" ] ~doc:"Print every vertex's core number.")
  in
  let run input dataset pattern domains show_all stats trace =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let decomp =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_core.Clique_core.decompose ~pool ~track_density:false g psi))
    in
    Printf.printf "kmax = %d\n" decomp.Dsd_core.Clique_core.kmax;
    if show_all then
      Array.iteri
        (fun v c -> Printf.printf "%d %d\n" v c)
        decomp.Dsd_core.Clique_core.core
    else begin
      let core = Dsd_core.Clique_core.kmax_core decomp in
      Printf.printf "(kmax, %s)-core: %d vertices\n" psi.P.name (Array.length core);
      Array.iter (Printf.printf "%d ") core;
      print_newline ()
    end
  in
  let run a b c d e f g = or_die (fun () -> run a b c d e f g) in
  C.Cmd.v (C.Cmd.info "decompose" ~doc:"(k, Psi)-core decomposition.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ show_all $ stats_arg $ trace_arg)

(* ---- cds ---- *)

let cds =
  let algo =
    C.Arg.(value & opt string "coreexact"
           & info [ "a"; "algorithm" ]
               ~doc:"exact | coreexact | peel | incapp | coreapp | \
                     greedy++ | streaming")
  in
  let dot =
    C.Arg.(value & opt (some string) None
           & info [ "dot" ] ~docv:"FILE"
               ~doc:"Also write the graph as Graphviz DOT with the found \
                     subgraph highlighted.")
  in
  let run input dataset pattern domains algo dot stats trace no_warm =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let warm = not no_warm in
    let api algorithm pool =
      Dsd_core.Api.densest_subgraph ~pool ~warm ~psi ~algorithm g
    in
    let name, solve =
      match String.lowercase_ascii algo with
      | "exact" -> ("Exact", fun pool -> api Dsd_core.Api.Exact_flow pool)
      | "coreexact" -> ("CoreExact", fun pool -> api Dsd_core.Api.Core_exact pool)
      | "peel" -> ("PeelApp", fun pool -> api Dsd_core.Api.Peel pool)
      | "incapp" -> ("IncApp", fun pool -> api Dsd_core.Api.Inc_app pool)
      | "coreapp" -> ("CoreApp", fun pool -> api Dsd_core.Api.Core_app pool)
      | "greedy++" | "greedypp" ->
        ("Greedy++", fun _pool -> (Dsd_core.Greedy_pp.run g psi).Dsd_core.Greedy_pp.subgraph)
      | "streaming" ->
        ("Streaming", fun _pool -> (Dsd_core.Streaming.run g psi).Dsd_core.Streaming.subgraph)
      | other ->
        Printf.eprintf "unknown algorithm %s\n" other;
        exit 2
    in
    let (sg : Dsd_core.Density.subgraph), elapsed =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_util.Timer.time (fun () -> solve pool)))
    in
    Printf.printf "algorithm  %s\n" name;
    Printf.printf "pattern    %s\n" psi.P.name;
    Printf.printf "density    %.6f\n" sg.density;
    Printf.printf "vertices   %d\n" (Array.length sg.vertices);
    Printf.printf "time       %.3fs\n" elapsed;
    Array.iter (Printf.printf "%d ") sg.vertices;
    print_newline ();
    Option.iter
      (fun path ->
        Dsd_graph.Io.write_dot path g ~highlight:sg.vertices;
        Printf.printf "wrote %s\n" path)
      dot
  in
  let run a b c d e f g h i = or_die (fun () -> run a b c d e f g h i) in
  C.Cmd.v
    (C.Cmd.info "cds" ~doc:"Find the (approximately) densest subgraph.")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ algo $ dot $ stats_arg $ trace_arg $ no_warm_arg)

(* ---- query (Section 6.3 variant) ---- *)

let query =
  let vertices =
    C.Arg.(non_empty & pos_all int []
           & info [] ~docv:"VERTEX" ~doc:"Query vertices the subgraph must contain.")
  in
  let run input dataset pattern domains vertices stats trace no_warm =
    let g = load_graph input dataset in
    let psi = pattern_of_string pattern in
    let warm = not no_warm in
    let r =
      with_obs ~stats ~trace (fun () ->
          with_domains domains (fun pool ->
              Dsd_core.Query_dsd.run ~pool ~warm g psi
                ~query:(Array.of_list vertices)))
    in
    let sg = r.Dsd_core.Query_dsd.subgraph in
    Printf.printf "pattern    %s\n" psi.P.name;
    Printf.printf "density    %.6f\n" sg.Dsd_core.Density.density;
    Printf.printf "vertices   %d\n" (Array.length sg.Dsd_core.Density.vertices);
    Printf.printf "time       %.3fs (%d min-cuts)\n" r.Dsd_core.Query_dsd.elapsed_s
      r.Dsd_core.Query_dsd.iterations;
    Array.iter (Printf.printf "%d ") sg.Dsd_core.Density.vertices;
    print_newline ()
  in
  let run a b c d e f g h = or_die (fun () -> run a b c d e f g h) in
  C.Cmd.v
    (C.Cmd.info "query"
       ~doc:"Densest subgraph containing given query vertices (Section 6.3).")
    C.Term.(const run $ input_arg $ dataset_arg $ pattern_arg $ domains_arg
            $ vertices $ stats_arg $ trace_arg $ no_warm_arg)

(* ---- fuzz ---- *)

let fuzz =
  let cases =
    C.Arg.(value & opt int 100
           & info [ "cases" ] ~docv:"N" ~doc:"Cases to generate.")
  in
  let seed =
    C.Arg.(value & opt int 42
           & info [ "seed" ] ~docv:"S" ~doc:"Root PRNG seed.")
  in
  let budget =
    C.Arg.(value & opt (some float) None
           & info [ "time-budget" ] ~docv:"T"
               ~doc:"Stop generating new cases after $(docv) seconds.")
  in
  let relation =
    C.Arg.(value & opt (some string) None
           & info [ "relation" ] ~docv:"R"
               ~doc:"Check only this metamorphic relation (see \
                     'dsd fuzz --list-relations').")
  in
  let list_relations =
    C.Arg.(value & flag
           & info [ "list-relations" ] ~doc:"List the relation registry and exit.")
  in
  let out =
    C.Arg.(value & opt string "."
           & info [ "out" ] ~docv:"DIR"
               ~doc:"Directory for the reproducer file written on failure.")
  in
  let replay =
    C.Arg.(value & opt (some string) None
           & info [ "replay" ] ~docv:"FILE"
               ~doc:"Re-run the single check recorded in a reproducer \
                     file instead of fuzzing.")
  in
  let run cases seed budget relation list_relations out replay =
    if list_relations then
      List.iter print_endline Dsd_check.Relation.names
    else
      match replay with
      | Some path ->
        let repro = Dsd_check.Repro.read path in
        Printf.printf "replay     %s relation=%s psi=%s seed=%d\n" path
          repro.Dsd_check.Repro.relation repro.Dsd_check.Repro.psi
          repro.Dsd_check.Repro.seed;
        (match Dsd_check.Engine.replay repro with
        | Dsd_check.Relation.Pass ->
          print_endline "verdict    PASS (violation no longer reproduces)"
        | Dsd_check.Relation.Skip why ->
          Printf.printf "verdict    SKIP (%s)\n" why
        | Dsd_check.Relation.Fail msg ->
          print_endline "verdict    FAIL";
          Printf.printf "violation  %s\n" msg;
          exit 1)
      | None ->
        let summary =
          Dsd_check.Engine.run ?relation ?time_budget_s:budget ~cases ~seed ()
        in
        Printf.printf "fuzz       seed=%d cases=%d\n" seed cases;
        print_string (Dsd_check.Engine.summary_to_string summary);
        (match summary.Dsd_check.Engine.failure with
        | None -> ()
        | Some f ->
          let path =
            Filename.concat out
              (Printf.sprintf "dsd-fuzz-%s-%d.repro" f.relation f.case_seed)
          in
          Dsd_check.Repro.write path (Dsd_check.Engine.to_repro f);
          Printf.printf "reproducer %s\n" path;
          Printf.printf "replay     dsd fuzz --replay %s\n" path;
          exit 1)
  in
  let run a b c d e f g = or_die (fun () -> run a b c d e f g) in
  C.Cmd.v
    (C.Cmd.info "fuzz"
       ~doc:"Metamorphic fuzzing: random graphs checked against the \
             paper's theorems as executable relations.")
    C.Term.(const run $ cases $ seed $ budget $ relation $ list_relations
            $ out $ replay)

(* ---- truss ---- *)

let truss =
  let k = C.Arg.(value & opt (some int) None
                 & info [ "k" ] ~doc:"Print the edges of the k-truss.") in
  let run input dataset k =
    let g = load_graph input dataset in
    let t = Dsd_core.Truss.decompose g in
    Printf.printf "max truss  %d\n" (Dsd_core.Truss.kmax t);
    let sg = Dsd_core.Truss.max_truss_subgraph g t in
    Printf.printf "kmax-truss %d vertices, edge density %.4f\n"
      (Array.length sg.Dsd_core.Density.vertices) sg.Dsd_core.Density.density;
    Option.iter
      (fun k ->
        let edges = Dsd_core.Truss.k_truss t ~k in
        Printf.printf "%d-truss: %d edges\n" k (Array.length edges);
        Array.iter (fun (u, v) -> Printf.printf "%d %d\n" u v) edges)
      k
  in
  let run a b c = or_die (fun () -> run a b c) in
  C.Cmd.v
    (C.Cmd.info "truss" ~doc:"k-truss decomposition (comparison model).")
    C.Term.(const run $ input_arg $ dataset_arg $ k)

(* ---- patterns ---- *)

let patterns =
  let run () =
    List.iter
      (fun (psi : P.t) ->
        Printf.printf "%-12s |V|=%d |E|=%d  %s\n" psi.name psi.size
          (P.edge_count psi)
          (String.concat " "
             (List.map
                (fun (u, v) -> Printf.sprintf "%d-%d" u v)
                (Array.to_list psi.edges))))
      ([ P.edge; P.triangle; P.clique 4; P.clique 5; P.clique 6 ] @ P.figure7)
  in
  C.Cmd.v (C.Cmd.info "patterns" ~doc:"List built-in patterns.")
    C.Term.(const run $ const ())

let () =
  let info =
    C.Cmd.info "dsd" ~version:"1.0.0"
      ~doc:"Core-based densest subgraph discovery (VLDB'19 reproduction)."
  in
  exit
    (C.Cmd.eval
       (C.Cmd.group info
          [ generate; stats; decompose; cds; query; fuzz; truss; patterns ]))
