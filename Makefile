# Convenience targets; CI should run `make check`.

.PHONY: all build test fmt check bench-phases clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting is checked only when ocamlformat is installed — the
# toolchain image does not bake it in.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping @fmt"; \
	fi

check:
	dune build @default @runtest
	dune exec bench/main.exe -- --only parallel --smoke
	$(MAKE) fmt

# Per-phase observability breakdown (Dsd_obs spans/counters).
bench-phases:
	dune exec bench/main.exe -- --only phases

clean:
	dune clean
