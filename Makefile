# Convenience targets; CI should run `make check`.

.PHONY: all build test test-flow fmt check bench-phases bench-retarget clean

all: build

build:
	dune build

test:
	dune runtest

# The flow-layer suites on their own: solver invariants (conservation,
# max-flow = min-cut, residuals, reset_flow) and the retarget
# differential/accounting contracts.
test-flow:
	dune exec test/test_main.exe -- test flow
	dune exec test/test_main.exe -- test flow-invariants
	dune exec test/test_main.exe -- test flow-retarget

# Formatting is checked only when ocamlformat is installed — the
# toolchain image does not bake it in.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping @fmt"; \
	fi

# fmt runs first so a formatting failure is reported before the long
# build/test/bench steps.
check:
	$(MAKE) fmt
	dune build @default @runtest
	dune exec bench/main.exe -- --only parallel,retarget --smoke

# Per-phase observability breakdown (Dsd_obs spans/counters).
bench-phases:
	dune exec bench/main.exe -- --only phases

# Flow-network builds vs O(V) re-alphas (writes BENCH_retarget.json).
bench-retarget:
	dune exec bench/main.exe -- --only retarget

clean:
	dune clean
