# Convenience targets; CI should run `make check`.

.PHONY: all build test test-flow test-warmstart test-metamorphic test-serve \
	test-incremental test-topk test-hierarchy test-parallel-heavy \
	fuzz-smoke fuzz-incremental fuzz-topk fuzz-hierarchy coverage fmt \
	check bench-phases bench-retarget bench-warmstart bench-serve \
	bench-incremental bench-topk bench-hierarchy bench-parallel clean

all: build

build:
	dune build

test:
	dune runtest

# The flow-layer suites on their own: solver invariants (conservation,
# max-flow = min-cut, residuals, reset_flow) and the retarget
# differential/accounting contracts.
test-flow:
	dune exec test/test_main.exe -- test flow
	dune exec test/test_main.exe -- test flow-invariants
	dune exec test/test_main.exe -- test flow-retarget

# The warm-start suite on its own: excess draining, warm vs reset
# differentials for both solvers, and the warm accounting contracts.
test-warmstart:
	dune exec test/test_main.exe -- test flow-warmstart

# The deterministic metamorphic suite (generators, relations,
# shrinker, reproducers, mutation self-tests).
test-metamorphic:
	dune exec test/test_main.exe -- test metamorphic

# The serving suite on its own: snapshot round trips, the LRU model,
# cache accounting, the live-socket differential corpus and the
# protocol fault injection.
test-serve:
	dune exec test/test_main.exe -- test serve

# The incremental suite on its own: the delta-stream differential
# battery (patched session vs rebuild, bit-identical per batch), the
# dynamic-core maintenance checks, the delta generator/shrinker model
# tests and the arc-surgery flow repairs.
test-incremental:
	dune exec test/test_main.exe -- test incremental

# The top-k suite on its own: the brute-force oracle differential
# (h in {2,3}, k in {1,2,3}, pruning on and off bit-identical), the
# canonical-region fixtures and the disjointness/monotonicity laws.
test-topk:
	dune exec test/test_main.exe -- test topk

# The hierarchy suites on their own: the union-of-argmax oracle
# differential (prepared/fresh/pool widths bit-identical), the
# configuration bit-equality battery, the probe-count agreement check
# and the sorted-prefix properties, plus the single-CDS LD suite the
# decomposition shares its probe loop with.
test-hierarchy:
	dune exec test/test_main.exe -- test hierarchy
	dune exec test/test_main.exe -- test ld-decomposition

# The whole battery re-run with a 4-domain default pool: DSD_DOMAINS
# governs every solver's default width, so the round-synchronous peel,
# the striped component probes and the CLI goldens all execute against
# a real multi-domain pool even on paths that don't pass ?pool
# explicitly.  Everything must stay bit-identical — the goldens diff
# the same expected files.  --force because the environment variable
# is invisible to dune's dependency tracking.
test-parallel-heavy:
	DSD_DOMAINS=4 dune build @runtest --force

# A real fuzzing burst: fresh random cases against every relation,
# bounded by wall clock so `make check` stays fast.  Uses an
# arbitrary fixed seed; re-roll with FUZZ_SEED=n.
FUZZ_SEED ?= 42
fuzz-smoke:
	dune exec bin/dsd.exe -- fuzz --cases 400 --seed $(FUZZ_SEED) --time-budget 15

# A focused burst on the incremental relations only: delta scripts
# round-tripped through the serve codec against a rebuild oracle, and
# the edge-deletion monotonicity law.
fuzz-incremental:
	dune exec bin/dsd.exe -- fuzz --cases 200 --seed $(FUZZ_SEED) --time-budget 10 \
		--relation delta-equals-rebuild
	dune exec bin/dsd.exe -- fuzz --cases 200 --seed $(FUZZ_SEED) --time-budget 5 \
		--relation edge-deletion-monotonicity

# A focused burst on the top-k relations only: region disjointness,
# prefix stability under growing k, and top-1 = CDS density.
fuzz-topk:
	dune exec bin/dsd.exe -- fuzz --cases 150 --seed $(FUZZ_SEED) --time-budget 10 \
		--relation topk-disjointness
	dune exec bin/dsd.exe -- fuzz --cases 150 --seed $(FUZZ_SEED) --time-budget 10 \
		--relation topk-prefix-stability
	dune exec bin/dsd.exe -- fuzz --cases 150 --seed $(FUZZ_SEED) --time-budget 5 \
		--relation top1-equals-cds

# A focused burst on the hierarchy relations only: chain nesting with
# slow-count marginal re-derivation, B_1 = the canonical CDS, and the
# prepared/fresh/cold bit-equality of the probe loop.
fuzz-hierarchy:
	dune exec bin/dsd.exe -- fuzz --cases 150 --seed $(FUZZ_SEED) --time-budget 10 \
		--relation hierarchy-nesting
	dune exec bin/dsd.exe -- fuzz --cases 150 --seed $(FUZZ_SEED) --time-budget 10 \
		--relation hierarchy-level1-equals-cds
	dune exec bin/dsd.exe -- fuzz --cases 150 --seed $(FUZZ_SEED) --time-budget 10 \
		--relation hierarchy-prepared-equals-fresh

# Line coverage via bisect_ppx, skipped gracefully when the ppx is not
# installed (the toolchain image does not bake it in, like ocamlformat).
coverage:
	@if command -v ocamlfind >/dev/null 2>&1 && ocamlfind query bisect_ppx >/dev/null 2>&1; then \
		find . -name 'bisect*.coverage' -delete; \
		dune runtest --instrument-with bisect_ppx --force && \
		bisect-ppx-report summary; \
	else \
		echo "bisect_ppx not installed; skipping coverage"; \
	fi

# Formatting is checked only when ocamlformat is installed — the
# toolchain image does not bake it in.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping @fmt"; \
	fi

# fmt runs first so a formatting failure is reported before the long
# build/test/bench steps.  The warmstart smoke run feeds the compare
# gate (warm-started probes must never need more augmenting paths than
# reset probes); the serve smoke run feeds the cached-latency gate (a
# repeated identical request must be >= 5x faster than the cold one).
check:
	$(MAKE) fmt
	dune build @default @runtest
	$(MAKE) test-serve
	$(MAKE) test-incremental
	$(MAKE) test-topk
	$(MAKE) test-hierarchy
	$(MAKE) fuzz-smoke
	$(MAKE) fuzz-incremental
	$(MAKE) fuzz-topk
	$(MAKE) fuzz-hierarchy
	dune exec bench/main.exe -- --only parallel,retarget,warmstart,serve,incremental,topk,hierarchy --smoke
	dune exec bench/compare.exe -- BENCH_parallel.json
	dune exec bench/compare.exe -- BENCH_warmstart.json
	dune exec bench/compare.exe -- BENCH_serve.json
	dune exec bench/compare.exe -- BENCH_incremental.json
	dune exec bench/compare.exe -- BENCH_topk.json
	dune exec bench/compare.exe -- BENCH_hierarchy.json

# Per-phase observability breakdown (Dsd_obs spans/counters).
bench-phases:
	dune exec bench/main.exe -- --only phases

# Flow-network builds vs O(V) re-alphas (writes BENCH_retarget.json).
bench-retarget:
	dune exec bench/main.exe -- --only retarget

# Warm vs reset flow retargeting (writes BENCH_warmstart.json), then
# the regression gate over the fresh numbers.
bench-warmstart:
	dune exec bench/main.exe -- --only warmstart
	dune exec bench/compare.exe -- BENCH_warmstart.json

# Cold vs prepared vs cached request latency over a live socket
# (writes BENCH_serve.json), then the >= 5x cached-latency gate.
bench-serve:
	dune exec bench/main.exe -- --only serve
	dune exec bench/compare.exe -- BENCH_serve.json

# Patch-vs-recompute on a sliding edge window (writes
# BENCH_incremental.json), then the <= 0.5x batch-cost gate.
bench-incremental:
	dune exec bench/main.exe -- --only incremental
	dune exec bench/compare.exe -- BENCH_incremental.json

# Pruned vs unpruned top-k extraction (writes BENCH_topk.json), then
# the bit-identical-regions and never-slower gate.
bench-topk:
	dune exec bench/main.exe -- --only topk
	dune exec bench/compare.exe -- BENCH_topk.json

# Prepared vs fresh-build density-friendly hierarchy (writes
# BENCH_hierarchy.json), then the bit-identical-chain / B_1 = CDS and
# never-slower gate.
bench-hierarchy:
	dune exec bench/main.exe -- --only hierarchy
	dune exec bench/compare.exe -- BENCH_hierarchy.json

# Domain-pool speedup sweep over the pooled phases (writes
# BENCH_parallel.json), then the >= 2x at 4 domains gate — skipped
# automatically on boxes whose cores_detected < 4.
bench-parallel:
	dune exec bench/main.exe -- --only parallel
	dune exec bench/compare.exe -- BENCH_parallel.json

clean:
	dune clean
