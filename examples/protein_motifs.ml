(* Motif-dense subnetworks in a protein-interaction-style graph — the
   paper's Figure 21 (Yeast) case study.

   Different patterns act as proxies for different functional classes
   (Wuchty et al. 2003): we extract the pattern-densest subgraph for
   the edge, c3-star, 2-triangle and 4-clique motifs and show that they
   select different subnetworks.

   Run with: dune exec examples/protein_motifs.exe *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

module Vset = Set.Make (Int)

let jaccard a b =
  let inter = Vset.cardinal (Vset.inter a b) in
  let union = Vset.cardinal (Vset.union a b) in
  if union = 0 then 0. else float_of_int inter /. float_of_int union

let () =
  let g = Dsd_data.Datasets.graph "yeast" in
  Printf.printf "yeast-like PPI network: %d proteins, %d interactions\n\n"
    (G.n g) (G.m g);
  let motifs =
    [ ("edge        (subcellular localisation)", P.edge);
      ("c3-star     (cell cycle / transport)", P.c3_star);
      ("2-triangle  (localisation / cell cycle)", P.two_triangle);
      ("4-clique    (transport / protein synthesis)", P.clique 4) ]
  in
  let results =
    List.map
      (fun (label, psi) ->
        let r = Dsd_core.Core_pexact.run g psi in
        (label, r.subgraph))
      motifs
  in
  List.iter
    (fun (label, (sg : D.subgraph)) ->
      Printf.printf "%s\n  PDS density %.3f over %d proteins: "
        label sg.D.density (Array.length sg.D.vertices);
      Array.iteri
        (fun i v -> if i < 12 then Printf.printf "%d " v)
        sg.D.vertices;
      if Array.length sg.D.vertices > 12 then print_string "...";
      print_newline ())
    results;
  print_newline ();
  print_endline "pairwise overlap (Jaccard) of the PDS vertex sets:";
  let sets =
    List.map
      (fun (_, sg) -> Vset.of_list (Array.to_list sg.D.vertices))
      results
  in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i < j then
            Printf.printf "  motif %d vs motif %d: %.2f\n" (i + 1) (j + 1)
              (jaccard si sj))
        sets)
    sets
