(* Density hierarchy of a network: the density-friendly decomposition
   (Tatti-Gionis) splits the graph into nested shells of strictly
   decreasing marginal density — the densest community first, then
   progressively looser periphery.  We render the top shells and export
   a DOT drawing with the innermost shell highlighted.

   Run with: dune exec examples/density_hierarchy.exe *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module LD = Dsd_core.Ld_decomposition

let () =
  let g = Dsd_data.Datasets.graph "netscience" in
  Printf.printf "collaboration network: %d vertices, %d edges\n\n" (G.n g) (G.m g);
  let d = LD.decompose g P.edge in
  Printf.printf "density-friendly decomposition: %d levels (%d min-cuts, %.2fs)\n\n"
    (List.length d.LD.levels) d.LD.iterations d.LD.elapsed_s;
  Printf.printf "%-6s %-10s %-10s %s\n" "level" "marginal" "new" "cumulative";
  List.iteri
    (fun i (l : LD.level) ->
      if i < 10 then
        Printf.printf "%-6d %-10.3f %-10d %d\n" (i + 1) l.LD.marginal_density
          (Array.length l.LD.vertices) l.LD.prefix_size)
    d.LD.levels;
  if List.length d.LD.levels > 10 then
    Printf.printf "... (%d more levels)\n" (List.length d.LD.levels - 10);

  (* The innermost shell is exactly the densest subgraph. *)
  let eds = Dsd_core.Api.densest_subgraph g in
  (match d.LD.levels with
   | first :: _ ->
     Printf.printf
       "\ninnermost shell density %.3f — equals the exact densest subgraph (%.3f)\n"
       first.LD.marginal_density eds.density
   | [] -> ());

  (* Export a drawing of the 2-core neighbourhood with the densest
     shell highlighted. *)
  let out = Filename.temp_file "dsd_hierarchy" ".dot" in
  (match d.LD.levels with
   | first :: _ ->
     let shell = first.LD.vertices in
     (* Keep the drawing readable: induced subgraph of the shell plus
        its direct neighbours. *)
     let keep = Array.make (G.n g) false in
     Array.iter
       (fun v ->
         keep.(v) <- true;
         G.iter_neighbors g v ~f:(fun w -> keep.(w) <- true))
       shell;
     let sub, map = G.induced_mask g keep in
     let back = Array.make (G.n g) (-1) in
     Array.iteri (fun i v -> back.(v) <- i) map;
     Dsd_graph.Io.write_dot out sub
       ~highlight:(Array.map (fun v -> back.(v)) shell);
     Printf.printf "wrote %s (%d vertices drawn; render with: dot -Tsvg)\n"
       out (G.n sub)
   | [] -> ())
