(* Community detection on a DBLP-style collaboration network — the
   paper's Figure 17 case study.

   Triangle-densest subgraphs find tightly collaborating near-cliques
   (every pair has co-authored); 2-star-densest subgraphs find
   advisor-centred groups (a hub linked to many students who rarely
   co-author with each other).

   Run with: dune exec examples/community_detection.exe *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

let describe name (sg : D.subgraph) g =
  let sub, _ = G.induced g sg.D.vertices in
  let degs = G.degrees sub in
  Printf.printf "%s\n  density   %.2f\n  members   %d\n  avg degree inside %.2f, max %d\n"
    name sg.D.density (Array.length sg.D.vertices)
    (Dsd_util.Stats.mean (Array.map float_of_int degs))
    (Dsd_util.Stats.max_int_arr degs)

let () =
  let g = Dsd_data.Datasets.graph "sdblp" in
  Printf.printf "S-DBLP-like co-authorship network: %d authors, %d collaborations\n\n"
    (G.n g) (G.m g);

  (* Near-clique research group: exact triangle-densest subgraph. *)
  let tri = (Dsd_core.Core_exact.run g P.triangle).subgraph in
  describe "triangle-densest group (tight collaboration):" tri g;
  let sub, _ = G.induced g tri.D.vertices in
  let pairs = G.n sub * (G.n sub - 1) / 2 in
  Printf.printf "  %d of %d pairs have co-authored -> near-clique\n\n"
    (G.m sub) pairs;

  (* Advisor-centred group: exact 2-star-densest subgraph. *)
  let star = (Dsd_core.Core_pexact.run g (P.star 2)).subgraph in
  describe "2-star-densest group (advisor-centred):" star g;
  let sub, map = G.induced g star.D.vertices in
  let hub = ref 0 in
  for v = 0 to G.n sub - 1 do
    if G.degree sub v > G.degree sub !hub then hub := v
  done;
  Printf.printf "  hub author %d is linked to %d of the %d members\n\n"
    map.(!hub) (G.degree sub !hub) (G.n sub - 1);

  (* The two notions select different communities. *)
  let overlap =
    Array.fold_left
      (fun acc v -> if Array.exists (( = ) v) star.D.vertices then acc + 1 else acc)
      0 tri.D.vertices
  in
  Printf.printf
    "overlap between the two groups: %d vertices — different density \
     notions surface different community structures.\n"
    overlap
