(* Quickstart: build a graph, find its densest subgraphs under several
   density notions, and inspect the (k, Psi)-core structure.

   Run with: dune exec examples/quickstart.exe *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern

let () =
  (* A graph with two rival regions: the complete bipartite K3,4 and a
     4-clique (the paper's Figure 1 phenomenon). *)
  let g = Dsd_data.Paper_graphs.eds_vs_cds in
  Printf.printf "graph: %d vertices, %d edges\n\n" (G.n g) (G.m g);

  (* 1. The classical edge-densest subgraph (one call, exact). *)
  let eds = Dsd_core.Api.densest_subgraph g in
  Printf.printf "edge-densest subgraph: density %.4f, vertices:" eds.density;
  Array.iter (Printf.printf " %d") eds.vertices;
  print_newline ();

  (* 2. The triangle-densest subgraph picks a different region. *)
  let cds = Dsd_core.Api.densest_subgraph ~psi:P.triangle g in
  Printf.printf "triangle-densest subgraph: density %.4f, vertices:"
    cds.density;
  Array.iter (Printf.printf " %d") cds.vertices;
  print_newline ();

  (* 3. Any small connected pattern works, e.g. the diamond (4-cycle). *)
  let pds = Dsd_core.Api.densest_subgraph ~psi:P.diamond g in
  Printf.printf "diamond-densest subgraph: density %.4f, vertices:"
    pds.density;
  Array.iter (Printf.printf " %d") pds.vertices;
  print_newline ();

  (* 4. Approximation in near-linear time: the (kmax, Psi)-core. *)
  let approx = Dsd_core.Api.densest_subgraph ~algorithm:Dsd_core.Api.Core_app g in
  Printf.printf "\nCoreApp approximation: density %.4f (>= optimum / 2)\n"
    approx.density;

  (* 5. Core structure: clique-core numbers per vertex. *)
  let cores = Dsd_core.Api.core_numbers g P.triangle in
  print_string "(k, triangle)-core numbers:";
  Array.iter (Printf.printf " %d") cores;
  print_newline ()
