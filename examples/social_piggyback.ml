(* Social piggybacking (Gionis et al., PVLDB'13) — one of the paper's
   motivating applications for DSD in system optimisation.

   Feed-delivery systems choose, per (producer, consumer) pair, whether
   the consumer polls the producer ("pull") or the producer pushes
   updates ("push").  A dense subgraph is a good "hub set": materialise
   one shared feed for the dense region and let its members serve
   traffic between their neighbours, saving per-edge work proportional
   to the region's density.

   This example greedily extracts dense subgraphs with CoreApp, removes
   them, and repeats — a standard DSD-based hub-set heuristic — and
   reports the delivery-cost saving on a synthetic social network.

   Run with: dune exec examples/social_piggyback.exe *)

module G = Dsd_graph.Graph
module P = Dsd_pattern.Pattern
module D = Dsd_core.Density

let () =
  let g = Dsd_data.Gen.ssca ~seed:2024 ~n:20_000 ~max_clique:24 in
  Printf.printf "social network: %d users, %d follow relations\n\n" (G.n g) (G.m g);
  (* Baseline cost: every edge served individually (unit cost each). *)
  let baseline = G.m g in
  (* Greedy hub-set construction: repeatedly take the densest region
     (CoreApp: (kmax, edge)-core) while it stays dense enough to pay
     for its hub feed. *)
  let alive = Array.make (G.n g) true in
  let saved = ref 0 in
  let hubs = ref 0 in
  let round = ref 0 in
  let continue_ = ref true in
  while !continue_ && !round < 10 do
    incr round;
    let live =
      Array.of_list (List.filter (fun v -> alive.(v)) (List.init (G.n g) Fun.id))
    in
    let sub, map = G.induced g live in
    let r = Dsd_core.Core_app.run sub P.edge in
    let sg = r.subgraph in
    if sg.D.density < 3.0 || Array.length sg.D.vertices < 4 then
      continue_ := false
    else begin
      let sub_core, _ = G.induced sub sg.D.vertices in
      (* Serving the region through one shared feed costs ~|V| instead
         of |E|: the saving is m - n per region. *)
      let gain = G.m sub_core - G.n sub_core in
      saved := !saved + max 0 gain;
      incr hubs;
      Printf.printf
        "hub set %d: %4d users, %5d internal relations (density %.2f) -> saves %d deliveries\n"
        !round (G.n sub_core) (G.m sub_core) sg.D.density (max 0 gain);
      Array.iter (fun v -> alive.(map.(v)) <- false) sg.D.vertices
    end
  done;
  Printf.printf
    "\ntotal: %d of %d deliveries saved (%.1f%%) using %d hub sets\n"
    !saved baseline
    (100. *. float_of_int !saved /. float_of_int baseline)
    !hubs
